"""Setup shim: lets editable installs work on offline machines without the
``wheel`` package (``pip install -e . --no-use-pep517``).  All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
