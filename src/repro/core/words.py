"""Word-level input — the paper's stated future work.

Section III-C.2: "For current implementation we only focus on recognizing
individual letter.  We will leave the recognition of a succession of
letters as our future work."  This module supplies that layer:

* **letter segmentation**: people pause longer between letters than
  between strokes; stroke windows are clustered into letters by the gap
  between consecutive windows (inter-stroke gaps ~0.9 s, inter-letter
  gaps ≥ ``letter_gap_s``);
* **per-letter recognition**: any recogniser with the
  ``recognize(strokes, windows)`` interface (grammar, holistic, hybrid);
* **lexicon correction**: a noisy-channel decoder over the per-letter
  candidate rankings, which absorbs individual letter errors exactly the
  way the kiosk scenario needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple

from .events import LetterResult, SegmentedWindow, StrokeObservation


class LetterRecognizer(Protocol):
    def recognize(
        self,
        strokes: Sequence[StrokeObservation],
        windows: Sequence[SegmentedWindow] = (),
    ) -> LetterResult: ...


def cluster_windows_into_letters(
    windows: Sequence[SegmentedWindow], letter_gap_s: float = 1.3
) -> List[List[SegmentedWindow]]:
    """Group stroke windows into letters by inter-window gap.

    >>> from repro.core.events import SegmentedWindow as W
    >>> groups = cluster_windows_into_letters(
    ...     [W(0, 1, 1), W(1.9, 2.9, 1), W(5.5, 6.5, 1)], letter_gap_s=1.6)
    >>> [len(g) for g in groups]
    [2, 1]
    """
    groups: List[List[SegmentedWindow]] = []
    for w in sorted(windows, key=lambda w: w.t0):
        if groups and w.t0 - groups[-1][-1].t1 < letter_gap_s:
            groups[-1].append(w)
        else:
            groups.append([w])
    return groups


@dataclass(frozen=True)
class WordResult:
    """The decoded word plus its per-letter evidence."""

    raw: str                                  # best per-letter reading ('?' = none)
    corrected: Optional[str]                  # lexicon decode (None without lexicon hit)
    letters: Tuple[LetterResult, ...]

    @property
    def text(self) -> str:
        return self.corrected if self.corrected is not None else self.raw


@dataclass
class WordDecoder:
    """Noisy-channel word decoding over per-letter candidate rankings.

    ``miss_cost`` charges a word letter that never appears among a
    position's candidates; ``accept_margin`` requires the best lexicon
    word to beat the runner-up by that much, otherwise the raw reading is
    kept (no overconfident corrections).
    """

    lexicon: Sequence[str] = ()
    miss_cost: float = 2.0
    accept_margin: float = 0.0

    def _letter_cost(self, candidates: Sequence[Tuple[str, float]], letter: str) -> float:
        best_score = None
        for cand, score in candidates:
            if cand == letter:
                best_score = score
                break
        if best_score is None:
            return self.miss_cost
        return float(best_score)

    def decode(self, letters: Sequence[LetterResult]) -> WordResult:
        raw = "".join(l.letter if l.letter is not None else "?" for l in letters)
        if not self.lexicon or not letters:
            return WordResult(raw=raw, corrected=None, letters=tuple(letters))

        scored: List[Tuple[str, float]] = []
        for word in self.lexicon:
            if len(word) != len(letters):
                continue
            cost = sum(
                self._letter_cost(l.candidates, ch)
                for l, ch in zip(letters, word.upper())
            )
            scored.append((word.upper(), cost))
        if not scored:
            return WordResult(raw=raw, corrected=None, letters=tuple(letters))
        scored.sort(key=lambda pair: pair[1])
        if len(scored) >= 2 and scored[1][1] - scored[0][1] < self.accept_margin:
            return WordResult(raw=raw, corrected=None, letters=tuple(letters))
        return WordResult(raw=raw, corrected=scored[0][0], letters=tuple(letters))


@dataclass
class WordRecognizer:
    """Session log -> word, built on any per-letter recogniser.

    The pad supplies segmentation and per-stroke analysis; this object
    owns only the letter clustering and the lexicon decode, so it composes
    with :class:`~repro.core.pipeline.RFIPad` without subclassing.
    """

    pad: "RFIPad"  # noqa: F821  (forward ref; avoids an import cycle)
    decoder: WordDecoder = field(default_factory=WordDecoder)
    letter_gap_s: float = 1.3

    def recognize_word(self, log) -> WordResult:
        windows = self.pad.segment(log)
        letters: List[LetterResult] = []
        for group in cluster_windows_into_letters(windows, self.letter_gap_s):
            strokes = []
            for w in group:
                obs = self.pad.analyze_window(log, w.t0, w.t1)
                if obs is not None:
                    strokes.append(obs)
            letters.append(self.pad.grammar.recognize(strokes, group))
        return self.decoder.decode(letters)
