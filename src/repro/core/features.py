"""Geometric features of the binarised grey map.

The classifier needs to tell a dot from a line from an arc using ~25
pixels.  Rather than template matching, we extract a small set of weighted
moment features from the foreground cells (weighted by their grey values,
which preserves sub-cell information the binary mask throws away):

* weighted centroid and covariance -> principal axis, elongation;
* principal-axis projection -> extent and endpoints;
* a Kasa least-squares circle fit -> arc curvature, angular coverage, and
  the direction the arc opens towards (the largest angular gap).  A circle
  fit, unlike a quadratic bow, handles the paper's 240-degree "⊂"/"⊃"
  sweeps where the perpendicular offset is not a function of the
  principal-axis coordinate.

Coordinates are in *cell units* with y up (row 0 is the top of the pad), so
angles read like handwriting: "/" has positive slope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .imaging import BinaryMap, GreyMap


@dataclass(frozen=True)
class ShapeFeatures:
    """Moment features of one foreground blob."""

    count: int
    centroid: Tuple[float, float]         # (x, y) cell units, y up
    angle_deg: float                      # principal axis angle in (-90, 90]
    elongation: float                     # sqrt(major/minor variance), >= 1
    major_extent: float                   # spread along the principal axis
    minor_std: float                      # residual spread off-axis
    bow_ratio: float                      # arc bulge relative to half-extent
    opening: Tuple[float, float]          # unit-ish vector the arc opens towards
    bbox: Tuple[int, int, int, int]       # (row_min, row_max, col_min, col_max)
    span_cells: Tuple[int, int]           # (rows spanned, cols spanned)
    circle_radius: float = float("inf")   # Kasa fit radius (inf: no/degenerate fit)
    circle_rms: float = float("inf")      # RMS radial residual of the circle fit
    coverage_deg: float = 0.0             # angular span of points around the centre
    #: Distance from the blob centroid to the fitted circle centre, as a
    #: fraction of the radius.  An arc's centre lies well outside the ink
    #: (~0.4 R for a 240-degree sweep); a filled bar's centre sits on its
    #: centroid.  This is the cleanest arc-vs-thick-line discriminator.
    centre_offset_ratio: float = 0.0


def _weighted_points(grey: GreyMap, binary: BinaryMap) -> Tuple[np.ndarray, np.ndarray]:
    """Foreground points (x, y up) and their grey weights."""
    rows, cols = np.nonzero(binary.mask)
    weights = grey.values[rows, cols].astype(float)
    # Guard: OTSU guarantees foreground > threshold >= 0, but a uniform map
    # can yield zero weights; fall back to unit weights.
    if weights.sum() <= 0.0:
        weights = np.ones_like(weights)
    xs = cols.astype(float)
    ys = (grey.layout.rows - 1 - rows).astype(float)  # flip: y up
    return np.stack([xs, ys], axis=1), weights


def _kasa_circle_fit(
    pts: np.ndarray, w: np.ndarray
) -> Optional[Tuple[Tuple[float, float], float, float]]:
    """Weighted Kasa circle fit: ((cx, cy), radius, rms_residual).

    Solves ``x^2 + y^2 + D x + E y + F = 0`` in least squares.  Returns
    ``None`` for degenerate point sets (collinear points explode the
    radius, which the caller rejects separately, but a singular system —
    e.g. repeated points — returns None outright).
    """
    if pts.shape[0] < 3:
        return None
    x, y = pts[:, 0], pts[:, 1]
    design = np.stack([x, y, np.ones_like(x)], axis=1)
    target = -(x**2 + y**2)
    sw = np.sqrt(w)
    try:
        coeffs, *_ = np.linalg.lstsq(design * sw[:, None], target * sw, rcond=None)
    except np.linalg.LinAlgError:
        return None
    d, e, f = (float(c) for c in coeffs)
    cx, cy = -d / 2.0, -e / 2.0
    r2 = cx * cx + cy * cy - f
    if not math.isfinite(r2) or r2 <= 0.0:
        return None
    radius = math.sqrt(r2)
    dists = np.hypot(x - cx, y - cy)
    rms = math.sqrt(float(((dists - radius) ** 2 * w).sum() / w.sum()))
    return (cx, cy), radius, rms


def _angular_coverage(
    pts: np.ndarray, centre: Tuple[float, float]
) -> Tuple[float, Tuple[float, float]]:
    """(coverage in degrees, unit vector towards the largest angular gap).

    The gap direction is where the arc is *open*: for a "⊂" the points
    cover the left 240 degrees so the largest gap faces right.
    """
    angles = np.sort(np.arctan2(pts[:, 1] - centre[1], pts[:, 0] - centre[0]))
    if angles.size < 2:
        return 0.0, (0.0, 0.0)
    gaps = np.diff(angles)
    wrap_gap = 2.0 * math.pi - (angles[-1] - angles[0])
    all_gaps = np.append(gaps, wrap_gap)
    k = int(np.argmax(all_gaps))
    largest = float(all_gaps[k])
    if k < gaps.size:
        gap_mid = float((angles[k] + angles[k + 1]) / 2.0)
    else:
        gap_mid = float(angles[-1] + wrap_gap / 2.0)
    coverage = math.degrees(2.0 * math.pi - largest)
    return coverage, (math.cos(gap_mid), math.sin(gap_mid))


def extract_features(grey: GreyMap, binary: BinaryMap) -> Optional[ShapeFeatures]:
    """Compute shape features; ``None`` when there is no foreground."""
    pts, w = _weighted_points(grey, binary)
    n = pts.shape[0]
    if n == 0:
        return None

    rows, cols = np.nonzero(binary.mask)
    bbox = (int(rows.min()), int(rows.max()), int(cols.min()), int(cols.max()))
    span = (bbox[1] - bbox[0] + 1, bbox[3] - bbox[2] + 1)

    wsum = w.sum()
    centroid = (pts * w[:, None]).sum(axis=0) / wsum
    if n == 1:
        return ShapeFeatures(
            count=1, centroid=(float(centroid[0]), float(centroid[1])),
            angle_deg=0.0, elongation=1.0, major_extent=0.0, minor_std=0.0,
            bow_ratio=0.0, opening=(0.0, 0.0), bbox=bbox, span_cells=span,
        )

    centred = pts - centroid
    cov = (centred * w[:, None]).T @ centred / wsum
    evals, evecs = np.linalg.eigh(cov)  # ascending
    minor_var, major_var = float(evals[0]), float(evals[1])
    major_axis = evecs[:, 1]
    # Canonical orientation: angle in (-90, 90].
    angle = math.degrees(math.atan2(major_axis[1], major_axis[0]))
    if angle <= -90.0:
        angle += 180.0
    elif angle > 90.0:
        angle -= 180.0
    if angle <= -90.0 or angle > 90.0:  # paranoia after the folds
        angle = math.fmod(angle + 180.0, 180.0)

    elongation = math.sqrt(major_var / minor_var) if minor_var > 1e-12 else float("inf")
    minor_axis = evecs[:, 0]

    # Projections along (s) and across (p) the principal axis.
    s = centred @ major_axis
    p = centred @ minor_axis
    s_range = float(s.max() - s.min())
    major_extent = s_range

    bow_ratio = 0.0
    opening_vec = (0.0, 0.0)
    if n >= 4 and s_range > 1e-9:
        # Weighted quadratic fit p ~ a*s^2 + b*s + c: a cheap bow signature
        # (kept as a diagnostic; the classifier uses the circle fit).
        design = np.stack([s**2, s, np.ones_like(s)], axis=1)
        sw = np.sqrt(w)
        coeffs, *_ = np.linalg.lstsq(design * sw[:, None], p * sw, rcond=None)
        a = float(coeffs[0])
        half = s_range / 2.0
        bulge = a * half**2  # offset of the arc middle relative to the chord
        bow_ratio = abs(bulge) / half if half > 0 else 0.0
        # The arc opens *away* from the bulge: if the middle bows towards
        # +minor_axis, the gap faces -minor_axis.
        direction = -math.copysign(1.0, bulge) if bulge != 0.0 else 0.0
        opening_vec = (float(direction * minor_axis[0]), float(direction * minor_axis[1]))

    circle_radius = float("inf")
    circle_rms = float("inf")
    coverage_deg = 0.0
    centre_offset_ratio = 0.0
    fit = _kasa_circle_fit(pts, w)
    if fit is not None:
        centre, circle_radius, circle_rms = fit
        coverage_deg, gap_vec = _angular_coverage(pts, centre)
        centre_offset_ratio = (
            math.hypot(centre[0] - centroid[0], centre[1] - centroid[1]) / circle_radius
            if circle_radius > 0.0
            else 0.0
        )
        # Prefer the circle fit's opening when the fit is meaningful: the
        # largest angular gap faces the arc's open side.
        if math.isfinite(circle_radius) and circle_radius <= 4.0 * max(s_range, 1.0):
            opening_vec = gap_vec

    return ShapeFeatures(
        count=n,
        centroid=(float(centroid[0]), float(centroid[1])),
        angle_deg=float(angle),
        elongation=float(elongation),
        major_extent=major_extent,
        minor_std=math.sqrt(max(0.0, minor_var)),
        bow_ratio=bow_ratio,
        opening=opening_vec,
        bbox=bbox,
        span_cells=span,
        circle_radius=circle_radius,
        circle_rms=circle_rms,
        coverage_deg=coverage_deg,
        centre_offset_ratio=centre_offset_ratio,
    )


def opening_quadrant(opening: Tuple[float, float]) -> Optional[str]:
    """Snap an opening vector to 'left'/'right'/'up'/'down' (None if ~zero)."""
    x, y = opening
    if abs(x) < 1e-9 and abs(y) < 1e-9:
        return None
    if abs(x) >= abs(y):
        return "right" if x > 0 else "left"
    return "up" if y > 0 else "down"
