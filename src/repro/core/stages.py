"""Composable pipeline stages: the paper's blocks as small objects.

:class:`~repro.core.pipeline.RFIPad` historically inlined every processing
step; this module breaks the pipeline into explicit stage objects so the
same code paths can be driven batch-style (whole log in, result out) and
incrementally (:mod:`repro.stream`).  Each stage is a frozen dataclass:
**configuration lives on the stage, state lives in the arguments** — a
stage owns no mutable state, so one stage set can serve any number of
concurrent sessions.

The stage split mirrors the paper's architecture (DESIGN.md §6):

============  ======================================================
stage         paper anchor
============  ======================================================
suppression   Eq. 8-10 accumulative differences + inverse-bias weights
imaging       grey-map rendering over the tag grid
otsu          OTSU binarisation of the grey map
direction     RSS-trough ordering (section III-B)
classify      image-assisted shape decision
segmentation  Eq. 11-12 RMS-window segmentation (batch + streaming)
grammar       tree-structure letter composition (section III-C.2)
============  ======================================================

Span names emitted by the stages are part of the observability contract
(``scripts/check.sh`` greps ``repro stats`` output for every one of them),
so they are pinned here rather than at the call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, runtime_checkable

from ..obs.trace import get_tracer
from ..physics.geometry import GridLayout
from ..rfid.reports import ReportLog
from .calibration import StaticCalibration
from .classifier import ClassifierConfig, classify_shape
from .direction import (
    DirectionConfig,
    detect_troughs,
    estimate_direction,
    passage_order,
    trough_path,
)
from .events import LetterResult, SegmentedWindow, StrokeObservation
from .grammar import TreeGrammar
from .imaging import render_grey_map
from .otsu import binarize
from .segmentation import SegmentationConfig, StreamSegmenter, segment_strokes
from .suppression import accumulative_differences

__all__ = [
    "ClassifyStage",
    "DirectionStage",
    "GrammarStage",
    "ImagingStage",
    "OtsuStage",
    "SegmentationStage",
    "Stage",
    "StageContext",
    "StageSet",
    "SuppressionStage",
    "WindowAnalyzer",
    "widest_window",
]


@dataclass(frozen=True)
class StageContext:
    """Per-deployment state every stage reads and none may mutate."""

    layout: GridLayout
    calibration: StaticCalibration


@runtime_checkable
class Stage(Protocol):
    """A named pipeline block.

    Stages are frozen config holders whose ``run``-style methods take a
    :class:`StageContext` plus the data they transform; signatures differ
    per stage (a suppression stage maps logs to per-tag scores, a grammar
    stage maps strokes to letters), so the protocol pins only the common
    contract: a stable ``name`` — which doubles as the tracer span name —
    and statelessness (all state arrives via arguments).
    """

    @property
    def name(self) -> str: ...


@dataclass(frozen=True)
class SuppressionStage:
    """Eq. 8-10: accumulative phase differences with inverse-bias weights."""

    bias_weighting: bool = True
    diversity_suppression: bool = True

    @property
    def name(self) -> str:
        return "suppression"

    def run(
        self,
        ctx: StageContext,
        log: ReportLog,
        t0: Optional[float],
        t1: Optional[float],
    ) -> dict:
        """Per-tag disturbance values for the window ``[t0, t1)``."""
        with get_tracer().span(self.name) as sp:
            supp = accumulative_differences(
                log, ctx.calibration, t0, t1, bias_weighting=self.bias_weighting
            )
            sp.set(tags=len(supp.suppressed), reads=sum(supp.read_counts.values()))
        return supp.suppressed if self.diversity_suppression else supp.raw


@dataclass(frozen=True)
class ImagingStage:
    """Render per-tag disturbance values onto the pad grid."""

    @property
    def name(self) -> str:
        return "imaging"

    def run(self, ctx: StageContext, values: dict):
        with get_tracer().span(self.name):
            return render_grey_map(values, ctx.layout)


@dataclass(frozen=True)
class OtsuStage:
    """OTSU binarisation of the grey map."""

    @property
    def name(self) -> str:
        return "otsu"

    def run(self, ctx: StageContext, grey):
        with get_tracer().span(self.name) as sp:
            binary = binarize(grey)
            sp.set(foreground=binary.foreground_count())
        return binary


@dataclass(frozen=True)
class DirectionStage:
    """Section III-B: RSS troughs and the path geometry they trace."""

    config: DirectionConfig = field(default_factory=DirectionConfig)

    @property
    def name(self) -> str:
        return "direction"

    def run(
        self,
        ctx: StageContext,
        log: ReportLog,
        t0: Optional[float],
        t1: Optional[float],
    ):
        """Returns ``(troughs, path)`` for the window.

        Troughs are detected over *all* calibrated tags, not just OTSU
        foreground: with very short strokes OTSU can keep only the single
        deepest cell, and restricting would then drop the real troughs
        that trace the rest of the pass.  The span covers trough detection
        + path ordering — the stage's dominant cost; the final
        FORWARD/REVERSE vote (:meth:`vote`) is a handful of flops on
        <= rows*cols troughs and rides inside the enclosing span.
        """
        with get_tracer().span(self.name) as sp:
            troughs = detect_troughs(log, ctx.calibration, t0, t1, self.config)
            path = trough_path(troughs, ctx.layout, self.config)
            sp.set(troughs=len(troughs))
        return troughs, path

    def vote(self, ctx: StageContext, kind, troughs, opening):
        """The FORWARD/REVERSE decision over already-detected troughs."""
        return estimate_direction(kind, troughs, ctx.layout, opening, self.config)


@dataclass(frozen=True)
class ClassifyStage:
    """Image-assisted shape decision over the binarised map."""

    config: ClassifierConfig = field(default_factory=ClassifierConfig)

    @property
    def name(self) -> str:
        return "classify"

    def run(self, ctx: StageContext, grey, binary, path, window_s: float):
        with get_tracer().span(self.name) as sp:
            decision = classify_shape(
                grey, binary, self.config, path, window_s=window_s
            )
            sp.set(kind=decision.kind.name if decision is not None else None)
        return decision


@dataclass(frozen=True)
class SegmentationStage:
    """Eq. 11-12 stroke segmentation; batch run or incremental stream."""

    config: SegmentationConfig = field(default_factory=SegmentationConfig)

    @property
    def name(self) -> str:
        return "segmentation"

    def run(self, ctx: StageContext, log: ReportLog) -> List[SegmentedWindow]:
        with get_tracer().span(self.name) as sp:
            windows = segment_strokes(log, ctx.calibration, self.config)
            sp.set(windows=len(windows))
        return windows

    def stream(self, ctx: StageContext) -> StreamSegmenter:
        """A fresh incremental segmenter bound to this stage's config.

        The returned object owns the per-session state; the stage itself
        stays stateless, so one stage set can drive many live sessions.
        """
        return StreamSegmenter(ctx.calibration, self.config)


@dataclass(frozen=True)
class GrammarStage:
    """Compose recognised strokes into the best-matching letter."""

    grammar: TreeGrammar = field(default_factory=TreeGrammar)

    @property
    def name(self) -> str:
        return "grammar"

    def run(
        self,
        strokes: Sequence[StrokeObservation],
        windows: Sequence[SegmentedWindow] = (),
    ) -> LetterResult:
        with get_tracer().span(self.name) as sp:
            result = self.grammar.recognize(strokes, windows)
            sp.set(strokes=len(strokes), letter=result.letter)
        return result


@dataclass(frozen=True)
class WindowAnalyzer:
    """suppression → imaging → otsu → direction → classify over one window.

    The per-window composition both entry points share: batch
    (:meth:`RFIPad.analyze_window <repro.core.pipeline.RFIPad>`) and
    streaming (:class:`repro.stream.StreamingSession` runs it as each
    window closes, over its retention buffer — exact, because every stage
    only reads ``[t0, t1)``).
    """

    suppression: SuppressionStage = field(default_factory=SuppressionStage)
    imaging: ImagingStage = field(default_factory=ImagingStage)
    otsu: OtsuStage = field(default_factory=OtsuStage)
    direction: DirectionStage = field(default_factory=DirectionStage)
    classify: ClassifyStage = field(default_factory=ClassifyStage)

    def analyze(
        self,
        ctx: StageContext,
        log: ReportLog,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> Optional[StrokeObservation]:
        """Recognise the stroke drawn within ``[t0, t1)`` of the log.

        Returns ``None`` when the window contains no classifiable
        disturbance (empty OTSU foreground).
        """
        tracer = get_tracer()
        with tracer.span("analyze_window"):
            values = self.suppression.run(ctx, log, t0, t1)
            grey = self.imaging.run(ctx, values)
            binary = self.otsu.run(ctx, grey)
            troughs, path = self.direction.run(ctx, log, t0, t1)
            win_lo = t0 if t0 is not None else (log.start_time if len(log) else 0.0)
            win_hi = t1 if t1 is not None else (log.end_time if len(log) else 0.0)
            decision = self.classify.run(
                ctx, grey, binary, path, window_s=max(0.0, win_hi - win_lo)
            )
            if decision is None:
                return None

            direction, dir_confidence = self.direction.vote(
                ctx, decision.kind, troughs, decision.opening
            )
            return StrokeObservation(
                kind=decision.kind,
                direction=direction,
                token=decision.token,
                t0=win_lo,
                t1=win_hi,
                confidence=min(decision.confidence, 0.5 + 0.5 * dir_confidence),
                opening=decision.opening,
                features=decision.features,
                grey=grey,
                binary=binary,
                trough_order=passage_order(troughs),
                line_angle_deg=decision.line_angle_deg,
            )


@dataclass(frozen=True)
class StageSet:
    """The full pipeline as one immutable bundle of stages."""

    suppression: SuppressionStage = field(default_factory=SuppressionStage)
    imaging: ImagingStage = field(default_factory=ImagingStage)
    otsu: OtsuStage = field(default_factory=OtsuStage)
    direction: DirectionStage = field(default_factory=DirectionStage)
    classify: ClassifyStage = field(default_factory=ClassifyStage)
    segmentation: SegmentationStage = field(default_factory=SegmentationStage)
    grammar: GrammarStage = field(default_factory=GrammarStage)

    @property
    def analyzer(self) -> WindowAnalyzer:
        return WindowAnalyzer(
            suppression=self.suppression,
            imaging=self.imaging,
            otsu=self.otsu,
            direction=self.direction,
            classify=self.classify,
        )

    @classmethod
    def from_config(cls, config, grammar: Optional[TreeGrammar] = None) -> "StageSet":
        """Build the stage set an :class:`RFIPadConfig` describes."""
        return cls(
            suppression=SuppressionStage(
                bias_weighting=config.bias_weighting,
                diversity_suppression=config.diversity_suppression,
            ),
            direction=DirectionStage(config.direction),
            classify=ClassifyStage(config.classifier),
            segmentation=SegmentationStage(config.segmentation),
            grammar=GrammarStage(grammar if grammar is not None else TreeGrammar()),
        )


def widest_window(windows: Sequence[SegmentedWindow]) -> SegmentedWindow:
    """The longest window; ties break deterministically to the earliest t0.

    The explicit tie-break keeps single-motion results identical between
    the batch and streaming paths even when two windows share a duration
    (``max`` alone would pick whichever came first in list order, which is
    stable here, but the intent deserves to be pinned).
    """
    return max(windows, key=lambda w: (w.duration, -w.t0))
