"""Stroke segmentation from continuous phase streams (section III-C.1).

People pause briefly between strokes (the *adjustment interval*), raising
the hand to the next start position.  During a stroke every tag's phase is
in motion; during the interval all tags are comparatively quiet.  The
paper's detector:

* slice the stream into non-overlapping 100 ms *frames*;
* per frame, compute the RMS of the calibrated phase residuals summed over
  tags (Eq. 11) — robust to the MAC's uneven per-tag sampling;
* group ``window_frames`` (default 5 = 0.5 s) consecutive frames into a
  window and mark the window active when ``std(rms) > thre`` (Eq. 12);
* merge overlapping active windows into stroke segments.

``thre`` is "empirically determined" in the paper; we provide
:func:`auto_threshold`, which calibrates it from a static capture so the
detector adapts to the deployment's noise level.

The detector is **causal**: the gate at window ``i`` depends only on
windows ``0..i`` (a running peak of the window stds, clamped between
``noise_floor`` and ``threshold``).  Causality is what lets
:class:`StreamSegmenter` — the incremental, bounded-memory twin of
:func:`segment_strokes` — emit exactly the same windows from any chunking
of the same stream, which the property tests under ``tests/stream/``
enforce bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..rfid.reports import ReportLog
from .calibration import StaticCalibration
from .events import SegmentedWindow
from .unwrap import fold_to_pi_many


@dataclass(frozen=True)
class SegmentationConfig:
    frame_s: float = 0.1           # paper: 100 ms frames
    window_frames: int = 5         # paper: 0.5 s windows
    threshold: float = 0.5         # std(rms) gate; see auto_threshold
    #: Hard lower bound on the effective gate, calibrated from the static
    #: noise level.  The gate adapts *down* towards 0.25x the session's
    #: running peak std(rms) — strong strokes plateau and their windows'
    #: std dips, so a fixed high gate would punch holes mid-stroke — but
    #: never below this floor, so a hand-free log still yields zero
    #: windows.  The peak is a *prefix* (causal) maximum, so a window's
    #: activity never depends on later signal.
    noise_floor: float = 0.05
    min_stroke_s: float = 0.22     # discard blips shorter than this
    merge_gap_s: float = 0.12      # bridge dips inside one stroke
    #: Valley split: a run of >= 2 frames inside a detected segment whose
    #: RMS drops below this fraction of the segment's median RMS is an
    #: adjustment interval the std gate failed to open — split there.
    valley_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.frame_s <= 0.0:
            raise ValueError("frame length must be positive")
        if self.window_frames < 2:
            raise ValueError("a window needs at least 2 frames")
        if self.threshold < 0.0:
            raise ValueError("threshold must be non-negative")


def frame_rms(
    log: ReportLog,
    calibration: StaticCalibration,
    frame_s: float = 0.1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-frame RMS of calibrated phase residuals (Eq. 11).

    Returns ``(frame_start_times, rms_values)``.  Frames with no reads at
    all carry RMS 0 (an idle pad is a quiet pad).
    """
    if len(log) == 0:
        return np.array([]), np.array([])
    t_start, t_end = log.start_time, log.end_time
    n_frames = max(1, int(math.ceil((t_end - t_start) / frame_s)))
    sums = np.zeros(n_frames)  # per-frame sum over tags of sqrt(mean(p^2))

    per_tag = log.per_tag()
    for idx, series in per_tag.items():
        if idx not in calibration.tags:
            continue
        centre = calibration.central_phase(idx)
        residuals = fold_to_pi_many(series.phases - centre)
        frames = np.minimum(
            ((series.timestamps - t_start) / frame_s).astype(int), n_frames - 1
        )
        # Per-frame RMS via bincount: reads arrive in timestamp order, so
        # bincount accumulates each frame's squares in the same order as the
        # masked-mean it replaces (bit-identical for per-frame read counts
        # below numpy's pairwise-summation block size).
        counts = np.bincount(frames, minlength=n_frames)
        squares = np.bincount(frames, weights=residuals * residuals, minlength=n_frames)
        hit = counts > 0
        sums[hit] += np.sqrt(squares[hit] / counts[hit])

    times = t_start + frame_s * np.arange(n_frames)
    return times, sums


def window_std(rms: np.ndarray, window_frames: int) -> np.ndarray:
    """Sliding std of the frame RMS (stride 1 frame), length = len(rms).

    Window ``i`` covers frames ``[i, i + window_frames)``; trailing windows
    shrink at the stream end rather than disappearing, so late strokes are
    still detectable.
    """
    n = rms.size
    out = np.zeros(n)
    full = n - window_frames + 1
    if full > 0:
        windows = np.lib.stride_tricks.sliding_window_view(rms, window_frames)
        out[:full] = windows.std(axis=1)
    for i in range(max(0, full), n):
        chunk = rms[i : i + window_frames]
        out[i] = float(chunk.std()) if chunk.size >= 2 else 0.0
    return out


def causal_gates(stds: np.ndarray, config: SegmentationConfig) -> np.ndarray:
    """Per-window activity gate from the *prefix* peak of the window stds.

    ``gate[i] = clamp(0.25 * max(stds[:i+1]), noise_floor, threshold)`` —
    the same adaptive-down behaviour as a global-peak gate once the stroke's
    peak has been seen, but computable online (the running max is exact in
    floating point, so the batch and streaming paths agree bitwise).
    """
    if stds.size == 0:
        return stds.astype(float)
    peaks = np.maximum.accumulate(stds)
    return np.maximum(config.noise_floor, np.minimum(config.threshold, 0.25 * peaks))


def segment_strokes(
    log: ReportLog,
    calibration: StaticCalibration,
    config: SegmentationConfig = SegmentationConfig(),
) -> List[SegmentedWindow]:
    """Detect stroke windows in a session log (Eq. 11-12 + merging)."""
    times, rms = frame_rms(log, calibration, config.frame_s)
    if rms.size == 0:
        return []
    stds = window_std(rms, config.window_frames)
    active = stds > causal_gates(stds, config)

    # An active window marks its *centre* frame.  Marking the whole span
    # would let windows that straddle a stroke edge paint the neighbouring
    # adjustment interval as active and bridge consecutive strokes — the
    # centre frame keeps the temporal resolution of the stride-1 sweep.
    frame_active = np.zeros(rms.size, dtype=bool)
    half = config.window_frames // 2
    for i in range(rms.size):
        if active[i]:
            frame_active[min(rms.size - 1, i + half)] = True

    segments: List[SegmentedWindow] = []
    i = 0
    while i < rms.size:
        if not frame_active[i]:
            i += 1
            continue
        j = i
        while j < rms.size and frame_active[j]:
            j += 1
        t0 = float(times[i])
        t1 = float(times[j - 1] + config.frame_s)
        peak = float(stds[i:j].max()) if j > i else 0.0
        segments.append(SegmentedWindow(t0, t1, peak))
        i = j

    segments = _merge_close(segments, config.merge_gap_s)
    segments = _split_valleys(segments, times, rms, stds, config)
    return [s for s in segments if s.duration >= config.min_stroke_s]


def valley_pieces(chunk: np.ndarray, config: SegmentationConfig) -> List[Tuple[int, int]]:
    """Sub-ranges of a segment's RMS chunk after valley splitting.

    Returns ``[(a, b), ...]`` index ranges into ``chunk``; a single piece
    spanning the whole chunk means "no split".  Shared by the batch
    :func:`segment_strokes` and the incremental :class:`StreamSegmenter` so
    the two paths cannot drift.
    """
    if chunk.size < 6:
        return [(0, int(chunk.size))]
    # Two-term gate: the median alone underestimates the stroke level
    # when a long adjustment period is fused into the segment (it drags
    # the median down), so the 75th percentile — dominated by genuine
    # stroke frames — provides the backstop.
    gate = max(
        config.valley_fraction * float(np.median(chunk)),
        0.3 * float(np.percentile(chunk, 75.0)),
    )
    quiet = chunk < gate
    # Find sustained quiet runs strictly inside the segment.
    pieces: List[Tuple[int, int]] = []
    start = 0
    i = 1
    while i < chunk.size:
        if quiet[i] and i + 1 < chunk.size and quiet[i + 1]:
            j = i
            while j < chunk.size and quiet[j]:
                j += 1
            if i > start:
                pieces.append((start, i))
            start = j
            i = j + 1
        else:
            i += 1
    pieces.append((start, int(chunk.size)))
    return pieces


def _split_valleys(
    segments: List[SegmentedWindow],
    times: np.ndarray,
    rms: np.ndarray,
    stds: np.ndarray,
    config: SegmentationConfig,
) -> List[SegmentedWindow]:
    """Split merged segments at sustained RMS valleys.

    std(rms) stays elevated while the hand climbs into / descends out of an
    adjustment interval, so two strokes separated by a short pause can fuse
    into one segment.  The RMS *level*, however, dips while the hand is up;
    a sustained dip well below the segment's median is such a pause.
    """
    out: List[SegmentedWindow] = []
    for seg in segments:
        lo = int(np.searchsorted(times, seg.t0 - 1e-9))
        hi = int(np.searchsorted(times, seg.t1 - 1e-9))
        pieces = valley_pieces(rms[lo:hi], config)
        if len(pieces) == 1:
            out.append(seg)
            continue
        for a, b in pieces:
            if b <= a:
                continue
            t0 = float(times[lo + a])
            t1 = float(times[lo + b - 1] + config.frame_s)
            peak = float(stds[lo + a : lo + b].max()) if b > a else seg.peak_std_rms
            out.append(SegmentedWindow(t0, t1, peak))
    return out


def stitch_windows(
    tile_windows: "List[List[SegmentedWindow]]",
    gap: float = SegmentationConfig().merge_gap_s,
) -> List[SegmentedWindow]:
    """Merge per-tile stroke windows into workspace-level windows.

    When a trajectory crosses a tile boundary each tile sees only its
    half of the stroke, so the per-tile segmenters emit overlapping (or
    nearly adjacent) windows.  Stitching is the same closure rule
    :func:`_merge_close` applies within one pad — windows whose gap is
    ``<= gap`` coalesce, keeping the max peak — generalized to inputs
    from several tiles, whose windows may overlap or nest arbitrarily
    rather than arriving disjoint and sorted.  One tile's windows pass
    through unchanged, so the 1x1 workspace stitches to exactly its own
    segmentation.
    """
    windows = sorted(
        (w for tile in tile_windows for w in tile),
        key=lambda w: (w.t0, w.t1),
    )
    out: List[SegmentedWindow] = []
    for w in windows:
        if out and w.t0 - out[-1].t1 <= gap:
            last = out[-1]
            out[-1] = SegmentedWindow(
                last.t0,
                max(last.t1, w.t1),
                max(last.peak_std_rms, w.peak_std_rms),
            )
        else:
            out.append(w)
    return out


def _merge_close(segments: List[SegmentedWindow], gap: float) -> List[SegmentedWindow]:
    if not segments:
        return []
    merged = [segments[0]]
    for seg in segments[1:]:
        last = merged[-1]
        if seg.t0 - last.t1 <= gap:
            merged[-1] = SegmentedWindow(last.t0, seg.t1, max(last.peak_std_rms, seg.peak_std_rms))
        else:
            merged.append(seg)
    return merged


def auto_threshold(
    static_log: ReportLog,
    calibration: StaticCalibration,
    config: SegmentationConfig = SegmentationConfig(),
    factor: float = 14.0,
    floor: float = 0.08,
    cap: float = 1.4,
) -> float:
    """Calibrate ``thre`` from a no-hand capture.

    The static std(rms) distribution sets the noise scale; scaling its high
    percentile by ``factor`` puts the gate above both idle flutter *and*
    the residual activity of the raised hand during adjustment intervals
    (the hand at ~20 cm still stirs the pad slightly), while staying well
    below stroke activity — stroke windows raise std(rms) by another order
    of magnitude (cf. Fig. 9).
    """
    times, rms = frame_rms(static_log, calibration, config.frame_s)
    if rms.size < config.window_frames:
        raise ValueError("static capture too short to calibrate the threshold")
    stds = window_std(rms, config.window_frames)
    reference = float(np.percentile(stds, 90.0))
    # The cap matters in multipath-rich deployments: scaling a high static
    # noise floor by `factor` would push the gate into genuine stroke
    # territory and truncate windows; stroke std(rms) starts well above 1.
    return min(cap, max(floor, factor * reference))


# ----------------------------------------------------------------------
# Incremental segmentation
# ----------------------------------------------------------------------


@dataclass
class _Pending:
    """A closed segment still eligible to merge with a successor."""

    lo: int                         # first frame index (inclusive)
    hi: int                         # one past the last frame index
    runs: List[Tuple[int, int]]     # constituent raw runs (for the peak)


class StreamSegmenter:
    """Incremental, bounded-memory twin of :func:`segment_strokes`.

    Feed time-ordered read columns with :meth:`ingest`; closed stroke
    windows come back as soon as they are decided.  Call :meth:`finalize`
    once the stream ends to flush the tail.  For any chunking of a log —
    including one read at a time — the concatenation of all returned
    windows is **bit-identical** to ``segment_strokes`` on the whole log
    (same ``t0``/``t1``/``peak_std_rms`` floats, same order); the property
    tests under ``tests/stream/`` enforce this.

    How the equivalence is kept exact:

    * frames accumulate per-(frame, tag) squared residuals read-by-read —
      the same sequential order ``np.bincount`` uses — and a frame's RMS
      sums its tags in global first-appearance order, matching
      ``ReportLog.per_tag``;
    * a frame closes only when no future read can land in it; the batch
      path's end-of-log clamp (a read exactly on the final frame boundary
      folds into the last frame) is replayed at :meth:`finalize`;
    * the activity gate is the causal prefix-peak of :func:`causal_gates`,
      so a window's verdict never depends on later signal;
    * merge/valley-split/min-duration post-processing is deferred until no
      future frame can change it (the merge gap and the window lookahead
      bound the wait to a few frames).

    Memory is bounded by the *retention horizon*: everything before
    ``retention_frame()`` — frames, stds, and (for the owning session) raw
    reads — can be discarded.  The horizon trails the newest read by the
    window lookahead plus the currently-open segment, so it is O(longest
    stroke), not O(session).
    """

    def __init__(
        self,
        calibration: StaticCalibration,
        config: SegmentationConfig = SegmentationConfig(),
    ) -> None:
        self.calibration = calibration
        self.config = config
        # -- frame accumulation state --
        self._t_start: Optional[float] = None
        self._t_max: Optional[float] = None
        # open frames: raw frame index -> {tag: [squared residuals, read order]}
        self._open: Dict[int, Dict[int, List[float]]] = {}
        self._appearance: Dict[int, int] = {}   # tag -> global first-seen rank
        self._closed_frames = 0                 # frames 0.._closed_frames-1 have RMS
        # -- rms / std rings (absolute frame index = ring index + _base) --
        self._base = 0
        self._rms: List[float] = []
        self._stds: List[float] = []
        self._next_window = 0                   # next window index to compute
        self._peak = 0.0                        # running max of window stds
        self._active: List[bool] = []           # per-window verdicts (ring-aligned)
        # -- decided-frame run state --
        self._decided = 0                       # frames 0.._decided-1 have verdicts
        self._run: Optional[Tuple[int, int]] = None   # open active run [lo, hi)
        self._pending: Optional[_Pending] = None
        self._flush_queue: List[_Pending] = []  # promoted segments awaiting emission
        self._finalized = False

    # -- geometry ------------------------------------------------------

    def frame_time(self, index: int) -> float:
        """Start time of frame ``index`` (bit-identical to the batch grid)."""
        if self._t_start is None:
            raise ValueError("no reads ingested yet")
        return self._t_start + self.config.frame_s * float(index)

    def retention_frame(self) -> int:
        """First frame index still needed by any future decision.

        Reads, RMS values, and stds for frames before this index can never
        influence a future window, so callers may drop them.
        """
        candidates = [self._decided, self._next_window]
        if self._run is not None:
            candidates.append(self._run[0])
        if self._pending is not None:
            candidates.append(self._pending.lo)
        return min(candidates)

    def retention_time(self) -> Optional[float]:
        """Timestamp horizon corresponding to :meth:`retention_frame`."""
        if self._t_start is None:
            return None
        return self.frame_time(self.retention_frame())

    # -- provisional view ----------------------------------------------

    def _partial_frame_rms(self, index: int) -> Optional[float]:
        """Non-destructive RMS peek of a still-open frame (or ``None``).

        Sums tags in the same first-appearance order :meth:`_close_frame`
        will use, but leaves the accumulation buckets untouched so the
        eventual close stays bit-identical.
        """
        frame = self._open.get(index)
        if not frame:
            return None
        value = 0.0
        for tag in sorted(frame, key=self._appearance.__getitem__):
            squares = frame[tag]
            total = 0.0
            for sq in squares:
                total += sq
            value += math.sqrt(total / len(squares))
        return value

    def provisional_segment(self) -> Optional[Tuple[float, float, float]]:
        """Best current guess of the segment still forming: ``(t0, t1, peak)``.

        Purely advisory — reading it never mutates segmenter state, so the
        finalized window stream stays bit-identical to the batch path.  The
        guess covers:

        * the pending closed segment (still eligible to merge forward),
          folded with the open active run when the gap between them is
          within ``merge_gap_s`` (mirroring :meth:`_close_run`);
        * closed-but-undecided frames past the run head, included while
          their RMS stays above a valley-style gate (the hand is plainly
          still moving even though the window verdicts lag by the
          ``window_frames`` lookahead);
        * the newest still-open frame, via a non-destructive partial RMS.

        Returns ``None`` when nothing is active.
        """
        if self._t_start is None or self._finalized:
            return None
        lo = hi = None
        if self._pending is not None:
            lo, hi = self._pending.lo, self._pending.hi
        if self._run is not None:
            r_lo, r_hi = self._run
            if lo is None:
                lo, hi = r_lo, r_hi
            elif self.frame_time(r_lo) - self._pending_t1() <= self.config.merge_gap_s:
                hi = r_hi
            else:
                lo, hi = r_lo, r_hi
        if lo is None:
            return None
        if self._run is not None:
            chunk = self._rms[lo - self._base : self._closed_frames - self._base]
            arr = np.array(chunk) if chunk else np.array([])
            if arr.size >= 4:
                gate = max(
                    self.config.valley_fraction * float(np.median(arr)),
                    0.3 * float(np.percentile(arr, 75.0)),
                )
            else:
                gate = 1e-12
            j = hi
            while j < self._closed_frames and self._rms[j - self._base] >= gate:
                j += 1
            hi = j
            if j == self._closed_frames:
                partial = self._partial_frame_rms(self._closed_frames)
                if partial is not None and partial >= gate:
                    hi = self._closed_frames + 1
        peak = 0.0
        s_lo = lo - self._base
        s_hi = min(hi, self._next_window) - self._base
        if s_hi > s_lo:
            peak = float(np.array(self._stds[s_lo:s_hi]).max())
        return (
            float(self.frame_time(lo)),
            float(self.frame_time(hi - 1) + self.config.frame_s),
            peak,
        )

    # -- ingestion -----------------------------------------------------

    def ingest(
        self,
        timestamps: np.ndarray,
        tag_indices: np.ndarray,
        phases: np.ndarray,
    ) -> List[SegmentedWindow]:
        """Feed one time-ordered chunk of reads; returns windows that closed.

        Chunks must arrive in time order (the reader's report stream is
        ordered); out-of-order streams should go through the batch path,
        which sorts.
        """
        if self._finalized:
            raise RuntimeError("segmenter already finalized")
        ts = np.asarray(timestamps, dtype=float)
        if ts.size == 0:
            return []
        if self._t_max is not None and float(ts[0]) < self._t_max:
            raise ValueError("stream chunks must be time-ordered")
        if self._t_start is None:
            self._t_start = float(ts[0])
        self._t_max = float(ts[-1])

        self._accumulate(ts, np.asarray(tag_indices), np.asarray(phases, dtype=float))
        self._close_completable_frames()
        self._advance_windows(upto=self._closed_frames - self.config.window_frames)
        return self._drain(final=False)

    def finalize(self) -> List[SegmentedWindow]:
        """Flush the stream tail; returns the remaining windows."""
        if self._finalized:
            return []
        self._finalized = True
        if self._t_start is None:
            return []
        frame_s = self.config.frame_s
        n_frames = max(1, int(math.ceil((self._t_max - self._t_start) / frame_s)))
        # End-of-log clamp: reads exactly on the final frame boundary fold
        # into the last frame (they are the latest reads, so appending
        # keeps the per-(frame, tag) accumulation order sequential).
        overflow = self._open.pop(n_frames, None)
        if overflow is not None:
            target = self._open.setdefault(n_frames - 1, {})
            for tag, squares in overflow.items():
                target.setdefault(tag, []).extend(squares)
        while self._closed_frames < n_frames:
            self._close_frame(self._closed_frames)
        self._open.clear()
        self._advance_windows(upto=n_frames - 1, total_frames=n_frames)
        return self._drain(final=True)

    # -- internals: frames ---------------------------------------------

    def _accumulate(self, ts: np.ndarray, tags: np.ndarray, phases: np.ndarray) -> None:
        frame_s = self.config.frame_s
        raw = ((ts - self._t_start) / frame_s).astype(int)
        order = np.unique(tags, return_index=True)
        for k in np.argsort(order[1], kind="stable"):
            tag = int(order[0][k])
            if tag not in self._appearance:
                self._appearance[tag] = len(self._appearance)
        cal_tags = self.calibration.tags
        for tag in order[0].tolist():
            tag = int(tag)
            if tag not in cal_tags:
                continue
            mask = tags == tag
            centre = self.calibration.central_phase(tag)
            residuals = fold_to_pi_many(phases[mask] - centre)
            squares = residuals * residuals
            for f, sq in zip(raw[mask].tolist(), squares.tolist()):
                frame = self._open.get(f)
                if frame is None:
                    frame = self._open[f] = {}
                bucket = frame.get(tag)
                if bucket is None:
                    bucket = frame[tag] = []
                bucket.append(sq)

    def _close_completable_frames(self) -> None:
        # Frame j can still change while a future read may land in it
        # (j >= current raw frame) or while the end-of-log clamp may fold
        # boundary reads down into it (only when the newest read sits
        # exactly on a frame boundary).
        q = (self._t_max - self._t_start) / self.config.frame_s
        k_max = int(q)
        completable = k_max - 1 if q == float(k_max) else k_max
        while self._closed_frames < completable:
            self._close_frame(self._closed_frames)

    def _close_frame(self, index: int) -> None:
        frame = self._open.pop(index, None)
        value = 0.0
        if frame:
            for tag in sorted(frame, key=self._appearance.__getitem__):
                squares = frame[tag]
                total = 0.0
                for sq in squares:
                    total += sq
                value += math.sqrt(total / len(squares))
        self._rms.append(value)
        self._closed_frames = index + 1

    # -- internals: windows and verdicts -------------------------------

    def _advance_windows(self, upto: int, total_frames: Optional[int] = None) -> None:
        """Compute window stds/verdicts for indices ``_next_window..upto``.

        During streaming ``upto = closed - W`` (full windows only); at
        finalize ``upto = n - 1`` with ``total_frames = n`` so the
        shrinking tail windows are included.
        """
        w = self.config.window_frames
        while self._next_window <= upto:
            i = self._next_window
            values = np.array(self._rms[i - self._base : i - self._base + w])
            if values.size >= 2:
                std = float(values.std())
            else:
                std = 0.0
            self._stds.append(std)
            if std > self._peak:
                self._peak = std
            gate = max(
                self.config.noise_floor, min(self.config.threshold, 0.25 * self._peak)
            )
            self._active.append(std > gate)
            self._next_window += 1
        self._decide_frames(total_frames)

    def _decide_frames(self, total_frames: Optional[int]) -> None:
        """Turn window verdicts into per-frame activity, oldest first.

        A window marks its centre frame; only the final frame additionally
        collects the clamped marks of the trailing windows, and no frame
        decided mid-stream can be the final frame (the newest frame is
        always still open), so mid-stream verdicts are never retracted.
        """
        half = self.config.window_frames // 2
        if total_frames is None:
            frontier = self._next_window - 1 + half if self._next_window > 0 else -1
            frontier = min(frontier, self._closed_frames - 1)
        else:
            frontier = total_frames - 1
        while self._decided <= frontier:
            d = self._decided
            if total_frames is not None and d == total_frames - 1:
                lo = max(0, d - half)
                marked = any(
                    self._active[i - self._base] for i in range(lo, total_frames)
                )
            else:
                i = d - half
                marked = i >= 0 and self._active[i - self._base]
            self._step_run(d, marked)
            self._decided += 1
        if total_frames is not None and self._run is not None:
            self._close_run()

    def _step_run(self, frame: int, marked: bool) -> None:
        if marked:
            if self._run is None:
                self._run = (frame, frame + 1)
            else:
                self._run = (self._run[0], frame + 1)
        elif self._run is not None:
            self._close_run()

    def _close_run(self) -> None:
        lo, hi = self._run
        self._run = None
        if self._pending is not None:
            gap = self.frame_time(lo) - self._pending_t1()
            if gap <= self.config.merge_gap_s:
                self._pending.hi = hi
                self._pending.runs.append((lo, hi))
                return
            self._flush_queue.append(self._pending)
        self._pending = _Pending(lo=lo, hi=hi, runs=[(lo, hi)])

    def _pending_t1(self) -> float:
        return self.frame_time(self._pending.hi - 1) + self.config.frame_s

    # -- internals: emission -------------------------------------------

    def _drain(self, final: bool) -> List[SegmentedWindow]:
        # Promote the pending segment once nothing can merge into it: the
        # earliest future segment starts at the first undecided frame.
        if self._pending is not None and self._run is None:
            if final:
                self._flush_queue.append(self._pending)
                self._pending = None
            else:
                next_t0 = self.frame_time(self._decided)
                if next_t0 - self._pending_t1() > self.config.merge_gap_s:
                    self._flush_queue.append(self._pending)
                    self._pending = None
        out: List[SegmentedWindow] = []
        queue = self._flush_queue
        while queue:
            seg = queue[0]
            # The segment peak needs stds up to hi-1; with default configs
            # they exist by flush time, but guard and wait a frame if not.
            if not final and seg.hi - 1 >= self._next_window:
                break
            queue.pop(0)
            out.extend(self._emit(seg))
        self._compact()
        return out

    def _emit(self, seg: _Pending) -> List[SegmentedWindow]:
        frame_s = self.config.frame_s
        lo, hi = seg.lo, seg.hi
        chunk = np.array(self._rms[lo - self._base : hi - self._base])
        pieces = valley_pieces(chunk, self.config)
        windows: List[SegmentedWindow] = []
        if len(pieces) == 1:
            peak = max(
                float(np.array(self._stds[a - self._base : b - self._base]).max())
                for a, b in seg.runs
            )
            windows.append(
                SegmentedWindow(float(self.frame_time(lo)),
                                float(self.frame_time(hi - 1) + frame_s), peak)
            )
        else:
            for a, b in pieces:
                if b <= a:
                    continue
                t0 = float(self.frame_time(lo + a))
                t1 = float(self.frame_time(lo + b - 1) + frame_s)
                peak = float(
                    np.array(self._stds[lo + a - self._base : lo + b - self._base]).max()
                )
                windows.append(SegmentedWindow(t0, t1, peak))
        return [w for w in windows if w.duration >= self.config.min_stroke_s]

    def _compact(self) -> None:
        """Release ring prefixes that no future decision can touch."""
        keep = self.retention_frame()
        dead = keep - self._base
        if dead > 64:
            del self._rms[:dead]
            del self._stds[:dead]
            del self._active[:dead]
            self._base = keep
