"""Stroke segmentation from continuous phase streams (section III-C.1).

People pause briefly between strokes (the *adjustment interval*), raising
the hand to the next start position.  During a stroke every tag's phase is
in motion; during the interval all tags are comparatively quiet.  The
paper's detector:

* slice the stream into non-overlapping 100 ms *frames*;
* per frame, compute the RMS of the calibrated phase residuals summed over
  tags (Eq. 11) — robust to the MAC's uneven per-tag sampling;
* group ``window_frames`` (default 5 = 0.5 s) consecutive frames into a
  window and mark the window active when ``std(rms) > thre`` (Eq. 12);
* merge overlapping active windows into stroke segments.

``thre`` is "empirically determined" in the paper; we provide
:func:`auto_threshold`, which calibrates it from a static capture so the
detector adapts to the deployment's noise level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..rfid.reports import ReportLog
from .calibration import StaticCalibration
from .events import SegmentedWindow
from .otsu import otsu_threshold
from .unwrap import fold_to_pi_many


@dataclass(frozen=True)
class SegmentationConfig:
    frame_s: float = 0.1           # paper: 100 ms frames
    window_frames: int = 5         # paper: 0.5 s windows
    threshold: float = 0.5         # std(rms) gate; see auto_threshold
    #: Hard lower bound on the effective gate, calibrated from the static
    #: noise level.  The gate adapts *down* towards 0.25x the session's
    #: peak std(rms) — strong strokes plateau and their windows' std dips,
    #: so a fixed high gate would punch holes mid-stroke — but never below
    #: this floor, so a hand-free log still yields zero windows.
    noise_floor: float = 0.05
    min_stroke_s: float = 0.22     # discard blips shorter than this
    merge_gap_s: float = 0.12      # bridge dips inside one stroke
    #: Valley split: a run of >= 2 frames inside a detected segment whose
    #: RMS drops below this fraction of the segment's median RMS is an
    #: adjustment interval the std gate failed to open — split there.
    valley_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.frame_s <= 0.0:
            raise ValueError("frame length must be positive")
        if self.window_frames < 2:
            raise ValueError("a window needs at least 2 frames")
        if self.threshold < 0.0:
            raise ValueError("threshold must be non-negative")


def frame_rms(
    log: ReportLog,
    calibration: StaticCalibration,
    frame_s: float = 0.1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-frame RMS of calibrated phase residuals (Eq. 11).

    Returns ``(frame_start_times, rms_values)``.  Frames with no reads at
    all carry RMS 0 (an idle pad is a quiet pad).
    """
    if len(log) == 0:
        return np.array([]), np.array([])
    t_start, t_end = log.start_time, log.end_time
    n_frames = max(1, int(math.ceil((t_end - t_start) / frame_s)))
    sums = np.zeros(n_frames)  # per-frame sum over tags of sqrt(mean(p^2))

    per_tag = log.per_tag()
    for idx, series in per_tag.items():
        if idx not in calibration.tags:
            continue
        centre = calibration.central_phase(idx)
        residuals = fold_to_pi_many(series.phases - centre)
        frames = np.minimum(
            ((series.timestamps - t_start) / frame_s).astype(int), n_frames - 1
        )
        # Per-frame RMS via bincount: reads arrive in timestamp order, so
        # bincount accumulates each frame's squares in the same order as the
        # masked-mean it replaces (bit-identical for per-frame read counts
        # below numpy's pairwise-summation block size).
        counts = np.bincount(frames, minlength=n_frames)
        squares = np.bincount(frames, weights=residuals * residuals, minlength=n_frames)
        hit = counts > 0
        sums[hit] += np.sqrt(squares[hit] / counts[hit])

    times = t_start + frame_s * np.arange(n_frames)
    return times, sums


def window_std(rms: np.ndarray, window_frames: int) -> np.ndarray:
    """Sliding std of the frame RMS (stride 1 frame), length = len(rms).

    Window ``i`` covers frames ``[i, i + window_frames)``; trailing windows
    shrink at the stream end rather than disappearing, so late strokes are
    still detectable.
    """
    n = rms.size
    out = np.zeros(n)
    full = n - window_frames + 1
    if full > 0:
        windows = np.lib.stride_tricks.sliding_window_view(rms, window_frames)
        out[:full] = windows.std(axis=1)
    for i in range(max(0, full), n):
        chunk = rms[i : i + window_frames]
        out[i] = float(chunk.std()) if chunk.size >= 2 else 0.0
    return out


def segment_strokes(
    log: ReportLog,
    calibration: StaticCalibration,
    config: SegmentationConfig = SegmentationConfig(),
) -> List[SegmentedWindow]:
    """Detect stroke windows in a session log (Eq. 11-12 + merging)."""
    times, rms = frame_rms(log, calibration, config.frame_s)
    if rms.size == 0:
        return []
    stds = window_std(rms, config.window_frames)
    peak = float(np.percentile(stds, 98.0)) if stds.size else 0.0
    gate = max(config.noise_floor, min(config.threshold, 0.25 * peak))
    active = stds > gate

    # An active window marks its *centre* frame.  Marking the whole span
    # would let windows that straddle a stroke edge paint the neighbouring
    # adjustment interval as active and bridge consecutive strokes — the
    # centre frame keeps the temporal resolution of the stride-1 sweep.
    frame_active = np.zeros(rms.size, dtype=bool)
    half = config.window_frames // 2
    for i in range(rms.size):
        if active[i]:
            frame_active[min(rms.size - 1, i + half)] = True

    segments: List[SegmentedWindow] = []
    i = 0
    while i < rms.size:
        if not frame_active[i]:
            i += 1
            continue
        j = i
        while j < rms.size and frame_active[j]:
            j += 1
        t0 = float(times[i])
        t1 = float(times[j - 1] + config.frame_s)
        peak = float(stds[i:j].max()) if j > i else 0.0
        segments.append(SegmentedWindow(t0, t1, peak))
        i = j

    segments = _merge_close(segments, config.merge_gap_s)
    segments = _split_valleys(segments, times, rms, stds, config)
    return [s for s in segments if s.duration >= config.min_stroke_s]


def _split_valleys(
    segments: List[SegmentedWindow],
    times: np.ndarray,
    rms: np.ndarray,
    stds: np.ndarray,
    config: SegmentationConfig,
) -> List[SegmentedWindow]:
    """Split merged segments at sustained RMS valleys.

    std(rms) stays elevated while the hand climbs into / descends out of an
    adjustment interval, so two strokes separated by a short pause can fuse
    into one segment.  The RMS *level*, however, dips while the hand is up;
    a sustained dip well below the segment's median is such a pause.
    """
    out: List[SegmentedWindow] = []
    for seg in segments:
        lo = int(np.searchsorted(times, seg.t0 - 1e-9))
        hi = int(np.searchsorted(times, seg.t1 - 1e-9))
        chunk = rms[lo:hi]
        if chunk.size < 6:
            out.append(seg)
            continue
        # Two-term gate: the median alone underestimates the stroke level
        # when a long adjustment period is fused into the segment (it drags
        # the median down), so the 75th percentile — dominated by genuine
        # stroke frames — provides the backstop.
        gate = max(
            config.valley_fraction * float(np.median(chunk)),
            0.3 * float(np.percentile(chunk, 75.0)),
        )
        quiet = chunk < gate
        # Find sustained quiet runs strictly inside the segment.
        pieces: List[Tuple[int, int]] = []
        start = 0
        i = 1
        while i < chunk.size:
            if quiet[i] and i + 1 < chunk.size and quiet[i + 1]:
                j = i
                while j < chunk.size and quiet[j]:
                    j += 1
                if i > start:
                    pieces.append((start, i))
                start = j
                i = j + 1
            else:
                i += 1
        pieces.append((start, chunk.size))
        if len(pieces) == 1:
            out.append(seg)
            continue
        for a, b in pieces:
            if b <= a:
                continue
            t0 = float(times[lo + a])
            t1 = float(times[lo + b - 1] + config.frame_s)
            peak = float(stds[lo + a : lo + b].max()) if b > a else seg.peak_std_rms
            out.append(SegmentedWindow(t0, t1, peak))
    return out


def _merge_close(segments: List[SegmentedWindow], gap: float) -> List[SegmentedWindow]:
    if not segments:
        return []
    merged = [segments[0]]
    for seg in segments[1:]:
        last = merged[-1]
        if seg.t0 - last.t1 <= gap:
            merged[-1] = SegmentedWindow(last.t0, seg.t1, max(last.peak_std_rms, seg.peak_std_rms))
        else:
            merged.append(seg)
    return merged


def auto_threshold(
    static_log: ReportLog,
    calibration: StaticCalibration,
    config: SegmentationConfig = SegmentationConfig(),
    factor: float = 14.0,
    floor: float = 0.08,
    cap: float = 1.4,
) -> float:
    """Calibrate ``thre`` from a no-hand capture.

    The static std(rms) distribution sets the noise scale; scaling its high
    percentile by ``factor`` puts the gate above both idle flutter *and*
    the residual activity of the raised hand during adjustment intervals
    (the hand at ~20 cm still stirs the pad slightly), while staying well
    below stroke activity — stroke windows raise std(rms) by another order
    of magnitude (cf. Fig. 9).
    """
    times, rms = frame_rms(static_log, calibration, config.frame_s)
    if rms.size < config.window_frames:
        raise ValueError("static capture too short to calibrate the threshold")
    stds = window_std(rms, config.window_frames)
    reference = float(np.percentile(stds, 90.0))
    # The cap matters in multipath-rich deployments: scaling a high static
    # noise floor by `factor` would push the gate into genuine stroke
    # territory and truncate windows; stroke std(rms) starts well above 1.
    return min(cap, max(floor, factor * reference))
