"""OTSU's clustering-based threshold (Otsu 1979), from scratch.

The paper binarises the grey map with OTSU's algorithm: pick the threshold
that maximises the between-class variance of foreground vs background.
Our implementation works directly on float values with a configurable
histogram resolution — at 25 pixels a 256-bin histogram is overkill but
harmless, and the same routine is reused on higher-resolution maps in the
extension experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..physics.geometry import GridLayout
from .imaging import BinaryMap, GreyMap


def otsu_threshold(values: Sequence[float], bins: int = 64) -> float:
    """Return the OTSU threshold of a value set.

    The threshold is the *upper edge* of the chosen background bin, so
    ``value > threshold`` selects the foreground class.  Degenerate inputs
    (constant values) return that constant — the caller sees an empty
    foreground, which is the honest answer for a featureless image.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot threshold an empty value set")
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return hi
    if bins < 2:
        raise ValueError(f"need at least 2 bins, got {bins}")
    # Guard against a denormal value range: if the span cannot be divided
    # into `bins` representable intervals the image is flat in practice.
    if (hi - lo) / bins == 0.0:
        return hi

    hist, edges = np.histogram(arr, bins=bins, range=(lo, hi))
    total = arr.size
    probs = hist / total
    centres = (edges[:-1] + edges[1:]) / 2.0

    best_between = -1.0
    best_threshold = (lo + hi) / 2.0
    w0 = 0.0
    sum0 = 0.0
    total_mean = float((probs * centres).sum())
    for k in range(bins - 1):
        w0 += probs[k]
        sum0 += probs[k] * centres[k]
        w1 = 1.0 - w0
        if w0 <= 0.0 or w1 <= 0.0:
            continue
        mu0 = sum0 / w0
        mu1 = (total_mean - sum0) / w1
        between = w0 * w1 * (mu0 - mu1) ** 2
        if between > best_between:
            best_between = between
            best_threshold = edges[k + 1]
    return float(best_threshold)


def binarize(grey: GreyMap, bins: int = 64) -> BinaryMap:
    """Apply OTSU to a grey map and return the foreground mask."""
    threshold = otsu_threshold(grey.values.ravel(), bins=bins)
    mask = grey.values > threshold
    return BinaryMap(mask=mask, threshold=threshold, layout=grey.layout)


def binarize_fixed(grey: GreyMap, threshold: float) -> BinaryMap:
    """Fixed-threshold binarisation (the OTSU-ablation baseline)."""
    mask = grey.values > threshold
    return BinaryMap(mask=mask, threshold=threshold, layout=grey.layout)


def between_class_variance(values: Sequence[float], threshold: float) -> float:
    """Between-class variance at a given split (exposed for property tests)."""
    arr = np.asarray(values, dtype=float).ravel()
    fg = arr[arr > threshold]
    bg = arr[arr <= threshold]
    if fg.size == 0 or bg.size == 0:
        return 0.0
    w0 = bg.size / arr.size
    w1 = fg.size / arr.size
    return float(w0 * w1 * (bg.mean() - fg.mean()) ** 2)
