"""Static calibration: per-tag central phase and Deviation bias.

Before recognition, RFIPad captures the array with no hand present and
estimates, per tag:

* the *central phase* ``theta_tilde_i`` (Eq. 6) — the circular mean of the
  static reports, which carries the tag-diversity offset ``theta_tag`` plus
  the static channel; subtracting it wipes both (Eq. 8);
* the *Deviation bias* ``b_i`` (Fig. 5) — the dispersion of the static
  phase, which measures how exposed the tag's location is to multipath
  clutter; it feeds the location-diversity weighting (Eq. 9);
* the static mean RSS — the baseline the direction estimator's trough
  detection compares against (section III-B).

Circular statistics are used throughout: wrapped phases near the 0/2*pi
boundary would otherwise produce garbage means.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from ..rfid.reports import ReportLog
from ..units import wrap_phase
from .unwrap import unwrap_residual


def circular_mean(phases: np.ndarray) -> float:
    """Circular mean of wrapped phases, in [0, 2*pi)."""
    if phases.size == 0:
        raise ValueError("circular mean of empty array")
    z = np.exp(1j * phases).mean()
    if abs(z) < 1e-12:
        # Perfectly spread phases have no meaningful mean; pick 0.
        return 0.0
    return wrap_phase(float(np.angle(z)))


def circular_std(phases: np.ndarray) -> float:
    """Circular standard deviation, radians.

    Uses the standard sqrt(-2 ln R) estimator, which agrees with the linear
    std for concentrated distributions (our static tags) and saturates for
    diffuse ones.
    """
    if phases.size == 0:
        raise ValueError("circular std of empty array")
    r = float(np.abs(np.exp(1j * phases).mean()))
    r = min(1.0, max(1e-12, r))
    return math.sqrt(max(0.0, -2.0 * math.log(r)))


@dataclass(frozen=True)
class TagCalibration:
    """Static statistics of one tag."""

    tag_index: int
    central_phase: float      # theta_tilde_i, radians in [0, 2*pi)
    deviation_bias: float     # b_i, radians
    mean_rss_dbm: float
    rss_std_db: float
    sample_count: int


@dataclass
class StaticCalibration:
    """Per-tag static profile for a deployed array.

    ``bias_floor`` guards the inverse-bias weighting of Eq. 10: a tag whose
    static capture happened to be unnaturally quiet would otherwise get an
    unbounded weight.
    """

    tags: Dict[int, TagCalibration]
    bias_floor: float = 1e-3

    def __post_init__(self) -> None:
        if not self.tags:
            raise ValueError("calibration needs at least one tag")

    def central_phase(self, tag_index: int) -> float:
        return self.tags[tag_index].central_phase

    def deviation_bias(self, tag_index: int) -> float:
        return max(self.bias_floor, self.tags[tag_index].deviation_bias)

    def mean_rss(self, tag_index: int) -> float:
        return self.tags[tag_index].mean_rss_dbm

    def tag_indices(self) -> "list[int]":
        return sorted(self.tags)

    #: Clamp band applied to biases before weighting: each b_i is limited
    #: to [median/band, median*band].  Eq. 9 as written is unbounded; with
    #: finite calibration captures a tag whose bias estimate lands 3x off
    #: would have its genuine stroke evidence crushed (or its noise
    #: amplified) by the same factor.  The clamp preserves the paper's
    #: noise-floor equalisation while bounding the damage of estimation
    #: error — see the `abl_weighting` ablation.
    weight_clamp_band: float = 2.0

    def weights(self) -> Dict[int, float]:
        """The location-diversity weights of Eq. 9: w_i = b_i / sum(b).

        Recognition divides by these (Eq. 10), so noisy locations are
        down-weighted and quiet locations amplified.  Biases are clamped
        to ``weight_clamp_band`` around their median first.
        """
        raw = {i: self.deviation_bias(i) for i in self.tags}
        values = sorted(raw.values())
        median = values[len(values) // 2]
        lo, hi = median / self.weight_clamp_band, median * self.weight_clamp_band
        biases = {i: min(hi, max(lo, b)) for i, b in raw.items()}
        total = sum(biases.values())
        return {i: b / total for i, b in biases.items()}

    def residual_series(self, tag_index: int, phases: np.ndarray) -> np.ndarray:
        """Calibrated, unwrapped phase residual of a tag (Eq. 8 + unwrap)."""
        return unwrap_residual(phases, self.central_phase(tag_index))


def calibrate(log: ReportLog, min_samples: int = 5) -> StaticCalibration:
    """Build a static calibration from a no-hand capture.

    Tags with fewer than ``min_samples`` reads are rejected: a calibration
    that silently includes a barely-read tag would assign it a meaningless
    bias and corrupt the weighting.
    """
    if len(log) == 0:
        raise ValueError("cannot calibrate from an empty report log")
    tags: Dict[int, TagCalibration] = {}
    for idx, series in log.per_tag().items():
        if len(series) < min_samples:
            raise ValueError(
                f"tag {idx} has only {len(series)} static reads "
                f"(need >= {min_samples}); capture longer"
            )
        tags[idx] = TagCalibration(
            tag_index=idx,
            central_phase=circular_mean(series.phases),
            deviation_bias=circular_std(series.phases),
            mean_rss_dbm=float(series.rss.mean()),
            rss_std_db=float(series.rss.std()),
            sample_count=len(series),
        )
    return StaticCalibration(tags=tags)
