"""Grey-map rendering: per-tag statistics as an image over the array grid.

The paper visualises the suppressed accumulative phase differences as a
grey-scale image whose pixels are the tags (Fig. 7), then binarises it with
OTSU's method.  We keep the same two-stage representation — it is not just
for show: the classifier operates on the (grey, binary) pair, and the
"image-assisted recognition" framing is the paper's stated future-work
path to whole-letter recognition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..physics.geometry import GridLayout


@dataclass(frozen=True)
class GreyMap:
    """A float image over the tag grid, plus its provenance."""

    values: np.ndarray  # shape (rows, cols), arbitrary non-negative scale
    layout: GridLayout

    def __post_init__(self) -> None:
        if self.values.shape != (self.layout.rows, self.layout.cols):
            raise ValueError(
                f"image shape {self.values.shape} does not match layout "
                f"{self.layout.rows}x{self.layout.cols}"
            )

    def normalized(self) -> np.ndarray:
        """Scale to [0, 1] (max-normalised; an all-zero map stays zero)."""
        v = self.values.astype(float)
        peak = v.max()
        if peak <= 0.0:
            return np.zeros_like(v)
        return v / peak

    def ascii_art(self, levels: str = " .:-=+*#%@") -> str:
        """Terminal rendering used by the examples and experiment reports."""
        norm = self.normalized()
        n = len(levels) - 1
        rows = []
        for r in range(self.layout.rows):
            rows.append("".join(levels[int(round(norm[r, c] * n))] for c in range(self.layout.cols)))
        return "\n".join(rows)


def render_grey_map(per_tag_values: Dict[int, float], layout: GridLayout) -> GreyMap:
    """Place per-tag scalars into their grid cells.

    Tags absent from ``per_tag_values`` (e.g. unreadable during the window)
    render as zero — the same thing a dropped tag looks like on the pad.
    """
    img = np.zeros((layout.rows, layout.cols), dtype=float)
    for idx, value in per_tag_values.items():
        if idx < 0:
            continue  # loose tags outside the pad don't render
        r, c = layout.row_col(idx)
        img[r, c] = max(0.0, float(value))
    return GreyMap(values=img, layout=layout)


@dataclass(frozen=True)
class BinaryMap:
    """OTSU output: foreground pixels are cells the hand moved over."""

    mask: np.ndarray  # shape (rows, cols), dtype bool
    threshold: float
    layout: GridLayout

    def foreground_cells(self) -> List[Tuple[int, int]]:
        rows, cols = np.nonzero(self.mask)
        return list(zip(rows.tolist(), cols.tolist()))

    def foreground_count(self) -> int:
        return int(self.mask.sum())

    def ascii_art(self) -> str:
        return "\n".join(
            "".join("#" if self.mask[r, c] else "." for c in range(self.layout.cols))
            for r in range(self.layout.rows)
        )
