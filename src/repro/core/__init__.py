"""RFIPad's recognition pipeline: the paper's primary contribution.

Stages (paper section III): phase de-periodicity, diversity suppression,
grey-map imaging + OTSU binarisation, image-assisted stroke classification,
RSS-trough direction estimation, RMS-window segmentation, and the
tree-structure letter grammar.
"""

from .calibration import (
    StaticCalibration,
    TagCalibration,
    calibrate,
    circular_mean,
    circular_std,
)
from .classifier import ClassifierConfig, ShapeDecision, classify_shape
from .direction import (
    DirectionConfig,
    Trough,
    detect_troughs,
    estimate_direction,
    passage_order,
)
from .events import LetterResult, SegmentedWindow, StrokeObservation
from .features import ShapeFeatures, extract_features, opening_quadrant
from .grammar import (
    GrammarNode,
    StrokeGeometry,
    TreeGrammar,
    letter_geometry,
    observed_geometry,
    stroke_pair_cost,
    token_distance,
)
from .holistic import (
    HolisticRecognizer,
    HybridRecognizer,
    fuse_letter_image,
    render_template,
)
from .trajectory import TrajectoryEstimate, reconstruct_trajectory, trajectory_error
from .words import (
    WordDecoder,
    WordRecognizer,
    WordResult,
    cluster_windows_into_letters,
)
from .imaging import BinaryMap, GreyMap, render_grey_map
from .otsu import between_class_variance, binarize, binarize_fixed, otsu_threshold
from .pipeline import RFIPad, RFIPadConfig
from .segmentation import (
    SegmentationConfig,
    StreamSegmenter,
    auto_threshold,
    causal_gates,
    frame_rms,
    segment_strokes,
    window_std,
)
from .stages import (
    ClassifyStage,
    DirectionStage,
    GrammarStage,
    ImagingStage,
    OtsuStage,
    SegmentationStage,
    Stage,
    StageContext,
    StageSet,
    SuppressionStage,
    WindowAnalyzer,
    widest_window,
)
from .suppression import SuppressionResult, accumulative_differences, disturbance_score
from .unwrap import fold_to_pi, largest_jump, total_variation, unwrap, unwrap_residual

__all__ = [
    "BinaryMap",
    "ClassifierConfig",
    "ClassifyStage",
    "DirectionConfig",
    "DirectionStage",
    "GrammarStage",
    "ImagingStage",
    "OtsuStage",
    "SegmentationStage",
    "Stage",
    "StageContext",
    "StageSet",
    "StreamSegmenter",
    "SuppressionStage",
    "WindowAnalyzer",
    "GrammarNode",
    "GreyMap",
    "HolisticRecognizer",
    "HybridRecognizer",
    "LetterResult",
    "RFIPad",
    "RFIPadConfig",
    "SegmentationConfig",
    "SegmentedWindow",
    "ShapeDecision",
    "ShapeFeatures",
    "StaticCalibration",
    "StrokeGeometry",
    "StrokeObservation",
    "SuppressionResult",
    "TagCalibration",
    "TrajectoryEstimate",
    "TreeGrammar",
    "Trough",
    "WordDecoder",
    "WordRecognizer",
    "WordResult",
    "accumulative_differences",
    "auto_threshold",
    "between_class_variance",
    "binarize",
    "binarize_fixed",
    "calibrate",
    "causal_gates",
    "circular_mean",
    "circular_std",
    "classify_shape",
    "cluster_windows_into_letters",
    "fuse_letter_image",
    "render_template",
    "stroke_pair_cost",
    "detect_troughs",
    "disturbance_score",
    "estimate_direction",
    "extract_features",
    "fold_to_pi",
    "frame_rms",
    "largest_jump",
    "letter_geometry",
    "observed_geometry",
    "opening_quadrant",
    "otsu_threshold",
    "passage_order",
    "reconstruct_trajectory",
    "render_grey_map",
    "segment_strokes",
    "trajectory_error",
    "token_distance",
    "total_variation",
    "unwrap",
    "unwrap_residual",
    "widest_window",
    "window_std",
]
