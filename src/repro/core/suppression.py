"""Diversity suppression and the accumulative phase difference (Eqs. 8-10).

Given a motion-window report log and a static calibration, this module
computes the per-tag *suppressed accumulative phase difference*

    I'_i = w_i^{-1} * sum_j |theta'_{i,j+1} - theta'_{i,j}|      (Eq. 10)

where ``theta'`` is the calibrated, unwrapped residual (Eq. 8) and ``w_i``
the Deviation-bias weight (Eq. 9).  Two properties make this the right
statistic:

* subtracting the static central phase wipes ``theta_T + theta_R +
  theta_tag`` — tag diversity is gone;
* dividing by ``b_i`` equalises the *noise floor* across tags: a tag whose
  static phase flutters with std ``b_i`` accumulates ~``n * c * b_i`` of
  difference from noise alone, so after weighting every undisturbed tag
  sits near the same baseline, and OTSU can split disturbed from
  undisturbed cleanly — this is exactly why Fig. 7(b) looks so much better
  than Fig. 7(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..obs.trace import get_tracer
from ..rfid.reports import ReportLog
from .calibration import StaticCalibration
from .unwrap import total_variation


@dataclass(frozen=True)
class SuppressionResult:
    """Per-tag accumulative phase differences for one analysis window."""

    raw: Dict[int, float]         # unweighted, uncalibrated (Fig. 7a style)
    suppressed: Dict[int, float]  # Eq. 10 output (Fig. 7b style)
    read_counts: Dict[int, int]

    def suppressed_array(self, tag_indices: "list[int]") -> np.ndarray:
        return np.array([self.suppressed.get(i, 0.0) for i in tag_indices])


def accumulative_differences(
    log: ReportLog,
    calibration: StaticCalibration,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    per_sample: bool = True,
    bias_weighting: bool = True,
) -> SuppressionResult:
    """Compute raw and suppressed accumulative phase differences.

    Parameters
    ----------
    t0, t1:
        Optional analysis window; defaults to the whole log.
    per_sample:
        When True (default), each tag's accumulated difference is divided
        by its difference count before weighting.  The Gen2 MAC does not
        read all tags equally often; without this normalisation a
        frequently-read undisturbed tag out-accumulates a rarely-read
        disturbed one.  (The paper's fixed 5x5 deployment gives near-equal
        read rates so Eq. 10 omits it; with per-tag rates equal the two
        forms coincide up to a constant.)
    bias_weighting:
        When False, skip the Eq. 9/10 inverse-bias division (uniform
        weights) while keeping calibration + unwrapping.  This isolates
        the *location-diversity* half of the suppression for the ablation
        study; the paper's full algorithm corresponds to True.
    """
    window = log
    if t0 is not None or t1 is not None:
        lo = t0 if t0 is not None else float("-inf")
        hi = t1 if t1 is not None else float("inf")
        window = log.slice_time(lo, hi)

    raw: Dict[int, float] = {}
    suppressed: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    weights = calibration.weights()
    per_tag = window.per_tag()

    # Eq. 8 pass: calibrate + de-periodicise every tag's phase series.  A
    # separate pass so the tracer sees the unwrap stage as its own span
    # (nested under the pipeline's `suppression` span).
    with get_tracer().span("unwrap") as sp:
        residuals: Dict[int, np.ndarray] = {
            idx: calibration.residual_series(idx, series.phases)
            for idx, series in per_tag.items()
            if idx in calibration.tags and len(series) >= 2
        }
        sp.set(tags=len(residuals))

    for idx, series in per_tag.items():
        if idx not in calibration.tags:
            continue  # a stray tag outside the calibrated pad
        counts[idx] = len(series)
        if len(series) < 2:
            raw[idx] = 0.0
            suppressed[idx] = 0.0
            continue
        # Raw variant (the naive Eq. 5 the paper starts from, Fig. 7a): the
        # accumulative difference of the *wrapped* reports with uniform
        # weights and no per-sample normalisation.  Tags whose central
        # phase sits near the 0/2*pi boundary flicker across it under
        # noise and rack up spurious ~2*pi steps — this is precisely the
        # tag-diversity artefact that de-periodicity + calibration remove.
        raw[idx] = total_variation(series.phases)

        tv = total_variation(residuals[idx])
        if per_sample:
            tv /= max(1, len(series) - 1)
        suppressed[idx] = tv / weights[idx] if bias_weighting else tv

    # Calibrated tags that were never read in the window: zero by definition.
    for idx in calibration.tag_indices():
        raw.setdefault(idx, 0.0)
        suppressed.setdefault(idx, 0.0)
        counts.setdefault(idx, 0)

    return SuppressionResult(raw=raw, suppressed=suppressed, read_counts=counts)


def disturbance_score(result: SuppressionResult) -> float:
    """A scalar 'how much is happening' score: the mean suppressed value.

    Useful as a cheap activity indicator and in tests; the segmentation
    module has its own RMS-based detector per the paper.
    """
    if not result.suppressed:
        return 0.0
    return float(np.mean(list(result.suppressed.values())))
