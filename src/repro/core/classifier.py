"""Image-assisted stroke classification (section III-A.3).

Decision procedure over the OTSU binary map's features:

1. no foreground                          -> nothing to classify
2. compact blob (small span, low stretch) -> CLICK
3. line-vs-arc: decided primarily by the *trough path straightness* (the
   time-ordered RSS troughs replay the hand's path; an arc's chord is much
   shorter than its arc length), falling back to image moments (circle
   fit: small radius, real angular coverage, off-axis thickness, centre
   offset) when too few troughs are available;
4. arcs take their opening from the circle fit's angular gap (or the
   trough path's bulge); lines bin the principal-axis angle into
   "−", "|", "/", "\\".

Thresholds are in cell units of the 5x5 pad and were chosen on the
generator's geometry; they are exposed as a config so the ablation benches
can stress them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..motion.strokes import ArcOpening, Direction, StrokeKind
from .direction import TroughPath
from .features import ShapeFeatures, extract_features, opening_quadrant
from .imaging import BinaryMap, GreyMap


@dataclass(frozen=True)
class ClassifierConfig:
    """Tunable decision thresholds (cell units)."""

    #: A blob spanning at most this many cells per axis can be a click...
    click_max_span: int = 3
    #: ...provided its principal-axis stretch stays below this...
    click_max_extent: float = 2.4
    #: ...and the replayed hand path went (almost) nowhere: maximum trough
    #: chord, in cells.  A push typically yields *no* troughs at all — the
    #: shadow + detuning drive its target tag unreadable, leaving a gap
    #: instead of a dip — while even the shortest travelling bar leaves a
    #: chord of two cells or more.
    click_max_chord: float = 1.5
    #: Arcs need at least this many foreground cells to trust the fit.
    arc_min_cells: int = 5
    #: Circle-fit radius must stay below this multiple of the major extent
    #: (a straight line fits a near-infinite circle).
    arc_max_radius_ratio: float = 1.3
    #: Minimum off-axis spread relative to the extent: lines are thin.
    arc_min_thickness: float = 0.16
    #: Minimum angular coverage of the points around the fitted centre.
    arc_min_coverage_deg: float = 110.0
    #: Circle-fit RMS residual must stay below this fraction of the radius.
    arc_max_rms_ratio: float = 0.40
    #: The fitted centre must sit at least this fraction of the radius away
    #: from the blob centroid (arcs are one-sided; filled bars are not).
    arc_min_centre_offset: float = 0.22
    #: Angle bin half-width for the horizontal/vertical decision, degrees.
    axis_half_width_deg: float = 27.5
    #: Trough-path straightness below which the stroke is an arc...
    arc_max_straightness: float = 0.75
    #: ...and above which it is definitely a line (between the two the
    #: image-moment gates decide).
    line_min_straightness: float = 0.85
    #: Minimum troughs for the path-straightness signal to be trusted.
    path_min_troughs: int = 3


@dataclass(frozen=True)
class ShapeDecision:
    """Classifier output: the stroke kind plus arc opening and confidence.

    ``line_angle_deg`` preserves the *continuous* orientation a line was
    classified from (principal axis or trough chord, in (-90, 90], y up).
    The letter grammar scores it against each candidate stroke's true
    angle, which matters for narrow letters whose diagonals are far from
    45 degrees (a "V" leg is ~72 degrees steep).
    """

    kind: StrokeKind
    opening: Optional[ArcOpening]
    confidence: float
    features: ShapeFeatures
    line_angle_deg: Optional[float] = None

    @property
    def token(self) -> str:
        if self.opening is not None:
            return f"arc:{self.opening.value}"
        return self.kind.name.lower()


_OPENING_FROM_NAME = {
    "left": ArcOpening.LEFT,
    "right": ArcOpening.RIGHT,
    "up": ArcOpening.UP,
    "down": ArcOpening.DOWN,
}


def _arc_decision(
    feats: ShapeFeatures,
    config: ClassifierConfig,
    path: Optional[TroughPath],
) -> Optional[ShapeDecision]:
    """Build the ARC decision if the evidence supports one, else None."""
    path_votes_arc = (
        path is not None
        and path.n >= config.path_min_troughs
        and path.straightness <= config.arc_max_straightness
    )
    # A line veto needs a *decisively* straight path: partially-observed
    # arcs (strong troughs only on one limb) can look fairly straight.
    path_votes_line = (
        path is not None
        and path.n >= config.path_min_troughs
        and path.straightness >= config.line_min_straightness
    )
    path_decisively_straight = (
        path is not None
        and path.n >= config.path_min_troughs
        and path.straightness >= 0.93
    )
    image_votes_arc = (
        feats.count >= config.arc_min_cells
        and math.isfinite(feats.circle_radius)
        and feats.major_extent > 1e-9
        and feats.circle_radius <= config.arc_max_radius_ratio * feats.major_extent
        and feats.minor_std >= config.arc_min_thickness * feats.major_extent
        and feats.coverage_deg >= config.arc_min_coverage_deg
        and feats.circle_rms <= config.arc_max_rms_ratio * feats.circle_radius
        and feats.centre_offset_ratio >= config.arc_min_centre_offset
    )
    if path_decisively_straight:
        return None
    if path_votes_line and not image_votes_arc:
        return None
    if not (path_votes_arc or image_votes_arc):
        return None

    # Opening: the circle fit's angular gap when the image supplied one,
    # otherwise the trough path's bulge direction.
    quadrant = opening_quadrant(feats.opening)
    if quadrant is None and path is not None:
        quadrant = opening_quadrant(path.opening)
    if quadrant is None:
        return None
    opening = _OPENING_FROM_NAME[quadrant]
    kind = StrokeKind.ARC_C if opening is ArcOpening.RIGHT else StrokeKind.ARC_D
    # Bowls/caps have no dedicated StrokeKind in the paper's 7; keep the
    # nearest arc kind but the token carries the true opening.
    if path_votes_arc and path is not None:
        confidence = 0.5 + 0.5 * min(1.0, (config.arc_max_straightness - path.straightness) / 0.3 + 0.3)
    else:
        fit_quality = 1.0 - feats.circle_rms / max(feats.circle_radius, 1e-9)
        confidence = 0.5 + 0.5 * max(0.0, fit_quality)
    return ShapeDecision(kind, opening, min(1.0, confidence), feats)


def classify_shape(
    grey: GreyMap,
    binary: BinaryMap,
    config: ClassifierConfig = ClassifierConfig(),
    path: Optional[TroughPath] = None,
    window_s: float = 0.0,
) -> Optional[ShapeDecision]:
    """Classify the foreground blob; ``None`` when the map is empty.

    ``path`` is the optional time-ordered trough geometry; when present it
    dominates the line-vs-arc decision (see module docstring).  ``window_s``
    is the analysis window duration, used to normalise trough time spread.
    """
    feats = extract_features(grey, binary)
    if feats is None:
        return None

    # --- click: compact blob, stationary (or absent) trough path --------
    compact = (
        max(feats.span_cells) <= config.click_max_span
        and feats.major_extent <= config.click_max_extent
    )
    if compact:
        extent = path.spatial_extent if path is not None else 0.0
        if extent <= config.click_max_chord:
            confidence = 0.6 + 0.4 * (1.0 - extent / max(config.click_max_chord, 1e-9))
            return ShapeDecision(StrokeKind.CLICK, None, min(1.0, confidence), feats)
        # the trough footprint says the hand travelled: fall through.

    arc = _arc_decision(feats, config, path)
    if arc is not None:
        return arc

    # --- line: bin the principal-axis angle ---------------------------
    angle = feats.angle_deg  # (-90, 90], y up
    # A degenerate blob (1-3 cells) carries almost no orientation; the
    # trough chord, when the hand demonstrably travelled, is more telling.
    if feats.count <= 3 and path is not None:
        chord_len = math.hypot(*path.chord)
        if chord_len >= 1.4:
            chord_angle = math.degrees(math.atan2(path.chord[1], path.chord[0]))
            if chord_angle <= -90.0:
                chord_angle += 180.0
            elif chord_angle > 90.0:
                chord_angle -= 180.0
            angle = chord_angle
    half = config.axis_half_width_deg
    if abs(angle) <= half:
        kind = StrokeKind.HBAR
        distance = abs(angle)
    elif abs(angle) >= 90.0 - half:
        kind = StrokeKind.VBAR
        distance = 90.0 - abs(angle)
    elif angle > 0.0:
        kind = StrokeKind.SLASH
        distance = abs(angle - 45.0)
    else:
        kind = StrokeKind.BACKSLASH
        distance = abs(angle + 45.0)
    confidence = max(0.0, 1.0 - distance / 45.0)
    return ShapeDecision(kind, None, 0.5 + 0.5 * confidence, feats, line_angle_deg=angle)
