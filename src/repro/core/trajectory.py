"""Coarse hand-trajectory reconstruction from the report stream.

The paper overlays RFIPad's grey maps with Kinect tracks (Fig. 25) but
never produces a *trajectory* itself.  This module closes that gap using
only signals the pipeline already computes:

* each RSS trough gives a (tag position, passage time) anchor — the hand
  was over that tag at that moment;
* anchors are weighted by trough depth and interpolated in time, giving a
  continuous estimate of the hand's (x, y) path over the pad.

The result is deliberately humble — tag-pitch resolution, xy only — but
it turns the pad into a crude *tracker*, and the ``ext_tracking``-style
comparison in the tests quantifies it against the simulated Kinect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..physics.geometry import GridLayout, Vec3
from .direction import Trough


@dataclass(frozen=True)
class TrajectoryEstimate:
    """A time-parametrised xy path over the pad (plane coordinates, m)."""

    times: np.ndarray      # (n,)
    points: np.ndarray     # (n, 2): x, y in the plane frame

    def __len__(self) -> int:
        return int(self.times.size)

    def position_at(self, t: float) -> Tuple[float, float]:
        """Linear interpolation, clamped at the ends."""
        if self.times.size == 0:
            raise ValueError("empty trajectory")
        x = float(np.interp(t, self.times, self.points[:, 0]))
        y = float(np.interp(t, self.times, self.points[:, 1]))
        return x, y

    def path_length(self) -> float:
        if self.times.size < 2:
            return 0.0
        return float(np.sqrt(np.diff(self.points, axis=0) ** 2).sum(axis=1).sum())


def reconstruct_trajectory(
    troughs: Sequence[Trough],
    layout: GridLayout,
    samples_per_segment: int = 8,
    smooth: int = 3,
) -> Optional[TrajectoryEstimate]:
    """Interpolate trough anchors into a continuous path.

    Returns ``None`` with fewer than two anchors.  Anchors are sorted by
    time, averaged with a ``smooth``-point moving window (depth-weighted)
    to tame trough-time jitter, then linearly upsampled.
    """
    if len(troughs) < 2:
        return None
    ordered = sorted(troughs, key=lambda tr: tr.time)
    anchor_t = np.array([tr.time for tr in ordered])
    weights = np.array([tr.depth_db for tr in ordered])
    anchor_xy = np.array(
        [
            [layout.position(*layout.row_col(tr.tag_index)).x,
             layout.position(*layout.row_col(tr.tag_index)).y]
            for tr in ordered
        ]
    )

    # Depth-weighted moving average over `smooth` anchors.
    if smooth > 1 and len(ordered) > 2:
        smoothed = np.empty_like(anchor_xy)
        half = smooth // 2
        for i in range(len(ordered)):
            lo = max(0, i - half)
            hi = min(len(ordered), i + half + 1)
            w = weights[lo:hi]
            smoothed[i] = (anchor_xy[lo:hi] * w[:, None]).sum(axis=0) / w.sum()
        anchor_xy = smoothed

    # Upsample each inter-anchor segment.
    times: List[float] = []
    points: List[np.ndarray] = []
    for i in range(len(ordered) - 1):
        t0, t1 = anchor_t[i], anchor_t[i + 1]
        n = samples_per_segment if t1 > t0 else 1
        for k in range(n):
            frac = k / n
            times.append(float(t0 + (t1 - t0) * frac))
            points.append(anchor_xy[i] + (anchor_xy[i + 1] - anchor_xy[i]) * frac)
    times.append(float(anchor_t[-1]))
    points.append(anchor_xy[-1])
    return TrajectoryEstimate(times=np.array(times), points=np.array(points))


def trajectory_error(
    estimate: TrajectoryEstimate,
    reference: Sequence[Tuple[float, Vec3]],
) -> float:
    """Mean xy distance between the estimate and a (t, position) reference.

    Only reference samples inside the estimate's time span count — the
    reconstruction cannot speak to times it has no anchors for.
    """
    if len(estimate) == 0:
        raise ValueError("empty estimate")
    t_lo, t_hi = float(estimate.times[0]), float(estimate.times[-1])
    errors = []
    for t, pos in reference:
        if not (t_lo <= t <= t_hi):
            continue
        ex, ey = estimate.position_at(t)
        errors.append(float(np.hypot(ex - pos.x, ey - pos.y)))
    if not errors:
        raise ValueError("reference never overlaps the estimate's time span")
    return float(np.mean(errors))
