"""Tree-structure grammar for composing strokes into letters (section III-C.2).

The grammar is a prefix tree over stroke tokens: each node holds the
letters still compatible with the tokens consumed so far.  After the last
stroke, surviving candidates are ranked by *position consistency* — the
paper's disambiguator for letters with identical stroke sequences (D vs P,
O vs S, V vs X): e.g. a "⊃" spanning the "|"'s full height says D, one
hugging the top half says P.

Token matching is soft: a slightly mis-binned stroke (a "/" read as "|",
an arc whose opening snapped to the wrong quadrant) pays a substitution
cost instead of killing the letter, which mirrors how humans — and the
paper's ~91% letter accuracy — tolerate imperfect stroke recognition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..motion.letters import LETTER_STROKES, StrokeSpec
from ..motion.strokes import ArcOpening, StrokeKind, stroke_skeleton
from .events import LetterResult, SegmentedWindow, StrokeObservation


# ----------------------------------------------------------------------
# Token distance
# ----------------------------------------------------------------------

_LINE_ANGLES = {
    "hbar": 0.0,
    "slash": 45.0,
    "vbar": 90.0,
    "backslash": 135.0,  # mod 180
}

_OPENING_ANGLES = {
    "right": 0.0,
    "up": 90.0,
    "left": 180.0,
    "down": 270.0,
}


def token_distance(observed: str, expected: str) -> float:
    """Substitution cost between two stroke tokens, in [0, 1]."""
    if observed == expected:
        return 0.0
    obs_arc = observed.startswith("arc:")
    exp_arc = expected.startswith("arc:")
    if obs_arc and exp_arc:
        a = _OPENING_ANGLES[observed.split(":", 1)[1]]
        b = _OPENING_ANGLES[expected.split(":", 1)[1]]
        diff = abs(a - b) % 360.0
        diff = min(diff, 360.0 - diff)
        return 0.25 + 0.75 * (diff / 180.0)  # adjacent quadrant 0.625, opposite 1.0
    if "click" in (observed, expected):
        # Sub-cell strokes (a "G"'s inner bar, a "Q"'s tail) regularly read
        # as clicks; keep the cost moderate so positions can still decide.
        return 0.75 if obs_arc or exp_arc else 0.60
    if obs_arc != exp_arc:
        return 0.60  # shallow arcs and lines blur into each other at 5x5
    a = _LINE_ANGLES.get(observed)
    b = _LINE_ANGLES.get(expected)
    if a is None or b is None:
        return 1.0
    diff = abs(a - b) % 180.0
    diff = min(diff, 180.0 - diff)
    return 0.3 + 0.7 * (diff / 90.0)  # adjacent bins 0.65, perpendicular 1.0


def _spec_line_angle(spec: StrokeSpec) -> float:
    """True orientation of a spec's line stroke in (-90, 90], y up."""
    dx = spec.end[0] - spec.start[0]
    dy = spec.end[1] - spec.start[1]
    angle = math.degrees(math.atan2(dy, dx))
    if angle <= -90.0:
        angle += 180.0
    elif angle > 90.0:
        angle -= 180.0
    return angle


def stroke_pair_cost(obs: StrokeObservation, spec: StrokeSpec) -> float:
    """Mismatch cost in [0, 1] between an observed stroke and a spec stroke.

    Unlike :func:`token_distance` (which compares binned tokens), this
    scores *continuous* line orientation when the observation carries one:
    a stroke read as "|" at 78 degrees is a near-perfect match for a
    narrow "V"'s 72-degree leg even though its token bin says ``vbar``.
    """
    spec_token = spec.shape_token
    obs_token = obs.token
    spec_is_arc = spec_token.startswith("arc:")
    obs_is_arc = obs_token.startswith("arc:")
    if obs_is_arc or spec_is_arc or obs_token == "click" or spec_token == "click":
        return token_distance(obs_token, spec_token)
    if obs.line_angle_deg is None:
        return token_distance(obs_token, spec_token)
    diff = abs(obs.line_angle_deg - _spec_line_angle(spec)) % 180.0
    diff = min(diff, 180.0 - diff)
    return 0.9 * (diff / 90.0)


# ----------------------------------------------------------------------
# Position geometry of the letter specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StrokeGeometry:
    """Normalised placement of one stroke inside its letter's union box."""

    cx: float
    cy: float
    width: float
    height: float

    def distance(self, other: "StrokeGeometry") -> float:
        return math.sqrt(
            (self.cx - other.cx) ** 2
            + (self.cy - other.cy) ** 2
            + 0.5 * (self.width - other.width) ** 2
            + 0.5 * (self.height - other.height) ** 2
        )


def _spec_polyline(spec: StrokeSpec) -> List[Tuple[float, float]]:
    """Letter-box polyline of a spec (reusing the generator's arc geometry)."""
    from ..motion.strokes import _arc_between, _line_skeleton  # shared geometry

    if spec.opening is not None or spec.kind in (StrokeKind.ARC_C, StrokeKind.ARC_D):
        opening = spec.opening
        if opening is None:
            opening = ArcOpening.RIGHT if spec.kind is StrokeKind.ARC_C else ArcOpening.LEFT
        return _arc_between(spec.start, spec.end, opening)
    return _line_skeleton(spec.start, spec.end)


def _normalise_boxes(
    boxes: Sequence[Tuple[float, float, float, float]]
) -> List[StrokeGeometry]:
    """Normalise (xmin, xmax, ymin, ymax) boxes by their union box.

    Both axes are scaled by the union box's *larger* side and centred on
    its middle (aspect-preserving).  Per-axis scaling would blow up
    degenerate dimensions — a single "|" has zero width, and normalising
    by it would turn its centre into garbage — and would erase the
    width/height proportions that tell a "P" bump from a "D" bowl.
    """
    if not boxes:
        return []
    xmin = min(b[0] for b in boxes)
    xmax = max(b[1] for b in boxes)
    ymin = min(b[2] for b in boxes)
    ymax = max(b[3] for b in boxes)
    scale = max(1e-6, xmax - xmin, ymax - ymin)
    cx0 = (xmin + xmax) / 2.0
    cy0 = (ymin + ymax) / 2.0
    out = []
    for bx0, bx1, by0, by1 in boxes:
        out.append(
            StrokeGeometry(
                cx=0.5 + ((bx0 + bx1) / 2.0 - cx0) / scale,
                cy=0.5 + ((by0 + by1) / 2.0 - cy0) / scale,
                width=(bx1 - bx0) / scale,
                height=(by1 - by0) / scale,
            )
        )
    return out


def letter_geometry(letter: str) -> List[StrokeGeometry]:
    """Normalised per-stroke placement of a letter's specification."""
    boxes = []
    for spec in LETTER_STROKES[letter.upper()]:
        pts = _spec_polyline(spec)
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        boxes.append((min(xs), max(xs), min(ys), max(ys)))
    return _normalise_boxes(boxes)


def observed_geometry(strokes: Sequence[StrokeObservation]) -> List[StrokeGeometry]:
    """Normalised per-stroke placement measured from the grey maps.

    Uses each stroke's binary-map bounding box in cell units (y up).
    Strokes lacking features (empty maps) get a degenerate centred box.
    """
    boxes = []
    for obs in strokes:
        if obs.features is None or obs.grey is None:
            boxes.append((0.4, 0.6, 0.4, 0.6))
            continue
        rows = obs.grey.layout.rows
        rmin, rmax, cmin, cmax = obs.features.bbox
        # Cell-centre coordinates with y up: a single-column stroke gets
        # zero width, matching how the spec geometry measures a thin "|".
        xmin, xmax = float(cmin), float(cmax)
        ymin, ymax = float(rows - 1 - rmax), float(rows - 1 - rmin)
        boxes.append((xmin, xmax, ymin, ymax))
    return _normalise_boxes(boxes)


# ----------------------------------------------------------------------
# The grammar tree
# ----------------------------------------------------------------------


@dataclass
class GrammarNode:
    """One prefix-tree node: children by token, letters compatible so far."""

    letters: List[str] = field(default_factory=list)
    terminals: List[str] = field(default_factory=list)
    children: Dict[str, "GrammarNode"] = field(default_factory=dict)


class TreeGrammar:
    """The stroke-sequence prefix tree plus soft scoring (Fig. 10)."""

    def __init__(
        self,
        token_weight: float = 1.0,
        position_weight: float = 0.8,
        accept_threshold: float = 0.62,
    ) -> None:
        self.token_weight = token_weight
        self.position_weight = position_weight
        self.accept_threshold = accept_threshold
        self.root = GrammarNode()
        for letter, specs in LETTER_STROKES.items():
            node = self.root
            node.letters.append(letter)
            for spec in specs:
                node = node.children.setdefault(spec.shape_token, GrammarNode())
                node.letters.append(letter)
            node.terminals.append(letter)

    # -- exact navigation (used by tests and streaming autocomplete) -----

    def candidates_for_prefix(self, tokens: Sequence[str]) -> List[str]:
        """Letters whose decomposition starts with exactly these tokens."""
        node = self.root
        for token in tokens:
            if token not in node.children:
                return []
            node = node.children[token]
        return sorted(node.letters)

    def exact_match(self, tokens: Sequence[str]) -> List[str]:
        node = self.root
        for token in tokens:
            if token not in node.children:
                return []
            node = node.children[token]
        return sorted(node.terminals)

    # -- soft scoring ----------------------------------------------------

    def score_letter(self, letter: str, strokes: Sequence[StrokeObservation]) -> float:
        """Mismatch score (lower is better) of a letter for observed strokes.

        Letters with a different stroke count are given an infinite score:
        the segmenter owns stroke-count errors, and padding alignments here
        would double-charge them.
        """
        specs = LETTER_STROKES[letter.upper()]
        if len(specs) != len(strokes):
            return float("inf")
        token_cost = sum(
            stroke_pair_cost(obs, spec) for obs, spec in zip(strokes, specs)
        ) / len(specs)
        expected = letter_geometry(letter)
        observed = observed_geometry(strokes)
        position_cost = sum(o.distance(e) for o, e in zip(observed, expected)) / len(specs)
        return self.token_weight * token_cost + self.position_weight * position_cost

    def recognize(
        self,
        strokes: Sequence[StrokeObservation],
        windows: Sequence[SegmentedWindow] = (),
    ) -> LetterResult:
        """Rank all letters against the observed strokes."""
        if not strokes:
            return LetterResult(letter=None, strokes=(), windows=tuple(windows))
        scored = []
        for letter in LETTER_STROKES:
            score = self.score_letter(letter, strokes)
            if math.isfinite(score):
                scored.append((letter, score))
        scored.sort(key=lambda pair: pair[1])
        best = scored[0][0] if scored and scored[0][1] <= self.accept_threshold else None
        return LetterResult(
            letter=best,
            strokes=tuple(strokes),
            candidates=tuple(scored[:5]),
            windows=tuple(windows),
        )
