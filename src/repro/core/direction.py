"""RSS-based direction estimation (section III-B).

Phase profiles under a moving hand can be monotonous, axially symmetric, or
circularly symmetric depending on where the tag sits relative to the trail
(Fig. 8), so they make poor ordering signals.  RSS is distinctive: the hand
passing perpendicularly over a tag blocks it, leaving one clean trough per
crossing.  Ordering the troughs in time recovers the sequence of tags the
hand visited; projecting that sequence onto the stroke's canonical travel
direction yields FORWARD vs REVERSE.

The two-stage trough estimation the paper sketches:

* stage 1 — candidate troughs: tags whose smoothed RSS dips at least
  ``min_depth_db`` below their static baseline;
* stage 2 — refinement: per candidate, the trough time is re-estimated as
  the weighted centre of the dip's bottom region (samples within
  ``bottom_fraction`` of the dip depth), which is far more stable than the
  raw argmin under quantised, jittery RSS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..motion.strokes import ArcOpening, Direction, StrokeKind
from ..physics.geometry import GridLayout
from ..rfid.reports import ReportLog
from .calibration import StaticCalibration


@dataclass(frozen=True)
class Trough:
    """One detected RSS trough."""

    tag_index: int
    time: float
    depth_db: float


@dataclass(frozen=True)
class DirectionConfig:
    min_depth_db: float = 2.5       # stage-1 candidate gate
    smooth_window: int = 5          # moving-average width, samples
    bottom_fraction: float = 0.5    # stage-2: bottom 50% of the dip
    min_troughs: int = 2            # need at least two ordered points
    #: Troughs shallower than this fraction of the deepest trough are left
    #: out of the *path geometry* (they still vote in direction
    #: regression, weighted by depth): grazing passes produce shallow,
    #: time-jittered troughs that zigzag the reconstructed path.
    path_depth_fraction: float = 0.45


def _smooth(values: np.ndarray, window: int) -> np.ndarray:
    if window <= 1 or values.size <= 2:
        return values.astype(float)
    k = min(window, values.size)
    kernel = np.ones(k) / k
    return np.convolve(values.astype(float), kernel, mode="same")


def detect_troughs(
    log: ReportLog,
    calibration: StaticCalibration,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    config: DirectionConfig = DirectionConfig(),
    restrict_to: Optional[Sequence[int]] = None,
) -> List[Trough]:
    """Find per-tag RSS troughs inside a window, ordered by time."""
    window = log
    if t0 is not None or t1 is not None:
        lo = t0 if t0 is not None else float("-inf")
        hi = t1 if t1 is not None else float("inf")
        window = log.slice_time(lo, hi)

    allowed = set(restrict_to) if restrict_to is not None else None
    troughs: List[Trough] = []
    for idx, series in window.per_tag().items():
        if idx not in calibration.tags:
            continue
        if allowed is not None and idx not in allowed:
            continue
        if len(series) < 3:
            continue
        baseline = calibration.mean_rss(idx)
        smoothed = _smooth(series.rss, config.smooth_window)
        dip = baseline - smoothed  # positive where the RSS is suppressed
        depth = float(dip.max())
        if depth < config.min_depth_db:
            continue
        # Stage 2: centre of the bottom region.
        cutoff = depth * config.bottom_fraction
        bottom = dip >= cutoff
        weights = dip[bottom]
        times = series.timestamps[bottom]
        t_trough = float((times * weights).sum() / weights.sum())
        troughs.append(Trough(tag_index=idx, time=t_trough, depth_db=depth))

    troughs.sort(key=lambda tr: tr.time)
    return troughs


def _skeleton_forward(kind: StrokeKind, opening: Optional[ArcOpening]) -> Tuple[float, float]:
    """Canonical FORWARD travel vector, derived from the stroke skeleton.

    Deriving it from :func:`repro.motion.strokes.stroke_skeleton` (instead
    of a hand-written table) keeps the direction convention pinned to the
    generator: whatever path FORWARD draws, this is its net displacement.
    """
    from ..motion.strokes import stroke_skeleton  # local: avoids cycle at import

    skeleton = stroke_skeleton(kind, opening)
    dx = skeleton[-1][0] - skeleton[0][0]
    dy = skeleton[-1][1] - skeleton[0][1]
    return dx, dy


def estimate_direction(
    kind: StrokeKind,
    troughs: Sequence[Trough],
    layout: GridLayout,
    opening: Optional[ArcOpening] = None,
    config: DirectionConfig = DirectionConfig(),
) -> Tuple[Direction, float]:
    """Infer travel direction from the time-ordered troughs.

    Regresses each visited tag's projection onto the canonical FORWARD
    vector against its trough time: a positive slope means the hand swept
    the canonical way.  Returns (direction, confidence in [0, 1]); clicks
    and under-determined cases return FORWARD with zero confidence.
    """
    if kind is StrokeKind.CLICK or len(troughs) < config.min_troughs:
        return Direction.FORWARD, 0.0

    fx, fy = _skeleton_forward(kind, opening)
    norm = math.hypot(fx, fy)
    if norm == 0.0:
        return Direction.FORWARD, 0.0
    fx, fy = fx / norm, fy / norm

    times = np.array([tr.time for tr in troughs])
    projections = []
    weights = []
    for tr in troughs:
        r, c = layout.row_col(tr.tag_index)
        x = float(c)
        y = float(layout.rows - 1 - r)  # y up
        projections.append(x * fx + y * fy)
        weights.append(tr.depth_db)
    proj = np.array(projections)
    w = np.array(weights)

    # Weighted least-squares slope of projection vs time.
    t_mean = float((times * w).sum() / w.sum())
    p_mean = float((proj * w).sum() / w.sum())
    var_t = float((w * (times - t_mean) ** 2).sum())
    if var_t <= 1e-12:
        return Direction.FORWARD, 0.0
    cov = float((w * (times - t_mean) * (proj - p_mean)).sum())
    slope = cov / var_t

    var_p = float((w * (proj - p_mean) ** 2).sum())
    if var_p <= 1e-12:
        return Direction.FORWARD, 0.0
    correlation = cov / math.sqrt(var_t * var_p)

    direction = Direction.FORWARD if slope >= 0.0 else Direction.REVERSE
    return direction, abs(float(correlation))


def passage_order(troughs: Sequence[Trough]) -> Tuple[int, ...]:
    """Tag indices in the order the hand visited them."""
    return tuple(tr.tag_index for tr in troughs)


@dataclass(frozen=True)
class TroughPath:
    """Geometry of the time-ordered trough positions — a coarse replay of
    the hand's path.

    ``straightness`` is chord length over path length: ~1 for lines, ~0.4
    for the paper's 240-degree arcs.  At 5x5 resolution this temporal
    signal separates thick lines from arcs far more reliably than image
    moments alone, so the classifier consults it when enough troughs exist.
    """

    n: int
    chord: Tuple[float, float]            # net displacement (x, y), y up
    path_length: float
    straightness: float
    opening: Tuple[float, float]          # unit vector from path mid to chord mid
    points: Tuple[Tuple[float, float], ...]
    t_first: float = 0.0                  # earliest strong trough
    t_last: float = 0.0                   # latest strong trough
    #: Largest pairwise distance among *all* detected trough cells (weak
    #: ones included).  A push keeps every trough within a one-cell ring;
    #: any travelling stroke spans at least two cells.
    spatial_extent: float = 0.0

    @property
    def time_spread(self) -> float:
        """How long the hand spent *arriving at* successive tags.

        A travelling stroke spreads its troughs across most of its window;
        a click's troughs all fire around the single push instant."""
        return self.t_last - self.t_first


def trough_path(
    troughs: Sequence[Trough],
    layout: GridLayout,
    config: DirectionConfig = DirectionConfig(),
) -> Optional[TroughPath]:
    """Build path geometry from time-ordered troughs (None if < 3 points).

    Only dominant troughs (>= ``path_depth_fraction`` of the deepest)
    contribute, and positions are smoothed with a 3-point moving average
    before the path length is measured — both guards against trough-time
    jitter turning a straight trail into a zigzag.
    """
    if not troughs:
        return None
    all_pts = []
    for tr in troughs:
        r, c = layout.row_col(tr.tag_index)
        all_pts.append((float(c), float(layout.rows - 1 - r)))
    # Pairwise max distance as one broadcast instead of the O(n^2) Python
    # loop; hypot(dx, dy) == sqrt(dx*dx + dy*dy) to the ulp for grid-coord
    # magnitudes (no overflow/underflow in range), and the max of the full
    # (n, n) matrix equals the max over unordered pairs.
    pts = np.asarray(all_pts)
    dx = pts[:, 0][:, None] - pts[:, 0][None, :]
    dy = pts[:, 1][:, None] - pts[:, 1][None, :]
    spatial_extent = float(np.sqrt(dx * dx + dy * dy).max())

    max_depth = max(tr.depth_db for tr in troughs)
    # Relative gate with an absolute cap: one very deep trough (a tag the
    # hand parked on) must not disqualify the ordinary ~5 dB troughs that
    # trace the rest of the path.
    gate = min(4.0, config.path_depth_fraction * max_depth)
    strong = [tr for tr in troughs if tr.depth_db >= gate]
    if len(strong) < 2:
        return None
    # Two points give a chord and a time spread (enough for the click
    # test) but no meaningful straightness/opening; handle them directly.
    if len(strong) == 2:
        pts2 = []
        for tr in strong:
            r, c = layout.row_col(tr.tag_index)
            pts2.append((float(c), float(layout.rows - 1 - r)))
        chord2 = (pts2[1][0] - pts2[0][0], pts2[1][1] - pts2[0][1])
        return TroughPath(
            n=2,
            chord=chord2,
            path_length=math.hypot(*chord2),
            straightness=1.0,
            opening=(0.0, 0.0),
            points=tuple(pts2),
            t_first=min(tr.time for tr in strong),
            t_last=max(tr.time for tr in strong),
            spatial_extent=spatial_extent,
        )
    raw = []
    for tr in strong:
        r, c = layout.row_col(tr.tag_index)
        raw.append((float(c), float(layout.rows - 1 - r)))  # y up
    # 3-point moving average (endpoints kept).
    pts = [raw[0]]
    for i in range(1, len(raw) - 1):
        pts.append(
            (
                (raw[i - 1][0] + raw[i][0] + raw[i + 1][0]) / 3.0,
                (raw[i - 1][1] + raw[i][1] + raw[i + 1][1]) / 3.0,
            )
        )
    pts.append(raw[-1])
    chord = (pts[-1][0] - pts[0][0], pts[-1][1] - pts[0][1])
    length = 0.0
    for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
        length += math.hypot(x1 - x0, y1 - y0)
    chord_len = math.hypot(*chord)
    straightness = chord_len / length if length > 1e-9 else 0.0

    # Opening: an arc's midpoint bulges away from its chord; the gap faces
    # from the path midpoint towards the chord midpoint.
    mid_idx = len(pts) // 2
    path_mid = pts[mid_idx]
    chord_mid = ((pts[0][0] + pts[-1][0]) / 2.0, (pts[0][1] + pts[-1][1]) / 2.0)
    ox, oy = chord_mid[0] - path_mid[0], chord_mid[1] - path_mid[1]
    onorm = math.hypot(ox, oy)
    opening = (ox / onorm, oy / onorm) if onorm > 1e-9 else (0.0, 0.0)

    return TroughPath(
        n=len(pts),
        chord=chord,
        path_length=length,
        straightness=straightness,
        opening=opening,
        points=tuple(pts),
        t_first=min(tr.time for tr in strong),
        t_last=max(tr.time for tr in strong),
        spatial_extent=spatial_extent,
    )
