"""Holistic (whole-letter) recognition — the paper's proposed fix for
compounding errors.

Section VI: "One possible direction to mitigate this interference is to
treat a letter as a whole, and resort to image processing techniques for
identifying the whole letter after RFIPad's OTSU operation."  This module
implements that direction:

* the per-stroke grey maps of a session are fused into one *letter image*
  over the tag grid;
* each candidate letter gets a *template* rendered from its stroke
  specification at the same resolution;
* classification is normalised cross-correlation between the letter image
  and the templates, with the stroke-count estimate (number of segmented
  windows) used as a soft prior.

Because the holistic path never commits to per-stroke decisions, a
mis-classified stroke cannot poison the letter — the trade-off is that it
ignores temporal information (stroke order, direction) entirely.  The
``ext_holistic`` experiment compares both, and ``HybridRecognizer`` fuses
them (grammar first, holistic as fallback/tiebreaker).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..motion.letters import LETTER_STROKES, StrokeSpec, stroke_count
from ..physics.geometry import GridLayout
from .events import LetterResult, SegmentedWindow, StrokeObservation
from .grammar import TreeGrammar, _spec_polyline
from .imaging import GreyMap


def fuse_letter_image(strokes: Sequence[StrokeObservation], layout: GridLayout) -> GreyMap:
    """Fuse per-stroke grey maps into one normalised letter image.

    Each stroke map is max-normalised before summing so a vigorous stroke
    cannot drown a gentle one — the letter's *shape* is what matters.
    """
    acc = np.zeros((layout.rows, layout.cols))
    for obs in strokes:
        if obs.grey is None:
            continue
        acc += obs.grey.normalized()
    return GreyMap(acc, layout)


def render_template(letter: str, layout: GridLayout, thickness: float = 0.55) -> np.ndarray:
    """Rasterise a letter's stroke specification onto the tag grid.

    Each spec polyline is drawn into the (rows x cols) image with a
    Gaussian brush of ``thickness`` cells, matching the blur a real hand
    produces on neighbouring tags.  Output is max-normalised.
    """
    img = np.zeros((layout.rows, layout.cols))
    rr, cc = np.meshgrid(np.arange(layout.rows), np.arange(layout.cols), indexing="ij")
    for spec in LETTER_STROKES[letter.upper()]:
        for u, v in _spec_polyline(spec):
            # Letter-box (y up) -> grid coordinates.
            col = u * (layout.cols - 1)
            row = (1.0 - v) * (layout.rows - 1)
            img += np.exp(-0.5 * (((rr - row) ** 2 + (cc - col) ** 2) / thickness**2))
    peak = img.max()
    return img / peak if peak > 0 else img


def _normalised_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Zero-mean normalised cross-correlation in [-1, 1]."""
    a = a - a.mean()
    b = b - b.mean()
    denom = math.sqrt(float((a * a).sum()) * float((b * b).sum()))
    if denom <= 0.0:
        return 0.0
    return float((a * b).sum() / denom)


@dataclass
class HolisticRecognizer:
    """Template-correlation letter recogniser over fused grey maps."""

    layout: GridLayout
    #: Penalty per unit difference between segmented and spec stroke count.
    stroke_count_weight: float = 0.08
    #: Correlation below this is "no letter".
    accept_correlation: float = 0.35

    def __post_init__(self) -> None:
        self._templates: Dict[str, np.ndarray] = {
            letter: render_template(letter, self.layout) for letter in LETTER_STROKES
        }

    def score_letters(
        self, image: GreyMap, observed_strokes: Optional[int] = None
    ) -> List[Tuple[str, float]]:
        """All letters scored by correlation (higher better), best first."""
        norm = image.normalized()
        scored = []
        for letter, template in self._templates.items():
            corr = _normalised_correlation(norm, template)
            if observed_strokes is not None:
                corr -= self.stroke_count_weight * abs(
                    stroke_count(letter) - observed_strokes
                )
            scored.append((letter, corr))
        scored.sort(key=lambda pair: -pair[1])
        return scored

    def recognize(
        self,
        strokes: Sequence[StrokeObservation],
        windows: Sequence[SegmentedWindow] = (),
    ) -> LetterResult:
        image = fuse_letter_image(strokes, self.layout)
        scored = self.score_letters(image, observed_strokes=len(strokes) or None)
        best_letter, best_corr = scored[0] if scored else (None, 0.0)
        letter = best_letter if best_corr >= self.accept_correlation else None
        return LetterResult(
            letter=letter,
            strokes=tuple(strokes),
            candidates=tuple(scored[:5]),
            windows=tuple(windows),
        )


@dataclass
class HybridRecognizer:
    """Grammar-first recognition with a holistic fallback.

    * If the tree grammar accepts a letter, keep it — temporal stroke
      information is the higher-precision signal.
    * If the grammar rejects (compounded stroke errors), fall back to the
      holistic template match, which only needs the fused image.
    """

    grammar: TreeGrammar
    holistic: HolisticRecognizer

    def recognize(
        self,
        strokes: Sequence[StrokeObservation],
        windows: Sequence[SegmentedWindow] = (),
    ) -> LetterResult:
        primary = self.grammar.recognize(strokes, windows)
        if primary.letter is not None:
            return primary
        fallback = self.holistic.recognize(strokes, windows)
        if fallback.letter is None:
            return primary  # keep the grammar's richer candidate list
        return LetterResult(
            letter=fallback.letter,
            strokes=primary.strokes,
            candidates=fallback.candidates,
            windows=primary.windows,
        )
