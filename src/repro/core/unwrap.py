"""Phase de-periodicity (section III-A.3, Fig. 6).

Reader-reported phase lives in [0, 2*pi) and jumps across the boundary as
the channel drifts; accumulative phase differences computed on the wrapped
values would see spurious ~2*pi steps.  ``unwrap`` removes the periodicity
by folding successive differences into (-pi, pi] — the method of the CBID
system the paper adopts (reference [14]).

Implemented from scratch (not ``np.unwrap``) so the exact fold conventions
are pinned by our tests.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

from ..units import TWO_PI


def fold_to_pi(delta: float) -> float:
    """Fold a phase difference into the principal branch (-pi, pi]."""
    folded = math.fmod(delta + math.pi, TWO_PI)
    if folded <= 0.0:
        folded += TWO_PI
    return folded - math.pi


def fold_to_pi_many(deltas: "np.ndarray") -> np.ndarray:
    """Vectorized :func:`fold_to_pi` (bit-identical fold convention).

    ``np.fmod`` is the same C ``fmod`` as ``math.fmod``, so each element
    matches the scalar function exactly.
    """
    folded = np.fmod(np.asarray(deltas, dtype=float) + math.pi, TWO_PI)
    return np.where(folded <= 0.0, folded + TWO_PI, folded) - math.pi


def unwrap(phases: Sequence[float]) -> np.ndarray:
    """Unwrap a wrapped phase sequence into a continuous trend.

    The first sample is kept as-is; every subsequent sample moves by the
    folded difference from its predecessor, so the output never jumps by
    more than pi between samples.

    >>> import numpy as np
    >>> out = unwrap([6.2, 0.1, 0.3])
    >>> bool(abs(out[1] - out[0]) < np.pi)
    True
    """
    arr = np.asarray(phases, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D sequence, got shape {arr.shape}")
    if arr.size == 0:
        return arr.copy()
    out = np.empty_like(arr)
    out[0] = arr[0]
    prev_wrapped = arr[0]
    prev_out = arr[0]
    for i in range(1, arr.size):
        delta = fold_to_pi(arr[i] - prev_wrapped)
        prev_out = prev_out + delta
        out[i] = prev_out
        prev_wrapped = arr[i]
    return out


def unwrap_residual(phases: Sequence[float], reference: float) -> np.ndarray:
    """Subtract a (circular) reference phase, then unwrap the residual.

    This is the calibration-then-unwrap order of the paper's Eq. 8: each
    sample is first reduced modulo 2*pi against the tag's static mean, so
    the residual trend vibrates around zero; the residual is then unwrapped
    so accumulative differences see no periodicity artefacts.
    """
    arr = np.asarray(phases, dtype=float)
    residual = fold_to_pi_many(arr - reference)
    return unwrap(residual)


def total_variation(values: Sequence[float]) -> float:
    """Sum of absolute successive differences — the 'accumulative phase
    difference' primitive of Eq. 5/10."""
    arr = np.asarray(values, dtype=float)
    if arr.size < 2:
        return 0.0
    return float(np.abs(np.diff(arr)).sum())


def largest_jump(phases: Sequence[float]) -> float:
    """Largest absolute successive difference of a raw (wrapped) series.

    Diagnostic used by tests: after unwrapping this should never exceed pi.
    """
    arr = np.asarray(phases, dtype=float)
    if arr.size < 2:
        return 0.0
    return float(np.abs(np.diff(arr)).max())
