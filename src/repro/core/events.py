"""Event types flowing out of the recognition pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..motion.strokes import ArcOpening, Direction, StrokeKind
from .features import ShapeFeatures
from .imaging import BinaryMap, GreyMap


@dataclass(frozen=True)
class StrokeObservation:
    """One recognised stroke: shape, direction, position, and provenance.

    ``token`` is the grammar vocabulary item: the stroke kind name for
    lines/clicks, ``"arc:<opening>"`` for arcs — matching
    :meth:`repro.motion.letters.StrokeSpec.shape_token`.
    """

    kind: StrokeKind
    direction: Direction
    token: str
    t0: float
    t1: float
    confidence: float
    opening: Optional[ArcOpening] = None
    features: Optional[ShapeFeatures] = None
    grey: Optional[GreyMap] = None
    binary: Optional[BinaryMap] = None
    trough_order: Tuple[int, ...] = ()   # tag indices in passage order
    line_angle_deg: Optional[float] = None  # continuous orientation for lines

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def label(self) -> str:
        arrow = "" if self.kind is StrokeKind.CLICK else (
            "+" if self.direction is Direction.FORWARD else "-"
        )
        return f"{self.kind.glyph}{arrow}"


@dataclass(frozen=True)
class SegmentedWindow:
    """A candidate stroke window produced by the segmenter."""

    t0: float
    t1: float
    peak_std_rms: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class LetterResult:
    """The output of letter recognition over one writing session."""

    letter: Optional[str]                  # None when nothing matched
    strokes: Tuple[StrokeObservation, ...]
    candidates: Tuple[Tuple[str, float], ...] = ()  # (letter, score), best first
    windows: Tuple[SegmentedWindow, ...] = ()

    @property
    def stroke_tokens(self) -> Tuple[str, ...]:
        return tuple(s.token for s in self.strokes)
