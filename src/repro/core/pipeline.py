"""RFIPad end-to-end: report stream in, strokes and letters out.

The :class:`RFIPad` object owns the deployment's static calibration plus
the stage configs, and exposes the two entry points the paper evaluates:

* :meth:`RFIPad.detect_motion` — one-shot motion/stroke recognition over a
  window (Table I, Figs. 16-21, 24);
* :meth:`RFIPad.recognize_letter` — segmentation + per-stroke recognition
  + tree-grammar composition over a whole writing session (Figs. 22-23).

Since the stage decomposition (DESIGN.md §11) both methods are thin
drivers over :class:`repro.core.stages.StageSet`; the same stage objects
power the incremental :class:`repro.stream.StreamingSession`, which is
what guarantees streamed and batch results cannot drift.

No training is involved anywhere — matching the paper's "no training
period" claim, every stage is closed-form signal processing over the
calibration capture.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

from ..obs.trace import get_tracer
from ..physics.geometry import GridLayout
from ..rfid.reports import ReportLog
from .calibration import StaticCalibration, calibrate
from .classifier import ClassifierConfig
from .direction import DirectionConfig
from .events import LetterResult, SegmentedWindow, StrokeObservation
from .grammar import TreeGrammar
from .segmentation import SegmentationConfig, auto_threshold
from .stages import StageContext, StageSet, widest_window


@dataclass
class RFIPadConfig:
    """Bundle of stage configurations."""

    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    direction: DirectionConfig = field(default_factory=DirectionConfig)
    segmentation: SegmentationConfig = field(default_factory=SegmentationConfig)
    #: Use the diversity-suppressed image (Eq. 8-10).  Disabled only by the
    #: ablation experiments (Fig. 7a / Fig. 16 "without suppression").
    diversity_suppression: bool = True
    #: Apply the Eq. 9/10 inverse-bias weighting on top of calibration.
    #: Disabled only by the weighting ablation.
    bias_weighting: bool = True


class RFIPad:
    """The recognition pipeline bound to one deployed pad."""

    def __init__(
        self,
        layout: GridLayout,
        calibration: Optional[StaticCalibration] = None,
        config: Optional[RFIPadConfig] = None,
        grammar: Optional[TreeGrammar] = None,
    ) -> None:
        self.layout = layout
        self.calibration = calibration
        self.config = config if config is not None else RFIPadConfig()
        self.grammar = grammar if grammar is not None else TreeGrammar()

    # ------------------------------------------------------------------
    # Stage access
    # ------------------------------------------------------------------

    @property
    def stages(self) -> StageSet:
        """The stage objects the current config describes.

        Rebuilt on access: stages are cheap frozen dataclasses, and
        rebuilding keeps them honest against config mutation (e.g.
        :meth:`calibrate_from` retuning the segmentation config).
        """
        return StageSet.from_config(self.config, self.grammar)

    def stage_context(self) -> StageContext:
        """Layout + calibration bundle the stages read; raises uncalibrated."""
        return StageContext(self.layout, self._require_calibration())

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    def calibrate_from(
        self, static_log: ReportLog, tune_segmentation: bool = True
    ) -> SegmentationConfig:
        """Ingest a no-hand capture: per-tag statistics + threshold tuning.

        Returns the segmentation config now in force (retuned when
        ``tune_segmentation`` is set) so callers can log the auto-threshold
        the deployment ended up with.
        """
        self.calibration = calibrate(static_log)
        if tune_segmentation:
            old = self.config.segmentation
            threshold = auto_threshold(static_log, self.calibration, old)
            # noise_floor: safely above idle flutter (the auto threshold is
            # factor=14 above the static 90th percentile; 3x is the floor).
            noise_floor = max(0.05, threshold * 3.0 / 14.0)
            self.config.segmentation = dataclasses.replace(
                old, threshold=threshold, noise_floor=noise_floor
            )
        return self.config.segmentation

    def _require_calibration(self) -> StaticCalibration:
        if self.calibration is None:
            raise RuntimeError(
                "RFIPad is not calibrated; run calibrate_from() on a static capture first"
            )
        return self.calibration

    # ------------------------------------------------------------------
    # Stroke recognition
    # ------------------------------------------------------------------

    def analyze_window(
        self, log: ReportLog, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> Optional[StrokeObservation]:
        """Recognise the stroke drawn within [t0, t1) of the log.

        Returns ``None`` when the window contains no classifiable
        disturbance (empty OTSU foreground).
        """
        return self.stages.analyzer.analyze(self.stage_context(), log, t0, t1)

    def detect_motion(self, log: ReportLog) -> Optional[StrokeObservation]:
        """One-shot motion detection for a single-motion session.

        Segments the log first so lead-in/lead-out quiet periods don't
        dilute the image; falls back to whole-log analysis when the
        segmenter finds nothing (e.g. very gentle motions).
        """
        ctx = self.stage_context()
        stages = self.stages
        tracer = get_tracer()
        with tracer.span("detect_motion", reads=len(log)) as root:
            windows = stages.segmentation.run(ctx, log)
            if windows:
                widest = widest_window(windows)
                obs = stages.analyzer.analyze(ctx, log, widest.t0, widest.t1)
            else:
                obs = stages.analyzer.analyze(ctx, log)
            root.set(kind=obs.kind.name if obs is not None else None)
            return obs

    # ------------------------------------------------------------------
    # Letter recognition
    # ------------------------------------------------------------------

    def segment(self, log: ReportLog) -> List[SegmentedWindow]:
        return self.stages.segmentation.run(self.stage_context(), log)

    def recognize_letter(self, log: ReportLog) -> LetterResult:
        """Full letter pipeline: segment, classify each stroke, compose."""
        ctx = self.stage_context()
        stages = self.stages
        tracer = get_tracer()
        with tracer.span("recognize_letter", reads=len(log)) as root:
            windows = stages.segmentation.run(ctx, log)
            strokes: List[StrokeObservation] = []
            for w in windows:
                obs = stages.analyzer.analyze(ctx, log, w.t0, w.t1)
                if obs is not None:
                    strokes.append(obs)
            result = stages.grammar.run(strokes, windows)
            root.set(letter=result.letter)
            return result
