"""RFIPad end-to-end: report stream in, strokes and letters out.

The :class:`RFIPad` object owns the deployment's static calibration plus
the stage configs, and exposes the two entry points the paper evaluates:

* :meth:`RFIPad.detect_motion` — one-shot motion/stroke recognition over a
  window (Table I, Figs. 16-21, 24);
* :meth:`RFIPad.recognize_letter` — segmentation + per-stroke recognition
  + tree-grammar composition over a whole writing session (Figs. 22-23).

No training is involved anywhere — matching the paper's "no training
period" claim, every stage is closed-form signal processing over the
calibration capture.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..obs.trace import Tracer, get_tracer
from ..physics.geometry import GridLayout
from ..rfid.reports import ReportLog
from .calibration import StaticCalibration, calibrate
from .classifier import ClassifierConfig, classify_shape
from .direction import (
    DirectionConfig,
    detect_troughs,
    estimate_direction,
    passage_order,
    trough_path,
)
from .events import LetterResult, SegmentedWindow, StrokeObservation
from .grammar import TreeGrammar
from .imaging import render_grey_map
from .otsu import binarize
from .segmentation import SegmentationConfig, auto_threshold, segment_strokes
from .suppression import accumulative_differences


@dataclass
class RFIPadConfig:
    """Bundle of stage configurations."""

    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    direction: DirectionConfig = field(default_factory=DirectionConfig)
    segmentation: SegmentationConfig = field(default_factory=SegmentationConfig)
    #: Use the diversity-suppressed image (Eq. 8-10).  Disabled only by the
    #: ablation experiments (Fig. 7a / Fig. 16 "without suppression").
    diversity_suppression: bool = True
    #: Apply the Eq. 9/10 inverse-bias weighting on top of calibration.
    #: Disabled only by the weighting ablation.
    bias_weighting: bool = True


class RFIPad:
    """The recognition pipeline bound to one deployed pad."""

    def __init__(
        self,
        layout: GridLayout,
        calibration: Optional[StaticCalibration] = None,
        config: Optional[RFIPadConfig] = None,
        grammar: Optional[TreeGrammar] = None,
    ) -> None:
        self.layout = layout
        self.calibration = calibration
        self.config = config if config is not None else RFIPadConfig()
        self.grammar = grammar if grammar is not None else TreeGrammar()

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    def calibrate_from(self, static_log: ReportLog, tune_segmentation: bool = True) -> None:
        """Ingest a no-hand capture: per-tag statistics + threshold tuning."""
        self.calibration = calibrate(static_log)
        if tune_segmentation:
            import dataclasses

            old = self.config.segmentation
            threshold = auto_threshold(static_log, self.calibration, old)
            # noise_floor: safely above idle flutter (the auto threshold is
            # factor=14 above the static 90th percentile; 3x is the floor).
            noise_floor = max(0.05, threshold * 3.0 / 14.0)
            self.config.segmentation = dataclasses.replace(
                old, threshold=threshold, noise_floor=noise_floor
            )

    def _require_calibration(self) -> StaticCalibration:
        if self.calibration is None:
            raise RuntimeError(
                "RFIPad is not calibrated; run calibrate_from() on a static capture first"
            )
        return self.calibration

    # ------------------------------------------------------------------
    # Stroke recognition
    # ------------------------------------------------------------------

    def analyze_window(
        self, log: ReportLog, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> Optional[StrokeObservation]:
        """Recognise the stroke drawn within [t0, t1) of the log.

        Returns ``None`` when the window contains no classifiable
        disturbance (empty OTSU foreground).
        """
        cal = self._require_calibration()
        tracer = get_tracer()
        with tracer.span("analyze_window"):
            # Stage spans mirror the paper's stage order (DESIGN.md §obs):
            # suppression/unwrap = Eq. 8-10, imaging + otsu = grey map and
            # binarisation, direction = RSS trough ordering (III-B),
            # classify = shape decision.
            with tracer.span("suppression") as sp:
                supp = accumulative_differences(
                    log, cal, t0, t1, bias_weighting=self.config.bias_weighting
                )
                sp.set(tags=len(supp.suppressed),
                       reads=sum(supp.read_counts.values()))
            values = supp.suppressed if self.config.diversity_suppression else supp.raw
            with tracer.span("imaging"):
                grey = render_grey_map(values, self.layout)
            with tracer.span("otsu") as sp:
                binary = binarize(grey)
                sp.set(foreground=binary.foreground_count())
            # Troughs are detected over *all* calibrated tags, not just OTSU
            # foreground: with very short strokes OTSU can keep only the single
            # deepest cell, and restricting would then drop the real troughs
            # that trace the rest of the pass.  The `direction` span covers
            # trough detection + path ordering — the stage's dominant cost;
            # the final FORWARD/REVERSE vote below is a handful of flops on
            # <= rows*cols troughs and rides inside the enclosing span.
            with tracer.span("direction") as sp:
                troughs = detect_troughs(log, cal, t0, t1, self.config.direction)
                path = trough_path(troughs, self.layout, self.config.direction)
                sp.set(troughs=len(troughs))
            win_lo = t0 if t0 is not None else (log.start_time if len(log) else 0.0)
            win_hi = t1 if t1 is not None else (log.end_time if len(log) else 0.0)
            with tracer.span("classify") as sp:
                decision = classify_shape(
                    grey, binary, self.config.classifier, path,
                    window_s=max(0.0, win_hi - win_lo),
                )
                sp.set(kind=decision.kind.name if decision is not None else None)
            if decision is None:
                return None

            direction, dir_confidence = estimate_direction(
                decision.kind, troughs, self.layout, decision.opening, self.config.direction
            )

            win_t0, win_t1 = win_lo, win_hi
            return StrokeObservation(
                kind=decision.kind,
                direction=direction,
                token=decision.token,
                t0=win_t0,
                t1=win_t1,
                confidence=min(decision.confidence, 0.5 + 0.5 * dir_confidence),
                opening=decision.opening,
                features=decision.features,
                grey=grey,
                binary=binary,
                trough_order=passage_order(troughs),
                line_angle_deg=decision.line_angle_deg,
            )

    def detect_motion(self, log: ReportLog) -> Optional[StrokeObservation]:
        """One-shot motion detection for a single-motion session.

        Segments the log first so lead-in/lead-out quiet periods don't
        dilute the image; falls back to whole-log analysis when the
        segmenter finds nothing (e.g. very gentle motions).
        """
        cal = self._require_calibration()
        tracer = get_tracer()
        with tracer.span("detect_motion", reads=len(log)) as root:
            with tracer.span("segmentation") as sp:
                windows = segment_strokes(log, cal, self.config.segmentation)
                sp.set(windows=len(windows))
            if windows:
                widest = max(windows, key=lambda w: w.duration)
                obs = self.analyze_window(log, widest.t0, widest.t1)
            else:
                obs = self.analyze_window(log)
            root.set(kind=obs.kind.name if obs is not None else None)
            return obs

    # ------------------------------------------------------------------
    # Letter recognition
    # ------------------------------------------------------------------

    def segment(self, log: ReportLog) -> List[SegmentedWindow]:
        cal = self._require_calibration()
        with get_tracer().span("segmentation") as sp:
            windows = segment_strokes(log, cal, self.config.segmentation)
            sp.set(windows=len(windows))
            return windows

    def recognize_letter(self, log: ReportLog) -> LetterResult:
        """Full letter pipeline: segment, classify each stroke, compose."""
        tracer = get_tracer()
        with tracer.span("recognize_letter", reads=len(log)) as root:
            windows = self.segment(log)
            strokes: List[StrokeObservation] = []
            for w in windows:
                obs = self.analyze_window(log, w.t0, w.t1)
                if obs is not None:
                    strokes.append(obs)
            with tracer.span("grammar") as sp:
                result = self.grammar.recognize(strokes, windows)
                sp.set(strokes=len(strokes), letter=result.letter)
            root.set(letter=result.letter)
            return result

    # ------------------------------------------------------------------
    # Latency instrumentation (Fig. 24)
    # ------------------------------------------------------------------

    def timed_detect_motion(
        self, log: ReportLog
    ) -> Tuple[Optional[StrokeObservation], float]:
        """Deprecated shim: detect a motion and report the compute latency.

        Superseded by tracer spans (``repro.obs.trace``): enable the global
        tracer and read the ``detect_motion`` span, which also carries the
        per-stage breakdown.  Kept as a thin wrapper for older callers; the
        latency is measured through a private always-on tracer so it keeps
        working with global observability off.
        """
        warnings.warn(
            "timed_detect_motion is deprecated; enable repro.obs.trace.get_tracer() "
            "and read the 'detect_motion' span instead",
            DeprecationWarning,
            stacklevel=2,
        )
        shim = Tracer(enabled=True)
        with shim.span("timed_detect_motion"):
            result = self.detect_motion(log)
        return result, shim.finished[-1].duration
