"""RFIPad end-to-end: report stream in, strokes and letters out.

The :class:`RFIPad` object owns the deployment's static calibration plus
the stage configs, and exposes the two entry points the paper evaluates:

* :meth:`RFIPad.detect_motion` — one-shot motion/stroke recognition over a
  window (Table I, Figs. 16-21, 24);
* :meth:`RFIPad.recognize_letter` — segmentation + per-stroke recognition
  + tree-grammar composition over a whole writing session (Figs. 22-23).

No training is involved anywhere — matching the paper's "no training
period" claim, every stage is closed-form signal processing over the
calibration capture.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..motion.strokes import Direction, StrokeKind
from ..physics.geometry import GridLayout
from ..rfid.reports import ReportLog
from .calibration import StaticCalibration, calibrate
from .classifier import ClassifierConfig, classify_shape
from .direction import (
    DirectionConfig,
    detect_troughs,
    estimate_direction,
    passage_order,
    trough_path,
)
from .events import LetterResult, SegmentedWindow, StrokeObservation
from .grammar import TreeGrammar
from .imaging import render_grey_map
from .otsu import binarize
from .segmentation import SegmentationConfig, auto_threshold, segment_strokes
from .suppression import accumulative_differences


@dataclass
class RFIPadConfig:
    """Bundle of stage configurations."""

    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    direction: DirectionConfig = field(default_factory=DirectionConfig)
    segmentation: SegmentationConfig = field(default_factory=SegmentationConfig)
    #: Use the diversity-suppressed image (Eq. 8-10).  Disabled only by the
    #: ablation experiments (Fig. 7a / Fig. 16 "without suppression").
    diversity_suppression: bool = True
    #: Apply the Eq. 9/10 inverse-bias weighting on top of calibration.
    #: Disabled only by the weighting ablation.
    bias_weighting: bool = True


class RFIPad:
    """The recognition pipeline bound to one deployed pad."""

    def __init__(
        self,
        layout: GridLayout,
        calibration: Optional[StaticCalibration] = None,
        config: Optional[RFIPadConfig] = None,
        grammar: Optional[TreeGrammar] = None,
    ) -> None:
        self.layout = layout
        self.calibration = calibration
        self.config = config if config is not None else RFIPadConfig()
        self.grammar = grammar if grammar is not None else TreeGrammar()

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    def calibrate_from(self, static_log: ReportLog, tune_segmentation: bool = True) -> None:
        """Ingest a no-hand capture: per-tag statistics + threshold tuning."""
        self.calibration = calibrate(static_log)
        if tune_segmentation:
            import dataclasses

            old = self.config.segmentation
            threshold = auto_threshold(static_log, self.calibration, old)
            # noise_floor: safely above idle flutter (the auto threshold is
            # factor=14 above the static 90th percentile; 3x is the floor).
            noise_floor = max(0.05, threshold * 3.0 / 14.0)
            self.config.segmentation = dataclasses.replace(
                old, threshold=threshold, noise_floor=noise_floor
            )

    def _require_calibration(self) -> StaticCalibration:
        if self.calibration is None:
            raise RuntimeError(
                "RFIPad is not calibrated; run calibrate_from() on a static capture first"
            )
        return self.calibration

    # ------------------------------------------------------------------
    # Stroke recognition
    # ------------------------------------------------------------------

    def analyze_window(
        self, log: ReportLog, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> Optional[StrokeObservation]:
        """Recognise the stroke drawn within [t0, t1) of the log.

        Returns ``None`` when the window contains no classifiable
        disturbance (empty OTSU foreground).
        """
        cal = self._require_calibration()
        supp = accumulative_differences(
            log, cal, t0, t1, bias_weighting=self.config.bias_weighting
        )
        values = supp.suppressed if self.config.diversity_suppression else supp.raw
        grey = render_grey_map(values, self.layout)
        binary = binarize(grey)
        # Troughs are detected over *all* calibrated tags, not just OTSU
        # foreground: with very short strokes OTSU can keep only the single
        # deepest cell, and restricting would then drop the real troughs
        # that trace the rest of the pass.
        troughs = detect_troughs(log, cal, t0, t1, self.config.direction)
        path = trough_path(troughs, self.layout, self.config.direction)
        win_lo = t0 if t0 is not None else (log.start_time if len(log) else 0.0)
        win_hi = t1 if t1 is not None else (log.end_time if len(log) else 0.0)
        decision = classify_shape(
            grey, binary, self.config.classifier, path, window_s=max(0.0, win_hi - win_lo)
        )
        if decision is None:
            return None

        direction, dir_confidence = estimate_direction(
            decision.kind, troughs, self.layout, decision.opening, self.config.direction
        )

        win_t0, win_t1 = win_lo, win_hi
        return StrokeObservation(
            kind=decision.kind,
            direction=direction,
            token=decision.token,
            t0=win_t0,
            t1=win_t1,
            confidence=min(decision.confidence, 0.5 + 0.5 * dir_confidence),
            opening=decision.opening,
            features=decision.features,
            grey=grey,
            binary=binary,
            trough_order=passage_order(troughs),
            line_angle_deg=decision.line_angle_deg,
        )

    def detect_motion(self, log: ReportLog) -> Optional[StrokeObservation]:
        """One-shot motion detection for a single-motion session.

        Segments the log first so lead-in/lead-out quiet periods don't
        dilute the image; falls back to whole-log analysis when the
        segmenter finds nothing (e.g. very gentle motions).
        """
        cal = self._require_calibration()
        windows = segment_strokes(log, cal, self.config.segmentation)
        if windows:
            widest = max(windows, key=lambda w: w.duration)
            return self.analyze_window(log, widest.t0, widest.t1)
        return self.analyze_window(log)

    # ------------------------------------------------------------------
    # Letter recognition
    # ------------------------------------------------------------------

    def segment(self, log: ReportLog) -> List[SegmentedWindow]:
        cal = self._require_calibration()
        return segment_strokes(log, cal, self.config.segmentation)

    def recognize_letter(self, log: ReportLog) -> LetterResult:
        """Full letter pipeline: segment, classify each stroke, compose."""
        windows = self.segment(log)
        strokes: List[StrokeObservation] = []
        for w in windows:
            obs = self.analyze_window(log, w.t0, w.t1)
            if obs is not None:
                strokes.append(obs)
        return self.grammar.recognize(strokes, windows)

    # ------------------------------------------------------------------
    # Latency instrumentation (Fig. 24)
    # ------------------------------------------------------------------

    def timed_detect_motion(
        self, log: ReportLog
    ) -> Tuple[Optional[StrokeObservation], float]:
        """Detect a motion and report the wall-clock compute latency.

        The paper's response time is "between when a volunteer finishes one
        motion and when the motion is correctly reported" — with the report
        stream already buffered, that is the pipeline compute time.
        """
        start = time.perf_counter()
        result = self.detect_motion(log)
        return result, time.perf_counter() - start
