"""Trace inspection utilities: terminal-friendly views of session data.

The paper's figures are time-series and grey maps; these helpers render
the same views as text so the CLI and examples can show what the pipeline
sees without a plotting stack (the repo is matplotlib-free by design).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .core.calibration import StaticCalibration
from .core.segmentation import SegmentationConfig, frame_rms, window_std
from .rfid.reports import ReportLog

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a numeric series as a unicode sparkline.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    if width is not None and width > 0 and arr.size > width:
        # Downsample by averaging fixed-size chunks.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() for a, b in zip(edges, edges[1:]) if b > a])
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return _SPARK_LEVELS[0] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(v))] for v in scaled)


def phase_sparklines(
    log: ReportLog,
    calibration: StaticCalibration,
    tag_indices: Optional[Sequence[int]] = None,
    width: int = 48,
) -> List[str]:
    """One line per tag: its calibrated phase residual over the session."""
    per_tag = log.per_tag()
    indices = tag_indices if tag_indices is not None else sorted(per_tag)
    lines = []
    for idx in indices:
        if idx not in per_tag or idx not in calibration.tags:
            continue
        series = per_tag[idx]
        residual = calibration.residual_series(idx, series.phases)
        lines.append(f"tag {idx:2d} |{sparkline(np.abs(residual), width)}|")
    return lines


def rss_sparklines(
    log: ReportLog,
    calibration: StaticCalibration,
    tag_indices: Optional[Sequence[int]] = None,
    width: int = 48,
) -> List[str]:
    """One line per tag: RSS *dip* below its static baseline (troughs pop)."""
    per_tag = log.per_tag()
    indices = tag_indices if tag_indices is not None else sorted(per_tag)
    lines = []
    for idx in indices:
        if idx not in per_tag or idx not in calibration.tags:
            continue
        series = per_tag[idx]
        dip = calibration.mean_rss(idx) - series.rss
        lines.append(f"tag {idx:2d} |{sparkline(np.clip(dip, 0, None), width)}|")
    return lines


def activity_trace(
    log: ReportLog,
    calibration: StaticCalibration,
    config: SegmentationConfig = SegmentationConfig(),
    width: int = 64,
) -> str:
    """Two sparklines: frame RMS (Eq. 11) and sliding std(RMS) (Eq. 12)."""
    times, rms = frame_rms(log, calibration, config.frame_s)
    if rms.size == 0:
        return "(empty log)"
    stds = window_std(rms, config.window_frames)
    return (
        f"rms      |{sparkline(rms, width)}|\n"
        f"std(rms) |{sparkline(stds, width)}|"
    )


def read_rate_table(log: ReportLog) -> List[Tuple[int, int, float]]:
    """(tag, reads, reads/s) rows — the MAC's sampling budget per tag."""
    duration = max(log.duration, 1e-9)
    return [
        (idx, log.read_count(idx), log.read_count(idx) / duration)
        for idx in log.tag_indices()
    ]


def session_summary(log: ReportLog, calibration: Optional[StaticCalibration] = None) -> str:
    """A compact multi-line summary of one session log."""
    if len(log) == 0:
        return "empty session"
    lines = [
        f"reads: {len(log)} over {log.duration:.2f} s "
        f"({log.aggregate_read_rate():.0f} reads/s across {len(log.tag_indices())} tags)"
    ]
    rates = [r for _, _, r in read_rate_table(log)]
    lines.append(
        f"per-tag rate: min {min(rates):.1f} / median {np.median(rates):.1f} "
        f"/ max {max(rates):.1f} reads/s"
    )
    if calibration is not None:
        lines.append(activity_trace(log, calibration))
    return "\n".join(lines)
