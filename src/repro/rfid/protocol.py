"""EPC Class-1 Generation-2 inventory MAC: framed slotted ALOHA with the
Q-algorithm.

RFIPad inherits its sampling process from the Gen2 air protocol: the reader
can only observe a tag when that tag wins a singulation slot, so per-tag
read timestamps are irregular and the aggregate read rate is bounded by
slot timing.  This is the mechanism behind the paper's *undersampling*
discussion (fast hand motions lose accuracy, section V-B.7 / VI): the MAC,
not the hand, sets the temporal resolution.

The implementation follows the standard's inventory round structure:

* the reader issues ``Query(Q)``; every participating tag draws a slot
  counter uniformly from ``[0, 2^Q - 1]``;
* slots advance with ``QueryRep``; a tag at zero backscatters an RN16;
* a clean RN16 is ACKed and the tag replies EPC (a *successful* slot);
* two or more tags at zero collide (collision slot); no tag is an idle slot;
* the reader adapts Q between rounds with the floating-point Q-algorithm
  (Impinj-style, C = 0.35 down / 0.65 up... we use the common symmetric
  variant with separate collision/idle weights).

Timing constants follow Gen2 Miller-4 at 250 kbps backscatter link
frequency — the profile commodity readers pick in dense-reader mode — and
give an aggregate throughput of roughly 200-350 reads/s, matching what an
Impinj R420 delivers on a 25-tag population.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LinkProfile:
    """A Gen2 air-interface profile: modulation and rate parameters.

    Slot durations are derived from the standard's timing structure:
    reader commands go out at ~1/(1.5 * Tari) symbols/s, tag replies at
    BLF / M bits/s (M the Miller subcarrier factor), with the T1/T2/T3
    turnaround gaps scaled off the backscatter link period.

    The paper's throughput discussion (section VI) proposes shrinking the
    per-tag packet / speeding the link to fight undersampling at fast hand
    speeds — that is exactly a profile change, so the profile is a first-
    class knob here (see the `ext_speed` experiment).
    """

    name: str = "dense-reader-M4"
    tari_s: float = 12.5e-6
    blf_hz: float = 250e3
    miller: int = 4
    epc_bits: int = 128          # PC + EPC-96 + CRC

    def __post_init__(self) -> None:
        if self.tari_s <= 0 or self.blf_hz <= 0:
            raise ValueError("tari and BLF must be positive")
        if self.miller not in (1, 2, 4, 8):
            raise ValueError("miller factor must be 1, 2, 4, or 8")
        if self.epc_bits < 16:
            raise ValueError("EPC reply cannot be shorter than 16 bits")

    @property
    def reader_bit_s(self) -> float:
        """Average reader-to-tag bit duration (PIE, ~1.5 Tari/bit)."""
        return 1.5 * self.tari_s

    @property
    def tag_bit_s(self) -> float:
        """Tag-to-reader bit duration."""
        return self.miller / self.blf_hz

    @property
    def t1_s(self) -> float:
        """Reader-to-tag turnaround (max(RTcal, 10/BLF) ~ 10 link periods)."""
        return 10.0 / self.blf_hz

    @property
    def success_slot_s(self) -> float:
        """QueryRep + RN16 + ACK + EPC reply, with turnarounds."""
        query_rep = 4 * self.reader_bit_s
        rn16 = (6 + 16) * self.tag_bit_s          # preamble + RN16
        ack = 18 * self.reader_bit_s
        epc = (6 + self.epc_bits) * self.tag_bit_s
        return query_rep + self.t1_s + rn16 + self.t1_s + ack + self.t1_s + epc + self.t1_s

    @property
    def collision_slot_s(self) -> float:
        """QueryRep + garbled RN16 + timeout."""
        return 4 * self.reader_bit_s + self.t1_s + (6 + 16) * self.tag_bit_s + self.t1_s

    @property
    def idle_slot_s(self) -> float:
        """QueryRep + the T3 no-reply timeout."""
        return 4 * self.reader_bit_s + 2.0 * self.t1_s

    @property
    def round_overhead_s(self) -> float:
        """Full Query (22 bits) + Select at round start."""
        return (22 + 45) * self.reader_bit_s + 2.0 * self.t1_s


#: The commodity default: dense-reader mode, Miller-4 at BLF 250 kHz.
PROFILE_DENSE = LinkProfile()

#: High-throughput profile (Miller-2, BLF 640 kHz, Tari 6.25 us) — the
#: kind of link a deployment would pick to fight undersampling.
PROFILE_FAST = LinkProfile(name="fast-M2", tari_s=6.25e-6, blf_hz=640e3, miller=2)

#: Interference-robust profile (Miller-8, BLF 160 kHz) — slowest.
PROFILE_ROBUST = LinkProfile(name="robust-M8", tari_s=25e-6, blf_hz=160e3, miller=8)

#: Short-EPC variant of the fast profile: the paper's "reducing the tag
#: packet length" suggestion (TID-less 16-bit handle replies).
PROFILE_FAST_SHORT = LinkProfile(
    name="fast-M2-short", tari_s=6.25e-6, blf_hz=640e3, miller=2, epc_bits=48
)

# Back-compatible module-level constants (the dense profile's timings).
SUCCESS_SLOT_S = PROFILE_DENSE.success_slot_s
COLLISION_SLOT_S = PROFILE_DENSE.collision_slot_s
IDLE_SLOT_S = PROFILE_DENSE.idle_slot_s
ROUND_OVERHEAD_S = PROFILE_DENSE.round_overhead_s


@dataclass(frozen=True)
class SlotOutcome:
    """Result of one MAC slot."""

    time: float            # slot start time, seconds since session start
    duration: float        # slot length, seconds
    kind: str              # "success" | "collision" | "idle"
    winner: Optional[int]  # index into the participating population


@dataclass
class QAlgorithm:
    """Floating-point Q adaptation (Gen2 Annex D style).

    ``qfp`` drifts up on collisions and down on idles; the integer Q used
    for the next round is ``round(qfp)`` clamped to [0, 15].
    """

    qfp: float = 4.0
    collision_weight: float = 0.5
    idle_weight: float = 0.15
    q_min: float = 0.0
    q_max: float = 15.0

    def on_collision(self) -> None:
        self.qfp = min(self.q_max, self.qfp + self.collision_weight)

    def on_idle(self) -> None:
        self.qfp = max(self.q_min, self.qfp - self.idle_weight)

    @property
    def q(self) -> int:
        return int(round(self.qfp))


@dataclass
class InventoryStats:
    """Aggregate MAC statistics for a simulated stretch of inventory."""

    successes: int = 0
    collisions: int = 0
    idles: int = 0
    elapsed: float = 0.0

    @property
    def slots(self) -> int:
        return self.successes + self.collisions + self.idles

    @property
    def read_rate(self) -> float:
        """Successful reads per second."""
        if self.elapsed <= 0.0:
            return 0.0
        return self.successes / self.elapsed

    @property
    def efficiency(self) -> float:
        """Fraction of slots that carried an EPC."""
        if self.slots == 0:
            return 0.0
        return self.successes / self.slots


class Gen2Inventory:
    """A streaming Gen2 inventory engine.

    Drives inventory rounds over a population whose *readability* can change
    between slots (the caller supplies, per round, which tags currently
    power up).  Yields :class:`SlotOutcome` events in time order; the reader
    layer converts successes into channel observations.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        q_initial: float = 3.0,
        start_time: float = 0.0,
        profile: "LinkProfile | None" = None,
    ) -> None:
        self._rng = rng
        self._qalg = QAlgorithm(qfp=q_initial)
        self._clock = start_time
        self.profile = profile if profile is not None else PROFILE_DENSE
        self.stats = InventoryStats()
        # Slot durations are pure functions of the (frozen) profile; resolve
        # them once instead of re-deriving the timing tree every slot.
        self._idle_s = self.profile.idle_slot_s
        self._success_s = self.profile.success_slot_s
        self._collision_s = self.profile.collision_slot_s
        self._round_overhead_s = self.profile.round_overhead_s

    @property
    def clock(self) -> float:
        return self._clock

    @property
    def current_q(self) -> int:
        return self._qalg.q

    def run_round(
        self, readable: Sequence[int], successes_only: bool = False
    ) -> Iterator[SlotOutcome]:
        """Run one inventory round over the currently-readable tag indices.

        Gen2 semantics: each readable tag draws a slot in [0, 2^Q - 1]; the
        reader steps through all slots.  Tags singulated in this round stay
        quiet for its remainder (session flag), so each tag is read at most
        once per round.

        ``successes_only`` suppresses the idle/collision outcome objects
        (clock, stats, and Q adaptation still advance identically) — the
        reader's collect loop only consumes successes, and most slots in a
        tuned round are not.
        """
        self._clock += self._round_overhead_s
        self.stats.elapsed += self._round_overhead_s
        q = self._qalg.q
        n_slots = 2**q
        if not readable:
            # An empty round still burns the Query overhead; Q drifts down.
            self._qalg.on_idle()
            return

        draws = self._rng.integers(0, n_slots, size=len(readable))
        slot_map: Dict[int, List[int]] = {}
        for tag_idx, slot in zip(readable, draws):
            slot_map.setdefault(int(slot), []).append(tag_idx)

        stats = self.stats
        qalg = self._qalg
        q_min, q_max = qalg.q_min, qalg.q_max
        idle_w, coll_w = qalg.idle_weight, qalg.collision_weight
        for slot in range(n_slots):
            start = self._clock
            contenders = slot_map.get(slot)
            if contenders is None:
                duration, kind, winner = self._idle_s, "idle", None
                # Inlined QAlgorithm.on_idle / on_collision: the adaptation
                # runs once per slot, and the method-call overhead shows up
                # in the battery profile.
                qalg.qfp = max(q_min, qalg.qfp - idle_w)
                stats.idles += 1
            elif len(contenders) == 1:
                duration, kind, winner = self._success_s, "success", contenders[0]
                stats.successes += 1
            else:
                duration, kind, winner = self._collision_s, "collision", None
                qalg.qfp = min(q_max, qalg.qfp + coll_w)
                stats.collisions += 1
            self._clock = start + duration
            stats.elapsed += duration
            if not successes_only or kind == "success":
                yield SlotOutcome(start, duration, kind, winner)

    def run_until(
        self,
        end_time: float,
        readable_at: "callable[[float], Sequence[int]]",
        successes_only: bool = False,
    ) -> Iterator[SlotOutcome]:
        """Run rounds back-to-back until the clock passes ``end_time``.

        ``readable_at(t)`` returns the indices of tags that power up at
        round start time ``t`` — readability is resampled every round so
        that a hand shadowing a tag can make it drop out of inventory,
        another observable the paper notes (unreadable tags, IV-B.1).
        """
        if end_time <= self._clock:
            return
        while self._clock < end_time:
            readable = readable_at(self._clock)
            yield from self.run_round(readable, successes_only=successes_only)


def expected_round_efficiency(n_tags: int, q: int) -> float:
    """Analytic slot-success probability for n tags in 2^Q slots.

    Used by protocol tests: with n tags and N = 2^Q slots the expected
    fraction of successful slots is n * (1/N) * (1 - 1/N)^(n-1) per slot.
    Maximal near N ~= n (the classic framed-ALOHA 1/e bound).
    """
    if n_tags < 0 or q < 0:
        raise ValueError("n_tags and q must be non-negative")
    n_slots = 2**q
    if n_tags == 0:
        return 0.0
    p = 1.0 / n_slots
    return n_tags * p * (1.0 - p) ** (n_tags - 1)
