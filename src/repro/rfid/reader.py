"""The reader: Gen2 MAC + channel physics + receiver -> report stream.

This is the simulated counterpart of the paper's Impinj Speedway R420 with
the Octane low-level-data extension: it runs inventory rounds over the
deployed array and, for every successful singulation, evaluates the full
backscatter channel *at that instant* (hand position included) and emits a
:class:`~repro.rfid.reports.TagReadReport`.

The scene is supplied as a callable ``hand_pose_at(t)`` so the reader stays
agnostic of how trajectories are produced — the motion layer generates
them, replay from a file would work just as well.
"""

from __future__ import annotations

import cmath
import math
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..physics.antenna import ReaderAntenna
from ..physics.channel import ChannelModel, Scatterer, detuning_phase_rad
from ..physics.channel_vec import ChannelEngine
from ..physics.hand import HandPose, PoseTrack, occlusion_loss_db, occlusion_loss_db_batch
from ..physics.multipath import Environment, free_space
from ..physics.noise import ReceiverNoise, doppler_estimate_hz
from ..units import (
    DEFAULT_FREQUENCY_HZ,
    TWO_PI,
    db_to_linear,
    dbm_to_watts,
    wavelength,
    wrap_phase,
)
from .deployment import TagArray
from .inventory_vec import RoundBatchInventory, TrialAxisInventory
from .protocol import Gen2Inventory, LinkProfile
from .reports import ReportLog, TagReadReport

HandPoseFn = Callable[[float], Optional[HandPose]]
PoseTrackFn = Callable[[np.ndarray], PoseTrack]


@dataclass
class CollectSpec:
    """One lane of a trial-axis collect: an independent inventory window.

    ``rng`` is the lane's private generator (the per-trial
    ``SeedSequence(seed, spawn_key=(index,))`` stream); the lane consumes
    it in exactly the order the solo :meth:`Reader.collect` would, which
    is what makes lockstep execution bit-identical per lane.
    """

    duration: float
    hand_pose_at: Optional[HandPoseFn] = None
    rng: Optional[np.random.Generator] = None
    start_time: float = 0.0
    pose_at_many: Optional[PoseTrackFn] = None


class LaneCollect:
    """Accumulated MAC output of one lane, awaiting :meth:`Reader.emit_lane`."""

    __slots__ = (
        "spec", "inv", "end", "pose_at", "pose_at_many",
        "times", "winners", "z", "n",
    )

    def __init__(
        self,
        spec: CollectSpec,
        inv: RoundBatchInventory,
        pose_at: HandPoseFn,
        pose_at_many: Optional[PoseTrackFn],
    ) -> None:
        self.spec = spec
        self.inv = inv
        self.end = spec.start_time + spec.duration
        self.pose_at = pose_at
        self.pose_at_many = pose_at_many
        self.times: List[np.ndarray] = []
        self.winners: List[np.ndarray] = []
        self.z: List[np.ndarray] = []
        self.n = 0


@dataclass(frozen=True)
class ReaderConfig:
    """Static reader configuration (the knobs the paper's evaluation sweeps).

    ``system_loss_db`` is the *one-way* fixed implementation loss — cables,
    polarisation mismatch, antenna inefficiency — that separates the ideal
    link budget from what a real reader reports.
    """

    tx_power_dbm: float = 30.0
    frequency_hz: float = DEFAULT_FREQUENCY_HZ
    system_loss_db: float = 5.0
    theta_reader: float = 1.234  # theta_T + theta_R circuit phase, radians
    los_occlusion: bool = False  # ceiling (LOS) deployments suffer arm blockage
    antenna_port: int = 1
    #: Gen2 air-interface profile; None selects the dense-reader default.
    #: Faster profiles raise the read rate and fight undersampling
    #: (section VI's throughput mitigation, exercised by `ext_speed`).
    link_profile: "LinkProfile | None" = None

    @property
    def tx_power_w(self) -> float:
        return dbm_to_watts(self.tx_power_dbm)

    @property
    def wavelength(self) -> float:
        return wavelength(self.frequency_hz)


class Reader:
    """A single-antenna reader bound to one tag array and one environment.

    ``use_engine`` selects the vectorized :class:`ChannelEngine` hot path
    (the default).  ``False`` — or the ``REPRO_SCALAR_CHANNEL=1``
    environment variable when ``use_engine`` is left as ``None`` — runs the
    original per-tag scalar path, kept as the reference implementation;
    both produce bit-identical report streams for the same seed (enforced
    by ``tests/rfid/test_determinism.py``).
    """

    def __init__(
        self,
        antenna: ReaderAntenna,
        array: TagArray,
        config: ReaderConfig = ReaderConfig(),
        environment: Optional[Environment] = None,
        noise: ReceiverNoise = ReceiverNoise(),
        rng: Optional[np.random.Generator] = None,
        use_engine: Optional[bool] = None,
    ) -> None:
        self.antenna = antenna
        self.array = array
        self.config = config
        self.environment = environment if environment is not None else free_space()
        self.noise = noise
        self.rng = rng if rng is not None else np.random.default_rng(0)
        # Static multipath geometry: image positions never move while the
        # deployment stands, only their coefficients flutter between reads.
        self._nominal_images = self.environment.image_antennas(antenna.position)
        # Nominal (flutter-free) channel for readability checks.
        self._nominal_channel = ChannelModel(
            antenna,
            config.wavelength,
            self._nominal_images,
        )
        if use_engine is None:
            use_engine = os.environ.get("REPRO_SCALAR_CHANNEL", "0") != "1"
        self._engine: Optional[ChannelEngine] = None
        if use_engine:
            with get_tracer().span("channel.batch", stage="precompute", tags=len(array.tags)):
                self._engine = ChannelEngine(
                    antenna,
                    config.wavelength,
                    [tag.position for tag in array.tags],
                    [tag.gain_linear for tag in array.tags],
                    self._nominal_images,
                )
        self._static_loss_db = np.array([tag.static_shadow_db for tag in array.tags])
        self._static_powers: Optional[np.ndarray] = None
        self._sens_key: Optional[Tuple[float, ...]] = None
        self._sens_w: Optional[np.ndarray] = None
        # Direct + nominal-reflector terms under the static per-tag losses:
        # constant for every readability check that adds no occlusion, so
        # the per-round batch touches only the scatterer/shadow terms.
        self._static_base: Optional[np.ndarray] = (
            self._engine.static_base(self._static_loss_db)
            if self._engine is not None
            else None
        )
        self._one_way_loss = math.sqrt(db_to_linear(-config.system_loss_db))
        self._last_read: Dict[int, Tuple[float, float]] = {}  # tag -> (t, phase)
        # Per-template readability arrays (arm offsets, RCS column, shadow
        # params) keyed by the pose's parameter tuple — poses share a
        # template per script, so this is computed once per session.
        self._pose_cache: Dict[Tuple[float, ...], Tuple[np.ndarray, np.ndarray, Tuple[float, float, float]]] = {}

    # ------------------------------------------------------------------
    # Per-read channel evaluation
    # ------------------------------------------------------------------

    def _scatterers(self, pose: Optional[HandPose]) -> List[Scatterer]:
        if pose is None:
            return []
        return pose.scatterers(include_arm=True)

    def _direct_loss_db(self, tag_index: int, pose: Optional[HandPose]) -> float:
        tag = self.array.tags[tag_index]
        loss = tag.static_shadow_db
        if self.config.los_occlusion and pose is not None:
            loss += occlusion_loss_db(self.antenna.position, tag.position, pose)
        return loss

    def incident_power_w(self, tag_index: int, pose: Optional[HandPose]) -> float:
        """Forward-link power at the tag, including system loss and coupling."""
        tag = self.array.tags[tag_index]
        g = self._nominal_channel.one_way(
            tag.position,
            tag.gain_linear,
            self._scatterers(pose),
            self._direct_loss_db(tag_index, pose),
        )
        return self.config.tx_power_w * abs(g * self._one_way_loss) ** 2

    def readable_indices(self, pose: Optional[HandPose]) -> List[int]:
        """Tags whose ICs power up under the current scene.

        With the engine enabled this is **one** batched power evaluation
        over the whole array instead of N independent scalar ray sums; the
        hand-free scene (calibration, idle gaps) is fully static, so its
        incident powers are computed once and cached.  IC sensitivities are
        always read live — deployments (and the failure-injection tests)
        may kill tags after the reader is built.
        """
        if self._engine is None:
            return [
                i
                for i, tag in enumerate(self.array.tags)
                if tag.is_powered(self.incident_power_w(i, pose))
            ]
        return self._readable_arr(pose).tolist()

    def _pose_fast_arrays(
        self, pose: HandPose
    ) -> Tuple[np.ndarray, np.ndarray, Tuple[float, float, float]]:
        """Template arrays for :meth:`ChannelEngine.scene_powers`.

        The offsets are the exact ``u * k`` products of
        :meth:`HandPose.arm_points` (row 0 zeros: the hand itself), so
        ``position + offsets`` reproduces the scalar arm-point coordinates
        bit-for-bit.
        """
        key = (
            pose.arm_direction.x, pose.arm_direction.y, pose.arm_direction.z,
            pose.arm_length, pose.hand_rcs_m2, pose.arm_rcs_m2,
            pose.shadow_depth_db, pose.detune_rad,
        )
        entry = self._pose_cache.get(key)
        if entry is None:
            direction = pose.arm_direction.normalized()
            ux, uy, uz = direction.x, direction.y, direction.z
            ks = [pose.arm_length * (i + 1) / 3 for i in range(3)]
            offsets = np.zeros((4, 3))
            for row, k in enumerate(ks, start=1):
                offsets[row, 0] = ux * k
                offsets[row, 1] = uy * k
                offsets[row, 2] = uz * k
            per_point = pose.arm_rcs_m2 / 3
            rcs = np.array([pose.hand_rcs_m2, per_point, per_point, per_point])
            hand_sc = pose.scatterers(include_arm=False)[0]
            shadow = (
                hand_sc.shadow_depth_db,
                hand_sc.shadow_lateral_scale,
                hand_sc.shadow_vertical_scale,
            )
            entry = (offsets, rcs, shadow)
            self._pose_cache[key] = entry
        return entry

    def _readable_arr(
        self, pose: Optional[HandPose], sens_w: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Engine-tier :meth:`readable_indices`, as an int64 index array.

        The non-LOS hand case — every round of every writing trial — runs
        through :meth:`ChannelEngine.scene_powers` with cached template
        arrays; LOS occlusion keeps the general ``one_way_batch`` route
        (its per-tag direct losses depend on the pose).  ``sens_w`` lets a
        collect window pass the sensitivity vector it resolved once up
        front — nothing can mutate tag sensitivities *inside* a window
        (the simulator is single-threaded), only between collects.
        """
        if pose is None and self._static_powers is not None:
            powers = self._static_powers
        else:
            with get_tracer().span("channel.batch", tags=len(self.array.tags)):
                if self.config.los_occlusion and pose is not None:
                    loss_db = self._static_loss_db + occlusion_loss_db_batch(
                        self.antenna.position, self._engine.tag_positions_np, pose
                    )
                    g = self._engine.one_way_batch(self._scatterers(pose), loss_db)
                    powers = self.config.tx_power_w * np.abs(g * self._one_way_loss) ** 2
                elif pose is not None:
                    offsets, rcs, shadow = self._pose_fast_arrays(pose)
                    p = pose.position
                    powers = self._engine.scene_powers(
                        self._static_base,
                        self.config.tx_power_w,
                        self._one_way_loss,
                        (p.x, p.y, p.z),
                        offsets,
                        rcs,
                        shadow,
                    )
                else:
                    powers = self._engine.scene_powers(
                        self._static_base, self.config.tx_power_w, self._one_way_loss
                    )
            if pose is None:
                self._static_powers = powers
        if sens_w is None:
            sens_w = self._sensitivity_w()
        return np.nonzero(powers >= sens_w)[0]

    def _sensitivity_w(self) -> np.ndarray:
        """Per-tag IC wake-up thresholds (watts), revalidated on every call.

        The dBm fields are the mutable source of truth; the watts array is
        re-derived only when one of them changes (tag death injection).
        """
        key = tuple(tag.ic_sensitivity_dbm for tag in self.array.tags)
        if key != self._sens_key:
            self._sens_key = key
            self._sens_w = np.array([tag.ic_sensitivity_w for tag in self.array.tags])
        return self._sens_w

    def observe_tag(self, tag_index: int, t: float, pose: Optional[HandPose]) -> TagReadReport:
        """Evaluate the channel and produce the LLRP-style report for one read."""
        tag = self.array.tags[tag_index]
        scatterers = self._scatterers(pose)
        loss_db = self._direct_loss_db(tag_index, pose)
        if self._engine is not None:
            # Per-read environment flutter: only the reflection coefficients
            # change between reads, so resample them against the cached
            # image geometry (same RNG draws as Environment.image_antennas).
            gammas = self.environment.sample_gammas(self.rng)
            s = self._engine.roundtrip_single(
                tag_index,
                self.config.tx_power_w,
                tag.modulation_efficiency,
                scatterers,
                loss_db,
                gammas,
            )
            detune = detuning_phase_rad(tag.position, scatterers)
        else:
            # Scalar reference path: rebuild the fluttered channel per read.
            channel = ChannelModel(
                self.antenna,
                self.config.wavelength,
                self.environment.image_antennas(self.antenna.position, self.rng),
            )
            s = channel.roundtrip(
                self.config.tx_power_w,
                tag.position,
                tag.gain_linear,
                tag.modulation_efficiency,
                scatterers,
                loss_db,
            )
            detune = channel.detuning_phase_rad(tag.position, scatterers)
        s *= self._one_way_loss**2
        # Circuit phase offsets: reader TX+RX chain plus the tag's
        # reflection characteristic (Eq. 6-7 of the paper), plus the
        # near-field resonance detuning a hovering hand imposes on the tag.
        s *= cmath.exp(-1j * (self.config.theta_reader + tag.theta_tag + detune))

        rss_dbm, phase = self.noise.observe(s, self.rng)

        doppler = 0.0
        if tag_index in self._last_read:
            t_prev, phase_prev = self._last_read[tag_index]
            if t > t_prev:
                doppler = doppler_estimate_hz(phase, phase_prev, t - t_prev, self.config.wavelength)
        self._last_read[tag_index] = (t, phase)

        return TagReadReport(
            epc=tag.epc,
            tag_index=tag.index,
            timestamp=t,
            phase_rad=phase,
            rss_dbm=rss_dbm,
            doppler_hz=doppler,
            antenna_port=self.config.antenna_port,
        )

    # ------------------------------------------------------------------
    # Inventory sessions
    # ------------------------------------------------------------------

    def collect(
        self,
        duration: float,
        hand_pose_at: Optional[HandPoseFn] = None,
        start_time: float = 0.0,
        log: Optional[ReportLog] = None,
        pose_at_many: Optional[PoseTrackFn] = None,
    ) -> ReportLog:
        """Run continuous inventory for ``duration`` seconds.

        ``hand_pose_at(t)`` returns the hand pose at simulation time ``t``
        (or ``None`` when no hand is in the scene).  Readability is
        re-evaluated once per inventory round; each successful slot gets a
        full channel evaluation at the slot's own timestamp.

        With the channel engine enabled the window runs on the round-batched
        path: the MAC resolves whole rounds (:class:`RoundBatchInventory`)
        and all of a window's successes go through the engine's row-batched
        channel kernel, emitting a bit-identical report stream.
        ``REPRO_SCALAR_INVENTORY=1`` forces the scalar slot loop (the
        reference for the golden-stream equality tests).  ``pose_at_many``
        optionally supplies the vectorized pose clock; when ``hand_pose_at``
        is a bound method of an object exposing ``pose_at_many`` (a
        :class:`~repro.motion.script.WritingScript`), it is picked up
        automatically.
        """
        if duration <= 0.0:
            raise ValueError(f"duration must be positive, got {duration}")
        pose_at: HandPoseFn = hand_pose_at if hand_pose_at is not None else (lambda t: None)
        if pose_at_many is None and hand_pose_at is not None:
            owner = getattr(hand_pose_at, "__self__", None)
            if owner is not None:
                pose_at_many = getattr(owner, "pose_at_many", None)
        out = log if log is not None else ReportLog()
        n_before = len(out)
        use_batched = (
            self._engine is not None
            and os.environ.get("REPRO_SCALAR_INVENTORY", "0") != "1"
        )
        if use_batched:
            return self._collect_batched(
                duration, pose_at, pose_at_many, start_time, out, n_before
            )
        return self._collect_scalar(duration, pose_at, start_time, out, n_before)

    def _collect_scalar(
        self,
        duration: float,
        pose_at: HandPoseFn,
        start_time: float,
        out: ReportLog,
        n_before: int,
    ) -> ReportLog:
        """The reference slot loop: one ``observe_tag`` per success."""
        inventory = Gen2Inventory(
            self.rng, start_time=start_time, profile=self.config.link_profile
        )

        def readable_at(t: float) -> Sequence[int]:
            return self.readable_indices(pose_at(t))

        with get_tracer().span("reader.collect", duration_s=duration) as sp:
            for slot in inventory.run_until(
                start_time + duration, readable_at, successes_only=True
            ):
                if slot.winner is not None:
                    out.append(self.observe_tag(slot.winner, slot.time, pose_at(slot.time)))
            stats = inventory.stats
            sp.set(
                reads=stats.successes,
                collisions=stats.collisions,
                idles=stats.idles,
                read_rate_hz=round(stats.read_rate, 1),
            )
        self.last_inventory_stats = inventory.stats
        self._record_metrics(inventory.stats, out, n_before)
        return out

    def _collect_batched(
        self,
        duration: float,
        pose_at: HandPoseFn,
        pose_at_many: Optional[PoseTrackFn],
        start_time: float,
        out: ReportLog,
        n_before: int,
    ) -> ReportLog:
        """Round-batched inventory + row-batched channel evaluation.

        RNG stream contract (what makes the output bit-identical to the
        scalar path): per round, the MAC consumes one ``integers`` draw,
        then the scalar path consumes ``flutter + 4`` standard normals per
        success *in slot order* before the next round's draw.  Here each
        round's successes pull one ``standard_normal(k * nz)`` block inside
        the generator loop — same stream positions, same values — and the
        block is later sliced per read in the same slot order.
        """
        inventory = RoundBatchInventory(
            self.rng, start_time=start_time, profile=self.config.link_profile
        )
        nz_f = self.environment.flutter_draw_count
        nz = nz_f + 4
        sens_w = self._sensitivity_w()

        def readable_at(t: float) -> np.ndarray:
            return self._readable_arr(pose_at(t), sens_w)

        with get_tracer().span("reader.collect", duration_s=duration) as sp:
            all_times: List[np.ndarray] = []
            all_winners: List[np.ndarray] = []
            all_z: List[np.ndarray] = []
            n_total = 0
            for rr in inventory.run_until_batch(start_time + duration, readable_at):
                k = rr.n_success
                if k == 0:
                    continue
                all_times.append(rr.times)
                all_winners.append(rr.winners)
                all_z.append(self.rng.standard_normal(k * nz))
                n_total += k
            if n_total:
                times = np.concatenate(all_times)
                winners = np.concatenate(all_winners)
                z = np.concatenate(all_z).reshape(n_total, nz)
                self._emit_batched(times, winners, z, nz_f, pose_at, pose_at_many, out)
            stats = inventory.stats
            sp.set(
                reads=stats.successes,
                collisions=stats.collisions,
                idles=stats.idles,
                read_rate_hz=round(stats.read_rate, 1),
            )
        self.last_inventory_stats = inventory.stats
        self._record_metrics(inventory.stats, out, n_before)
        return out

    def _emit_batched(
        self,
        times: np.ndarray,
        winners: np.ndarray,
        z: np.ndarray,
        nz_f: int,
        pose_at: HandPoseFn,
        pose_at_many: Optional[PoseTrackFn],
        out: ReportLog,
    ) -> None:
        """Evaluate one window's successes through the row kernel and emit."""
        m = times.size
        engine = self._engine
        assert engine is not None
        config = self.config
        tags = self.array.tags

        # Poses for every success timestamp — one vectorized call, or the
        # scalar clock exactly once per timestamp as the fallback.
        if pose_at_many is not None:
            track = pose_at_many(times)
        else:
            track = PoseTrack.from_poses(
                times, [pose_at(t) for t in times.tolist()]
            )

        # Per-tag window constants, with the scalar expressions verbatim.
        a_direct = engine._a_direct
        occl_db = engine.occlusion_db
        amp_by_tag: List[float] = []
        sqrt_te: List[float] = []
        trt: List[float] = []
        for tag, a in zip(tags, a_direct):
            loss_db = occl_db + tag.static_shadow_db
            amp_by_tag.append(
                a * math.sqrt(db_to_linear(-loss_db)) if loss_db > 0.0 else a
            )
            sqrt_te.append(math.sqrt(config.tx_power_w * tag.modulation_efficiency))
            trt.append(config.theta_reader + tag.theta_tag)
        amp_rows = np.array(amp_by_tag)[winners]
        sqrt_te_rows = np.array(sqrt_te)[winners]

        # LOS deployments add a per-read arm-occlusion loss on the direct
        # path; it depends on the pose, so those rows recompute the scalar
        # amplitude expression read by read.
        if config.los_occlusion:
            ant_pos = self.antenna.position
            for i in np.nonzero(track.present)[0].tolist():
                w = int(winners[i])
                tag = tags[w]
                extra = occlusion_loss_db(ant_pos, tag.position, track.pose_at(i))
                loss_db = occl_db + (tag.static_shadow_db + extra)
                amp_rows[i] = (
                    a_direct[w] * math.sqrt(db_to_linear(-loss_db))
                    if loss_db > 0.0
                    else a_direct[w]
                )

        # Reflector flutter for all rows at once, from the same draws the
        # scalar path would have consumed per read.
        g_re, g_im = self.environment.sample_gammas_rows(z[:, :nz_f])

        # Row-batched channel kernel, grouped by hand presence/template.
        s_re = np.empty(m)
        s_im = np.empty(m)
        detune = np.zeros(m)
        groups: List[Tuple[np.ndarray, Optional[np.ndarray], Optional[HandPose]]] = []
        absent = np.nonzero(~track.present)[0]
        if absent.size:
            groups.append((absent, None, None))
        for k, tmpl in enumerate(track.templates):
            rows = np.nonzero(track.template_idx == k)[0]
            if rows.size:
                groups.append((rows, track.xyz[rows], tmpl))
        for rows, hand_xyz, tmpl in groups:
            sr, si, dt = engine.backscatter_rows(
                winners[rows],
                amp_rows[rows],
                sqrt_te_rows[rows],
                g_re[rows],
                g_im[rows],
                hand_xyz=hand_xyz,
                template=tmpl,
            )
            s_re[rows] = sr
            s_im[rows] = si
            detune[rows] = dt

        # s *= one_way_loss**2 (complex-times-float product expansion).
        l2 = self._one_way_loss**2
        sr2 = s_re * l2 - s_im * 0.0
        si2 = s_re * 0.0 + s_im * l2
        # s *= cmath.exp(-1j * angle): the exponent's real part is +0.0 and
        # its imaginary part is -0.0 + (-1.0) * angle (the -1j product
        # expansion), so the rotation phasor is (cos(im), sin(im)).
        ang = np.array(trt)[winners] + detune
        im = -0.0 + (-1.0) * ang
        rot_c = np.cos(im)
        rot_s = np.sin(im)
        fr = sr2 * rot_c - si2 * rot_s
        fi = sr2 * rot_s + si2 * rot_c

        # Receiver impairments for the whole window at once (hybrid exact
        # vectorization; see ReceiverNoise.observe_many), then a slim scalar
        # pass for the stateful per-tag Doppler fold in time order.
        rsss, phases = self.noise.observe_many(
            fr, fi, z[:, nz_f], z[:, nz_f + 1], z[:, nz_f + 2], z[:, nz_f + 3]
        )
        last = self._last_read
        wl = config.wavelength
        dopps: List[float] = []
        t_l = times.tolist()
        w_l = winners.tolist()
        for w, t, phase in zip(w_l, t_l, phases):
            doppler = 0.0
            prev = last.get(w)
            if prev is not None:
                t_prev, phase_prev = prev
                if t > t_prev:
                    doppler = doppler_estimate_hz(phase, phase_prev, t - t_prev, wl)
            last[w] = (t, phase)
            dopps.append(doppler)

        out.extend_columns(
            times,
            np.array([tags[w].index for w in w_l], dtype=np.int64),
            np.array(phases),
            np.array(rsss),
            np.array(dopps),
            [tags[w].epc for w in w_l],
            antenna_port=config.antenna_port,
        )

    def _record_metrics(self, stats, out: ReportLog, n_before: int) -> None:
        """Fold one collect() window into the global metrics registry.

        Runs entirely *after* the inventory loop so the hot path carries no
        per-slot cost; with the registry disabled (the default) this is a
        single flag check.
        """
        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.inc("reader.reads", stats.successes)
        metrics.inc("reader.collision_slots", stats.collisions)
        metrics.inc("reader.idle_slots", stats.idles)
        metrics.inc("reader.windows")
        metrics.set_gauge("reader.read_rate_hz", stats.read_rate)
        metrics.observe("reader.slot_efficiency", stats.efficiency)
        per_tag: Dict[int, int] = {}
        for i in range(n_before, len(out)):
            report = out[i]
            per_tag[report.tag_index] = per_tag.get(report.tag_index, 0) + 1
        for count in per_tag.values():
            metrics.observe("reader.reads_per_tag_window", float(count))
        # Tags the MAC never delivered this window (unreadable / shadowed):
        # the paper's "unreadable tags" observable (IV-B.1).
        metrics.inc("reader.unread_tags", len(self.array.tags) - len(per_tag))
        if self._engine is not None:
            for name, value in self._engine.drain_counters().items():
                metrics.inc(f"channel.{name}", value)

    # ------------------------------------------------------------------
    # Trial-axis collection (many independent windows in lockstep)
    # ------------------------------------------------------------------

    @property
    def supports_trial_batch(self) -> bool:
        """Whether :meth:`collect_batch` is available for this reader."""
        return (
            self._engine is not None
            and os.environ.get("REPRO_SCALAR_INVENTORY", "0") != "1"
        )

    def collect_batch(self, specs: Sequence[CollectSpec]) -> List[LaneCollect]:
        """Run the MAC phase of many independent collect windows in lockstep.

        Each spec becomes a *lane*: its own :class:`RoundBatchInventory`
        over its own RNG, advanced round-by-round in lockstep with every
        other still-active lane.  Per round, readability is resolved with
        **one** :meth:`ChannelEngine.scene_powers_trials` evaluation per
        pose template shared by the active lanes, and the Gen2 outcome
        resolution runs once over the trial axis
        (:class:`TrialAxisInventory`) — this is where the parallel battery
        gets its throughput, since the per-lane numpy dispatch overhead is
        amortised over all concurrent trials.

        The per-lane RNG stream order is exactly the solo order: the
        round's ``integers`` draw, then one ``standard_normal(k * nz)``
        block when the round had ``k > 0`` successes, then the next
        round's draw.  Per lane, the returned MAC output (and the
        subsequent :meth:`emit_lane` report log) is bit-identical to a
        solo :meth:`collect` with the same generator state.
        """
        if self._engine is None:
            raise RuntimeError("collect_batch requires the channel engine")
        nz = self.environment.flutter_draw_count + 4
        sens_w = self._sensitivity_w()
        lanes: List[LaneCollect] = []
        for spec in specs:
            if spec.duration <= 0.0:
                raise ValueError(f"duration must be positive, got {spec.duration}")
            pose_at: HandPoseFn = (
                spec.hand_pose_at if spec.hand_pose_at is not None else (lambda t: None)
            )
            pose_at_many = spec.pose_at_many
            if pose_at_many is None and spec.hand_pose_at is not None:
                owner = getattr(spec.hand_pose_at, "__self__", None)
                if owner is not None:
                    pose_at_many = getattr(owner, "pose_at_many", None)
            rng = spec.rng if spec.rng is not None else self.rng
            inv = RoundBatchInventory(
                rng, start_time=spec.start_time, profile=self.config.link_profile
            )
            lanes.append(LaneCollect(spec, inv, pose_at, pose_at_many))
        if not lanes:
            return lanes
        axis = TrialAxisInventory([lane.inv for lane in lanes])
        tracer = get_tracer()
        los = self.config.los_occlusion
        n_tags = len(self.array.tags)
        with tracer.span("reader.collect_batch", lanes=len(lanes)) as sp:
            rounds = 0
            while True:
                active = [
                    i for i, lane in enumerate(lanes) if lane.inv.clock < lane.end
                ]
                if not active:
                    break
                rounds += 1
                readables: List[Optional[np.ndarray]] = [None] * len(active)
                if los:
                    # LOS occlusion keeps the general per-lane readability
                    # route (per-tag direct losses depend on the pose).
                    for k, i in enumerate(active):
                        lane = lanes[i]
                        readables[k] = self._readable_arr(
                            lane.pose_at(lane.inv.clock), sens_w
                        )
                else:
                    # Group pose-present lanes by their cached template so
                    # one trial-axis channel evaluation covers each group.
                    groups: Dict[int, Tuple[tuple, List[int], List[Tuple[float, float, float]]]] = {}
                    for k, i in enumerate(active):
                        lane = lanes[i]
                        pose = lane.pose_at(lane.inv.clock)
                        if pose is None:
                            readables[k] = self._readable_arr(None, sens_w)
                            continue
                        entry = self._pose_fast_arrays(pose)
                        group = groups.get(id(entry))
                        if group is None:
                            group = groups[id(entry)] = (entry, [], [])
                        group[1].append(k)
                        p = pose.position
                        group[2].append((p.x, p.y, p.z))
                    for entry, members, xyzs in groups.values():
                        offsets, rcs, shadow = entry
                        if len(members) == 1:
                            with tracer.span("channel.batch", tags=n_tags):
                                powers = self._engine.scene_powers(
                                    self._static_base,
                                    self.config.tx_power_w,
                                    self._one_way_loss,
                                    xyzs[0],
                                    offsets,
                                    rcs,
                                    shadow,
                                )
                            readables[members[0]] = np.nonzero(powers >= sens_w)[0]
                        else:
                            with tracer.span(
                                "channel.batch", tags=n_tags, lanes=len(members)
                            ):
                                powers = self._engine.scene_powers_trials(
                                    self._static_base,
                                    self.config.tx_power_w,
                                    self._one_way_loss,
                                    np.array(xyzs),
                                    offsets,
                                    rcs,
                                    shadow,
                                )
                            for row, k in enumerate(members):
                                readables[k] = np.nonzero(powers[row] >= sens_w)[0]
                results = axis.step(active, readables)
                for k, i in enumerate(active):
                    rr = results[k]
                    n_success = rr.n_success
                    if n_success:
                        lane = lanes[i]
                        lane.times.append(rr.times)
                        lane.winners.append(rr.winners)
                        lane.z.append(
                            lane.inv._rng.standard_normal(n_success * nz)
                        )
                        lane.n += n_success
            sp.set(rounds=rounds)
        return lanes

    def emit_lane(self, lane: LaneCollect, log: Optional[ReportLog] = None) -> ReportLog:
        """Run one lane's receiver/emit phase; the tail of a solo collect.

        Resets the Doppler history first (lanes are independent trials),
        then replays the lane's accumulated successes through the
        row-batched channel kernel under the same ``reader.collect`` span
        and metrics the solo path records.
        """
        out = log if log is not None else ReportLog()
        n_before = len(out)
        nz_f = self.environment.flutter_draw_count
        nz = nz_f + 4
        self.reset_read_history()
        with get_tracer().span("reader.collect", duration_s=lane.spec.duration) as sp:
            if lane.n:
                times = np.concatenate(lane.times)
                winners = np.concatenate(lane.winners)
                z = np.concatenate(lane.z).reshape(lane.n, nz)
                self._emit_batched(
                    times, winners, z, nz_f, lane.pose_at, lane.pose_at_many, out
                )
            stats = lane.inv.stats
            sp.set(
                reads=stats.successes,
                collisions=stats.collisions,
                idles=stats.idles,
                read_rate_hz=round(stats.read_rate, 1),
            )
        self.last_inventory_stats = stats
        self._record_metrics(stats, out, n_before)
        return out

    def reset_read_history(self) -> None:
        """Forget per-tag last-read state (Doppler baselines).

        The parallel battery runner calls this between independent trials
        so a trial's first Doppler estimate never leaks in from whichever
        trial the worker ran before it.
        """
        self._last_read.clear()

    def collect_static(self, duration: float, start_time: float = 0.0) -> ReportLog:
        """Inventory with no hand in the scene (calibration captures)."""
        return self.collect(duration, hand_pose_at=None, start_time=start_time)
