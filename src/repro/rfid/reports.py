"""The reader's data plane: per-read reports and the report log.

This mirrors what an LLRP client sees from an Impinj-class reader with the
low-level user data extension enabled (paper section IV-A): a stream of
``(EPC, antenna, timestamp, RSS, phase, Doppler)`` records.  RFIPad's whole
pipeline consumes nothing but this stream, which is what makes the
simulation substitution faithful: the algorithm cannot tell a simulated
stream from a captured one.

``ReportLog`` is stored column-wise (struct-of-arrays): one numpy array per
field, so ``slice_time`` is a pair of ``searchsorted`` calls returning
array *views* and ``per_tag`` is a boolean-mask split — no per-row Python
objects are materialized on the hot path.  ``TagReadReport`` remains the
row type: indexing or iterating a log builds the dataclass lazily, with
plain Python ``int``/``float`` fields so the record/replay capture format
(``json.dumps(asdict(report))``) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np


@dataclass(frozen=True)
class TagReadReport:
    """One successful singulation, as reported over LLRP."""

    epc: str
    tag_index: int          # flat array index; -1 for tags outside the pad
    timestamp: float        # seconds since session start
    phase_rad: float        # wrapped [0, 2*pi), quantised
    rss_dbm: float          # quantised
    doppler_hz: float = 0.0
    antenna_port: int = 1


@dataclass
class TagSeries:
    """All reads of one tag, in time order, unpacked into numpy arrays."""

    tag_index: int
    epc: str
    timestamps: np.ndarray
    phases: np.ndarray
    rss: np.ndarray

    def __len__(self) -> int:
        return len(self.timestamps)

    def slice_time(self, t0: float, t1: float) -> "TagSeries":
        """Sub-series with t0 <= timestamp < t1."""
        lo = int(np.searchsorted(self.timestamps, t0, side="left"))
        hi = int(np.searchsorted(self.timestamps, t1, side="left"))
        return TagSeries(
            self.tag_index,
            self.epc,
            self.timestamps[lo:hi],
            self.phases[lo:hi],
            self.rss[lo:hi],
        )


_EMPTY_F = np.empty(0, dtype=float)
_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_O = np.empty(0, dtype=object)


class ReportLog:
    """An append-only, time-ordered log of tag read reports.

    Provides the two views the pipeline needs: the raw interleaved stream
    (for segmentation, which frames by wall-clock time) and per-tag series
    (for calibration, imaging, and direction estimation).

    Storage is columnar; single-row ``append`` goes to Python staging
    lists and is consolidated into the numpy columns on first read, so
    both bulk (``extend_columns``) and row-at-a-time producers stay cheap.
    """

    __slots__ = (
        "_ts", "_tag", "_phase", "_rss", "_dopp", "_port", "_epc",
        "_p_ts", "_p_tag", "_p_phase", "_p_rss", "_p_dopp", "_p_port",
        "_p_epc", "_sorted", "_last_ts",
    )

    def __init__(self, reports: Iterable[TagReadReport] = ()) -> None:
        self._ts = _EMPTY_F
        self._tag = _EMPTY_I
        self._phase = _EMPTY_F
        self._rss = _EMPTY_F
        self._dopp = _EMPTY_F
        self._port = _EMPTY_I
        self._epc = _EMPTY_O
        self._p_ts: List[float] = []
        self._p_tag: List[int] = []
        self._p_phase: List[float] = []
        self._p_rss: List[float] = []
        self._p_dopp: List[float] = []
        self._p_port: List[int] = []
        self._p_epc: List[str] = []
        self._sorted = True
        self._last_ts: Optional[float] = None
        for r in reports:
            self.append(r)

    # -- producers --------------------------------------------------------

    def append(self, report: TagReadReport) -> None:
        t = report.timestamp
        if self._last_ts is not None and t < self._last_ts:
            self._sorted = False
        self._last_ts = t
        self._p_ts.append(t)
        self._p_tag.append(report.tag_index)
        self._p_phase.append(report.phase_rad)
        self._p_rss.append(report.rss_dbm)
        self._p_dopp.append(report.doppler_hz)
        self._p_port.append(report.antenna_port)
        self._p_epc.append(report.epc)

    def extend(self, reports: Iterable[TagReadReport]) -> None:
        for r in reports:
            self.append(r)

    def extend_columns(
        self,
        timestamps: np.ndarray,
        tag_indices: np.ndarray,
        phases: np.ndarray,
        rss: np.ndarray,
        doppler: np.ndarray,
        epcs: Sequence[str],
        antenna_port: int = 1,
    ) -> None:
        """Bulk append a block of reads already held column-wise.

        The block itself may be unsorted; sortedness bookkeeping matches a
        sequence of single ``append`` calls on the same rows.
        """
        ts = np.ascontiguousarray(timestamps, dtype=float)
        n = ts.size
        if n == 0:
            return
        self._flush()
        if self._sorted:
            if self._last_ts is not None and float(ts[0]) < self._last_ts:
                self._sorted = False
            elif n > 1 and bool(np.any(np.diff(ts) < 0.0)):
                self._sorted = False
        self._last_ts = float(ts[-1])
        self._ts = np.concatenate([self._ts, ts])
        self._tag = np.concatenate(
            [self._tag, np.asarray(tag_indices, dtype=np.int64)])
        self._phase = np.concatenate(
            [self._phase, np.asarray(phases, dtype=float)])
        self._rss = np.concatenate([self._rss, np.asarray(rss, dtype=float)])
        self._dopp = np.concatenate(
            [self._dopp, np.asarray(doppler, dtype=float)])
        self._port = np.concatenate(
            [self._port, np.full(n, antenna_port, dtype=np.int64)])
        epc_arr = np.empty(n, dtype=object)
        epc_arr[:] = list(epcs)
        self._epc = np.concatenate([self._epc, epc_arr])

    # -- internal ---------------------------------------------------------

    def _flush(self) -> None:
        """Consolidate staged single-row appends into the columns."""
        if not self._p_ts:
            return
        self._ts = np.concatenate(
            [self._ts, np.asarray(self._p_ts, dtype=float)])
        self._tag = np.concatenate(
            [self._tag, np.asarray(self._p_tag, dtype=np.int64)])
        self._phase = np.concatenate(
            [self._phase, np.asarray(self._p_phase, dtype=float)])
        self._rss = np.concatenate(
            [self._rss, np.asarray(self._p_rss, dtype=float)])
        self._dopp = np.concatenate(
            [self._dopp, np.asarray(self._p_dopp, dtype=float)])
        self._port = np.concatenate(
            [self._port, np.asarray(self._p_port, dtype=np.int64)])
        epc_arr = np.empty(len(self._p_epc), dtype=object)
        epc_arr[:] = self._p_epc
        self._epc = np.concatenate([self._epc, epc_arr])
        self._p_ts = []
        self._p_tag = []
        self._p_phase = []
        self._p_rss = []
        self._p_dopp = []
        self._p_port = []
        self._p_epc = []

    def _ensure_sorted(self) -> None:
        self._flush()
        if not self._sorted:
            # Stable sort on timestamp, matching list.sort(key=timestamp).
            order = np.argsort(self._ts, kind="stable")
            self._ts = self._ts[order]
            self._tag = self._tag[order]
            self._phase = self._phase[order]
            self._rss = self._rss[order]
            self._dopp = self._dopp[order]
            self._port = self._port[order]
            self._epc = self._epc[order]
            self._sorted = True

    @classmethod
    def _from_columns(
        cls,
        ts: np.ndarray,
        tag: np.ndarray,
        phase: np.ndarray,
        rss: np.ndarray,
        dopp: np.ndarray,
        port: np.ndarray,
        epc: np.ndarray,
    ) -> "ReportLog":
        """View-backed log over already-sorted column slices (no copy)."""
        log = cls()
        log._ts = ts
        log._tag = tag
        log._phase = phase
        log._rss = rss
        log._dopp = dopp
        log._port = port
        log._epc = epc
        log._last_ts = float(ts[-1]) if ts.size else None
        return log

    def _row(self, i: int) -> TagReadReport:
        return TagReadReport(
            epc=self._epc[i],
            tag_index=int(self._tag[i]),
            timestamp=float(self._ts[i]),
            phase_rad=float(self._phase[i]),
            rss_dbm=float(self._rss[i]),
            doppler_hz=float(self._dopp[i]),
            antenna_port=int(self._port[i]),
        )

    # -- consumers --------------------------------------------------------

    def __len__(self) -> int:
        return self._ts.size + len(self._p_ts)

    def __iter__(self) -> Iterator[TagReadReport]:
        self._ensure_sorted()
        for i in range(self._ts.size):
            yield self._row(i)

    def __getitem__(
        self, i: Union[int, slice]
    ) -> Union[TagReadReport, List[TagReadReport]]:
        self._ensure_sorted()
        if isinstance(i, slice):
            return [self._row(j) for j in range(*i.indices(self._ts.size))]
        n = self._ts.size
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("report index out of range")
        return self._row(i)

    @property
    def timestamps(self) -> np.ndarray:
        """Sorted timestamp column (read-only view for bulk consumers)."""
        self._ensure_sorted()
        return self._ts

    @property
    def duration(self) -> float:
        """Time span covered by the log (0 for empty/single-read logs)."""
        self._ensure_sorted()
        if self._ts.size < 2:
            return 0.0
        return float(self._ts[-1] - self._ts[0])

    @property
    def start_time(self) -> float:
        self._ensure_sorted()
        if not self._ts.size:
            raise ValueError("empty report log has no start time")
        return float(self._ts[0])

    @property
    def end_time(self) -> float:
        self._ensure_sorted()
        if not self._ts.size:
            raise ValueError("empty report log has no end time")
        return float(self._ts[-1])

    def tag_indices(self) -> List[int]:
        self._flush()
        return [int(v) for v in np.unique(self._tag)]

    def read_count(self, tag_index: int) -> int:
        self._flush()
        return int(np.count_nonzero(self._tag == tag_index))

    def per_tag(self) -> Dict[int, TagSeries]:
        """Split the log into per-tag numpy series.

        Keys follow first-appearance order in the time-sorted stream
        (matching the historical dict-of-buckets construction).
        """
        self._ensure_sorted()
        out: Dict[int, TagSeries] = {}
        if not self._ts.size:
            return out
        uniq, first = np.unique(self._tag, return_index=True)
        for k in np.argsort(first, kind="stable"):
            idx = int(uniq[k])
            mask = self._tag == idx
            out[idx] = TagSeries(
                tag_index=idx,
                epc=self._epc[int(first[k])],
                timestamps=self._ts[mask],
                phases=self._phase[mask],
                rss=self._rss[mask],
            )
        return out

    def columns(self) -> tuple:
        """Time-sorted column views ``(ts, tag, phase, rss, doppler, port,
        epc)`` — the bulk hand-off format for streaming consumers (pair
        with :meth:`extend_columns` on the receiving log)."""
        self._ensure_sorted()
        return (self._ts, self._tag, self._phase, self._rss, self._dopp,
                self._port, self._epc)

    def drop_before(self, t: float) -> int:
        """Discard all reports with ``timestamp < t``; returns the count.

        Copies the surviving columns so the dropped prefix's memory is
        actually released (a plain slice would keep the base arrays
        alive), which is what bounded-retention streaming needs.
        """
        self._ensure_sorted()
        lo = int(np.searchsorted(self._ts, t, side="left"))
        if lo == 0:
            return 0
        self._ts = np.array(self._ts[lo:])
        self._tag = np.array(self._tag[lo:])
        self._phase = np.array(self._phase[lo:])
        self._rss = np.array(self._rss[lo:])
        self._dopp = np.array(self._dopp[lo:])
        self._port = np.array(self._port[lo:])
        self._epc = np.array(self._epc[lo:])
        return lo

    def slice_time(self, t0: float, t1: float) -> "ReportLog":
        """New log with reports in [t0, t1) — a view, not a copy."""
        self._ensure_sorted()
        lo = int(np.searchsorted(self._ts, t0, side="left"))
        hi = int(np.searchsorted(self._ts, t1, side="left"))
        return ReportLog._from_columns(
            self._ts[lo:hi],
            self._tag[lo:hi],
            self._phase[lo:hi],
            self._rss[lo:hi],
            self._dopp[lo:hi],
            self._port[lo:hi],
            self._epc[lo:hi],
        )

    def aggregate_read_rate(self) -> float:
        """Total successful reads per second across all tags."""
        d = self.duration
        if d <= 0.0:
            return 0.0
        return len(self) / d


def merge_logs(logs: Sequence["ReportLog"]) -> "ReportLog":
    """Merge per-port logs into one time-sorted workspace log.

    Concatenates the column views of every non-empty input (in input
    order) and stable-sorts on timestamp, so reads that tie on timestamp
    keep the input-port ordering — the same tie rule ``ReportLog`` itself
    uses.  Per-row antenna ports and EPCs survive the merge, which is
    what lets workspace-level consumers attribute any read back to its
    tile.  A single non-empty input merges to a value-identical log.
    """
    live = [log.columns() for log in logs if len(log)]
    if not live:
        return ReportLog()
    cols = [np.concatenate([c[i] for c in live]) for i in range(7)]
    order = np.argsort(cols[0], kind="stable")
    return ReportLog._from_columns(*(c[order] for c in cols))
