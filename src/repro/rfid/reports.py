"""The reader's data plane: per-read reports and the report log.

This mirrors what an LLRP client sees from an Impinj-class reader with the
low-level user data extension enabled (paper section IV-A): a stream of
``(EPC, antenna, timestamp, RSS, phase, Doppler)`` records.  RFIPad's whole
pipeline consumes nothing but this stream, which is what makes the
simulation substitution faithful: the algorithm cannot tell a simulated
stream from a captured one.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TagReadReport:
    """One successful singulation, as reported over LLRP."""

    epc: str
    tag_index: int          # flat array index; -1 for tags outside the pad
    timestamp: float        # seconds since session start
    phase_rad: float        # wrapped [0, 2*pi), quantised
    rss_dbm: float          # quantised
    doppler_hz: float = 0.0
    antenna_port: int = 1


@dataclass
class TagSeries:
    """All reads of one tag, in time order, unpacked into numpy arrays."""

    tag_index: int
    epc: str
    timestamps: np.ndarray
    phases: np.ndarray
    rss: np.ndarray

    def __len__(self) -> int:
        return len(self.timestamps)

    def slice_time(self, t0: float, t1: float) -> "TagSeries":
        """Sub-series with t0 <= timestamp < t1."""
        lo = int(np.searchsorted(self.timestamps, t0, side="left"))
        hi = int(np.searchsorted(self.timestamps, t1, side="left"))
        return TagSeries(
            self.tag_index,
            self.epc,
            self.timestamps[lo:hi],
            self.phases[lo:hi],
            self.rss[lo:hi],
        )


class ReportLog:
    """An append-only, time-ordered log of tag read reports.

    Provides the two views the pipeline needs: the raw interleaved stream
    (for segmentation, which frames by wall-clock time) and per-tag series
    (for calibration, imaging, and direction estimation).
    """

    def __init__(self, reports: Iterable[TagReadReport] = ()) -> None:
        self._reports: List[TagReadReport] = []
        self._sorted = True
        for r in reports:
            self.append(r)

    def append(self, report: TagReadReport) -> None:
        if self._reports and report.timestamp < self._reports[-1].timestamp:
            self._sorted = False
        self._reports.append(report)

    def extend(self, reports: Iterable[TagReadReport]) -> None:
        for r in reports:
            self.append(r)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._reports.sort(key=lambda r: r.timestamp)
            self._sorted = True

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self) -> Iterator[TagReadReport]:
        self._ensure_sorted()
        return iter(self._reports)

    def __getitem__(self, i: int) -> TagReadReport:
        self._ensure_sorted()
        return self._reports[i]

    @property
    def duration(self) -> float:
        """Time span covered by the log (0 for empty/single-read logs)."""
        self._ensure_sorted()
        if len(self._reports) < 2:
            return 0.0
        return self._reports[-1].timestamp - self._reports[0].timestamp

    @property
    def start_time(self) -> float:
        self._ensure_sorted()
        if not self._reports:
            raise ValueError("empty report log has no start time")
        return self._reports[0].timestamp

    @property
    def end_time(self) -> float:
        self._ensure_sorted()
        if not self._reports:
            raise ValueError("empty report log has no end time")
        return self._reports[-1].timestamp

    def tag_indices(self) -> List[int]:
        return sorted({r.tag_index for r in self._reports})

    def read_count(self, tag_index: int) -> int:
        return sum(1 for r in self._reports if r.tag_index == tag_index)

    def per_tag(self) -> Dict[int, TagSeries]:
        """Split the log into per-tag numpy series."""
        self._ensure_sorted()
        buckets: Dict[int, List[TagReadReport]] = {}
        for r in self._reports:
            buckets.setdefault(r.tag_index, []).append(r)
        out: Dict[int, TagSeries] = {}
        for idx, rows in buckets.items():
            out[idx] = TagSeries(
                tag_index=idx,
                epc=rows[0].epc,
                timestamps=np.array([r.timestamp for r in rows], dtype=float),
                phases=np.array([r.phase_rad for r in rows], dtype=float),
                rss=np.array([r.rss_dbm for r in rows], dtype=float),
            )
        return out

    def slice_time(self, t0: float, t1: float) -> "ReportLog":
        """New log with reports in [t0, t1)."""
        self._ensure_sorted()
        keys = [r.timestamp for r in self._reports]
        lo = bisect.bisect_left(keys, t0)
        hi = bisect.bisect_left(keys, t1)
        return ReportLog(self._reports[lo:hi])

    def aggregate_read_rate(self) -> float:
        """Total successful reads per second across all tags."""
        d = self.duration
        if d <= 0.0:
            return 0.0
        return len(self._reports) / d
