"""Multi-pad operation: one reader, several antennas, several RFIPads.

The paper's cost argument (section I) is that "an existing reader can
monitor multiple RFIPads while performing its regular applications": the
reader is the expensive component, antennas and tags are cheap.  A
commodity reader multiplexes its antenna ports in time, so each pad sees
the inventory duty-cycled.

:class:`MultiplexedReader` models exactly that: a list of ports (each an
independent antenna + tag array + environment) served round-robin with a
configurable dwell time.  Each port's report log looks like a normal —
just sparser — RFIPad stream, so the per-pad pipelines run unchanged; the
``ext_multipad`` experiment measures what the duty-cycling costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..physics.antenna import ReaderAntenna
from ..physics.hand import HandPose
from ..physics.multipath import Environment
from ..physics.noise import ReceiverNoise
from .deployment import TagArray
from .reader import HandPoseFn, Reader, ReaderConfig
from .reports import ReportLog


@dataclass
class ReaderPort:
    """One antenna port: its own pad, environment, and scene."""

    antenna: ReaderAntenna
    array: TagArray
    environment: Optional[Environment] = None


class MultiplexedReader:
    """Round-robin time multiplexing over several reader ports.

    All ports share one RF front end (one ``ReaderConfig``) and one RNG,
    mirroring a real multi-antenna reader.  ``dwell_s`` is the time spent
    on each port before switching; commodity readers default to a few
    hundred milliseconds per antenna.
    """

    def __init__(
        self,
        ports: Sequence[ReaderPort],
        config: ReaderConfig = ReaderConfig(),
        noise: ReceiverNoise = ReceiverNoise(),
        rng: Optional[np.random.Generator] = None,
        dwell_s: float = 0.25,
    ) -> None:
        if not ports:
            raise ValueError("need at least one port")
        if dwell_s <= 0.0:
            raise ValueError("dwell must be positive")
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.dwell_s = dwell_s
        self.readers: List[Reader] = [
            Reader(
                p.antenna,
                p.array,
                ReaderConfig(
                    tx_power_dbm=config.tx_power_dbm,
                    frequency_hz=config.frequency_hz,
                    system_loss_db=config.system_loss_db,
                    theta_reader=config.theta_reader,
                    los_occlusion=config.los_occlusion,
                    antenna_port=i + 1,
                    link_profile=config.link_profile,
                ),
                p.environment,
                noise,
                rng=self.rng,
            )
            for i, p in enumerate(ports)
        ]

    @property
    def port_count(self) -> int:
        return len(self.readers)

    def collect(
        self,
        duration: float,
        pose_fns: Sequence[Optional[HandPoseFn]],
    ) -> List[ReportLog]:
        """Inventory all ports round-robin for ``duration`` seconds.

        ``pose_fns[i]`` is port i's scene callback in *global* session
        time (or None for a quiet pad).  Returns one log per port, with
        timestamps on the shared session clock.
        """
        if len(pose_fns) != self.port_count:
            raise ValueError(
                f"need {self.port_count} pose callbacks, got {len(pose_fns)}"
            )
        if duration <= 0.0:
            raise ValueError("duration must be positive")
        logs = [ReportLog() for _ in self.readers]
        t = 0.0
        port = 0
        while t < duration:
            dwell = min(self.dwell_s, duration - t)
            if dwell > 1e-6:
                self.readers[port].collect(
                    dwell,
                    pose_fns[port],
                    start_time=t,
                    log=logs[port],
                )
            t += dwell
            port = (port + 1) % self.port_count
        return logs
