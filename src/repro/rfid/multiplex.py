"""Multi-pad operation: one reader, several antennas, several RFIPads.

The paper's cost argument (section I) is that "an existing reader can
monitor multiple RFIPads while performing its regular applications": the
reader is the expensive component, antennas and tags are cheap.  A
commodity reader multiplexes its antenna ports in time, so each pad sees
the inventory duty-cycled.

:class:`MultiplexedReader` models exactly that: a list of ports (each an
independent antenna + tag array + environment) served round-robin with a
configurable dwell time.  Each port's report log looks like a normal —
just sparser — RFIPad stream, so the per-pad pipelines run unchanged; the
``ext_multipad`` experiment measures what the duty-cycling costs.

The dwell plan is computed up front by :class:`DwellScheduler`, a pure
function of ``(port_count, dwell_s, duration)``.  That buys two
invariants the workspace layer depends on:

* **1x1 degeneracy** — a single-port schedule is ONE contiguous slice
  covering the whole duration, so the port's reader consumes its RNG in
  exactly the same inventory-round boundaries as a solo
  ``reader.collect(duration)``: the log is bit-identical, not just
  statistically equivalent.
* **Deterministic dwell accounting** — per-port dwell totals come from
  the plan, not from timing side effects, so they are identical no
  matter how many workers (``REPRO_WORKERS``) run trials around the
  multiplexed collect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..physics.antenna import ReaderAntenna
from ..physics.multipath import Environment
from ..physics.noise import ReceiverNoise
from .deployment import TagArray
from .reader import HandPoseFn, Reader, ReaderConfig
from .reports import ReportLog

_MIN_DWELL_S = 1e-6


@dataclass
class ReaderPort:
    """One antenna port: its own pad, environment, and scene."""

    antenna: ReaderAntenna
    array: TagArray
    environment: Optional[Environment] = None


@dataclass(frozen=True)
class DwellSlice:
    """One scheduled stretch of inventory on one port."""

    port: int
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class DwellScheduler:
    """Round-robin dwell planning, as pure data.

    ``plan(duration)`` returns the exact slice sequence a collect will
    execute; ``dwell_totals(duration)`` integrates it per port.  Both are
    deterministic functions of the constructor arguments and
    ``duration`` — no clocks, no RNG — which is what makes multi-pad
    dwell accounting reproducible across worker counts.
    """

    def __init__(self, port_count: int, dwell_s: float) -> None:
        if port_count < 1:
            raise ValueError("need at least one port")
        if dwell_s <= 0.0:
            raise ValueError("dwell must be positive")
        self.port_count = port_count
        self.dwell_s = dwell_s

    def plan(self, duration: float) -> List[DwellSlice]:
        if duration <= 0.0:
            raise ValueError("duration must be positive")
        # A solo port never benefits from switching; keeping the whole
        # duration as one slice preserves the inventory-round (and hence
        # RNG-stream) boundaries of an unmultiplexed reader exactly.
        if self.port_count == 1:
            return [DwellSlice(port=0, t0=0.0, t1=duration)]
        slices: List[DwellSlice] = []
        t = 0.0
        port = 0
        while t < duration:
            dwell = min(self.dwell_s, duration - t)
            if dwell > _MIN_DWELL_S:
                slices.append(DwellSlice(port=port, t0=t, t1=t + dwell))
            t += dwell
            port = (port + 1) % self.port_count
        return slices

    def dwell_totals(self, duration: float) -> List[float]:
        """Seconds of inventory each port receives over ``duration``."""
        totals = [0.0] * self.port_count
        for s in self.plan(duration):
            totals[s.port] += s.duration
        return totals


class MultiplexedReader:
    """Round-robin time multiplexing over several reader ports.

    All ports share one RF front end (one ``ReaderConfig``); commodity
    readers default to a few hundred milliseconds per antenna
    (``dwell_s``).  By default the ports also share one RNG, mirroring a
    real reader's single pseudo-random inventory engine; passing
    ``rngs`` gives each port an independent stream, which decouples the
    ports statistically (used by workspaces, where each tile must stay
    bit-identical to its solo-pad twin regardless of what the other
    tiles are doing).

    Each per-port reader is engine-backed exactly like a solo reader:
    ``Reader`` builds its vectorized ``ChannelEngine`` (with the
    per-deployment ``static_base`` precompute) and round-batched
    inventory per port unless the scalar-path env overrides are set.
    """

    def __init__(
        self,
        ports: Sequence[ReaderPort],
        config: ReaderConfig = ReaderConfig(),
        noise: ReceiverNoise = ReceiverNoise(),
        rng: Optional[np.random.Generator] = None,
        dwell_s: float = 0.25,
        rngs: Optional[Sequence[np.random.Generator]] = None,
    ) -> None:
        if not ports:
            raise ValueError("need at least one port")
        if rngs is not None and len(rngs) != len(ports):
            raise ValueError(
                f"need {len(ports)} per-port rngs, got {len(rngs)}"
            )
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.scheduler = DwellScheduler(len(ports), dwell_s)
        self.readers: List[Reader] = [
            Reader(
                p.antenna,
                p.array,
                ReaderConfig(
                    tx_power_dbm=config.tx_power_dbm,
                    frequency_hz=config.frequency_hz,
                    system_loss_db=config.system_loss_db,
                    theta_reader=config.theta_reader,
                    los_occlusion=config.los_occlusion,
                    antenna_port=i + 1,
                    link_profile=config.link_profile,
                ),
                p.environment,
                noise,
                rng=rngs[i] if rngs is not None else self.rng,
            )
            for i, p in enumerate(ports)
        ]

    @property
    def dwell_s(self) -> float:
        return self.scheduler.dwell_s

    @property
    def port_count(self) -> int:
        return len(self.readers)

    @property
    def vectorized(self) -> bool:
        """True when every port runs the batched channel engine."""
        return all(r._engine is not None for r in self.readers)

    def dwell_totals(self, duration: float) -> List[float]:
        """Planned per-port inventory seconds for a collect of ``duration``."""
        return self.scheduler.dwell_totals(duration)

    def collect(
        self,
        duration: float,
        pose_fns: Sequence[Optional[HandPoseFn]],
    ) -> List[ReportLog]:
        """Inventory all ports round-robin for ``duration`` seconds.

        ``pose_fns[i]`` is port i's scene callback in *global* session
        time (or None for a quiet pad).  Returns one log per port, with
        timestamps on the shared session clock.
        """
        if len(pose_fns) != self.port_count:
            raise ValueError(
                f"need {self.port_count} pose callbacks, got {len(pose_fns)}"
            )
        logs = [ReportLog() for _ in self.readers]
        for s in self.scheduler.plan(duration):
            self.readers[s.port].collect(
                s.duration,
                pose_fns[s.port],
                start_time=s.t0,
                log=logs[s.port],
            )
        return logs

    def collect_static(self, duration: float) -> List[ReportLog]:
        """Quiet-scene collect on every port (calibration traffic)."""
        return self.collect(duration, [None] * self.port_count)
