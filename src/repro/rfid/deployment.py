"""Tag array deployment: turning a grid layout into a population of tags.

Applies the deployment guidance of section IV-B: checkerboard antenna
facing to cut mutual coupling, per-tag manufacture diversity draws, and the
pre-computed static coupling loss each tag suffers from its neighbours
(corner tags have fewer neighbours than centre tags, which is one source of
the per-tag spread the calibration layer measures).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..physics.coupling import (
    TAG_DESIGN_B,
    TagAntennaProfile,
    aggregate_shadow_loss_db,
    alternating_facing_pattern,
)
from ..physics.geometry import GridLayout, Vec3
from .tag import (
    Tag,
    make_epc,
    sample_ic_sensitivity_dbm,
    sample_modulation_efficiency,
    sample_theta_tag,
)


@dataclass
class TagArray:
    """A deployed tag array: layout plus the per-tag population."""

    layout: GridLayout
    tags: List[Tag]

    def __post_init__(self) -> None:
        if len(self.tags) != self.layout.count:
            raise ValueError(
                f"layout has {self.layout.count} cells but {len(self.tags)} tags given"
            )

    def __len__(self) -> int:
        return len(self.tags)

    def __iter__(self):
        return iter(self.tags)

    def tag_at(self, row: int, col: int) -> Tag:
        return self.tags[self.layout.index_of(row, col)]

    def by_epc(self, epc: str) -> Tag:
        for t in self.tags:
            if t.epc == epc:
                return t
        raise KeyError(f"no tag with EPC {epc!r}")

    def positions(self) -> List[Vec3]:
        return [t.position for t in self.tags]


@dataclass(frozen=True)
class WorkspaceLayout:
    """Tile geometry of a tiled workspace (DESIGN.md §15).

    A workspace is a ``tiles_y x tiles_x`` grid of identical pad tiles
    that *continue* each other's tag lattice: adjacent tiles are spaced so
    the combined deployment is one uniform ``(rows*tiles_y) x
    (cols*tiles_x)`` grid at the same pitch.  Tile 0 is the top-left tile;
    tiles are numbered row-major, like tags inside a tile.

    Two coordinate frames coexist:

    * the **workspace frame** — the combined grid centred on the origin,
      in which scripts, trajectories, and the stitched pipeline operate;
    * each tile's **local frame** — the tile's own grid centred on *its*
      origin, in which the tile's antenna, channel engine, and
      ``static_base`` precompute live (bit-identical to a solo pad).

    ``tile_origin`` maps between them; ``global_index`` maps a tile's
    local tag index onto the combined layout's row-major index space.
    The 1x1 workspace degenerates to today's single pad: the origin is
    exactly ``(0, 0, 0)`` and ``global_index`` is the identity.
    """

    tiles_x: int = 1
    tiles_y: int = 1
    rows: int = 5
    cols: int = 5
    pitch: float = 0.06

    def __post_init__(self) -> None:
        if self.tiles_x < 1 or self.tiles_y < 1:
            raise ValueError(
                f"workspace needs at least 1x1 tiles, got "
                f"{self.tiles_x}x{self.tiles_y}"
            )
        if self.rows < 1 or self.cols < 1 or self.pitch <= 0.0:
            raise ValueError("tiles need a valid rows/cols/pitch grid")

    @property
    def tile_count(self) -> int:
        return self.tiles_x * self.tiles_y

    def tile_layout(self) -> GridLayout:
        """One tile's local grid (identical to a solo pad's layout)."""
        return GridLayout(rows=self.rows, cols=self.cols, pitch=self.pitch)

    def combined_layout(self) -> GridLayout:
        """The workspace-level grid the stitched pipeline runs on."""
        return GridLayout(
            rows=self.rows * self.tiles_y,
            cols=self.cols * self.tiles_x,
            pitch=self.pitch,
        )

    def tile_row_col(self, tile: int) -> "tuple[int, int]":
        if not 0 <= tile < self.tile_count:
            raise IndexError(f"tile {tile} outside 0..{self.tile_count - 1}")
        return divmod(tile, self.tiles_x)

    def tile_origin(self, tile: int) -> Vec3:
        """Centre of ``tile`` in the workspace frame (z = 0 plane).

        Derived so that ``combined.position(global row/col) == origin +
        tile.position(local row/col)`` for every tag; the 1x1 workspace
        yields exactly ``Vec3(0, 0, 0)``.
        """
        tr, tc = self.tile_row_col(tile)
        x = self.cols * self.pitch * (tc - (self.tiles_x - 1) / 2.0)
        y = self.rows * self.pitch * ((self.tiles_y - 1) / 2.0 - tr)
        return Vec3(x, y, 0.0)

    def global_index(self, tile: int, local_index: int) -> int:
        """Combined-layout row-major index of a tile's local tag index."""
        tr, tc = self.tile_row_col(tile)
        local = self.tile_layout()
        r, c = local.row_col(local_index)
        return (tr * self.rows + r) * (self.cols * self.tiles_x) + (
            tc * self.cols + c
        )

    def tile_of_global(self, global_index: int) -> int:
        """Which tile a combined-layout tag index belongs to."""
        gr, gc = self.combined_layout().row_col(global_index)
        return (gr // self.rows) * self.tiles_x + (gc // self.cols)

    def locate(self, x: float, y: float) -> int:
        """The tile whose area a workspace-frame xy point falls in.

        Points outside the workspace clamp to the nearest tile, so a
        trajectory's lead-in/lead-out always resolves somewhere.
        """
        tile_w = self.cols * self.pitch
        tile_h = self.rows * self.pitch
        tc = int((x + self.tiles_x * tile_w / 2.0) // tile_w)
        tr = int((self.tiles_y * tile_h / 2.0 - y) // tile_h)
        tc = min(max(tc, 0), self.tiles_x - 1)
        tr = min(max(tr, 0), self.tiles_y - 1)
        return tr * self.tiles_x + tc


def deploy_tile(
    rng: np.random.Generator,
    workspace: WorkspaceLayout,
    tile: int,
    design: TagAntennaProfile = TAG_DESIGN_B,
    alternate_facing: bool = True,
) -> TagArray:
    """Deploy one workspace tile: a solo pad carrying *global* identities.

    The physics of a tile is exactly a solo pad's — tag positions stay in
    the tile's local frame (so the per-tile channel engine and its
    ``static_base`` precompute are bit-identical to a solo deployment,
    and the RNG draw sequence matches :func:`deploy_array` exactly) —
    but each tag's ``index``/EPC are rewritten onto the combined layout's
    index space, so the reports the tile emits slot straight into the
    workspace-level pipeline with no remapping at merge time.  For the
    1x1 workspace the rewrite is the identity.
    """
    array = deploy_array(
        rng, workspace.tile_layout(), design=design,
        alternate_facing=alternate_facing,
    )
    tags = [
        dataclasses.replace(
            tag,
            index=workspace.global_index(tile, tag.index),
            epc=make_epc(workspace.global_index(tile, tag.index)),
        )
        for tag in array.tags
    ]
    return TagArray(layout=array.layout, tags=tags)


def deploy_array(
    rng: np.random.Generator,
    layout: Optional[GridLayout] = None,
    design: TagAntennaProfile = TAG_DESIGN_B,
    alternate_facing: bool = True,
) -> TagArray:
    """Build a seeded tag array following the paper's deployment rules.

    Default layout is the prototype's 5x5 grid at 6 cm spacing.  When
    ``alternate_facing`` is on, neighbours face opposite ways (section
    IV-B.1), which reduces the mutual coupling loss baked into each tag's
    ``static_shadow_db``.
    """
    if layout is None:
        layout = GridLayout(rows=5, cols=5, pitch=0.06)
    facing = alternating_facing_pattern(layout.rows, layout.cols)
    positions = layout.positions()

    tags: List[Tag] = []
    for r in range(layout.rows):
        for c in range(layout.cols):
            idx = layout.index_of(r, c)
            pos = positions[idx]
            faces_default = facing[r][c] if alternate_facing else True
            # Coupling from neighbours: neighbours facing the same way couple
            # fully; opposite-facing neighbours are strongly discounted
            # inside pair_shadow_loss_db via the same_facing flag.  We split
            # neighbours into the two groups and sum both contributions.
            same, opposite = [], []
            for rr in range(layout.rows):
                for cc in range(layout.cols):
                    if (rr, cc) == (r, c):
                        continue
                    other_faces = facing[rr][cc] if alternate_facing else True
                    bucket = same if other_faces == faces_default else opposite
                    bucket.append(positions[layout.index_of(rr, cc)])
            shadow = aggregate_shadow_loss_db(pos, same, design, same_facing=True)
            shadow += aggregate_shadow_loss_db(pos, opposite, design, same_facing=False)

            tags.append(
                Tag(
                    epc=make_epc(idx),
                    index=idx,
                    position=pos,
                    design=design,
                    theta_tag=sample_theta_tag(rng),
                    modulation_efficiency=sample_modulation_efficiency(rng),
                    ic_sensitivity_dbm=sample_ic_sensitivity_dbm(rng),
                    facing_default=faces_default,
                    static_shadow_db=shadow,
                )
            )
    return TagArray(layout=layout, tags=tags)
