"""Tag array deployment: turning a grid layout into a population of tags.

Applies the deployment guidance of section IV-B: checkerboard antenna
facing to cut mutual coupling, per-tag manufacture diversity draws, and the
pre-computed static coupling loss each tag suffers from its neighbours
(corner tags have fewer neighbours than centre tags, which is one source of
the per-tag spread the calibration layer measures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..physics.coupling import (
    TAG_DESIGN_B,
    TagAntennaProfile,
    aggregate_shadow_loss_db,
    alternating_facing_pattern,
)
from ..physics.geometry import GridLayout, Vec3
from .tag import (
    Tag,
    make_epc,
    sample_ic_sensitivity_dbm,
    sample_modulation_efficiency,
    sample_theta_tag,
)


@dataclass
class TagArray:
    """A deployed tag array: layout plus the per-tag population."""

    layout: GridLayout
    tags: List[Tag]

    def __post_init__(self) -> None:
        if len(self.tags) != self.layout.count:
            raise ValueError(
                f"layout has {self.layout.count} cells but {len(self.tags)} tags given"
            )

    def __len__(self) -> int:
        return len(self.tags)

    def __iter__(self):
        return iter(self.tags)

    def tag_at(self, row: int, col: int) -> Tag:
        return self.tags[self.layout.index_of(row, col)]

    def by_epc(self, epc: str) -> Tag:
        for t in self.tags:
            if t.epc == epc:
                return t
        raise KeyError(f"no tag with EPC {epc!r}")

    def positions(self) -> List[Vec3]:
        return [t.position for t in self.tags]


def deploy_array(
    rng: np.random.Generator,
    layout: Optional[GridLayout] = None,
    design: TagAntennaProfile = TAG_DESIGN_B,
    alternate_facing: bool = True,
) -> TagArray:
    """Build a seeded tag array following the paper's deployment rules.

    Default layout is the prototype's 5x5 grid at 6 cm spacing.  When
    ``alternate_facing`` is on, neighbours face opposite ways (section
    IV-B.1), which reduces the mutual coupling loss baked into each tag's
    ``static_shadow_db``.
    """
    if layout is None:
        layout = GridLayout(rows=5, cols=5, pitch=0.06)
    facing = alternating_facing_pattern(layout.rows, layout.cols)
    positions = layout.positions()

    tags: List[Tag] = []
    for r in range(layout.rows):
        for c in range(layout.cols):
            idx = layout.index_of(r, c)
            pos = positions[idx]
            faces_default = facing[r][c] if alternate_facing else True
            # Coupling from neighbours: neighbours facing the same way couple
            # fully; opposite-facing neighbours are strongly discounted
            # inside pair_shadow_loss_db via the same_facing flag.  We split
            # neighbours into the two groups and sum both contributions.
            same, opposite = [], []
            for rr in range(layout.rows):
                for cc in range(layout.cols):
                    if (rr, cc) == (r, c):
                        continue
                    other_faces = facing[rr][cc] if alternate_facing else True
                    bucket = same if other_faces == faces_default else opposite
                    bucket.append(positions[layout.index_of(rr, cc)])
            shadow = aggregate_shadow_loss_db(pos, same, design, same_facing=True)
            shadow += aggregate_shadow_loss_db(pos, opposite, design, same_facing=False)

            tags.append(
                Tag(
                    epc=make_epc(idx),
                    index=idx,
                    position=pos,
                    design=design,
                    theta_tag=sample_theta_tag(rng),
                    modulation_efficiency=sample_modulation_efficiency(rng),
                    ic_sensitivity_dbm=sample_ic_sensitivity_dbm(rng),
                    facing_default=faces_default,
                    static_shadow_db=shadow,
                )
            )
    return TagArray(layout=layout, tags=tags)
