"""Round-batched Gen2 inventory engine (the MAC fast tier).

:class:`Gen2Inventory` walks every slot of every round in Python and yields
one :class:`SlotOutcome` object per slot — faithful, but ~90% of a trial's
wall time once the channel is vectorized.  :class:`RoundBatchInventory`
resolves an entire inventory round at once while consuming the RNG stream
*identically* to the scalar loop, so the emitted report stream is
bit-identical for the same seed:

* the per-round slot-counter draw is the very same
  ``rng.integers(0, 2**Q, size=len(readable))`` call (the stream consumed
  by ``Generator.integers`` depends only on the bound and the size, not on
  how the results are later grouped);
* slot outcomes come from ``bincount`` over the draws; the winner of each
  count-1 slot is recovered with one fancy-indexed scatter
  (``slot_to_tag[draws] = readable`` — a count-1 slot has exactly one
  writer, so "last writer wins" is exact);
* slot start times and the elapsed-time statistic are sequential left-fold
  float sums in the scalar loop; ``np.add.accumulate`` performs the same
  left fold element-by-element, so every success timestamp matches to the
  bit;
* the floating-point Q-algorithm update (clamped ``qfp`` drift on idles
  and collisions) is order-dependent through its clamps and stays as the
  only per-round scalar work — a short Python loop over the slot codes.

The scalar engine remains the reference: ``REPRO_SCALAR_INVENTORY=1``
forces :class:`~repro.rfid.reader.Reader` back onto it (mirroring
``REPRO_SCALAR_CHANNEL`` for the channel tier), and the golden-stream
tests assert byte-for-byte :class:`~repro.rfid.reports.ReportLog` equality
between the two paths across seeds, link profiles, and hand scripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from .protocol import (
    InventoryStats,
    LinkProfile,
    PROFILE_DENSE,
    QAlgorithm,
)


@dataclass(frozen=True)
class RoundResult:
    """One resolved inventory round: the successes, column-wise.

    ``times[i]`` is the start time of the slot that tag ``winners[i]`` won;
    both arrays are in slot (= time) order.  Idle/collision slots only
    show up through the inventory statistics and the Q adaptation, exactly
    as with ``successes_only=True`` on the scalar engine.
    """

    times: np.ndarray    # (k,) success-slot start times, seconds
    winners: np.ndarray  # (k,) winning tag indices (population indices)

    @property
    def n_success(self) -> int:
        return int(self.winners.size)


class RoundBatchInventory:
    """Drop-in round-level counterpart of :class:`Gen2Inventory`.

    Same constructor, same clock/Q/stats surface, same RNG consumption —
    but each round is resolved with a handful of numpy operations instead
    of a per-slot Python loop, and successes come back as arrays ready for
    batched channel evaluation.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        q_initial: float = 3.0,
        start_time: float = 0.0,
        profile: "LinkProfile | None" = None,
    ) -> None:
        self._rng = rng
        self._qalg = QAlgorithm(qfp=q_initial)
        self._clock = start_time
        self.profile = profile if profile is not None else PROFILE_DENSE
        self.stats = InventoryStats()
        self._round_overhead_s = self.profile.round_overhead_s
        # Duration lookup by slot code (0 = idle, 1 = success, 2+ = collision).
        self._dur_lut = np.array(
            [
                self.profile.idle_slot_s,
                self.profile.success_slot_s,
                self.profile.collision_slot_s,
            ]
        )
        # qfp drift per slot code; rebuilt if the Q weights are mutated.
        self._q_lut: "np.ndarray | None" = None
        self._q_lut_key: "tuple[float, float] | None" = None

    @property
    def clock(self) -> float:
        return self._clock

    @property
    def current_q(self) -> int:
        return self._qalg.q

    def run_round_batch(self, readable: "Sequence[int] | np.ndarray") -> RoundResult:
        """Resolve one full inventory round over the readable population.

        Mirrors :meth:`Gen2Inventory.run_round` operation-for-operation on
        everything that feeds the emitted stream: the RNG draw, the slot
        timing folds, the statistics, and the clamped ``qfp`` updates.
        """
        # Scalar reference: clock += overhead; elapsed += overhead.
        self._clock += self._round_overhead_s
        stats = self.stats
        stats.elapsed += self._round_overhead_s
        qalg = self._qalg
        n_slots = 2 ** qalg.q
        n_readable = len(readable)
        if n_readable == 0:
            qalg.on_idle()
            return _EMPTY_ROUND

        draws = self._rng.integers(0, n_slots, size=n_readable)
        return self._resolve_round(n_slots, draws, readable)

    def _resolve_round(
        self, n_slots: int, draws: np.ndarray, readable: "Sequence[int] | np.ndarray"
    ) -> RoundResult:
        """Resolve a round whose slot-counter draw already happened.

        Split out of :meth:`run_round_batch` so the trial-axis driver can
        phase the (per-lane) RNG draws separately from the (batchable)
        outcome resolution while keeping the single-lane tail byte-for-byte
        the code the solo path runs.
        """
        stats = self.stats
        qalg = self._qalg
        counts = np.bincount(draws, minlength=n_slots)
        codes = np.minimum(counts, 2)

        # Winner recovery: a count-1 slot has exactly one writer, so the
        # scatter below leaves that tag's index in the slot's cell.
        slot_to_tag = np.full(n_slots, -1, dtype=np.int64)
        slot_to_tag[draws] = readable
        success_mask = counts == 1

        # Slot start times / elapsed / qfp: the scalar loop computes
        # ``clock = clock + duration`` (and the Q drift) slot by slot — a
        # sequential left fold, which is exactly what np.add.accumulate
        # performs.  All three folds run as one three-row accumulate;
        # axis-1 accumulation is the same element-by-element left fold per
        # row as the 1-D form.  Success slots contribute a ``+0.0`` qfp
        # step the scalar loop skips — bit-neutral, since qfp can never be
        # ``-0.0`` (it is only ever produced by adds/subtracts of
        # non-negative values).
        idle_w, coll_w = qalg.idle_weight, qalg.collision_weight
        if (idle_w, coll_w) != self._q_lut_key:
            self._q_lut_key = (idle_w, coll_w)
            self._q_lut = np.array([-idle_w, 0.0, coll_w])
        durs = self._dur_lut[codes]
        folds = np.empty((3, n_slots + 1))
        folds[0, 0] = self._clock
        folds[1, 0] = stats.elapsed
        folds[2, 0] = qalg.qfp
        folds[0, 1:] = durs
        folds[1, 1:] = durs
        folds[2, 1:] = self._q_lut[codes]
        cum = np.add.accumulate(folds, axis=1)
        times = cum[0, :-1][success_mask]
        winners = slot_to_tag[success_mask]
        self._clock = float(cum[0, -1])
        stats.elapsed = float(cum[1, -1])

        n_success = int(winners.size)
        n_idle = int(np.count_nonzero(counts == 0))
        n_coll = n_slots - n_success - n_idle
        stats.successes += n_success
        stats.collisions += n_coll
        stats.idles += n_idle

        # The clamped floating-point Q drift is order-dependent through
        # its min/max saturation — but while the unclamped path stays
        # inside [q_min, q_max] no clamp ever alters a value (equality at
        # a bound returns the same float), so the accumulated row IS the
        # scalar sequence.  Only when the path escapes the band does the
        # order-dependent scalar replay run.
        if n_idle or n_coll:
            qpath = cum[2]
            if qpath.min() >= qalg.q_min and qpath.max() <= qalg.q_max:
                qalg.qfp = float(qpath[-1])
            else:
                q_min, q_max = qalg.q_min, qalg.q_max
                qfp = qalg.qfp
                for c in codes.tolist():
                    if c == 0:
                        qfp = max(q_min, qfp - idle_w)
                    elif c == 2:
                        qfp = min(q_max, qfp + coll_w)
                qalg.qfp = qfp

        return RoundResult(times=times, winners=winners)

    def run_until_batch(
        self,
        end_time: float,
        readable_at: Callable[[float], "Sequence[int] | np.ndarray"],
    ) -> Iterator[RoundResult]:
        """Yield one :class:`RoundResult` per round until the clock passes
        ``end_time`` — the round-level mirror of
        :meth:`Gen2Inventory.run_until`.

        Because this is a generator, a caller that draws from the shared
        RNG between rounds (the reader's per-round observation-noise
        block) interleaves with the slot-counter draws in exactly the
        scalar order: round N's draw happens only when the caller asks
        for round N's result.
        """
        if end_time <= self._clock:
            return
        while self._clock < end_time:
            yield self.run_round_batch(readable_at(self._clock))


_EMPTY_ROUND = RoundResult(
    times=np.empty(0, dtype=float), winners=np.empty(0, dtype=np.int64)
)


class TrialAxisInventory:
    """Lockstep driver advancing many independent inventory lanes at once.

    Each lane is a full :class:`RoundBatchInventory` — its own RNG, clock,
    Q state, and statistics — and :meth:`step` advances every active lane
    by exactly one round.  The per-lane RNG draws stay per-lane (lane
    streams must match their solo counterparts bit-for-bit), but the
    outcome resolution — slot bincounts, winner scatters, the three timing
    /Q folds — runs once per same-slot-count group over a dense
    ``(lanes, slots)`` trial axis.

    Grouping by slot count (rather than padding every lane to the widest
    Q) matters because lanes' Q trajectories desynchronize completely a
    few rounds in: a widest-lane layout measures >80% zero padding on the
    13-motion battery.  Dense rows also make bit-identity trivial — every
    lane's cumulative timing/qfp row is exactly the fold the solo path
    computes, with no pad-neutrality argument needed.

    Lanes may use heterogeneous link profiles or Q weights; such a group
    (and single-lane groups) falls back to the per-lane resolution tail,
    which is the identical code path either way.
    """

    def __init__(self, lanes: Sequence[RoundBatchInventory]) -> None:
        if not lanes:
            raise ValueError("need at least one lane")
        self.lanes = list(lanes)
        first = self.lanes[0]
        self._uniform = all(
            inv.profile == first.profile for inv in self.lanes[1:]
        )
        self._dur_lut = first._dur_lut
        self._q_lut: "np.ndarray | None" = None
        self._q_lut_key: "tuple[float, float] | None" = None

    def step(
        self,
        active: Sequence[int],
        readables: Sequence[np.ndarray],
    ) -> "list[RoundResult]":
        """Advance each lane in ``active`` by one round.

        ``readables[k]`` is the readable tag population for lane
        ``active[k]`` at that lane's current clock.  Returns one
        :class:`RoundResult` per active lane, aligned with ``active``.
        """
        lanes = self.lanes
        results: "list[RoundResult | None]" = [None] * len(active)
        # Phase 1 — per-lane scalar prologue and RNG draw, in lane order.
        # Exactly the run_round_batch prologue: overhead advance, idle
        # shortcut, and the lane's own integers() draw.
        metas: "list[tuple[int, RoundBatchInventory, int, np.ndarray, np.ndarray]]" = []
        for k, (li, readable) in enumerate(zip(active, readables)):
            inv = lanes[li]
            inv._clock += inv._round_overhead_s
            inv.stats.elapsed += inv._round_overhead_s
            qalg = inv._qalg
            n_readable = len(readable)
            if n_readable == 0:
                qalg.on_idle()
                results[k] = _EMPTY_ROUND
                continue
            n_slots = 2 ** qalg.q
            draws = inv._rng.integers(0, n_slots, size=n_readable)
            metas.append((k, inv, n_slots, draws, readable))
        if not metas:
            return results

        q_key = (metas[0][1]._qalg.idle_weight, metas[0][1]._qalg.collision_weight)
        uniform = self._uniform and all(
            (inv._qalg.idle_weight, inv._qalg.collision_weight) == q_key
            for _, inv, _, _, _ in metas[1:]
        )
        if len(metas) == 1 or not uniform:
            for k, inv, n_slots, draws, readable in metas:
                results[k] = inv._resolve_round(n_slots, draws, readable)
            return results

        # Phase 2 — batched resolution, one sub-batch per slot count.
        # Lanes' Q values desynchronize completely a few rounds in (the
        # Q oscillation phase depends on each lane's private draws), so a
        # single widest-lane layout would be >80% zero padding; grouping
        # by ``n_slots`` keeps every row fully dense and makes the
        # accumulated rows trivially the solo folds (no pad-neutrality
        # argument needed).
        if q_key != self._q_lut_key:
            self._q_lut_key = q_key
            self._q_lut = np.array([-q_key[0], 0.0, q_key[1]])
        by_slots: "dict[int, list] " = {}
        for meta in metas:
            group = by_slots.get(meta[2])
            if group is None:
                by_slots[meta[2]] = [meta]
            else:
                group.append(meta)
        for n_slots, group in by_slots.items():
            if len(group) == 1:
                k, inv, n_slots, draws, readable = group[0]
                results[k] = inv._resolve_round(n_slots, draws, readable)
            else:
                self._resolve_group(n_slots, group, q_key, results)
        return results

    def _resolve_group(
        self,
        n_slots: int,
        group: "list[tuple[int, RoundBatchInventory, int, np.ndarray, np.ndarray]]",
        q_key: "tuple[float, float]",
        results: "list[RoundResult | None]",
    ) -> None:
        """Resolve one round for every lane in a same-``n_slots`` group."""
        n_lanes = len(group)
        offsets = n_slots * np.arange(n_lanes)
        flat_draws = np.concatenate(
            [m[3] + off for m, off in zip(group, offsets.tolist())]
        )
        counts = np.bincount(flat_draws, minlength=n_lanes * n_slots).reshape(
            n_lanes, n_slots
        )
        codes = np.minimum(counts, 2)
        slot_to_tag = np.full(n_lanes * n_slots, -1, dtype=np.int64)
        slot_to_tag[flat_draws] = np.concatenate(
            [np.asarray(m[4], dtype=np.int64) for m in group]
        )
        slot_to_tag = slot_to_tag.reshape(n_lanes, n_slots)

        durs = self._dur_lut[codes]
        folds = np.empty((n_lanes, 3, n_slots + 1))
        for j, (_, inv, _, _, _) in enumerate(group):
            folds[j, 0, 0] = inv._clock
            folds[j, 1, 0] = inv.stats.elapsed
            folds[j, 2, 0] = inv._qalg.qfp
        folds[:, 0, 1:] = durs
        folds[:, 1, 1:] = durs
        folds[:, 2, 1:] = self._q_lut[codes]
        cum = np.add.accumulate(folds, axis=2)

        # Successes in (lane, slot) C-order = per-lane time order.
        succ_mask = counts == 1
        rows, cols = np.nonzero(succ_mask)
        times_flat = cum[rows, 0, cols]
        winners_flat = slot_to_tag[rows, cols]
        bounds = np.searchsorted(rows, np.arange(1, n_lanes)).tolist()
        bounds = [0] + bounds + [rows.size]

        succ_counts = succ_mask.sum(axis=1)
        idle_counts = (counts == 0).sum(axis=1)
        q_mins = cum[:, 2, :].min(axis=1)
        q_maxs = cum[:, 2, :].max(axis=1)
        idle_w, coll_w = q_key
        for j, (k, inv, _, _, _) in enumerate(group):
            inv._clock = float(cum[j, 0, n_slots])
            stats = inv.stats
            stats.elapsed = float(cum[j, 1, n_slots])
            n_success = int(succ_counts[j])
            n_idle = int(idle_counts[j])
            n_coll = n_slots - n_success - n_idle
            stats.successes += n_success
            stats.collisions += n_coll
            stats.idles += n_idle
            qalg = inv._qalg
            if n_idle or n_coll:
                if q_mins[j] >= qalg.q_min and q_maxs[j] <= qalg.q_max:
                    qalg.qfp = float(cum[j, 2, n_slots])
                else:
                    q_min, q_max = qalg.q_min, qalg.q_max
                    qfp = qalg.qfp
                    for c in codes[j].tolist():
                        if c == 0:
                            qfp = max(q_min, qfp - idle_w)
                        elif c == 2:
                            qfp = min(q_max, qfp + coll_w)
                    qalg.qfp = qfp
            results[k] = RoundResult(
                times=times_flat[bounds[j] : bounds[j + 1]],
                winners=winners_flat[bounds[j] : bounds[j + 1]],
            )
