"""Capture persistence: record and replay report streams as JSON Lines.

The recognition pipeline consumes nothing but ``TagReadReport`` streams,
so a capture file is the complete interface between a *real* RFIPad rig
and this library: record LLRP reports from hardware into this format and
every pipeline, experiment, and demo here runs on them unchanged.

Format: one JSON object per line, keys matching ``TagReadReport`` fields;
a single header line (``{"repro_capture": 1, ...}``) carries metadata.
JSONL keeps captures appendable, diffable, and streamable.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, TextIO, Union

from .reports import ReportLog, TagReadReport

#: Format version stamped into the header line.
CAPTURE_VERSION = 1

PathLike = Union[str, Path]


def dump_log(
    log: ReportLog,
    path: PathLike,
    metadata: Optional[Dict[str, object]] = None,
) -> int:
    """Write a report log as a JSONL capture.  Returns the report count."""
    header = {"repro_capture": CAPTURE_VERSION}
    if metadata:
        header.update(metadata)
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for report in log:
            fh.write(json.dumps(asdict(report)) + "\n")
            count += 1
    return count


def _parse_report(record: Dict[str, object], line_no: int) -> TagReadReport:
    try:
        return TagReadReport(
            epc=str(record["epc"]),
            tag_index=int(record["tag_index"]),
            timestamp=float(record["timestamp"]),
            phase_rad=float(record["phase_rad"]),
            rss_dbm=float(record["rss_dbm"]),
            doppler_hz=float(record.get("doppler_hz", 0.0)),
            antenna_port=int(record.get("antenna_port", 1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed capture record on line {line_no}: {exc}") from exc


def load_log(path: PathLike) -> ReportLog:
    """Load a JSONL capture into a :class:`ReportLog`.

    Raises ``ValueError`` on a missing/incompatible header or a malformed
    record — a silently half-loaded capture would corrupt any experiment
    run on it.
    """
    log = ReportLog()
    with open(path, "r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty capture file")
        header = json.loads(header_line)
        version = header.get("repro_capture")
        if version != CAPTURE_VERSION:
            raise ValueError(
                f"{path}: unsupported capture version {version!r} "
                f"(this build reads version {CAPTURE_VERSION})"
            )
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            log.append(_parse_report(json.loads(line), line_no))
    return log


def load_metadata(path: PathLike) -> Dict[str, object]:
    """Read just the header metadata of a capture."""
    with open(path, "r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty capture file")
        header = json.loads(header_line)
    if header.get("repro_capture") != CAPTURE_VERSION:
        raise ValueError(f"{path}: not a repro capture file")
    return {k: v for k, v in header.items() if k != "repro_capture"}
