"""Passive tag model: EPC identity, IC power budget, and circuit diversity.

A tag is readable only when the incident RF power clears its IC's power-up
sensitivity (passive systems are forward-link limited, paper section
IV-B.3).  Each tag also carries a *circuit phase offset* ``theta_tag`` —
the manufacture-induced tag diversity of section III-A.2 that RFIPad's
calibration must cancel — and a per-tag modulation efficiency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..physics.coupling import TAG_DESIGN_B, TagAntennaProfile
from ..physics.geometry import Vec3
from ..units import TWO_PI, db_to_linear, dbm_to_watts


#: Power-up sensitivity of a modern Gen2 IC (Monza-class), dBm.
DEFAULT_IC_SENSITIVITY_DBM = -17.0


@dataclass
class Tag:
    """One deployed passive tag.

    Attributes
    ----------
    epc:
        Electronic Product Code string; unique within a scene.
    index:
        Flat index in the deployed array (row-major), or -1 for loose tags.
    position:
        Tag antenna centre, metres, in the tag-plane frame.
    design:
        Electromagnetic profile (RCS/gain) of the commercial design.
    theta_tag:
        Circuit reflection phase offset, radians — the tag diversity term.
    modulation_efficiency:
        Fraction of incident power re-radiated in the modulated sideband.
    ic_sensitivity_dbm:
        Minimum incident power for the IC to power up and respond.
    facing_default:
        Antenna facing (True = default direction).  Checkerboard patterns
        reduce mutual coupling, section IV-B.1.
    static_shadow_db:
        Pre-computed coupling loss from neighbouring tags in the deployed
        array (does not change while the array is fixed).
    """

    epc: str
    index: int
    position: Vec3
    design: TagAntennaProfile = TAG_DESIGN_B
    theta_tag: float = 0.0
    modulation_efficiency: float = 0.25
    ic_sensitivity_dbm: float = DEFAULT_IC_SENSITIVITY_DBM
    facing_default: bool = True
    static_shadow_db: float = 0.0

    def __post_init__(self) -> None:
        if not self.epc:
            raise ValueError("EPC must be non-empty")
        if not (0.0 < self.modulation_efficiency <= 1.0):
            raise ValueError("modulation efficiency must be in (0, 1]")
        if self.static_shadow_db < 0.0:
            raise ValueError("static shadow loss must be non-negative")

    @property
    def gain_linear(self) -> float:
        return db_to_linear(self.design.gain_dbi)

    @property
    def ic_sensitivity_w(self) -> float:
        return dbm_to_watts(self.ic_sensitivity_dbm)

    def is_powered(self, incident_power_w: float) -> bool:
        """Whether the forward link delivers enough power to respond."""
        return incident_power_w >= self.ic_sensitivity_w


def make_epc(index: int, prefix: str = "E200") -> str:
    """Deterministic, realistic-looking 96-bit EPC for array tag ``index``."""
    if index < 0:
        raise ValueError("index must be non-negative")
    return f"{prefix}-{index:04X}-{(index * 2654435761) % 0xFFFFFFFF:08X}"


def sample_theta_tag(rng: np.random.Generator) -> float:
    """Draw a manufacture phase offset: uniform over [0, 2*pi).

    Fig. 4 of the paper shows per-tag static phases spread irregularly over
    the full circle — a uniform draw is the faithful model.
    """
    return float(rng.uniform(0.0, TWO_PI))


def sample_modulation_efficiency(rng: np.random.Generator, mean: float = 0.25) -> float:
    """Per-tag modulation efficiency with mild manufacture spread."""
    value = rng.normal(mean, 0.03)
    return float(min(1.0, max(0.05, value)))


def sample_ic_sensitivity_dbm(
    rng: np.random.Generator, mean_dbm: float = DEFAULT_IC_SENSITIVITY_DBM
) -> float:
    """Per-tag IC sensitivity with ~0.5 dB manufacture spread."""
    return float(rng.normal(mean_dbm, 0.5))
