"""RFID system substrate: passive tags, the EPC C1G2 inventory MAC, and the
reader that fuses protocol events with channel physics into an LLRP-style
report stream.
"""

from .capture import dump_log, load_log, load_metadata
from .deployment import TagArray, deploy_array
from .multiplex import MultiplexedReader, ReaderPort
from .protocol import (
    COLLISION_SLOT_S,
    IDLE_SLOT_S,
    PROFILE_DENSE,
    PROFILE_FAST,
    PROFILE_FAST_SHORT,
    PROFILE_ROBUST,
    ROUND_OVERHEAD_S,
    SUCCESS_SLOT_S,
    Gen2Inventory,
    InventoryStats,
    LinkProfile,
    QAlgorithm,
    SlotOutcome,
    expected_round_efficiency,
)
from .reader import HandPoseFn, Reader, ReaderConfig
from .reports import ReportLog, TagReadReport, TagSeries
from .tag import (
    DEFAULT_IC_SENSITIVITY_DBM,
    Tag,
    make_epc,
    sample_ic_sensitivity_dbm,
    sample_modulation_efficiency,
    sample_theta_tag,
)

__all__ = [
    "COLLISION_SLOT_S",
    "DEFAULT_IC_SENSITIVITY_DBM",
    "Gen2Inventory",
    "HandPoseFn",
    "IDLE_SLOT_S",
    "InventoryStats",
    "LinkProfile",
    "MultiplexedReader",
    "PROFILE_DENSE",
    "PROFILE_FAST",
    "PROFILE_FAST_SHORT",
    "PROFILE_ROBUST",
    "QAlgorithm",
    "ReaderPort",
    "ROUND_OVERHEAD_S",
    "Reader",
    "ReaderConfig",
    "ReportLog",
    "SUCCESS_SLOT_S",
    "SlotOutcome",
    "Tag",
    "TagArray",
    "TagReadReport",
    "TagSeries",
    "deploy_array",
    "dump_log",
    "expected_round_efficiency",
    "load_log",
    "load_metadata",
    "make_epc",
    "sample_ic_sensitivity_dbm",
    "sample_modulation_efficiency",
    "sample_theta_tag",
]
