"""Physical constants, unit helpers, and RF conversions shared by every layer.

All internal computation is done in SI units (metres, seconds, watts,
radians).  dBm/dB values only appear at the edges: reader configuration and
reported RSS, matching how a commodity UHF reader presents data.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: RFIPad's prototype carrier frequency (Hz), paper section IV-A.
DEFAULT_FREQUENCY_HZ = 922.38e6

#: Phase resolution reported by an Impinj-class reader (radians), paper
#: section III-A: "0.0015 radians".
PHASE_QUANTUM_RAD = 0.0015

#: RSS quantisation step of a commodity reader report (dB).
RSS_QUANTUM_DB = 0.5

TWO_PI = 2.0 * math.pi


def wavelength(frequency_hz: float = DEFAULT_FREQUENCY_HZ) -> float:
    """Return the carrier wavelength in metres.

    >>> round(wavelength(), 3)
    0.325
    """
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return SPEED_OF_LIGHT / frequency_hz


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts.

    >>> dbm_to_watts(30.0)
    1.0
    """
    return 10.0 ** (dbm / 10.0) / 1000.0


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm.

    Raises ``ValueError`` for non-positive power: zero watts has no dBm
    representation and always indicates an upstream bug (use
    ``watts_to_dbm_floor`` if a sentinel floor is wanted).
    """
    if watts <= 0.0:
        raise ValueError(f"power must be positive, got {watts} W")
    return 10.0 * math.log10(watts * 1000.0)


def watts_to_dbm_floor(watts: float, floor_dbm: float = -120.0) -> float:
    """Like :func:`watts_to_dbm` but clamps non-positive/tiny powers to a floor."""
    if watts <= 0.0:
        return floor_dbm
    return max(floor_dbm, watts_to_dbm(watts))


def db_to_linear(db: float) -> float:
    """Convert a dB ratio to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def wrap_phase(phase_rad: float) -> float:
    """Wrap an angle into the reader's reporting interval [0, 2*pi).

    >>> wrap_phase(-0.1) > 6.1
    True
    >>> wrap_phase(7.0) < 1.0
    True
    """
    wrapped = math.fmod(phase_rad, TWO_PI)
    if wrapped < 0.0:
        wrapped += TWO_PI
    # fmod can return TWO_PI itself through rounding; normalise.
    if wrapped >= TWO_PI:
        wrapped -= TWO_PI
    return wrapped


def quantise(value: float, quantum: float) -> float:
    """Round ``value`` to the nearest multiple of ``quantum``.

    Models the fixed-point reporting of commodity readers.  ``quantum <= 0``
    disables quantisation (returns the value unchanged) so tests can opt out.
    """
    if quantum <= 0.0:
        return value
    return round(value / quantum) * quantum
