"""Receiver noise and report quantisation.

Two non-idealities matter for RFIPad's accuracy story:

* **Thermal noise at the reader.**  Phase and RSS jitter grow as the
  backscatter SNR falls — this is the mechanism behind Fig. 17 (error
  rate vs TX power) and Fig. 19 (error vs reader-to-tag distance).  We add
  circular complex Gaussian noise to the baseband sample, from which both
  the reported RSS wiggle and phase jitter follow with the textbook
  ``sigma_phase ~ 1/sqrt(2*SNR)`` behaviour at high SNR.

* **Report quantisation.**  Commodity readers report phase in fixed steps
  (0.0015 rad for the Impinj family the paper uses) and RSS in 0.5 dB
  steps.  Quantisation bounds the best-case resolution of the pipeline.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..units import (
    PHASE_QUANTUM_RAD,
    RSS_QUANTUM_DB,
    dbm_to_watts,
    quantise,
    watts_to_dbm_floor,
    wrap_phase,
)


#: Thermal noise floor of a commodity UHF reader front end (dBm).  kTB for
#: ~1 MHz bandwidth is -114 dBm; add a ~10 dB noise figure.
DEFAULT_NOISE_FLOOR_DBM = -104.0


@dataclass(frozen=True)
class ReceiverNoise:
    """Noise + quantisation model applied to each tag read."""

    noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM
    phase_quantum_rad: float = PHASE_QUANTUM_RAD
    rss_quantum_db: float = RSS_QUANTUM_DB
    #: Extra phase jitter (radians) independent of SNR: local-oscillator
    #: drift and timing jitter.  Keeps static traces realistically non-flat
    #: even at high SNR (cf. the per-tag std floors in Fig. 5).
    residual_phase_jitter_rad: float = 0.004
    #: Front-end impairments at low signal level: below ``agc_reference_dbm``
    #: the reader's AGC gain steps and coarse I/Q quantisation add phase and
    #: RSS jitter that grows with the signal deficit.  This — much more than
    #: thermal noise — is why commodity-reader phase gets ragged when the
    #: backscatter is weak, and it drives the TX-power error trend (Fig. 17).
    agc_reference_dbm: float = -25.0
    agc_phase_slope_rad_per_db: float = 0.0045
    agc_rss_slope_db_per_db: float = 0.035
    base_rss_jitter_db: float = 0.15

    # cached_property writes straight into __dict__, which bypasses the
    # frozen-dataclass setattr guard — safe here because both values are
    # pure functions of frozen fields.
    @cached_property
    def noise_floor_w(self) -> float:
        return dbm_to_watts(self.noise_floor_dbm)

    @cached_property
    def _iq_sigma(self) -> float:
        return math.sqrt(self.noise_floor_w / 2.0)

    def snr_linear(self, signal_power_w: float) -> float:
        if signal_power_w <= 0.0:
            return 0.0
        return signal_power_w / self.noise_floor_w

    def observe(
        self, baseband: complex, rng: np.random.Generator
    ) -> "tuple[float, float]":
        """Turn a noiseless baseband voltage into a reported (rss_dbm, phase).

        Returns the quantised RSS in dBm and the quantised wrapped phase in
        [0, 2*pi).  The input carries the channel plus circuit phase; this
        function only adds receiver impairments.
        """
        # One batched draw for I and Q: numpy fills the pair with the same
        # (bit-identical) values as two sequential scalar draws.
        iq = rng.normal(0.0, self._iq_sigma, size=2)
        noisy = baseband + complex(iq[0], iq[1])
        power_w = abs(noisy) ** 2
        rss_dbm = watts_to_dbm_floor(power_w)

        # Low-signal front-end impairments (AGC steps, coarse I/Q).
        deficit_db = max(0.0, self.agc_reference_dbm - rss_dbm)
        phase_sigma = math.hypot(
            self.residual_phase_jitter_rad,
            self.agc_phase_slope_rad_per_db * deficit_db,
        )
        rss_sigma = self.base_rss_jitter_db + self.agc_rss_slope_db_per_db * deficit_db

        rss_dbm = quantise(rss_dbm + rng.normal(0.0, rss_sigma), self.rss_quantum_db)
        phase = cmath.phase(noisy) + rng.normal(0.0, phase_sigma)
        phase = quantise(wrap_phase(phase), self.phase_quantum_rad)
        # Quantisation can land exactly on 2*pi; fold back.
        return rss_dbm, wrap_phase(phase)

    def observe_with_draws(
        self,
        baseband: complex,
        z_iq0: float,
        z_iq1: float,
        z_rss: float,
        z_phase: float,
    ) -> "tuple[float, float]":
        """:meth:`observe` over pre-drawn standard normals.

        The batched reader path draws one standard-normal block per
        inventory round and hands each read its four draws (I, Q, RSS,
        phase — the order :meth:`observe` consumes them).  ``normal(0, s)``
        draws a standard normal and scales it by ``s`` (bit-identical to
        ``standard_normal() * s``), so feeding the same stream through this
        method reproduces :meth:`observe`'s reports exactly.
        """
        noisy = baseband + complex(z_iq0 * self._iq_sigma, z_iq1 * self._iq_sigma)
        power_w = abs(noisy) ** 2
        rss_dbm = watts_to_dbm_floor(power_w)

        deficit_db = max(0.0, self.agc_reference_dbm - rss_dbm)
        phase_sigma = math.hypot(
            self.residual_phase_jitter_rad,
            self.agc_phase_slope_rad_per_db * deficit_db,
        )
        rss_sigma = self.base_rss_jitter_db + self.agc_rss_slope_db_per_db * deficit_db

        rss_dbm = quantise(rss_dbm + z_rss * rss_sigma, self.rss_quantum_db)
        phase = cmath.phase(noisy) + z_phase * phase_sigma
        phase = quantise(wrap_phase(phase), self.phase_quantum_rad)
        return rss_dbm, wrap_phase(phase)

    def observe_many(
        self,
        base_re: np.ndarray,
        base_im: np.ndarray,
        z_iq0: np.ndarray,
        z_iq1: np.ndarray,
        z_rss: np.ndarray,
        z_phase: np.ndarray,
    ) -> "tuple[list[float], list[float]]":
        """:meth:`observe_with_draws` over whole read batches, bit-identically.

        Only operations that are exactly elementwise on IEEE doubles are
        vectorized (`+ - *`, ``np.maximum``); everything whose scalar result
        could differ from the numpy ufunc — ``abs`` of a complex (libm
        hypot), ``log10``, ``math.hypot``, ``round``, ``cmath.phase``,
        ``math.fmod`` — stays in a fused scalar loop with the helper bodies
        inlined, so each read sees the identical operation sequence as
        :meth:`observe_with_draws`.  Returns (rss_dbm, phase) lists.
        """
        sigma = self._iq_sigma
        noisy_re = base_re + z_iq0 * sigma
        noisy_im = base_im + z_iq1 * sigma

        # Scalar pass 1: complex magnitude -> floored dBm, principal phase.
        # Bodies of watts_to_dbm_floor inlined (same ops, same order).
        rss_l: "list[float]" = []
        ph_l: "list[float]" = []
        for a, b in zip(noisy_re.tolist(), noisy_im.tolist()):
            c = complex(a, b)
            p = abs(c) ** 2
            if p <= 0.0:
                rss_l.append(-120.0)
            else:
                rss_l.append(max(-120.0, 10.0 * math.log10(p * 1000.0)))
            ph_l.append(cmath.phase(c))

        # Elementwise-exact vector arithmetic for the AGC deficit terms.
        deficit = np.maximum(0.0, self.agc_reference_dbm - np.array(rss_l))
        rss_val = (
            np.array(rss_l)
            + z_rss
            * (self.base_rss_jitter_db + self.agc_rss_slope_db_per_db * deficit)
        )

        # Scalar pass 2: hypot sigma, quantisation, and phase wrap (bodies
        # of quantise/wrap_phase inlined; round() == rint on doubles but we
        # keep the scalar builtin to stay byte-for-byte with observe()).
        res_j = self.residual_phase_jitter_rad
        p_slope = self.agc_phase_slope_rad_per_db
        q_rss = self.rss_quantum_db
        q_ph = self.phase_quantum_rad
        two_pi = 2.0 * math.pi
        out_r: "list[float]" = []
        out_p: "list[float]" = []
        for v, ph, zp, d in zip(
            rss_val.tolist(), ph_l, z_phase.tolist(), deficit.tolist()
        ):
            out_r.append(round(v / q_rss) * q_rss if q_rss > 0.0 else v)
            phase = ph + zp * math.hypot(res_j, p_slope * d)
            w = math.fmod(phase, two_pi)
            if w < 0.0:
                w += two_pi
            if w >= two_pi:
                w -= two_pi
            if q_ph > 0.0:
                w = round(w / q_ph) * q_ph
            w2 = math.fmod(w, two_pi)
            if w2 < 0.0:
                w2 += two_pi
            if w2 >= two_pi:
                w2 -= two_pi
            out_p.append(w2)
        return out_r, out_p

    def phase_std_estimate(self, signal_power_w: float) -> float:
        """Predicted phase std (radians) at a given backscatter power.

        High-SNR approximation 1/sqrt(2*SNR) combined with the residual
        jitter floor; used by tests and by the calibration sanity checks.
        """
        snr = self.snr_linear(signal_power_w)
        if snr <= 0.0:
            return math.pi / math.sqrt(3.0)  # uniform phase: no signal
        thermal = 1.0 / math.sqrt(2.0 * snr)
        return math.hypot(thermal, self.residual_phase_jitter_rad)


def doppler_estimate_hz(
    phase_now: float, phase_prev: float, dt: float, wavelength: float
) -> float:
    """Doppler shift a reader derives from successive phase reads.

    Commodity readers report Doppler as the finite difference of phase over
    the read interval; at typical read rates this is dominated by noise —
    exactly the paper's observation (Fig. 2a) that Doppler is useless for
    distinguishing hand movement.  ``wavelength`` is unused in the finite
    difference itself but kept for interface clarity with reader firmware
    conventions (phase-per-time to Hz conversion).
    """
    if dt <= 0.0:
        raise ValueError("dt must be positive")
    dphi = phase_now - phase_prev
    # Fold to the principal branch: |dphi| <= pi.
    while dphi > math.pi:
        dphi -= 2.0 * math.pi
    while dphi < -math.pi:
        dphi += 2.0 * math.pi
    return dphi / (2.0 * math.pi * dt)
