"""Backscatter channel model: the physics under Eqs. 1-8 of the paper.

The model is a coherent complex-baseband ray sum.  The one-way channel from
the reader antenna to a tag is

    g = sum_k a_k * exp(-j * 2*pi * d_k / lambda)

over the direct path, static environment reflections (image method, see
:mod:`repro.physics.multipath`) and dynamic scatterers (the hand, see
:mod:`repro.physics.hand`).  By reciprocity the return channel equals the
forward channel, so the round-trip baseband voltage seen by the reader is

    s = sqrt(Pt) * g^2 * m_tag * exp(-j * theta_tag)

with ``m_tag`` the tag's modulation efficiency.  This reproduces exactly the
phase structure the paper assumes: theta = (2*pi * 2d/lambda + theta_T +
theta_R + theta_tag) mod 2*pi for the single-path case, plus the hand's
"virtual transmitter" term of section III-A.1.

Powers: ``Pt * |g|^2`` is the power incident on the tag (forward-link /
readability budget), ``Pt * |g|^4 * M`` the backscatter power at the reader.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..units import TWO_PI, db_to_linear
from .antenna import ReaderAntenna
from .geometry import Vec3


@dataclass(frozen=True)
class Scatterer:
    """A point scatterer that creates an extra reader->scatterer->tag path.

    ``rcs_m2`` is the bistatic radar cross-section in square metres.  A
    human hand is a few hundred cm^2; the forearm more.  ``shadow`` entries
    describe the *near-field blockage* the scatterer causes on a tag it
    hovers over: the attenuation (dB, positive) applied to the tag's channel
    when the scatterer is directly on top of it, and the lateral/vertical
    length scales (metres) over which that blockage decays.
    """

    position: Vec3
    rcs_m2: float
    shadow_depth_db: float = 0.0
    shadow_lateral_scale: float = 0.03
    shadow_vertical_scale: float = 0.05
    #: Near-field detuning: a lossy dielectric (a hand) centimetres from a
    #: passive tag shifts the tag antenna's resonance, rotating its
    #: reflection phase by up to ``detune_rad`` with the same Gaussian
    #: locality as the shadow.  This — much more than the far-field
    #: reflection — is what makes the disturbance *local* to the tags under
    #: the trail (the sharp grey maps of the paper's Fig. 7).
    detune_rad: float = 0.0
    detune_lateral_scale: float = 0.030
    detune_vertical_scale: float = 0.045


def shadow_attenuation_db(tag_position: Vec3, scatterers: Iterable[Scatterer]) -> float:
    """Total near-field blockage (dB) the scatterers impose on one tag.

    A hand hovering directly over a tag detunes and shields the tag
    antenna; this is the mechanism behind the paper's distinct RSS
    trough (section III-B).  Gaussian decay laterally and vertically.
    """
    total = 0.0
    for sc in scatterers:
        if sc.shadow_depth_db <= 0.0:
            continue
        lateral = math.hypot(sc.position.x - tag_position.x, sc.position.y - tag_position.y)
        vertical = abs(sc.position.z - tag_position.z)
        total += sc.shadow_depth_db * math.exp(
            -0.5 * (lateral / sc.shadow_lateral_scale) ** 2
            - 0.5 * (vertical / sc.shadow_vertical_scale) ** 2
        )
    return total


def detuning_phase_rad(tag_position: Vec3, scatterers: Iterable[Scatterer]) -> float:
    """Total near-field resonance phase shift the scatterers impose."""
    total = 0.0
    for sc in scatterers:
        if sc.detune_rad == 0.0:
            continue
        lateral = math.hypot(sc.position.x - tag_position.x, sc.position.y - tag_position.y)
        vertical = abs(sc.position.z - tag_position.z)
        total += sc.detune_rad * math.exp(
            -0.5 * (lateral / sc.detune_lateral_scale) ** 2
            - 0.5 * (vertical / sc.detune_vertical_scale) ** 2
        )
    return total


@dataclass(frozen=True)
class RayPath:
    """One resolved propagation path (for introspection and tests)."""

    amplitude: float
    length: float
    kind: str  # "direct" | "reflector" | "scatterer"

    def phasor(self, wavelength: float) -> complex:
        return self.amplitude * cmath.exp(-1j * TWO_PI * self.length / wavelength)


class ChannelModel:
    """Computes per-tag complex channels for a fixed antenna and environment.

    Parameters
    ----------
    antenna:
        The reader antenna (pose + pattern).
    wavelength:
        Carrier wavelength, metres.
    reflector_images:
        Static environment multipath, pre-resolved into *image antennas*:
        tuples ``(image_position, reflection_coefficient)``.  The image
        method turns each wall/table into a virtual antenna at the mirror
        position whose rays reach the tag with the reflected path length.
        :mod:`repro.physics.multipath` builds these.
    occlusion_db:
        Extra attenuation (dB, positive) applied to the *direct* path only.
        Used by the LOS scenario where the user's arm cuts the line of
        sight; 0 for NLOS.
    """

    def __init__(
        self,
        antenna: ReaderAntenna,
        wavelength: float,
        reflector_images: Sequence[Tuple[Vec3, complex]] = (),
        occlusion_db: float = 0.0,
    ) -> None:
        if wavelength <= 0.0:
            raise ValueError(f"wavelength must be positive, got {wavelength}")
        self.antenna = antenna
        self.wavelength = wavelength
        self.reflector_images = list(reflector_images)
        self.occlusion_db = occlusion_db

    # ------------------------------------------------------------------
    # Path resolution
    # ------------------------------------------------------------------

    def _free_space_amplitude(self, gain_reader: float, gain_tag: float, distance: float) -> float:
        """One-way Friis voltage amplitude: sqrt(Gr*Gt) * lambda / (4*pi*d)."""
        if distance <= 0.0:
            raise ValueError("propagation distance must be positive")
        return math.sqrt(gain_reader * gain_tag) * self.wavelength / (4.0 * math.pi * distance)

    def _scatter_amplitude(
        self, gain_reader: float, gain_tag: float, rcs_m2: float, d1: float, d2: float
    ) -> float:
        """One-way bistatic scattering amplitude reader->scatterer->tag.

        sqrt of the bistatic radar power budget:
        Gr * Gt * lambda^2 * sigma / ((4*pi)^3 * d1^2 * d2^2).
        """
        if d1 <= 0.0 or d2 <= 0.0:
            raise ValueError("scatter hop distances must be positive")
        power_gain = (
            gain_reader
            * gain_tag
            * self.wavelength**2
            * rcs_m2
            / ((4.0 * math.pi) ** 3 * d1**2 * d2**2)
        )
        return math.sqrt(power_gain)

    def resolve_paths(
        self,
        tag_position: Vec3,
        tag_gain_linear: float,
        scatterers: Iterable[Scatterer] = (),
        direct_extra_loss_db: float = 0.0,
    ) -> List[RayPath]:
        """Enumerate all one-way paths from the reader antenna to a tag."""
        paths: List[RayPath] = []

        # Direct path.
        d_direct = self.antenna.position.distance_to(tag_position)
        gr = self.antenna.gain_towards(tag_position)
        a_direct = self._free_space_amplitude(gr, tag_gain_linear, d_direct)
        loss_db = self.occlusion_db + direct_extra_loss_db
        if loss_db > 0.0:
            a_direct *= math.sqrt(db_to_linear(-loss_db))
        paths.append(RayPath(a_direct, d_direct, "direct"))

        # Static environment reflections via image antennas.
        for image_pos, gamma in self.reflector_images:
            d_img = image_pos.distance_to(tag_position)
            # The image antenna inherits the pattern gain of the real antenna
            # towards the mirror of the tag; using gain towards the tag from
            # the image position is the standard first-order approximation.
            gr_img = self.antenna.gain_linear  # sidelobe-agnostic, scaled by gamma
            a_img = abs(gamma) * self._free_space_amplitude(gr_img, tag_gain_linear, d_img)
            # Fold the reflection coefficient's phase into an equivalent
            # extra path length so RayPath stays a (real amp, length) pair.
            extra = (cmath.phase(gamma) / TWO_PI) * self.wavelength if gamma != 0 else 0.0
            paths.append(RayPath(a_img, d_img - extra, "reflector"))

        # Dynamic scatterers (hand / arm).
        for sc in scatterers:
            d1 = self.antenna.position.distance_to(sc.position)
            d2 = sc.position.distance_to(tag_position)
            if d1 <= 0.0 or d2 <= 0.0:
                continue
            gr_sc = self.antenna.gain_towards(sc.position)
            a_sc = self._scatter_amplitude(gr_sc, tag_gain_linear, sc.rcs_m2, d1, d2)
            paths.append(RayPath(a_sc, d1 + d2, "scatterer"))

        return paths

    # ------------------------------------------------------------------
    # Channel evaluation
    # ------------------------------------------------------------------

    def shadow_attenuation_db(self, tag_position: Vec3, scatterers: Iterable[Scatterer]) -> float:
        """Total near-field blockage (dB) the scatterers impose on this tag."""
        return shadow_attenuation_db(tag_position, scatterers)

    def detuning_phase_rad(self, tag_position: Vec3, scatterers: Iterable[Scatterer]) -> float:
        """Total near-field resonance phase shift the scatterers impose."""
        return detuning_phase_rad(tag_position, scatterers)

    def one_way(
        self,
        tag_position: Vec3,
        tag_gain_linear: float,
        scatterers: Iterable[Scatterer] = (),
        direct_extra_loss_db: float = 0.0,
    ) -> complex:
        """Complex one-way channel g(reader -> tag), including shadowing."""
        scs = list(scatterers)
        g = sum(
            (p.phasor(self.wavelength) for p in self.resolve_paths(
                tag_position, tag_gain_linear, scs, direct_extra_loss_db)),
            0j,
        )
        shadow_db = self.shadow_attenuation_db(tag_position, scs)
        if shadow_db > 0.0:
            g *= math.sqrt(db_to_linear(-shadow_db))
        return g

    def incident_power(
        self,
        tx_power_w: float,
        tag_position: Vec3,
        tag_gain_linear: float,
        scatterers: Iterable[Scatterer] = (),
        direct_extra_loss_db: float = 0.0,
    ) -> float:
        """Forward-link power (watts) available at the tag's antenna port."""
        if tx_power_w <= 0.0:
            raise ValueError(f"tx power must be positive, got {tx_power_w}")
        g = self.one_way(tag_position, tag_gain_linear, scatterers, direct_extra_loss_db)
        return tx_power_w * abs(g) ** 2

    def roundtrip(
        self,
        tx_power_w: float,
        tag_position: Vec3,
        tag_gain_linear: float,
        tag_modulation_efficiency: float = 0.25,
        scatterers: Iterable[Scatterer] = (),
        direct_extra_loss_db: float = 0.0,
    ) -> complex:
        """Complex baseband voltage of the tag response at the reader.

        ``|s|^2`` is the received backscatter power in watts; ``arg(s)`` the
        channel phase before the reader/tag circuit offsets are applied.
        """
        g = self.one_way(tag_position, tag_gain_linear, scatterers, direct_extra_loss_db)
        return math.sqrt(tx_power_w * tag_modulation_efficiency) * g * g
