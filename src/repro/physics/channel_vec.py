"""Vectorized channel engine: the batched counterpart of ChannelModel.

:class:`ChannelModel` evaluates the coherent ray sum (Eqs. 1-8) one tag at
a time in scalar Python — the right shape for tests and for reasoning, but
the simulation hot path asks the opposite question: *given one scene, what
does every tag see?*  Readability is re-evaluated for all 25 tags at every
inventory round, and the paper-scale batteries replay hundreds of such
sessions.

:class:`ChannelEngine` answers that question once per scene with numpy:
all static geometry — antenna→tag distances, pattern gains, image-antenna
distances, Friis amplitudes — is resolved **once per deployment** at
construction, so a per-round evaluation touches only the pose-dependent
terms (scatterer hops, near-field shadow, LOS occlusion factors).

Contract with the scalar reference
----------------------------------
``ChannelModel`` stays the reference implementation.  The engine promises:

* :meth:`one_way_batch` / :meth:`roundtrip_batch` / :meth:`detuning_phase_batch`
  match the per-tag scalar results to <= 1e-9 relative error (cross-checked
  by ``tests/physics/test_channel_vec.py`` on randomized geometries);
* :meth:`one_way_single` — the per-read slot path — is **bit-identical** to
  ``ChannelModel.one_way``: it reuses the scalar model's amplitude helpers
  and replicates its operation order exactly, only substituting cached
  static geometry for recomputed geometry.  This is what lets the reader
  keep bit-identical ReportLogs across the scalar/vector switch.

The cache binds to the antenna pose, wavelength, tag positions/gains, and
image-antenna positions at construction; none of these may change behind
the engine's back (see DESIGN.md for the invalidation rules).  Reflection
*coefficients* are per-call inputs (``gammas``), because environment
flutter legitimately changes them between reads.
"""

from __future__ import annotations

import cmath
import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..units import TWO_PI, db_to_linear
from .antenna import ReaderAntenna
from .channel import ChannelModel, Scatterer, shadow_attenuation_db
from .geometry import Vec3

FOUR_PI = 4.0 * math.pi


class ChannelEngine:
    """Batched coherent ray-sum evaluation over a fixed tag population.

    Parameters
    ----------
    antenna:
        The reader antenna (pose + pattern), fixed for the engine's life.
    wavelength:
        Carrier wavelength, metres.
    tag_positions / tag_gains_linear:
        The tag population, index-aligned.  Positions are frozen into the
        static-geometry cache.
    reflector_images:
        Static environment multipath as ``(image_position, coefficient)``
        pairs — the same input :class:`ChannelModel` takes.  The positions
        are cached; the coefficients become the nominal (flutter-free)
        ``gammas`` default.
    occlusion_db:
        Static extra attenuation on the direct path (the scalar model's
        constructor knob); per-tag dynamic losses go through the
        ``direct_extra_loss_db`` call argument instead.
    """

    def __init__(
        self,
        antenna: ReaderAntenna,
        wavelength: float,
        tag_positions: Sequence[Vec3],
        tag_gains_linear: Sequence[float],
        reflector_images: Sequence[Tuple[Vec3, complex]] = (),
        occlusion_db: float = 0.0,
    ) -> None:
        if wavelength <= 0.0:
            raise ValueError(f"wavelength must be positive, got {wavelength}")
        if len(tag_positions) != len(tag_gains_linear):
            raise ValueError("tag_positions and tag_gains_linear must be index-aligned")
        if not tag_positions:
            raise ValueError("engine needs at least one tag")
        self.antenna = antenna
        self.wavelength = wavelength
        self.occlusion_db = occlusion_db
        self._ant_xyz = antenna.position.as_tuple()
        # Hot-loop constants: antenna pose/pattern as plain arrays, the
        # wavenumber, and the scatterer link-budget constant lambda^2/(4pi)^3.
        self._ant_np = np.array(self._ant_xyz)
        self._boresight_np = np.array(antenna._unit_boresight.as_tuple())
        self._pattern_n = antenna._pattern_n
        self._back_lobe = antenna._back_lobe
        self._gain_linear = antenna._gain_linear
        self._neg_jk = -1j * TWO_PI / wavelength
        self._scatter_const = wavelength**2 / FOUR_PI**3
        # The scalar reference provides the amplitude formulas; routing the
        # single-tag path through its helpers is what makes bit-identity a
        # structural property instead of a copy-paste discipline.
        self._ref = ChannelModel(antenna, wavelength, reflector_images, occlusion_db)

        self._tag_positions: List[Vec3] = list(tag_positions)
        self.tag_positions_np = np.array([p.as_tuple() for p in tag_positions])
        self._tag_gains: List[float] = [float(g) for g in tag_gains_linear]
        self.tag_gains_np = np.array(self._tag_gains)
        n = len(self._tag_positions)

        # --- static geometry, computed once with the *scalar* formulas ----
        d_direct: List[float] = []
        a_direct: List[float] = []
        exp_direct: List[complex] = []
        for pos, gt in zip(self._tag_positions, self._tag_gains):
            d = antenna.position.distance_to(pos)
            gr = antenna.gain_towards(pos)
            d_direct.append(d)
            a_direct.append(self._ref._free_space_amplitude(gr, gt, d))
            exp_direct.append(cmath.exp(-1j * TWO_PI * d / wavelength))
        self._d_direct = d_direct
        self._a_direct = a_direct
        self._exp_direct = exp_direct
        self.d_direct_np = np.array(d_direct)
        self.a_direct_np = np.array(a_direct)
        self.exp_direct_np = np.array(exp_direct)

        self.nominal_gammas: List[complex] = [g for _, g in reflector_images]
        self._image_positions: List[Vec3] = [p for p, _ in reflector_images]
        d_img: List[List[float]] = []
        fs_img: List[List[float]] = []
        for img_pos in self._image_positions:
            d_row = [img_pos.distance_to(pos) for pos in self._tag_positions]
            fs_row = [
                self._ref._free_space_amplitude(antenna.gain_linear, gt, d)
                for gt, d in zip(self._tag_gains, d_row)
            ]
            d_img.append(d_row)
            fs_img.append(fs_row)
        self._d_img = d_img
        self._fs_img = fs_img
        self.d_img_np = np.array(d_img) if d_img else np.zeros((0, n))
        self.fs_img_np = np.array(fs_img) if fs_img else np.zeros((0, n))

        # The reflector sum for the nominal coefficients is itself static.
        self._nominal_reflector_sum = self._reflector_sum(self.nominal_gammas)

        # Engine-level counters, drained into the metrics registry by the
        # reader after each inventory window (plain int increments on the
        # hot path; no registry lookups per call).
        self.batch_calls = 0
        self.single_calls = 0
        self.tags_evaluated = 0

    def __len__(self) -> int:
        return len(self._tag_positions)

    # ------------------------------------------------------------------
    # Batched evaluation (numpy; <= 1e-9 relative vs the scalar model)
    # ------------------------------------------------------------------

    def _reflector_sum(self, gammas: Sequence[complex]) -> np.ndarray:
        """Coherent sum of all image-antenna rays, per tag: (N,) complex."""
        total = np.zeros(len(self._tag_positions), dtype=complex)
        for j, gamma in enumerate(gammas):
            amp = abs(gamma) * self.fs_img_np[j]
            # The reflection coefficient's phase folds into an equivalent
            # extra path length, exactly as the scalar model does it.
            extra = (cmath.phase(gamma) / TWO_PI) * self.wavelength if gamma != 0 else 0.0
            total += amp * np.exp(-1j * TWO_PI * (self.d_img_np[j] - extra) / self.wavelength)
        return total

    def _direct_loss_factor(
        self, direct_extra_loss_db: "np.ndarray | float | None"
    ) -> "np.ndarray | float":
        loss = self.occlusion_db + (
            0.0 if direct_extra_loss_db is None else np.asarray(direct_extra_loss_db)
        )
        return np.where(loss > 0.0, 10.0 ** (-loss / 20.0), 1.0)

    def shadow_attenuation_db_batch(self, scatterers: Iterable[Scatterer]) -> np.ndarray:
        """Per-tag near-field blockage (dB), vectorized over tags."""
        total = np.zeros(len(self._tag_positions))
        p = self.tag_positions_np
        for sc in scatterers:
            if sc.shadow_depth_db <= 0.0:
                continue
            lateral = np.hypot(sc.position.x - p[:, 0], sc.position.y - p[:, 1])
            vertical = np.abs(sc.position.z - p[:, 2])
            total += sc.shadow_depth_db * np.exp(
                -0.5 * (lateral / sc.shadow_lateral_scale) ** 2
                - 0.5 * (vertical / sc.shadow_vertical_scale) ** 2
            )
        return total

    def detuning_phase_batch(self, scatterers: Iterable[Scatterer]) -> np.ndarray:
        """Per-tag near-field resonance phase shift (radians)."""
        total = np.zeros(len(self._tag_positions))
        p = self.tag_positions_np
        for sc in scatterers:
            if sc.detune_rad == 0.0:
                continue
            lateral = np.hypot(sc.position.x - p[:, 0], sc.position.y - p[:, 1])
            vertical = np.abs(sc.position.z - p[:, 2])
            total += sc.detune_rad * np.exp(
                -0.5 * (lateral / sc.detune_lateral_scale) ** 2
                - 0.5 * (vertical / sc.detune_vertical_scale) ** 2
            )
        return total

    def static_base(
        self, direct_extra_loss_db: "np.ndarray | float | None" = None
    ) -> np.ndarray:
        """Precompute the direct + nominal-reflector sum for a fixed loss.

        The result is valid as the ``base`` argument of :meth:`one_way_batch`
        for any scene whose direct-path loss equals ``direct_extra_loss_db``
        and whose reflection coefficients are nominal — i.e. the per-round
        readability checks of a deployment whose only dynamics are the hand.
        """
        g = self.a_direct_np * self._direct_loss_factor(direct_extra_loss_db) * self.exp_direct_np
        return g + self._nominal_reflector_sum

    def one_way_batch(
        self,
        scatterers: Iterable[Scatterer] = (),
        direct_extra_loss_db: "np.ndarray | float | None" = None,
        gammas: Optional[Sequence[complex]] = None,
        base: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Complex one-way channel g(reader -> tag) for every tag at once.

        ``direct_extra_loss_db`` is a scalar or per-tag ``(N,)`` vector of
        extra direct-path losses (static coupling shadow + LOS occlusion).
        ``gammas`` overrides the nominal reflection coefficients (flutter);
        ``None`` reuses the cached nominal reflector sum.  ``base`` is a
        precomputed :meth:`static_base` result that replaces the direct and
        reflector terms entirely (both loss and gamma arguments are then
        ignored); callers own the coherence of that cache.
        """
        scs = list(scatterers)
        self.batch_calls += 1
        self.tags_evaluated += len(self._tag_positions)

        if base is not None:
            g = base
        else:
            g = (
                self.a_direct_np
                * self._direct_loss_factor(direct_extra_loss_db)
                * self.exp_direct_np
            )
            g = g + (
                self._nominal_reflector_sum if gammas is None else self._reflector_sum(gammas)
            )

        if scs:
            # One (S, N) broadcast over all scatterer hops: tiny S (hand +
            # arm points) but called every inventory round, so per-scatterer
            # numpy dispatch overhead dominates the arithmetic otherwise.
            # The antenna pattern is inlined (same direction-cosine formula
            # as ReaderAntenna.gain_towards) to avoid re-deriving the
            # antenna->scatterer geometry twice.
            sc_pos = np.array([sc.position.as_tuple() for sc in scs])
            sc_rcs = np.array([sc.rcs_m2 for sc in scs])
            diff0 = sc_pos - self._ant_np
            d1 = np.sqrt(np.einsum("ij,ij->i", diff0, diff0))
            d1_safe = np.where(d1 > 0.0, d1, 1.0)
            cos_t = np.clip((diff0 @ self._boresight_np) / d1_safe, -1.0, 1.0)
            if self._pattern_n > 0.0:
                pattern = np.maximum(
                    np.maximum(cos_t, 0.0) ** self._pattern_n, self._back_lobe
                )
            else:
                pattern = np.where(cos_t >= 0.0, 1.0, self._back_lobe)
            gr_sc = self._gain_linear * pattern
            diff = self.tag_positions_np[None, :, :] - sc_pos[:, None, :]
            d2 = np.sqrt(np.einsum("snk,snk->sn", diff, diff))
            valid = (d1[:, None] > 0.0) & (d2 > 0.0)
            d2_safe = np.where(valid, d2, 1.0)
            amp = np.sqrt(
                (gr_sc * sc_rcs)[:, None] * self.tag_gains_np * self._scatter_const
            ) / (d1_safe[:, None] * d2_safe)
            contrib = amp * np.exp(self._neg_jk * (d1_safe[:, None] + d2_safe))
            if not valid.all():
                contrib = np.where(valid, contrib, 0.0)
            g = g + contrib.sum(axis=0)

        shadow_db = self.shadow_attenuation_db_batch(scs)
        if np.any(shadow_db > 0.0):
            g = g * np.where(shadow_db > 0.0, 10.0 ** (-shadow_db / 20.0), 1.0)
        return g

    def scene_powers(
        self,
        base: np.ndarray,
        tx_power_w: float,
        one_way_loss: float,
        hand_xyz: "Tuple[float, float, float] | None" = None,
        offsets: "np.ndarray | None" = None,
        rcs: "np.ndarray | None" = None,
        shadow: "Tuple[float, float, float] | None" = None,
    ) -> np.ndarray:
        """Per-tag incident powers for a static base plus an optional hand.

        The per-round readability fast path: element-for-element the same
        numpy operations as :meth:`one_way_batch` (scatterer hops over a
        hand + arm-point group) followed by the reader's power expression —
        so the resulting readable *set* is identical — but fed from
        precomputed template arrays instead of per-round ``Scatterer`` /
        ``Vec3`` object graphs.  ``offsets`` is the ``(S, 3)`` block of
        scatterer displacements from the hand position (row 0 is zeros: the
        hand itself), ``rcs`` the matching RCS column, ``shadow`` the
        hand's ``(depth_db, lateral_scale, vertical_scale)``.
        """
        self.batch_calls += 1
        self.tags_evaluated += len(self._tag_positions)
        g = base
        if hand_xyz is not None:
            px, py, pz = hand_xyz
            # position + cached u*k offsets: the same float adds as
            # HandPose.arm_points; row 0 is assigned directly so a signed
            # zero in the position survives untouched.
            sc_pos = np.array((px, py, pz)) + offsets
            sc_pos[0, 0] = px
            sc_pos[0, 1] = py
            sc_pos[0, 2] = pz
            diff0 = sc_pos - self._ant_np
            d1 = np.sqrt(np.einsum("ij,ij->i", diff0, diff0))
            diff = self.tag_positions_np[None, :, :] - sc_pos[:, None, :]
            d2 = np.sqrt(np.einsum("snk,snk->sn", diff, diff))
            if d1.min() > 0.0 and d2.min() > 0.0:
                # All hops valid (the overwhelmingly common case): the
                # guarded ``where`` selections of one_way_batch reduce to
                # identity, so skipping them leaves every element bitwise
                # unchanged while saving the mask dispatches.
                d1_safe = d1
                d2_safe = d2
                valid = None
            else:
                d1_safe = np.where(d1 > 0.0, d1, 1.0)
                valid = (d1[:, None] > 0.0) & (d2 > 0.0)
                d2_safe = np.where(valid, d2, 1.0)
            cos_t = np.clip((diff0 @ self._boresight_np) / d1_safe, -1.0, 1.0)
            if self._pattern_n > 0.0:
                pattern = np.maximum(
                    np.maximum(cos_t, 0.0) ** self._pattern_n, self._back_lobe
                )
            else:
                pattern = np.where(cos_t >= 0.0, 1.0, self._back_lobe)
            gr_sc = self._gain_linear * pattern
            amp = np.sqrt(
                (gr_sc * rcs)[:, None] * self.tag_gains_np * self._scatter_const
            ) / (d1_safe[:, None] * d2_safe)
            contrib = amp * np.exp(self._neg_jk * (d1_safe[:, None] + d2_safe))
            if valid is not None and not valid.all():
                contrib = np.where(valid, contrib, 0.0)
            g = g + contrib.sum(axis=0)

            depth, ls, vs = shadow
            if depth > 0.0:
                p = self.tag_positions_np
                lateral = np.hypot(px - p[:, 0], py - p[:, 1])
                vertical = np.abs(pz - p[:, 2])
                shadow_db = depth * np.exp(
                    -0.5 * (lateral / ls) ** 2 - 0.5 * (vertical / vs) ** 2
                )
                if np.any(shadow_db > 0.0):
                    g = g * np.where(shadow_db > 0.0, 10.0 ** (-shadow_db / 20.0), 1.0)
        return tx_power_w * np.abs(g * one_way_loss) ** 2

    def scene_powers_trials(
        self,
        base: np.ndarray,
        tx_power_w: float,
        one_way_loss: float,
        hand_xyz: np.ndarray,
        offsets: np.ndarray,
        rcs: np.ndarray,
        shadow: "Tuple[float, float, float]",
    ) -> np.ndarray:
        """Per-tag incident powers for T independent trials in one evaluation.

        The trial-axis counterpart of :meth:`scene_powers`: ``hand_xyz`` is
        a ``(T, 3)`` block of hand positions — one row per trial lane — and
        the result is ``(T, N)`` powers.  All lanes share the deployment's
        precomputed static geometry and the same scatterer *template*
        (``offsets``/``rcs``/``shadow``), which is what makes one numpy
        dispatch advance many trials.

        Bit-identity contract: every row equals the corresponding solo
        ``scene_powers(base, ..., hand_xyz[t], ...)`` result bit-for-bit,
        because the batched expressions are the same elementwise ufunc
        chains (``+ - * /``, ``np.sqrt``, fixed-order ``einsum`` dot
        products, ``np.exp`` on identical complex inputs) evaluated
        per-lane — numpy's elementwise kernels do not change results with
        the leading batch shape.  Counters advance as if each lane had been
        evaluated solo, so telemetry totals are lane-equivalent.
        """
        t = hand_xyz.shape[0]
        self.batch_calls += t
        self.tags_evaluated += t * len(self._tag_positions)
        # position + cached u*k offsets per lane; row 0 of every lane is
        # assigned directly so signed zeros in the position survive.
        sc_pos = hand_xyz[:, None, :] + offsets[None, :, :]
        sc_pos[:, 0, :] = hand_xyz
        diff0 = sc_pos - self._ant_np
        d1 = np.sqrt(np.einsum("tsk,tsk->ts", diff0, diff0))
        diff = self.tag_positions_np[None, None, :, :] - sc_pos[:, :, None, :]
        d2 = np.sqrt(np.einsum("tsnk,tsnk->tsn", diff, diff))
        if d1.min() > 0.0 and d2.min() > 0.0:
            d1_safe = d1
            d2_safe = d2
            valid = None
        else:
            d1_safe = np.where(d1 > 0.0, d1, 1.0)
            valid = (d1[:, :, None] > 0.0) & (d2 > 0.0)
            d2_safe = np.where(valid, d2, 1.0)
        cos_t = np.clip((diff0 @ self._boresight_np) / d1_safe, -1.0, 1.0)
        if self._pattern_n > 0.0:
            pattern = np.maximum(
                np.maximum(cos_t, 0.0) ** self._pattern_n, self._back_lobe
            )
        else:
            pattern = np.where(cos_t >= 0.0, 1.0, self._back_lobe)
        gr_sc = self._gain_linear * pattern
        amp = np.sqrt(
            (gr_sc * rcs)[:, :, None] * self.tag_gains_np * self._scatter_const
        ) / (d1_safe[:, :, None] * d2_safe)
        contrib = amp * np.exp(self._neg_jk * (d1_safe[:, :, None] + d2_safe))
        if valid is not None and not valid.all():
            contrib = np.where(valid, contrib, 0.0)
        g = base + contrib.sum(axis=1)

        depth, ls, vs = shadow
        if depth > 0.0:
            p = self.tag_positions_np
            lateral = np.hypot(
                hand_xyz[:, 0, None] - p[:, 0], hand_xyz[:, 1, None] - p[:, 1]
            )
            vertical = np.abs(hand_xyz[:, 2, None] - p[:, 2])
            shadow_db = depth * np.exp(
                -0.5 * (lateral / ls) ** 2 - 0.5 * (vertical / vs) ** 2
            )
            if np.any(shadow_db > 0.0):
                g = g * np.where(shadow_db > 0.0, 10.0 ** (-shadow_db / 20.0), 1.0)
        return tx_power_w * np.abs(g * one_way_loss) ** 2

    def incident_power_batch(
        self,
        tx_power_w: float,
        scatterers: Iterable[Scatterer] = (),
        direct_extra_loss_db: "np.ndarray | float | None" = None,
    ) -> np.ndarray:
        """Forward-link power (watts) at every tag's antenna port."""
        if tx_power_w <= 0.0:
            raise ValueError(f"tx power must be positive, got {tx_power_w}")
        g = self.one_way_batch(scatterers, direct_extra_loss_db)
        return tx_power_w * np.abs(g) ** 2

    def roundtrip_batch(
        self,
        tx_power_w: float,
        tag_modulation_efficiency: "np.ndarray | float" = 0.25,
        scatterers: Iterable[Scatterer] = (),
        direct_extra_loss_db: "np.ndarray | float | None" = None,
        gammas: Optional[Sequence[complex]] = None,
    ) -> np.ndarray:
        """Complex baseband backscatter voltage at the reader, per tag."""
        g = self.one_way_batch(scatterers, direct_extra_loss_db, gammas)
        return np.sqrt(tx_power_w * np.asarray(tag_modulation_efficiency)) * g * g

    # ------------------------------------------------------------------
    # Single-tag slot path (scalar; bit-identical to ChannelModel)
    # ------------------------------------------------------------------

    def one_way_single(
        self,
        tag_index: int,
        scatterers: Iterable[Scatterer] = (),
        direct_extra_loss_db: float = 0.0,
        gammas: Optional[Sequence[complex]] = None,
    ) -> complex:
        """One tag's complex one-way channel, with cached static geometry.

        Bit-identical to ``ChannelModel.one_way`` with the corresponding
        ``reflector_images``: same amplitude helpers, same summation order
        (direct, reflectors, scatterers), same shadow application.  This is
        the per-successful-slot path, where a 25-wide numpy batch would
        cost more than the scalar arithmetic it replaces.
        """
        self.single_calls += 1
        tag_pos = self._tag_positions[tag_index]
        gt = self._tag_gains[tag_index]
        scs = list(scatterers)

        a_direct = self._a_direct[tag_index]
        loss_db = self.occlusion_db + direct_extra_loss_db
        if loss_db > 0.0:
            a_direct *= math.sqrt(db_to_linear(-loss_db))
        g = 0j
        g += a_direct * self._exp_direct[tag_index]

        if gammas is None:
            gammas = self.nominal_gammas
        for j, gamma in enumerate(gammas):
            a_img = abs(gamma) * self._fs_img[j][tag_index]
            extra = (cmath.phase(gamma) / TWO_PI) * self.wavelength if gamma != 0 else 0.0
            length = self._d_img[j][tag_index] - extra
            g += a_img * cmath.exp(-1j * TWO_PI * length / self.wavelength)

        ax, ay, az = self._ant_xyz
        for sc in scs:
            sp = sc.position
            # Inlined Vec3.distance_to (same component order, same ops —
            # bit-identical to the scalar model's values, no allocations).
            dx, dy, dz = ax - sp.x, ay - sp.y, az - sp.z
            d1 = math.sqrt(dx * dx + dy * dy + dz * dz)
            ex, ey, ez = sp.x - tag_pos.x, sp.y - tag_pos.y, sp.z - tag_pos.z
            d2 = math.sqrt(ex * ex + ey * ey + ez * ez)
            if d1 <= 0.0 or d2 <= 0.0:
                continue
            gr_sc = self.antenna.gain_towards(sp)
            a_sc = self._ref._scatter_amplitude(gr_sc, gt, sc.rcs_m2, d1, d2)
            g += a_sc * cmath.exp(-1j * TWO_PI * (d1 + d2) / self.wavelength)

        shadow_db = shadow_attenuation_db(tag_pos, scs)
        if shadow_db > 0.0:
            g *= math.sqrt(db_to_linear(-shadow_db))
        return g

    def roundtrip_single(
        self,
        tag_index: int,
        tx_power_w: float,
        tag_modulation_efficiency: float = 0.25,
        scatterers: Iterable[Scatterer] = (),
        direct_extra_loss_db: float = 0.0,
        gammas: Optional[Sequence[complex]] = None,
    ) -> complex:
        """One tag's roundtrip baseband voltage (see ``ChannelModel.roundtrip``)."""
        g = self.one_way_single(tag_index, scatterers, direct_extra_loss_db, gammas)
        return math.sqrt(tx_power_w * tag_modulation_efficiency) * g * g

    # ------------------------------------------------------------------
    # Row-batched slot path (bit-identical to one_way_single per row)
    # ------------------------------------------------------------------

    def backscatter_rows(
        self,
        tag_idx: np.ndarray,
        direct_amp: np.ndarray,
        sqrt_txp_eff: np.ndarray,
        gammas_re: np.ndarray,
        gammas_im: np.ndarray,
        hand_xyz: "np.ndarray | None" = None,
        template: "object | None" = None,
    ) -> "Tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Roundtrip voltages for M successful slots at once, bit-identical
        per row to ``roundtrip_single`` + ``detuning_phase_rad``.

        Parameters are column-wise over the M rows: the winning tag index,
        the post-loss direct amplitude (``a_direct`` after the caller's
        ``sqrt(db_to_linear(-loss))`` factor, matching ``one_way_single``'s
        own scalar computation), the precomputed ``sqrt(Pt * m_tag)``
        roundtrip scale, and the fluttered reflection coefficients as
        ``(M, R)`` real/imag arrays.  ``hand_xyz``/``template`` describe a
        HandPose-shaped scatterer group (hand + arm points) shared by all
        rows; ``None`` means no hand anywhere in the batch.

        Returns ``(s_re, s_im, detune_rad)``.

        Bit-identity strategy (the PR 2 contract, extended): elementwise
        ``+ - * /``, ``np.sqrt/np.cos/np.sin`` and manual componentwise
        complex products reproduce the scalar arithmetic exactly, so the
        straight-line ray sums vectorize; everything that routes through
        libm with data-dependent arguments where numpy's kernels differ in
        the last ulp — ``hypot``, ``atan2``, ``exp``, ``pow`` (including
        ``x ** 2``, which CPython evaluates as ``pow(x, 2.0)`` while numpy
        squares with a multiply) — runs in short per-row Python loops.
        """
        m = int(tag_idx.size)
        self.batch_calls += 1
        self.single_calls += m
        self.tags_evaluated += m
        wl = self.wavelength
        out_detune = np.zeros(m)
        if m == 0:
            return np.zeros(0), np.zeros(0), out_detune

        # --- direct path: g = 0j; g += a_direct * exp_direct[tag] ---------
        er = self.exp_direct_np.real[tag_idx]
        ei = self.exp_direct_np.imag[tag_idx]
        # float * complex expands with (a, 0.0): keep the 0.0 cross terms so
        # signed zeros match the scalar product exactly.
        g_re = 0.0 + (direct_amp * er - 0.0 * ei)
        g_im = 0.0 + (direct_amp * ei + 0.0 * er)

        # --- static reflectors (fluttered coefficients per row) -----------
        for j in range(gammas_re.shape[1]):
            grl = gammas_re[:, j].tolist()
            gil = gammas_im[:, j].tolist()
            # abs() of a complex is libm hypot; cmath.phase is atan2 — both
            # off-by-an-ulp in numpy, so they stay scalar.
            amp = np.array([math.hypot(a, b) for a, b in zip(grl, gil)])
            extra = np.array(
                [
                    0.0
                    if (a == 0.0 and b == 0.0)
                    else (math.atan2(b, a) / TWO_PI) * wl
                    for a, b in zip(grl, gil)
                ]
            )
            a_img = amp * self.fs_img_np[j][tag_idx]
            length = self.d_img_np[j][tag_idx] - extra
            # cmath.exp(-1j * TWO_PI * length / wl): the exponent's real
            # part is a signed zero (exp of it is exactly 1), its imaginary
            # part is ((-TWO_PI) * length) / wl with exactly this grouping.
            theta = ((-TWO_PI) * length) / wl
            c = np.cos(theta)
            s = np.sin(theta)
            g_re = g_re + (a_img * c - 0.0 * s)
            g_im = g_im + (a_img * s + 0.0 * c)

        # --- dynamic scatterers: hand + arm points ------------------------
        if hand_xyz is not None and template is not None:
            tag_x = self.tag_positions_np[tag_idx, 0]
            tag_y = self.tag_positions_np[tag_idx, 1]
            tag_z = self.tag_positions_np[tag_idx, 2]
            gt = self.tag_gains_np[tag_idx]
            hx = hand_xyz[:, 0]
            hy = hand_xyz[:, 1]
            hz = hand_xyz[:, 2]
            ax, ay, az = self._ant_xyz
            b = self._boresight_np
            bx, by, bz = float(b[0]), float(b[1]), float(b[2])
            pn = self._pattern_n
            bl = self._back_lobe
            gl = self._gain_linear
            wl2 = wl**2
            fp3 = FOUR_PI**3

            # Scatterer group: the hand plus arm sample points at fixed
            # offsets — HandPose.arm_points computes position + u*k per
            # component, so "position + precomputed u*k" is the same float.
            direction = template.arm_direction.normalized()
            n_arm = 3
            arm_ks = [template.arm_length * (i + 1) / n_arm for i in range(n_arm)]
            per_point_rcs = template.arm_rcs_m2 / n_arm
            groups = [(hx, hy, hz, template.hand_rcs_m2)]
            for k in arm_ks:
                groups.append(
                    (
                        hx + direction.x * k,
                        hy + direction.y * k,
                        hz + direction.z * k,
                        per_point_rcs,
                    )
                )

            for sx, sy, sz, rcs in groups:
                dx = ax - sx
                dy = ay - sy
                dz = az - sz
                d1 = np.sqrt(dx * dx + dy * dy + dz * dz)
                e_x = sx - tag_x
                e_y = sy - tag_y
                e_z = sz - tag_z
                d2 = np.sqrt(e_x * e_x + e_y * e_y + e_z * e_z)
                valid = (d1 > 0.0) & (d2 > 0.0)
                all_valid = bool(valid.all())

                # gain_towards(sc): direction cosines from the antenna.
                gdx = sx - ax
                gdy = sy - ay
                gdz = sz - az
                gd2 = gdx * gdx + gdy * gdy + gdz * gdz
                gd2_safe = gd2 if all_valid else np.where(gd2 > 0.0, gd2, 1.0)
                cos_t = (gdx * bx + gdy * by + gdz * bz) / np.sqrt(gd2_safe)
                cos_t = np.maximum(-1.0, np.minimum(1.0, cos_t))

                # Scalar loops: the cos^n pattern and the d^2 terms are libm
                # pow in the scalar reference (x ** n, x ** 2), which no
                # numpy spelling reproduces bit-for-bit.
                cosl = cos_t.tolist()
                if pn > 0.0:
                    pat = np.array(
                        [max(c**pn, bl) if c >= 0.0 else bl for c in cosl]
                    )
                else:
                    pat = np.array([max(1.0, bl) if c >= 0.0 else bl for c in cosl])
                d1sq = np.array([v**2 for v in d1.tolist()])
                d2sq = np.array([v**2 for v in d2.tolist()])

                gr_sc = gl * pat
                power_gain = (((gr_sc * gt) * wl2) * rcs) / ((fp3 * d1sq) * d2sq)
                a_sc = np.sqrt(power_gain)
                theta = ((-TWO_PI) * (d1 + d2)) / wl
                c = np.cos(theta)
                s = np.sin(theta)
                t_re = a_sc * c - 0.0 * s
                t_im = a_sc * s + 0.0 * c
                if all_valid:
                    g_re = g_re + t_re
                    g_im = g_im + t_im
                else:
                    # The scalar loop `continue`s on degenerate hops: a
                    # masked where (not an add of 0.0) keeps -0.0 intact.
                    g_re = np.where(valid, g_re + t_re, g_re)
                    g_im = np.where(valid, g_im + t_im, g_im)

            # --- near-field shadow + detuning (hand only; scalar libm) ----
            sd = template.shadow_depth_db
            dr = template.detune_rad
            if sd > 0.0 or dr != 0.0:
                hand_sc = template.scatterers(include_arm=False)[0]
                s_ls = hand_sc.shadow_lateral_scale
                s_vs = hand_sc.shadow_vertical_scale
                d_ls = hand_sc.detune_lateral_scale
                d_vs = hand_sc.detune_vertical_scale
                shl: "List[float]" = []
                dtl: "List[float]" = []
                fal: "List[float]" = []
                for xh, yh, zh, xt, yt, zt in zip(
                    hx.tolist(), hy.tolist(), hz.tolist(),
                    tag_x.tolist(), tag_y.tolist(), tag_z.tolist(),
                ):
                    lat = math.hypot(xh - xt, yh - yt)
                    vert = abs(zh - zt)
                    if sd > 0.0:
                        sh = sd * math.exp(
                            -0.5 * (lat / s_ls) ** 2 - 0.5 * (vert / s_vs) ** 2
                        )
                        shl.append(sh)
                        # g *= sqrt(db_to_linear(-shadow_db)) when > 0 dB.
                        fal.append(
                            math.sqrt(10.0 ** ((-sh) / 10.0)) if sh > 0.0 else 1.0
                        )
                    if dr != 0.0:
                        dtl.append(
                            dr * math.exp(
                                -0.5 * (lat / d_ls) ** 2 - 0.5 * (vert / d_vs) ** 2
                            )
                        )
                if dr != 0.0:
                    out_detune = np.array(dtl)
                if sd > 0.0:
                    sh_arr = np.array(shl)
                    fac = np.array(fal)
                    apply = sh_arr > 0.0
                    # complex *= float expands with (f, 0.0) cross terms.
                    new_re = g_re * fac - g_im * 0.0
                    new_im = g_re * 0.0 + g_im * fac
                    if bool(apply.all()):
                        g_re, g_im = new_re, new_im
                    else:
                        g_re = np.where(apply, new_re, g_re)
                        g_im = np.where(apply, new_im, g_im)

        # --- roundtrip: (sqrt(Pt*m) * g) * g ------------------------------
        c0 = sqrt_txp_eff
        h_re = c0 * g_re - 0.0 * g_im
        h_im = c0 * g_im + 0.0 * g_re
        s_re = h_re * g_re - h_im * g_im
        s_im = h_re * g_im + h_im * g_re
        return s_re, s_im, out_detune

    # ------------------------------------------------------------------

    def drain_counters(self) -> "dict[str, int]":
        """Return and reset the engine's evaluation counters."""
        out = {
            "batch_calls": self.batch_calls,
            "single_calls": self.single_calls,
            "tags_evaluated": self.tags_evaluated,
        }
        self.batch_calls = 0
        self.single_calls = 0
        self.tags_evaluated = 0
        return out
