"""Static environment multipath: image-method reflectors and location presets.

The paper evaluates RFIPad at four locations in an office (Fig. 15) and
shows (Fig. 16) that multipath richness drives the *location diversity* the
suppression algorithm targets: each tag sees a different static phase offset
and a different noise level ("Deviation bias") depending on nearby walls,
tables, and moving clutter.

We model each location as a set of infinite planar reflectors.  Every
reflector contributes, per tag, a coherent static ray (via the mirror-image
antenna — see :class:`repro.physics.channel.ChannelModel`) plus a small
incoherent *flutter* term: real environments are never perfectly static
(people, doors, HVAC), so each reflector jitters its coefficient slightly
between reads.  The flutter is what inflates per-tag phase variance and, in
rich environments, degrades unsuppressed recognition exactly as Fig. 16
shows.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Sequence, Tuple

import numpy as np

from .geometry import Vec3, mirror_across_plane


@dataclass(frozen=True)
class PlanarReflector:
    """An infinite plane with a complex reflection coefficient.

    ``flutter`` is the standard deviation of the per-read multiplicative
    perturbation of the coefficient (models non-static clutter near the
    reflector).
    """

    point: Vec3
    normal: Vec3
    coefficient: complex = 0.3 + 0.0j
    flutter: float = 0.0

    def __post_init__(self) -> None:
        if self.normal.norm() == 0.0:
            raise ValueError("reflector normal must be non-zero")
        if abs(self.coefficient) > 1.0:
            raise ValueError("reflection coefficient magnitude cannot exceed 1")
        if self.flutter < 0.0:
            raise ValueError("flutter must be non-negative")

    def image_of(self, antenna_position: Vec3) -> Vec3:
        return mirror_across_plane(antenna_position, self.point, self.normal)


@dataclass(frozen=True)
class Environment:
    """A named multipath environment (one of the paper's locations)."""

    name: str
    reflectors: Tuple[PlanarReflector, ...] = ()

    @cached_property
    def _flutter_plan(
        self,
    ) -> "tuple[np.ndarray, tuple[tuple[complex, float, float, int], ...]]":
        """Precomputed flutter constants: draw scales + per-reflector terms.

        ``scales`` holds the normal-draw standard deviations — a (magnitude,
        phase) pair per *fluttering* reflector, in reflector order.  The info
        tuple carries each reflector's coefficient, its polar decomposition,
        and its index into the draw vector (-1 when it never flutters).
        cached_property stores into ``__dict__``, bypassing the frozen guard;
        all inputs are frozen fields.
        """
        scales: List[float] = []
        info: List[Tuple[complex, float, float, int]] = []
        for r in self.reflectors:
            if r.flutter > 0.0:
                info.append(
                    (r.coefficient, abs(r.coefficient), cmath.phase(r.coefficient), len(scales))
                )
                scales.append(r.flutter)
                scales.append(r.flutter * math.pi)
            else:
                info.append((r.coefficient, 0.0, 0.0, -1))
        return np.array(scales), tuple(info)

    def sample_gammas(
        self, rng: "np.random.Generator | None" = None
    ) -> List[complex]:
        """Per-reflector coefficients, flutter-perturbed when ``rng`` is given.

        One draw pair (magnitude, phase) per fluttering reflector, in
        reflector order — the reader's per-read flutter resampling and
        :meth:`image_antennas` share this exact RNG consumption order, so
        hoisting the image positions out of the per-read path cannot change
        the random stream.  The pairs are drawn as one batched ``normal``
        call, which numpy fills with the same values (bit-identical) as the
        equivalent sequence of scalar draws.
        """
        scales, info = self._flutter_plan
        if rng is None or scales.size == 0:
            return [r.coefficient for r in self.reflectors]
        # standard_normal * scale draws the same (bit-identical) values as
        # normal(0, scales) while skipping its per-call array validation.
        draws = rng.standard_normal(scales.size) * scales
        gammas: List[complex] = []
        for coefficient, mag0, ph0, idx in info:
            if idx < 0:
                gammas.append(coefficient)
            else:
                # Perturb magnitude and phase independently.
                mag = mag0 * max(0.0, 1.0 + float(draws[idx]))
                ph = ph0 + float(draws[idx + 1])
                gammas.append(mag * cmath.exp(1j * ph))
        return gammas

    @property
    def flutter_draw_count(self) -> int:
        """Standard normals :meth:`sample_gammas` consumes per call."""
        return int(self._flutter_plan[0].size)

    def sample_gammas_rows(
        self, z: "np.ndarray"
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized :meth:`sample_gammas` over pre-drawn standard normals.

        ``z`` is an ``(M, flutter_draw_count)`` block of standard-normal
        draws, one row per read, laid out exactly as M sequential
        ``sample_gammas`` calls would consume them.  Returns the reflection
        coefficients as real/imaginary ``(M, R)`` arrays whose elements are
        bit-identical to the scalar path: the elementwise operations
        (``scale`` multiply, clamp, ``cos``/``sin``, the float-times-complex
        product expansion) all reproduce the scalar arithmetic exactly —
        ``cmath.exp(1j * ph)`` is ``(cos(ph), sin(ph))``, and the scalar
        ``mag * <complex>`` product carries ``0.0 *`` cross terms whose
        signed zeros the expansion below preserves.
        """
        scales, info = self._flutter_plan
        m = z.shape[0]
        n_refl = len(self.reflectors)
        g_re = np.empty((m, n_refl))
        g_im = np.empty((m, n_refl))
        draws = z * scales if scales.size else z
        for j, (coefficient, mag0, ph0, idx) in enumerate(info):
            if idx < 0:
                g_re[:, j] = coefficient.real
                g_im[:, j] = coefficient.imag
            else:
                mag = mag0 * np.maximum(0.0, 1.0 + draws[:, idx])
                ph = ph0 + draws[:, idx + 1]
                c = np.cos(ph)
                s = np.sin(ph)
                g_re[:, j] = mag * c - 0.0 * s
                g_im[:, j] = mag * s + 0.0 * c
        return g_re, g_im

    def image_antennas(
        self, antenna_position: Vec3, rng: "np.random.Generator | None" = None
    ) -> List[Tuple[Vec3, complex]]:
        """Resolve reflectors into (image position, coefficient) pairs.

        When ``rng`` is given, each coefficient is perturbed by the
        reflector's flutter — call once per read to model clutter motion.
        """
        gammas = self.sample_gammas(rng)
        return [
            (r.image_of(antenna_position), gamma)
            for r, gamma in zip(self.reflectors, gammas)
        ]

    @property
    def richness(self) -> float:
        """Scalar multipath richness: sum of |coefficient| * (1 + flutter)."""
        return sum(abs(r.coefficient) * (1.0 + r.flutter) for r in self.reflectors)


def _wall(x: float = 0.0, y: float = 0.0, z: float = 0.0,
          nx: float = 0.0, ny: float = 0.0, nz: float = 0.0,
          gamma: complex = 0.3 + 0.0j, flutter: float = 0.0) -> PlanarReflector:
    return PlanarReflector(Vec3(x, y, z), Vec3(nx, ny, nz), gamma, flutter)


def location_preset(index: int) -> Environment:
    """The four lab locations of Fig. 15, ordered by multipath richness.

    Location #1 is open space (weak multipath); location #4 is the corner
    near walls and tables where the paper observes the strongest multipath
    and the biggest win from diversity suppression (75% -> 93%, Fig. 16).
    Geometry is in the tag-plane frame (plane at z = 0, user side z > 0).
    """
    if index == 1:
        return Environment("location-1", (
            _wall(z=3.0, nz=-1.0, gamma=0.10 + 0.05j, flutter=0.010),
        ))
    if index == 2:
        return Environment("location-2", (
            _wall(z=3.0, nz=-1.0, gamma=0.12 + 0.05j, flutter=0.015),
            _wall(x=1.5, nx=-1.0, gamma=0.20 + 0.10j, flutter=0.020),
        ))
    if index == 3:
        return Environment("location-3", (
            _wall(z=2.0, nz=-1.0, gamma=0.15 + 0.08j, flutter=0.020),
            _wall(x=1.0, nx=-1.0, gamma=0.25 + 0.10j, flutter=0.030),
            _wall(y=-1.0, ny=1.0, gamma=0.20 + 0.12j, flutter=0.025),
        ))
    if index == 4:
        # The corner spot: a wall and a table edge close enough that tags
        # on the near side of the pad see markedly noisier channels than
        # tags on the far side — the asymmetry that makes the deviation-
        # bias weighting matter most here (Fig. 16's 75% -> 93%).
        return Environment("location-4", (
            _wall(z=1.2, nz=-1.0, gamma=0.25 + 0.10j, flutter=0.028),
            _wall(x=0.35, nx=-1.0, gamma=0.40 + 0.15j, flutter=0.060),
            _wall(y=-0.45, ny=1.0, gamma=0.35 + 0.15j, flutter=0.050),
            _wall(x=-0.8, nx=1.0, gamma=0.25 + 0.12j, flutter=0.022),
        ))
    raise ValueError(f"location preset must be 1..4, got {index}")


ALL_LOCATIONS: Sequence[int] = (1, 2, 3, 4)


def free_space() -> Environment:
    """No multipath at all — used by unit tests and theory checks."""
    return Environment("free-space", ())
