"""RF physics substrate: geometry, antennas, backscatter channels, multipath,
hand scattering, tag coupling, and receiver noise.

This package is intentionally independent of the RFID protocol layer — it
deals only in positions, gains, and complex baseband signals.  The
:mod:`repro.rfid` package composes these pieces into a reader/tag system.
"""

from .antenna import ReaderAntenna, minimum_plane_distance, plane_side_for_grid
from .channel import ChannelModel, RayPath, Scatterer
from .coupling import (
    ALL_DESIGNS,
    TAG_DESIGN_A,
    TAG_DESIGN_B,
    TAG_DESIGN_C,
    TAG_DESIGN_D,
    TagAntennaProfile,
    aggregate_shadow_loss_db,
    alternating_facing_pattern,
    design_by_name,
    pair_shadow_loss_db,
)
from .geometry import (
    ORIGIN,
    X_AXIS,
    Y_AXIS,
    Z_AXIS,
    GridLayout,
    Vec3,
    angle_between,
    centroid,
    mirror_across_plane,
    path_length,
    resample_polyline,
    rotate_about_y,
)
from .hand import (
    ARM_RCS_M2,
    HAND_RCS_M2,
    HAND_SHADOW_DEPTH_DB,
    HandPose,
    hand_height_profile,
    occlusion_loss_db,
    point_to_segment_distance,
)
from .multipath import (
    ALL_LOCATIONS,
    Environment,
    PlanarReflector,
    free_space,
    location_preset,
)
from .noise import DEFAULT_NOISE_FLOOR_DBM, ReceiverNoise, doppler_estimate_hz

__all__ = [
    "ALL_DESIGNS",
    "ALL_LOCATIONS",
    "ARM_RCS_M2",
    "ChannelModel",
    "DEFAULT_NOISE_FLOOR_DBM",
    "Environment",
    "GridLayout",
    "HAND_RCS_M2",
    "HAND_SHADOW_DEPTH_DB",
    "HandPose",
    "ORIGIN",
    "PlanarReflector",
    "RayPath",
    "ReaderAntenna",
    "ReceiverNoise",
    "Scatterer",
    "TAG_DESIGN_A",
    "TAG_DESIGN_B",
    "TAG_DESIGN_C",
    "TAG_DESIGN_D",
    "TagAntennaProfile",
    "Vec3",
    "X_AXIS",
    "Y_AXIS",
    "Z_AXIS",
    "aggregate_shadow_loss_db",
    "alternating_facing_pattern",
    "angle_between",
    "centroid",
    "design_by_name",
    "doppler_estimate_hz",
    "free_space",
    "hand_height_profile",
    "location_preset",
    "minimum_plane_distance",
    "mirror_across_plane",
    "occlusion_loss_db",
    "pair_shadow_loss_db",
    "path_length",
    "plane_side_for_grid",
    "point_to_segment_distance",
    "resample_polyline",
    "rotate_about_y",
]
