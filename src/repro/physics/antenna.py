"""Directional reader antenna model.

The paper idealises the Laird A9028R30NF panel antenna (8 dBi) with the
solid-angle approximation of section IV-B.3:

* gain        ``G ~= 4*pi / Omega_s``            (Eq. 13)
* beam angle  ``theta_beam ~= sqrt(4*pi / G)``   (Eq. 14)

which gives ~72 degrees for G = 8 dBi ~= 6.31.  For off-boresight directions
we use the standard ``cos^n`` pattern whose exponent is fitted so that the
half-power (−3 dB) width equals the Eq. 14 beam angle.  That keeps the model
exactly consistent with the paper's own geometry reasoning (minimum
antenna-to-plane distance, Fig. 13) while giving a smooth roll-off that the
angle-sweep experiment (Fig. 18) can exercise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..units import db_to_linear, linear_to_db
from .geometry import Vec3


@dataclass(frozen=True)
class ReaderAntenna:
    """A directional panel antenna at a fixed pose.

    Parameters
    ----------
    position:
        Phase centre of the antenna, metres.
    boresight:
        Direction of maximum radiation (need not be unit length).
    gain_dbi:
        Peak gain relative to isotropic.  The paper's prototype uses 8 dBi.
    front_to_back_db:
        Suppression applied to the back hemisphere.  Commodity panels are
        ~25 dB; it mostly matters for NLOS placements where tags sit in the
        main lobe but wall reflections may arrive from behind.
    """

    position: Vec3
    boresight: Vec3
    gain_dbi: float = 8.0
    front_to_back_db: float = 25.0
    _unit_boresight: Vec3 = field(init=False, repr=False, compare=False)
    _pattern_n: float = field(init=False, repr=False, compare=False)
    _gain_linear: float = field(init=False, repr=False, compare=False)
    _back_lobe: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.boresight.norm() == 0.0:
            raise ValueError("boresight must be a non-zero direction")
        object.__setattr__(self, "_unit_boresight", self.boresight.normalized())
        object.__setattr__(self, "_gain_linear", db_to_linear(self.gain_dbi))
        object.__setattr__(self, "_back_lobe", db_to_linear(-self.front_to_back_db))
        object.__setattr__(self, "_pattern_n", self._solve_pattern_exponent())

    @property
    def gain_linear(self) -> float:
        return self._gain_linear

    def beam_angle(self) -> float:
        """Full beam angle in radians, Eq. 14: sqrt(4*pi/G)."""
        return math.sqrt(4.0 * math.pi / self.gain_linear)

    def beam_angle_degrees(self) -> float:
        return math.degrees(self.beam_angle())

    def _solve_pattern_exponent(self) -> float:
        half = self.beam_angle() / 2.0
        # Guard: for near-isotropic gains the half-angle can exceed 90 deg;
        # fall back to an isotropic pattern (n = 0).
        if half >= math.pi / 2.0 - 1e-9:
            return 0.0
        return math.log(0.5) / math.log(math.cos(half))

    def _pattern_exponent(self) -> float:
        """Exponent n of the cos^n power pattern, solved once at construction
        from ``cos(theta_3dB)^n = 1/2`` with ``theta_3dB`` the half-beam
        angle from Eq. 14.
        """
        return self._pattern_n

    def gain_towards(self, target: Vec3) -> float:
        """Linear gain in the direction of ``target``.

        Back-hemisphere directions are attenuated by ``front_to_back_db``.
        The target coinciding with the antenna position is an error — the
        link geometry upstream should never produce it.

        Hot path: called once per scatterer per tag read, so the cos^n
        pattern is evaluated directly from the direction cosine (no
        acos/cos round trip) with all dB conversions precomputed.
        """
        dx = target.x - self.position.x
        dy = target.y - self.position.y
        dz = target.z - self.position.z
        d2 = dx * dx + dy * dy + dz * dz
        if d2 == 0.0:
            raise ValueError("target coincides with the antenna phase centre")
        b = self._unit_boresight
        cos_t = (dx * b.x + dy * b.y + dz * b.z) / math.sqrt(d2)
        cos_t = max(-1.0, min(1.0, cos_t))
        if cos_t >= 0.0:
            pattern = cos_t ** self._pattern_n if self._pattern_n > 0.0 else 1.0
        else:
            pattern = self._back_lobe
        # Floor the pattern so deep nulls stay numerically sane.
        pattern = max(pattern, self._back_lobe)
        return self._gain_linear * pattern

    def gain_towards_many(self, targets: "object") -> "object":
        """Vectorized :meth:`gain_towards` over an ``(N, 3)`` float array.

        Uses the identical direction-cosine formula, so results agree with
        the scalar method to floating-point noise.  Imported lazily so the
        scalar physics layer stays numpy-free for cold-start users.
        """
        import numpy as np

        diff = np.asarray(targets, dtype=float) - np.array(self.position.as_tuple())
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        if np.any(dist == 0.0):
            raise ValueError("target coincides with the antenna phase centre")
        b = self._unit_boresight
        cos_t = (diff[:, 0] * b.x + diff[:, 1] * b.y + diff[:, 2] * b.z) / dist
        cos_t = np.clip(cos_t, -1.0, 1.0)
        if self._pattern_n > 0.0:
            front = np.where(cos_t >= 0.0, np.maximum(cos_t, 0.0) ** self._pattern_n, 0.0)
        else:
            front = np.where(cos_t >= 0.0, 1.0, 0.0)
        pattern = np.maximum(np.where(cos_t >= 0.0, front, self._back_lobe), self._back_lobe)
        return self._gain_linear * pattern

    def gain_towards_dbi(self, target: Vec3) -> float:
        return linear_to_db(self.gain_towards(target))


def minimum_plane_distance(plane_side: float, gain_dbi: float = 8.0) -> float:
    """Minimum antenna-to-plane distance for full 3 dB-beam coverage.

    Paper section IV-B.3: with half beam angle ``theta_beam/2`` and a square
    tag plane of side ``l`` parallel to the panel, all tags are inside the
    3 dB beam when ``d >= (l/2) / tan(theta_beam/2)``.  For the prototype
    (l ~= 46 cm, 8 dBi -> 72 deg beam) this is the paper's ~31.7 cm.
    """
    if plane_side <= 0.0:
        raise ValueError(f"plane side must be positive, got {plane_side}")
    beam = math.sqrt(4.0 * math.pi / db_to_linear(gain_dbi))
    half = beam / 2.0
    if half >= math.pi / 2.0:
        return 0.0  # beam wider than a hemisphere covers any parallel plane
    return (plane_side / 2.0) / math.tan(half)


def plane_side_for_grid(tag_size: float, pitch: float, tags_per_side: int) -> float:
    """Physical side length of the tag plane.

    Matches the paper's accounting: 5 tags of 4.4 cm with 6 cm gaps between
    adjacent tag edges gives ~46 cm.
    """
    if tags_per_side < 1:
        raise ValueError("need at least one tag per side")
    return tags_per_side * tag_size + (tags_per_side - 1) * pitch
