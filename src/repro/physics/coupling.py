"""Tag-to-tag coupling: the shadowing interference of sections IV-B.1/2.

Dense passive tags load each other: a neighbouring tag's antenna absorbs
and re-scatters part of the incident field, reducing the power a *target*
tag receives.  The paper measures this two ways:

* **pair interference** (Fig. 11): a testing tag approaching a target tag
  suppresses the target's RSS strongly inside the near-field region
  (lambda/2*pi ~= 5.2 cm), mildly in the transition region, and negligibly
  beyond ~12 cm (~2*lambda/2*pi); facing the two tags *opposite* ways
  nearly removes the effect.

* **array interference** (Fig. 12): a target tag behind a growing array
  loses RSS with every added row/column, and the magnitude tracks the tag
  design's radar cross-section — big-antenna designs (their Tag D) cost
  ~20 dB at three columns, small-RCS designs (Tag B, Impinj AZ-E53) ~2 dB.

The model: each interferer contributes a shadow loss (dB)

    loss = depth(design, facing) * exp(-(d / decay)^2)

and losses add in dB with a soft saturation, which matches the monotone,
design-ordered curves of Fig. 12 without pretending to full-wave accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from .geometry import Vec3


@dataclass(frozen=True)
class TagAntennaProfile:
    """Electromagnetic profile of a commercial tag design.

    ``rcs_m2`` is the unmodulated radar scattering cross-section the paper
    cites (via Dobkin) as the determinant of both radiative efficiency and
    injected interference.  ``size_m`` is the long dimension of the inlay.
    """

    name: str
    rcs_m2: float
    size_m: float
    gain_dbi: float = 2.0

    def __post_init__(self) -> None:
        if self.rcs_m2 <= 0.0:
            raise ValueError("RCS must be positive")
        if self.size_m <= 0.0:
            raise ValueError("tag size must be positive")


# The four commercial designs of Fig. 12(c).  RCS values are chosen to
# reproduce the measured ordering and spread: design B (Impinj AZ-E53,
# small meandered antenna) injects ~2 dB at 3 columns, design D (large
# dipole) ~20 dB.
TAG_DESIGN_A = TagAntennaProfile("A", rcs_m2=0.0030, size_m=0.070, gain_dbi=2.0)
TAG_DESIGN_B = TagAntennaProfile("B", rcs_m2=0.0002, size_m=0.044, gain_dbi=1.5)
TAG_DESIGN_C = TagAntennaProfile("C", rcs_m2=0.0012, size_m=0.060, gain_dbi=2.0)
TAG_DESIGN_D = TagAntennaProfile("D", rcs_m2=0.0090, size_m=0.095, gain_dbi=2.5)

ALL_DESIGNS: Sequence[TagAntennaProfile] = (
    TAG_DESIGN_A,
    TAG_DESIGN_B,
    TAG_DESIGN_C,
    TAG_DESIGN_D,
)


def design_by_name(name: str) -> TagAntennaProfile:
    """Look up one of the four commercial designs by its letter (A-D)."""
    for d in ALL_DESIGNS:
        if d.name == name:
            return d
    raise KeyError(f"unknown tag design {name!r}; choose from A/B/C/D")


#: Reference RCS at which an immediately adjacent, same-facing interferer
#: costs ``_REFERENCE_DEPTH_DB``.
_REFERENCE_RCS_M2 = 0.0090
_REFERENCE_DEPTH_DB = 16.0

#: Gaussian decay scale of the coupling with separation.  Calibrated so the
#: effect is strong at 3 cm (near field, lambda/2pi ~ 5.2 cm), present in
#: the 6 cm transition region, and negligible beyond 12 cm (Fig. 11).
_COUPLING_DECAY_M = 0.055

#: Residual fraction of the coupling when tags face opposite directions.
_OPPOSITE_FACING_FACTOR = 0.12

#: Soft cap on total shadow loss; measured array losses saturate ~20+ dB.
_SATURATION_DB = 26.0


def pair_shadow_loss_db(
    separation_m: float,
    interferer: TagAntennaProfile,
    same_facing: bool = True,
) -> float:
    """Shadow loss (dB) one interfering tag imposes on a target tag.

    >>> pair_shadow_loss_db(0.03, TAG_DESIGN_D) > pair_shadow_loss_db(0.12, TAG_DESIGN_D)
    True
    """
    if separation_m <= 0.0:
        raise ValueError("separation must be positive")
    depth = _REFERENCE_DEPTH_DB * math.sqrt(interferer.rcs_m2 / _REFERENCE_RCS_M2)
    if not same_facing:
        depth *= _OPPOSITE_FACING_FACTOR
    return depth * math.exp(-((separation_m / _COUPLING_DECAY_M) ** 2))


def _saturate(total_db: float) -> float:
    """Soft-saturating sum of dB losses: linear near 0, capped at the limit."""
    if total_db <= 0.0:
        return 0.0
    return _SATURATION_DB * math.tanh(total_db / _SATURATION_DB)


def aggregate_shadow_loss_db(
    target_position: Vec3,
    interferer_positions: Iterable[Vec3],
    interferer: TagAntennaProfile,
    same_facing: bool = True,
) -> float:
    """Total shadow loss a set of same-design neighbours imposes on a tag.

    Used both for Fig. 12 (target tag behind a growing array) and for the
    per-tag link budget inside a deployed array: corner tags see fewer
    neighbours than centre tags, which contributes to the per-tag RSS and
    noise spread (location/"Deviation" bias).
    """
    total = 0.0
    for pos in interferer_positions:
        d = target_position.distance_to(pos)
        if d == 0.0:
            continue  # the tag itself
        total += pair_shadow_loss_db(d, interferer, same_facing)
    return _saturate(total)


def alternating_facing_pattern(rows: int, cols: int) -> "list[list[bool]]":
    """Deployment guidance from section IV-B.1: alternate antenna facing.

    Returns a rows x cols boolean grid where ``True`` means the tag faces
    the default direction.  Checkerboarding neighbours opposite ways cuts
    mutual coupling by ``_OPPOSITE_FACING_FACTOR``.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid must be at least 1x1")
    return [[(r + c) % 2 == 0 for c in range(cols)] for r in range(rows)]
