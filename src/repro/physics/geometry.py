"""3-D geometry primitives used across the physics and motion layers.

The coordinate frame is fixed throughout the project:

* the tag plane lies in the ``z = 0`` plane,
* ``x`` grows to the user's right (columns of the array),
* ``y`` grows upwards along the plane (rows of the array),
* ``z`` grows towards the user; the hand moves at small positive ``z``,
  an NLOS antenna sits at negative ``z`` (behind the board), an LOS
  (ceiling) antenna at large positive ``z``.

We deliberately keep :class:`Vec3` as a tiny frozen dataclass rather than a
numpy array: positions flow through protocol-level code where a hashable,
self-documenting value type reads better, and the hot numeric paths convert
to numpy arrays in bulk anyway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class Vec3:
    """An immutable point/vector in metres."""

    x: float
    y: float
    z: float

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def dot(self, other: "Vec3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        return math.sqrt(self.dot(self))

    def distance_to(self, other: "Vec3") -> float:
        return (self - other).norm()

    def normalized(self) -> "Vec3":
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalise the zero vector")
        return Vec3(self.x / n, self.y / n, self.z / n)

    def lerp(self, other: "Vec3", t: float) -> "Vec3":
        """Linear interpolation: t=0 -> self, t=1 -> other."""
        return Vec3(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
            self.z + (other.z - self.z) * t,
        )

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.x, self.y, self.z)


ORIGIN = Vec3(0.0, 0.0, 0.0)
X_AXIS = Vec3(1.0, 0.0, 0.0)
Y_AXIS = Vec3(0.0, 1.0, 0.0)
Z_AXIS = Vec3(0.0, 0.0, 1.0)


def angle_between(a: Vec3, b: Vec3) -> float:
    """Angle in radians between two non-zero vectors, in [0, pi]."""
    na, nb = a.norm(), b.norm()
    if na == 0.0 or nb == 0.0:
        raise ValueError("angle undefined for zero vectors")
    cos = a.dot(b) / (na * nb)
    cos = max(-1.0, min(1.0, cos))
    return math.acos(cos)


def rotate_about_y(v: Vec3, angle_rad: float) -> Vec3:
    """Rotate ``v`` about the y axis (used to tilt the reader antenna).

    A positive angle rotates the +z axis towards +x.
    """
    c, s = math.cos(angle_rad), math.sin(angle_rad)
    return Vec3(c * v.x + s * v.z, v.y, -s * v.x + c * v.z)


def mirror_across_plane(point: Vec3, plane_point: Vec3, plane_normal: Vec3) -> Vec3:
    """Mirror ``point`` across an infinite plane (image method helper).

    ``plane_normal`` need not be unit length.
    """
    n = plane_normal.normalized()
    d = (point - plane_point).dot(n)
    return point - n * (2.0 * d)


@dataclass(frozen=True)
class GridLayout:
    """A rows x cols rectangular tag array centred on the origin of the plane.

    ``pitch`` is the centre-to-centre spacing (the paper deploys 6 cm).
    Index convention: ``(row, col)`` with row 0 the *top* row (largest y) and
    col 0 the leftmost column, matching how the paper's grey maps are drawn.
    """

    rows: int = 5
    cols: int = 5
    pitch: float = 0.06

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {self.rows}x{self.cols}")
        if self.pitch <= 0.0:
            raise ValueError(f"pitch must be positive, got {self.pitch}")

    @property
    def count(self) -> int:
        return self.rows * self.cols

    @property
    def width(self) -> float:
        """Horizontal extent between outermost tag centres."""
        return (self.cols - 1) * self.pitch

    @property
    def height(self) -> float:
        return (self.rows - 1) * self.pitch

    def position(self, row: int, col: int) -> Vec3:
        """Centre of tag ``(row, col)`` on the z = 0 plane."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"({row}, {col}) outside {self.rows}x{self.cols} grid")
        x = (col - (self.cols - 1) / 2.0) * self.pitch
        y = ((self.rows - 1) / 2.0 - row) * self.pitch
        return Vec3(x, y, 0.0)

    def index_of(self, row: int, col: int) -> int:
        """Flat index in row-major order (tag #0 is top-left)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"({row}, {col}) outside {self.rows}x{self.cols} grid")
        return row * self.cols + col

    def row_col(self, index: int) -> Tuple[int, int]:
        if not (0 <= index < self.count):
            raise IndexError(f"index {index} outside 0..{self.count - 1}")
        return divmod(index, self.cols)

    def positions(self) -> List[Vec3]:
        """All tag centres in flat-index order."""
        return [self.position(r, c) for r in range(self.rows) for c in range(self.cols)]

    def iter_cells(self) -> Iterator[Tuple[int, int, Vec3]]:
        for r in range(self.rows):
            for c in range(self.cols):
                yield r, c, self.position(r, c)

    def nearest_cell(self, point: Vec3) -> Tuple[int, int]:
        """The ``(row, col)`` whose tag centre is closest to ``point`` (xy only)."""
        best = (0, 0)
        best_d2 = float("inf")
        for r, c, p in self.iter_cells():
            d2 = (p.x - point.x) ** 2 + (p.y - point.y) ** 2
            if d2 < best_d2:
                best_d2 = d2
                best = (r, c)
        return best


def path_length(points: Sequence[Vec3]) -> float:
    """Total polyline length of a trajectory sample sequence."""
    total = 0.0
    for a, b in zip(points, points[1:]):
        total += a.distance_to(b)
    return total


def resample_polyline(points: Sequence[Vec3], n: int) -> List[Vec3]:
    """Resample a polyline to ``n`` points uniformly spaced by arc length.

    Degenerate (zero-length) polylines return ``n`` copies of the first point.
    """
    if n < 2:
        raise ValueError(f"need at least 2 samples, got {n}")
    if not points:
        raise ValueError("empty polyline")
    seg_lengths = [a.distance_to(b) for a, b in zip(points, points[1:])]
    total = sum(seg_lengths)
    if total == 0.0 or len(points) == 1:
        return [points[0]] * n
    out: List[Vec3] = []
    targets = [total * i / (n - 1) for i in range(n)]
    seg = 0
    consumed = 0.0
    for target in targets:
        while seg < len(seg_lengths) - 1 and consumed + seg_lengths[seg] < target:
            consumed += seg_lengths[seg]
            seg += 1
        seg_len = seg_lengths[seg]
        t = 0.0 if seg_len == 0.0 else (target - consumed) / seg_len
        t = max(0.0, min(1.0, t))
        out.append(points[seg].lerp(points[seg + 1], t))
    return out


def centroid(points: Iterable[Vec3]) -> Vec3:
    """Arithmetic mean of a non-empty point set."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid of empty set")
    inv = 1.0 / len(pts)
    return Vec3(
        sum(p.x for p in pts) * inv,
        sum(p.y for p in pts) * inv,
        sum(p.z for p in pts) * inv,
    )
