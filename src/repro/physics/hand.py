"""The moving hand (and arm) as RF scatterers.

Section III-A.1 of the paper treats the hand as a "powerful virtual
transmitter that generates the reflected signals".  We realise that as one
:class:`~repro.physics.channel.Scatterer` for the hand plus one for the
forearm.  The hand additionally *shadows* tags it hovers over (near-field
blockage) — that blockage is the distinct RSS trough the paper's direction
estimator relies on (section III-B).

The arm matters for the LOS-vs-NLOS result (Table I): with a ceiling
antenna the forearm cuts the reader->tag line of sight for a swath of tags,
injecting noise the paper blames for the lower LOS accuracy.  We model that
as an occlusion loss on the direct path of tags whose line of sight passes
near an arm point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .channel import Scatterer
from .geometry import Vec3


#: Effective bistatic RCS of a hand at ~920 MHz, m^2.  A hand is a lossy
#: dielectric of ~80 cm^2 cross section; its RCS at UHF is of that order.
HAND_RCS_M2 = 0.003

#: Forearm RCS — larger body, but usually further from the tags.
ARM_RCS_M2 = 0.010

#: Peak near-field blockage the hand causes on a tag directly beneath it.
HAND_SHADOW_DEPTH_DB = 12.0

#: Peak near-field resonance detuning (radians of reflection-phase shift)
#: the hand causes on a tag directly beneath it.  This is the dominant,
#: sharply local phase disturbance — see Scatterer.detune_rad.
HAND_DETUNE_RAD = 2.4


@dataclass(frozen=True)
class HandPose:
    """The instantaneous pose of the writing hand.

    ``position`` is the fingertip/palm reference point.  ``arm_direction``
    points from the hand back towards the elbow (unit-ish; renormalised),
    so arm sample points are ``position + k * arm_direction``.
    """

    position: Vec3
    #: From the hand back towards the elbow.  Writers keep the forearm
    #: raised well off the pad, so the default climbs steeply in z.
    arm_direction: Vec3 = Vec3(0.0, -0.45, 1.0)
    arm_length: float = 0.30
    hand_rcs_m2: float = HAND_RCS_M2
    arm_rcs_m2: float = ARM_RCS_M2
    shadow_depth_db: float = HAND_SHADOW_DEPTH_DB
    detune_rad: float = HAND_DETUNE_RAD

    def arm_points(self, n: int = 3) -> List[Vec3]:
        """Sample points along the forearm (excluding the hand itself)."""
        if n < 1:
            return []
        direction = self.arm_direction.normalized()
        # Inlined position + direction * k (same per-component op order as
        # the Vec3 operators): this runs once per channel evaluation.
        px, py, pz = self.position.x, self.position.y, self.position.z
        ux, uy, uz = direction.x, direction.y, direction.z
        length = self.arm_length
        ks = [length * (i + 1) / n for i in range(n)]
        return [Vec3(px + ux * k, py + uy * k, pz + uz * k) for k in ks]

    def scatterers(self, include_arm: bool = True) -> List[Scatterer]:
        """Channel scatterers for this pose.

        The hand carries the near-field shadow; arm points scatter but are
        too far above the plane to shadow tags.
        """
        out = [
            Scatterer(
                position=self.position,
                rcs_m2=self.hand_rcs_m2,
                shadow_depth_db=self.shadow_depth_db,
                detune_rad=self.detune_rad,
            )
        ]
        if include_arm:
            arm_pts = self.arm_points()
            per_point = self.arm_rcs_m2 / max(1, len(arm_pts))
            out.extend(Scatterer(position=p, rcs_m2=per_point) for p in arm_pts)
        return out


@dataclass
class PoseTrack:
    """A batch of hand poses sampled at many timestamps, column-wise.

    The batched reader path asks the motion layer for all of a window's
    success-slot poses in one call (``WritingScript.pose_at_many``); the
    result is this struct-of-arrays: positions for the rows where a hand is
    present, plus the pose *parameters* (arm geometry, RCS, shadow/detune
    strengths) factored into shared templates.  Almost every producer uses
    a single template — the per-row ``template_idx`` only matters for
    ad-hoc pose callables that vary parameters over time.
    """

    times: np.ndarray         # (M,) sample times, seconds
    present: np.ndarray       # (M,) bool: hand in the scene at times[i]
    xyz: np.ndarray           # (M, 3) hand positions; rows with ~present are undefined
    templates: List[HandPose]  # shared parameter sets; positions ignored
    template_idx: np.ndarray  # (M,) int index into templates; -1 where absent

    @classmethod
    def from_poses(
        cls, times: np.ndarray, poses: "Sequence[HandPose | None]"
    ) -> "PoseTrack":
        """Columnize scalar ``hand_pose_at`` results (the fallback when a
        pose source has no vectorized ``pose_at_many``)."""
        times = np.asarray(times, dtype=float)
        m = times.size
        present = np.zeros(m, dtype=bool)
        xyz = np.zeros((m, 3))
        templates: List[HandPose] = []
        template_idx = np.full(m, -1, dtype=np.int64)
        keymap: dict = {}
        for i, pose in enumerate(poses):
            if pose is None:
                continue
            present[i] = True
            p = pose.position
            xyz[i, 0] = p.x
            xyz[i, 1] = p.y
            xyz[i, 2] = p.z
            key = (
                pose.arm_direction.x, pose.arm_direction.y, pose.arm_direction.z,
                pose.arm_length, pose.hand_rcs_m2, pose.arm_rcs_m2,
                pose.shadow_depth_db, pose.detune_rad,
            )
            k = keymap.get(key)
            if k is None:
                k = keymap[key] = len(templates)
                templates.append(pose)
            template_idx[i] = k
        return cls(times, present, xyz, templates, template_idx)

    def pose_at(self, i: int) -> "HandPose | None":
        """Reconstruct row ``i`` as a scalar :class:`HandPose` (LOS occlusion
        falls back to the scalar per-row evaluation)."""
        if not self.present[i]:
            return None
        tmpl = self.templates[int(self.template_idx[i])]
        return HandPose(
            position=Vec3(
                float(self.xyz[i, 0]), float(self.xyz[i, 1]), float(self.xyz[i, 2])
            ),
            arm_direction=tmpl.arm_direction,
            arm_length=tmpl.arm_length,
            hand_rcs_m2=tmpl.hand_rcs_m2,
            arm_rcs_m2=tmpl.arm_rcs_m2,
            shadow_depth_db=tmpl.shadow_depth_db,
            detune_rad=tmpl.detune_rad,
        )


def point_to_segment_distance(p: Vec3, a: Vec3, b: Vec3) -> float:
    """Shortest distance from point ``p`` to segment ``ab``."""
    ab = b - a
    denom = ab.dot(ab)
    if denom == 0.0:
        return p.distance_to(a)
    t = (p - a).dot(ab) / denom
    t = max(0.0, min(1.0, t))
    return p.distance_to(a + ab * t)


def occlusion_loss_db(
    antenna_position: Vec3,
    tag_position: Vec3,
    pose: "HandPose | None",
    fresnel_radius: float = 0.10,
    depth_db: float = 8.0,
) -> float:
    """Direct-path loss (dB) when the hand/arm cuts the reader-tag LOS.

    Loss is maximal when a body point sits on the antenna->tag segment and
    decays as a Gaussian of its clearance relative to ``fresnel_radius``.
    Returns 0 for ``pose is None`` (no hand in the scene).
    """
    if pose is None:
        return 0.0
    total = 0.0
    for body_point in [pose.position] + pose.arm_points():
        clearance = point_to_segment_distance(body_point, antenna_position, tag_position)
        total += depth_db * math.exp(-0.5 * (clearance / fresnel_radius) ** 2)
    return total


def occlusion_loss_db_batch(
    antenna_position: Vec3,
    tag_positions: "np.ndarray",
    pose: "HandPose | None",
    fresnel_radius: float = 0.10,
    depth_db: float = 8.0,
) -> "np.ndarray":
    """Vectorized :func:`occlusion_loss_db` over an ``(N, 3)`` tag array.

    Matches the scalar function to floating-point noise (cross-checked in
    ``tests/physics/test_channel_vec.py``); used by the reader's batched
    readability evaluation.
    """
    n = tag_positions.shape[0]
    if pose is None:
        return np.zeros(n)
    a = np.array(antenna_position.as_tuple())
    ab = tag_positions - a                       # (N, 3) antenna -> tag
    denom = np.einsum("ij,ij->i", ab, ab)        # |ab|^2 per tag
    total = np.zeros(n)
    for body_point in [pose.position] + pose.arm_points():
        p = np.array(body_point.as_tuple())
        t = np.divide(
            (p - a) @ ab.T, denom, out=np.zeros(n), where=denom != 0.0
        )
        t = np.clip(t, 0.0, 1.0)
        closest = a + t[:, None] * ab
        clearance = np.linalg.norm(p - closest, axis=1)
        total += depth_db * np.exp(-0.5 * (clearance / fresnel_radius) ** 2)
    return total


def hand_height_profile(speed: float) -> float:
    """Nominal hover height (m) above the plane while writing.

    The paper's accuracy holds for hand-to-plane distances within ~5 cm
    (section VI).  Faster writers tend to drift slightly higher.
    """
    base = 0.03
    return base + 0.01 * max(0.0, speed - 0.3)
