"""Cross-process telemetry: snapshots, merging, and time-series sampling.

PR 1 made the pipeline observable *within one process*; this module makes
observability survive two boundaries:

* **process boundaries** — a :class:`TelemetrySnapshot` is the
  serializable (pickle- and JSON-safe) capture of everything a tracer and
  metrics registry recorded: span records, counter totals, gauge values,
  and full-state fixed-bucket histograms.  Process-pool workers capture a
  per-trial delta snapshot (``capture_snapshot(reset=True)``) and ship it
  back with the trial result; the parent folds it in with
  :func:`merge_snapshot`, so ``repro stats`` shows identical counter
  totals whether a battery ran on 1 worker or 8 (see
  ``repro.sim.parallel``);
* **time** — a :class:`TelemetryHub` samples the registries on an
  interval into a bounded ring buffer, giving ``repro top``, health
  rules, and the ``--metrics-out`` JSONL export a windowed time series
  instead of a single end-of-run total.

Merge semantics (the telemetry contract, DESIGN.md §12):

* counters **add** — a counter is a monotone total, so per-process deltas
  sum;
* gauges are **last-write-wins** in merge order — a gauge is a point
  reading, and snapshots are merged in submission order, so the result is
  deterministic;
* histograms **bucket-merge** (:meth:`repro.obs.metrics.Histogram.merge`)
  — commutative and associative because bucket counts, count, and total
  add and min/max take extrema;
* spans **append** — durations and paths are preserved; ``start_s`` stays
  in the origin process's clock domain, so only durations (not absolute
  times) are comparable across processes.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, IO, List, Optional, Tuple, Union

from .metrics import Histogram, MetricsRegistry, get_metrics
from .trace import Tracer, get_tracer

__all__ = [
    "TelemetryHub",
    "TelemetrySnapshot",
    "capture_snapshot",
    "merge_snapshot",
]


@dataclass
class TelemetrySnapshot:
    """Serializable capture of one registry pair's recorded telemetry.

    ``spans`` holds :meth:`repro.obs.trace.Span.to_dict` records;
    ``histograms`` maps names to full
    :meth:`repro.obs.metrics.Histogram.state` dicts (bounds + bucket
    counts), so merging is exact — not a lossy summary merge.
    """

    spans: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not (self.spans or self.counters or self.gauges or self.histograms)

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Fold ``other`` into this snapshot in place (see module doc)."""
        self.spans.extend(other.spans)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        self.gauges.update(other.gauges)
        for name, state in other.histograms.items():
            if name in self.histograms:
                merged = Histogram.from_state(self.histograms[name])
                merged.merge(Histogram.from_state(state))
                self.histograms[name] = merged.state()
            else:
                self.histograms[name] = dict(state)
        return self

    def to_json(self) -> str:
        """Stable JSON encoding (keys sorted) for export or transport."""
        return json.dumps(
            {
                "spans": self.spans,
                "counters": self.counters,
                "gauges": self.gauges,
                "histograms": self.histograms,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "TelemetrySnapshot":
        doc = json.loads(text)
        return cls(
            spans=list(doc.get("spans", [])),
            counters=dict(doc.get("counters", {})),
            gauges=dict(doc.get("gauges", {})),
            histograms=dict(doc.get("histograms", {})),
        )


def capture_snapshot(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    reset: bool = False,
) -> TelemetrySnapshot:
    """Capture everything the tracer/registry currently hold.

    Defaults to the process singletons.  ``reset=True`` clears both after
    the capture, which is what gives workers *delta* semantics: capture
    at the end of each task and the snapshot holds exactly that task's
    telemetry.
    """
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    state = metrics.state()
    snap = TelemetrySnapshot(
        spans=[s.to_dict() for s in tracer.finished],
        counters=state["counters"],
        gauges=state["gauges"],
        histograms=state["histograms"],
    )
    if reset:
        tracer.reset()
        metrics.reset()
    return snap


def merge_snapshot(
    snapshot: TelemetrySnapshot,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    span_attrs: Optional[Dict[str, Any]] = None,
) -> None:
    """Fold a snapshot into a tracer/registry pair (default: singletons).

    ``span_attrs`` is stamped onto every ingested span — the parallel
    runner marks relayed spans with ``{"relayed": True}`` so a trace
    export distinguishes worker spans from parent spans.
    """
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    if snapshot.spans:
        tracer.ingest(snapshot.spans, extra_attrs=span_attrs)
    metrics.merge_state(
        {
            "counters": snapshot.counters,
            "gauges": snapshot.gauges,
            "histograms": snapshot.histograms,
        }
    )


class TelemetryHub:
    """Interval sampler over the live registries, into a ring buffer.

    Each sample is a JSON-safe dict::

        {"t": <monotonic seconds>, "counters": {...}, "gauges": {...},
         "histograms": {name: summary}, "spans": {path: {count, p95_s, ...}}}

    The buffer is bounded (``capacity`` samples, oldest dropped first;
    drops are counted in :attr:`dropped`), so a long-running ``repro
    serve-metrics`` or ``repro top`` holds O(capacity) memory regardless
    of uptime.  Sampling cost is O(instruments): one dict copy of the
    counters/gauges plus a summary per histogram and span path — a few
    hundred microseconds for the full pipeline's instrument set, bounded
    and measured in ``tests/obs/test_telemetry.py``.

    ``start()`` runs the sampler on a daemon thread; for deterministic
    tests call :meth:`sample` directly (optionally with an explicit
    ``now``).  The hub never *enables* the registries — callers decide
    what is recording; the hub only reads.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        interval_s: float = 1.0,
        capacity: int = 512,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0.0:
            raise ValueError("sampling interval must be positive")
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self._metrics = metrics
        self._tracer = tracer
        self.interval_s = interval_s
        self.capacity = capacity
        self._clock = clock
        self._samples: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self.dropped = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # Registries are resolved at sample time, not construction time, so a
    # hub built before a scoped_metrics() block samples the scoped registry.
    def _registries(self) -> Tuple[MetricsRegistry, Tracer]:
        metrics = self._metrics if self._metrics is not None else get_metrics()
        tracer = self._tracer if self._tracer is not None else get_tracer()
        return metrics, tracer

    # -- sampling ------------------------------------------------------

    def sample(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Take one sample, append it to the ring, and return it."""
        metrics, tracer = self._registries()
        snap = metrics.snapshot()
        record = {
            "t": self._clock() if now is None else float(now),
            "counters": snap["counters"],
            "gauges": snap["gauges"],
            "histograms": snap["histograms"],
            "spans": tracer.aggregate(),
        }
        with self._lock:
            if len(self._samples) == self._samples.maxlen:
                self.dropped += 1
            self._samples.append(record)
        return record

    @property
    def samples(self) -> List[Dict[str, Any]]:
        """The retained samples, oldest first (a copy)."""
        with self._lock:
            return list(self._samples)

    def latest(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._samples[-1] if self._samples else None

    # -- background sampling -------------------------------------------

    def start(self) -> None:
        """Start sampling every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("hub sampler already running")
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(self.interval_s):
                self.sample()

        self._thread = threading.Thread(
            target=_loop, name="repro-telemetry-hub", daemon=True
        )
        self._thread.start()

    def stop(self, final_sample: bool = True) -> None:
        """Stop the sampler thread (no-op if not running)."""
        if self._thread is None:
            if final_sample:
                self.sample()
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        if final_sample:
            self.sample()

    # -- reading the series --------------------------------------------

    def gauge_series(self, name: str) -> List[Tuple[float, float]]:
        """(t, value) points for one gauge across the retained window."""
        out = []
        for record in self.samples:
            value = record["gauges"].get(name)
            if value is not None:
                out.append((record["t"], value))
        return out

    def counter_series(self, name: str) -> List[Tuple[float, float]]:
        """(t, total) points for one counter across the retained window."""
        out = []
        for record in self.samples:
            value = record["counters"].get(name)
            if value is not None:
                out.append((record["t"], value))
        return out

    def counter_rate(self, name: str) -> Optional[float]:
        """Per-second rate of a counter over the last two samples."""
        series = self.counter_series(name)
        if len(series) < 2:
            return None
        (t0, v0), (t1, v1) = series[-2], series[-1]
        if t1 <= t0:
            return None
        return (v1 - v0) / (t1 - t0)

    # -- export --------------------------------------------------------

    def export_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write the retained samples as JSON Lines; returns the count.

        One object per line, keys sorted — the ``--metrics-out`` format.
        """
        samples = self.samples
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as fh:
                return self._write_jsonl(fh, samples)
        return self._write_jsonl(target, samples)

    @staticmethod
    def _write_jsonl(fh: IO[str], samples: List[Dict[str, Any]]) -> int:
        for record in samples:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return len(samples)
