"""Structured logging wiring for the ``repro`` namespace.

All repro loggers hang off the ``repro`` root (``get_logger("rfid.capture")``
-> ``repro.rfid.capture``), so one :func:`configure` call controls the whole
library.  Two output formats:

* plain — ``HH:MM:SS LEVEL repro.x.y: message`` (default);
* JSON  — one object per line (``configure(level, json=True)``), for
  shipping into a log pipeline.

``configure`` is idempotent: calling it again replaces the handler it
installed rather than stacking duplicates.  Propagation to the root logger
is left on so pytest's ``caplog`` and host applications still see records.
"""

from __future__ import annotations

import json as _json
import logging
import sys
from typing import IO, Optional, Union

__all__ = ["configure", "get_logger", "JsonFormatter"]

#: Root of the library's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

#: The handler installed by the last configure() call, if any.
_installed_handler: Optional[logging.Handler] = None


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``""`` -> the root)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, msg (+ exc_info)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return _json.dumps(payload, sort_keys=True)


def configure(
    level: Union[int, str] = "INFO",
    json: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install a stderr (or ``stream``) handler on the ``repro`` logger.

    Returns the configured root-of-hierarchy logger.  Re-invocation
    replaces the previously installed handler (idempotent), so the CLI can
    call this unconditionally.
    """
    global _installed_handler
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    if _installed_handler is not None:
        logger.removeHandler(_installed_handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s",
                              datefmt="%H:%M:%S")
        )
    logger.addHandler(handler)
    if isinstance(level, str):
        level = level.upper()
    logger.setLevel(level)
    _installed_handler = handler
    return logger
