"""Observability layer: tracing, metrics, and structured logging.

The paper's headline operational claim is sub-0.1 s end-to-end recognition
latency built from seven signal-processing stages (Fig. 24); related
phase-based RFID systems (Twins, 2DR) stress that per-stage signal
statistics — read rate, unwrap corrections, detection-window counts — are
the debugging surface of a real deployment.  This package is that surface
for the reproduction:

* :mod:`repro.obs.trace` — a zero-dependency tracer with context-manager
  spans (``with tracer.span("suppression"):``), JSONL export, and an
  aggregated text tree (count / total / p95 per span path);
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket histograms
  with p50/p95/p99 summaries, no-ops when disabled;
* :mod:`repro.obs.log` — ``logging`` wiring under the ``repro`` namespace
  with a ``configure(level, json=False)`` entry point;
* :mod:`repro.obs.telemetry` — cross-process snapshots
  (:class:`TelemetrySnapshot`, worker relay merge) and the
  :class:`TelemetryHub` interval sampler with a bounded ring buffer;
* :mod:`repro.obs.export` — Prometheus text-exposition rendering, an
  exposition-format lint, and the stdlib ``/metrics`` scrape server;
* :mod:`repro.obs.health` — declarative health rules (Fig. 24 latency
  budgets, read-rate-drop and stream-stall detectors) behind
  ``repro top``.

Everything here is **off by default** and deliberately cheap when off: a
disabled ``tracer.span()`` returns a shared null context manager and a
disabled ``metrics.inc()`` is a single attribute check, so the recognition
hot path pays (almost) nothing until someone turns the lights on
(``python -m repro stats``, ``--trace-out``, or an explicit ``enable()``).
"""

from .export import lint_exposition, make_metrics_server, to_prometheus
from .health import (
    HealthFinding,
    HealthRule,
    HealthRuleError,
    default_rules,
    evaluate_rules,
    load_rules,
)
from .log import configure, get_logger
from .metrics import Histogram, MetricsRegistry, get_metrics, scoped_metrics
from .telemetry import TelemetryHub, TelemetrySnapshot, capture_snapshot, merge_snapshot
from .trace import Span, Tracer, get_tracer, scoped_tracer

__all__ = [
    "HealthFinding",
    "HealthRule",
    "HealthRuleError",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TelemetryHub",
    "TelemetrySnapshot",
    "Tracer",
    "capture_snapshot",
    "configure",
    "default_rules",
    "evaluate_rules",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "lint_exposition",
    "load_rules",
    "make_metrics_server",
    "merge_snapshot",
    "scoped_metrics",
    "scoped_tracer",
    "to_prometheus",
]
