"""Prometheus text-exposition export and the ``/metrics`` scrape server.

The future ``repro serve`` layer must be scrapeable from day one, so the
registry learns to render itself in the Prometheus text exposition
format (version 0.0.4):

* counters become ``repro_<name>_total`` with a ``# TYPE ... counter``
  header;
* gauges become ``repro_<name>`` gauges;
* fixed-bucket histograms expand to cumulative ``_bucket{le="..."}``
  series plus ``_sum`` and ``_count``;
* instrument labels (``repro.obs.metrics.labeled_name`` keys, e.g. the
  per-session stream gauges) become Prometheus labels.

:func:`lint_exposition` is a zero-dependency validator for the subset we
emit — name/label charset, ``# TYPE`` placement, bucket monotonicity,
``+Inf`` termination — used by the tests and by ``scripts/check.sh``'s
scrape smoke.  :func:`make_metrics_server` wraps it all in a stdlib
``http.server`` endpoint (``repro serve-metrics``) with a ``/healthz``
JSON view driven by the declarative health rules.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .metrics import MetricsRegistry, get_metrics, split_labeled
from .trace import Tracer, get_tracer

__all__ = [
    "lint_exposition",
    "make_metrics_server",
    "sanitize_metric_name",
    "to_prometheus",
]

#: Default scrape port (the Prometheus convention for ad-hoc exporters).
DEFAULT_PORT = 9464

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)(?: [0-9]+)?$"
)
_LABEL_PAIR = re.compile(r'^(?P<key>[^=]+)="(?P<value>(?:[^"\\]|\\.)*)"$')


def sanitize_metric_name(name: str, namespace: str = "repro") -> str:
    """Map a registry name to a legal Prometheus metric name.

    Dots and other illegal characters collapse to underscores and the
    namespace is prefixed: ``reader.read_rate_hz`` ->
    ``repro_reader_read_rate_hz``.
    """
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return f"{namespace}_{cleaned}" if namespace else cleaned


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _group_by_family(
    flat: Mapping[str, Any], namespace: str
) -> "Dict[str, List[Tuple[Dict[str, str], Any]]]":
    """Group ``name{labels}`` flat keys into exposition families."""
    families: Dict[str, List[Tuple[Dict[str, str], Any]]] = {}
    for key in sorted(flat):
        name, labels = split_labeled(key)
        families.setdefault(sanitize_metric_name(name, namespace), []).append(
            (labels, flat[key])
        )
    return families


def to_prometheus(
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    namespace: str = "repro",
) -> str:
    """Render the registry (and span aggregates) as text exposition.

    When a tracer is given, per-path span aggregates are exported as the
    ``<ns>_span_p95_seconds`` / ``<ns>_span_total_seconds`` gauge
    families and a ``<ns>_span_count_total`` counter family, labelled by
    span path — the scrape-side view of ``repro stats``'s span tree.
    """
    metrics = metrics if metrics is not None else get_metrics()
    state = metrics.state()
    lines: List[str] = []

    for family, series in _group_by_family(state["counters"], namespace).items():
        fam = family + "_total"
        lines.append(f"# TYPE {fam} counter")
        for labels, value in series:
            lines.append(f"{fam}{_fmt_labels(labels)} {_fmt_value(value)}")

    for family, series in _group_by_family(state["gauges"], namespace).items():
        lines.append(f"# TYPE {family} gauge")
        for labels, value in series:
            lines.append(f"{family}{_fmt_labels(labels)} {_fmt_value(value)}")

    for family, series in _group_by_family(state["histograms"], namespace).items():
        lines.append(f"# TYPE {family} histogram")
        for labels, hist_state in series:
            cumulative = 0
            bounds = list(hist_state["bounds"]) + [float("inf")]
            for bound, count in zip(bounds, hist_state["counts"]):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _fmt_value(bound)
                lines.append(
                    f"{family}_bucket{_fmt_labels(bucket_labels)} {cumulative}"
                )
            lines.append(
                f"{family}_sum{_fmt_labels(labels)} "
                f"{_fmt_value(hist_state['total'])}"
            )
            lines.append(f"{family}_count{_fmt_labels(labels)} {hist_state['count']}")

    if tracer is not None:
        agg = tracer.aggregate()
        if agg:
            count_fam = f"{namespace}_span_count_total"
            p95_fam = f"{namespace}_span_p95_seconds"
            total_fam = f"{namespace}_span_total_seconds"
            lines.append(f"# TYPE {count_fam} counter")
            for path, stats in agg.items():
                lines.append(
                    f'{count_fam}{{path="{_escape(path)}"}} '
                    f"{_fmt_value(stats['count'])}"
                )
            lines.append(f"# TYPE {p95_fam} gauge")
            for path, stats in agg.items():
                lines.append(
                    f'{p95_fam}{{path="{_escape(path)}"}} '
                    f"{_fmt_value(stats['p95_s'])}"
                )
            lines.append(f"# TYPE {total_fam} gauge")
            for path, stats in agg.items():
                lines.append(
                    f'{total_fam}{{path="{_escape(path)}"}} '
                    f"{_fmt_value(stats['total_s'])}"
                )

    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Exposition-format lint.


def _lint_labels(raw: str, problems: List[str], line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not raw:
        return labels
    # Split on commas outside quotes.
    parts, depth, current = [], False, ""
    for ch in raw:
        if ch == '"' and not current.endswith("\\"):
            depth = not depth
        if ch == "," and not depth:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current:
        parts.append(current)
    for part in parts:
        m = _LABEL_PAIR.match(part)
        if m is None:
            problems.append(f"line {line_no}: malformed label pair {part!r}")
            continue
        key = m.group("key")
        if not _LABEL_OK.match(key):
            problems.append(f"line {line_no}: illegal label name {key!r}")
        labels[key] = m.group("value")
    return labels


def lint_exposition(text: str) -> List[str]:
    """Validate Prometheus text exposition; returns a list of problems.

    An empty list means the document passes.  Checks the subset the
    exporter emits: metric/label name charsets, numeric values, a
    ``# TYPE`` header preceding every family's samples, valid TYPE
    values, histogram bucket cumulativity, and ``le="+Inf"`` termination.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    # histogram family -> labels-key -> (last cumulative, saw +Inf)
    buckets: Dict[str, Dict[str, Tuple[float, bool]]] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if base in typed:
                    return base
        return sample_name

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split()
            if len(fields) >= 2 and fields[1] == "TYPE":
                if len(fields) != 4:
                    problems.append(f"line {line_no}: malformed # TYPE line")
                    continue
                _, _, name, kind = fields
                if not _NAME_OK.match(name):
                    problems.append(
                        f"line {line_no}: illegal metric name {name!r} in TYPE"
                    )
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    problems.append(f"line {line_no}: unknown metric type {kind!r}")
                if name in typed:
                    problems.append(f"line {line_no}: duplicate TYPE for {name!r}")
                typed[name] = kind
            continue
        m = _SAMPLE_LINE.match(line)
        if m is None:
            problems.append(f"line {line_no}: unparseable sample line {line!r}")
            continue
        name = m.group("name")
        if not _NAME_OK.match(name):
            problems.append(f"line {line_no}: illegal metric name {name!r}")
        labels = _lint_labels(m.group("labels") or "", problems, line_no)
        value_text = m.group("value")
        if value_text not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value_text)
            except ValueError:
                problems.append(
                    f"line {line_no}: non-numeric sample value {value_text!r}"
                )
                continue
        family = family_of(name)
        if family not in typed:
            problems.append(
                f"line {line_no}: sample {name!r} has no preceding # TYPE"
            )
            continue
        if typed[family] == "histogram" and name.endswith("_bucket"):
            le = labels.get("le")
            if le is None:
                problems.append(f"line {line_no}: histogram bucket without le label")
                continue
            series_key = json.dumps(
                {k: v for k, v in sorted(labels.items()) if k != "le"}
            )
            last, saw_inf = buckets.setdefault(family, {}).get(
                series_key, (float("-inf"), False)
            )
            cumulative = float(value_text)
            if cumulative < last:
                problems.append(
                    f"line {line_no}: histogram {family!r} buckets not cumulative"
                )
            buckets[family][series_key] = (cumulative, saw_inf or le == "+Inf")

    for family, series in buckets.items():
        for series_key, (_, saw_inf) in series.items():
            if not saw_inf:
                problems.append(
                    f"histogram {family!r} series {series_key} missing le=\"+Inf\""
                )
    return problems


# ----------------------------------------------------------------------
# Scrape endpoint (stdlib http.server; `repro serve-metrics`).


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1.0"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        server: "MetricsServer" = self.server  # type: ignore[assignment]
        if self.path.split("?")[0] == "/metrics":
            body = to_prometheus(server.metrics, server.tracer).encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            server.note_request()
        elif self.path.split("?")[0] == "/healthz":
            from .health import evaluate_rules, worst_status

            findings = evaluate_rules(
                server.rules, metrics=server.metrics, tracer=server.tracer,
                hub=server.hub,
            )
            worst = worst_status(findings)
            body = json.dumps(
                {"status": worst, "findings": [f.to_dict() for f in findings]},
                sort_keys=True,
            ).encode("utf-8")
            self.send_response(503 if worst == "fail" else 200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            server.note_request()
        else:
            self.send_response(404)
            self.end_headers()

    def log_message(self, fmt: str, *args: Any) -> None:
        from .log import get_logger

        get_logger("obs.export").debug("scrape %s", fmt % args)


class MetricsServer(ThreadingHTTPServer):
    """A ``/metrics`` + ``/healthz`` endpoint over the live registries.

    ``max_requests`` > 0 shuts the server down after that many successful
    scrapes (the smoke-test mode used by ``scripts/check.sh``); 0 serves
    until interrupted.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        rules: Optional[list] = None,
        hub: Optional[Any] = None,
        max_requests: int = 0,
    ) -> None:
        super().__init__(address, _MetricsHandler)
        self._explicit_metrics = metrics
        self._explicit_tracer = tracer
        self.rules = rules if rules is not None else []
        self.hub = hub
        self.max_requests = max_requests
        self._served = 0

    # Resolved lazily so the server sees scoped registries in tests.
    @property
    def metrics(self) -> MetricsRegistry:
        return self._explicit_metrics or get_metrics()

    @property
    def tracer(self) -> Tracer:
        return self._explicit_tracer or get_tracer()

    def note_request(self) -> None:
        self._served += 1
        if self.max_requests and self._served >= self.max_requests:
            # shutdown() blocks until serve_forever returns, so it must
            # run off the handler thread's call stack.
            threading.Thread(target=self.shutdown, daemon=True).start()


def make_metrics_server(
    port: int = DEFAULT_PORT,
    host: str = "127.0.0.1",
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    rules: Optional[list] = None,
    hub: Optional[Any] = None,
    max_requests: int = 0,
) -> MetricsServer:
    """Bind (but do not start) the scrape server; port 0 picks a free one."""
    return MetricsServer(
        (host, port),
        metrics=metrics,
        tracer=tracer,
        rules=rules,
        hub=hub,
        max_requests=max_requests,
    )
