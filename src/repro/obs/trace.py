"""Zero-dependency span tracer.

A :class:`Tracer` records nested wall-time spans opened with the context
manager :meth:`Tracer.span`::

    tracer = get_tracer()
    tracer.enable()
    with tracer.span("detect_motion", reads=412) as sp:
        ...
        sp.set(kind="VBAR")

Spans know their *path* ("detect_motion/analyze_window/suppression"), so
the same stage name nested under different parents aggregates separately.
Export targets:

* :meth:`Tracer.export_jsonl` — one JSON object per completed span, keys
  sorted, schema documented in the README ("Observability" section);
* :meth:`Tracer.render_tree` — an aggregated text tree with
  count / total / mean / p95 per span path, for humans.

The tracer is **disabled by default**: ``span()`` then returns a shared
null context manager (no allocation, no clock read), which is what lets
library code stay permanently instrumented.  The module-level singleton
returned by :func:`get_tracer` is what all of ``repro``'s instrumentation
writes to.  Single-threaded by design, like the pipeline it measures.

Intentionally depends on nothing but the standard library (not even
numpy): percentiles are computed with sorted-list interpolation.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, IO, Iterator, List, Mapping, Optional, Union

__all__ = ["Span", "Tracer", "get_tracer", "percentile", "scoped_tracer"]


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolation percentile of a list (numpy's default method).

    ``q`` is in [0, 100].  Raises ``ValueError`` on an empty list.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class Span:
    """One completed (or in-flight) trace span."""

    __slots__ = ("name", "path", "depth", "start", "end", "attrs")

    def __init__(self, name: str, path: str, depth: int, start: float) -> None:
        self.name = name
        self.path = path
        self.depth = depth
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> None:
        """Attach key/value attributes to the span."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        """Wall-time in seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL export record for this span."""
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "start_s": self.start,
            "duration_s": self.duration,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.path!r}, dur={self.duration:.6f}, attrs={self.attrs})"


class _NullSpan:
    """Shared do-nothing span: what a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None

    @property
    def duration(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager that opens/closes one :class:`Span` on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name)
        if self._attrs:
            self._span.attrs.update(self._attrs)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        assert self._span is not None
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)


class Tracer:
    """Collects nested spans; exports JSONL and an aggregated tree.

    ``clock`` is injectable for deterministic tests (defaults to
    ``time.perf_counter``).
    """

    def __init__(
        self,
        enabled: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._enabled = enabled
        self._clock = clock
        self._stack: List[Span] = []
        self._spans: List[Span] = []  # in start order, open spans included

    # -- state ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop all recorded spans (the enabled flag is left alone)."""
        self._stack.clear()
        self._spans.clear()

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Union[_LiveSpan, _NullSpan]:
        """Open a span as a context manager; no-op when disabled."""
        if not self._enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def _open(self, name: str) -> Span:
        parent_path = self._stack[-1].path if self._stack else ""
        path = f"{parent_path}/{name}" if parent_path else name
        span = Span(name, path, len(self._stack), self._clock())
        self._stack.append(span)
        self._spans.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        # Tolerate out-of-order exits (generators, exceptions): pop down to
        # and including this span instead of asserting strict LIFO.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def ingest(
        self,
        records: List[Dict[str, Any]],
        extra_attrs: Optional[Mapping[str, Any]] = None,
    ) -> int:
        """Append completed spans from another tracer's export records.

        ``records`` are :meth:`Span.to_dict` dicts, typically captured in
        a worker process and relayed with its results.  Paths, depths,
        and durations are preserved; ``start_s`` stays in the origin
        process's clock domain (only durations are comparable across
        processes).  ``extra_attrs`` is stamped onto every ingested span
        (e.g. ``{"relayed": True}``).  Returns the ingested count.
        """
        for record in records:
            span = Span(
                record["name"],
                record["path"],
                int(record["depth"]),
                float(record["start_s"]),
            )
            span.end = span.start + float(record["duration_s"])
            span.attrs.update(record.get("attrs", {}))
            if extra_attrs:
                span.attrs.update(extra_attrs)
            self._spans.append(span)
        return len(records)

    # -- reading back --------------------------------------------------

    @property
    def finished(self) -> List[Span]:
        """Completed spans in start order."""
        return [s for s in self._spans if s.end is not None]

    def mark(self) -> int:
        """Opaque cursor for :meth:`spans_since` (current span count)."""
        return len(self._spans)

    def spans_since(self, mark: int) -> List[Span]:
        """Completed spans started after a :meth:`mark` call."""
        return [s for s in self._spans[mark:] if s.end is not None]

    def durations(self, name: str) -> List[float]:
        """Durations of all completed spans with the given *name*."""
        return [s.duration for s in self._spans if s.name == name and s.end is not None]

    # -- export --------------------------------------------------------

    def export_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write completed spans as JSON Lines; returns the span count.

        ``target`` is a path or an open text stream.  One object per line,
        keys sorted, so identical span structures diff cleanly.
        """
        spans = self.finished
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as fh:
                return self._write_jsonl(fh, spans)
        return self._write_jsonl(target, spans)

    @staticmethod
    def _write_jsonl(fh: IO[str], spans: List[Span]) -> int:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        return len(spans)

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-path stats over completed spans.

        Returns ``{path: {count, total_s, mean_s, p95_s, max_s}}`` with
        paths in first-start order (insertion order of the dict).
        """
        by_path: Dict[str, List[float]] = {}
        for span in self._spans:
            if span.end is None:
                continue
            by_path.setdefault(span.path, []).append(span.duration)
        out: Dict[str, Dict[str, float]] = {}
        for path, durs in by_path.items():
            out[path] = {
                "count": float(len(durs)),
                "total_s": sum(durs),
                "mean_s": sum(durs) / len(durs),
                "p95_s": percentile(durs, 95.0),
                "max_s": max(durs),
            }
        return out

    def render_tree(self) -> str:
        """Human-readable aggregated span tree.

        One line per distinct span path, indented by nesting depth, with
        count, total, mean, and p95 columns — the ``repro stats`` view.
        """
        agg = self.aggregate()
        if not agg:
            return "(no spans recorded)"
        depth_of = {path: path.count("/") for path in agg}
        label_w = max(2 * depth_of[p] + len(p.rsplit("/", 1)[-1]) for p in agg)
        lines = []
        for path, stats in agg.items():
            name = path.rsplit("/", 1)[-1]
            label = "  " * depth_of[path] + name
            lines.append(
                f"{label.ljust(label_w)}  "
                f"count={int(stats['count']):>5d}  "
                f"total={_fmt_s(stats['total_s']):>9s}  "
                f"mean={_fmt_s(stats['mean_s']):>9s}  "
                f"p95={_fmt_s(stats['p95_s']):>9s}"
            )
        return "\n".join(lines)


def _fmt_s(seconds: float) -> str:
    """Adaptive duration formatting: us / ms / s."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


#: The process-wide tracer every repro subsystem writes to.
_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The module-level tracer singleton (disabled until enabled)."""
    return _GLOBAL_TRACER


@contextmanager
def scoped_tracer(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Temporarily swap the process-wide tracer for an isolated one.

    Mirrors :func:`repro.obs.metrics.scoped_metrics`: instrumentation
    reached through :func:`get_tracer` records into the scoped tracer
    for the duration of the block, and the previous singleton is
    restored on exit.
    """
    global _GLOBAL_TRACER
    scoped = tracer if tracer is not None else Tracer(enabled=True)
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = scoped
    try:
        yield scoped
    finally:
        _GLOBAL_TRACER = previous
