"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments::

    metrics = get_metrics()
    metrics.enable()
    metrics.inc("reader.reads", 37)
    metrics.set_gauge("reader.read_rate_hz", 291.4)
    metrics.observe("pipeline.detect_motion_s", 0.041)

Design constraints (mirroring what a production hot path needs):

* **no-op when disabled** — every mutate method starts with one attribute
  check and returns; the registry is disabled by default;
* **single dict lookup when enabled** — counters and gauges are plain
  dict slots; histograms bisect a fixed bucket table;
* **zero dependencies** — percentile summaries (p50/p95/p99) interpolate
  inside fixed buckets, no numpy.

Fixed-bucket histograms trade exactness for O(1) memory: the percentile
error is bounded by the bucket width at the quantile, which the tests pin
against ``numpy.percentile``.
"""

from __future__ import annotations

import bisect
import re
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "default_buckets",
    "labeled_name",
    "scoped_metrics",
    "split_labeled",
]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def labeled_name(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """Canonical flat key for an instrument with labels.

    Labels are sorted by key so the same label set always produces the
    same key: ``labeled_name("stream.lag_s", {"session": "s1"})`` ->
    ``'stream.lag_s{session="s1"}'``.  No labels returns the bare name.
    """
    if not labels:
        return name
    parts = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return f"{name}{{{parts}}}"


_LABELED_RE = re.compile(r"^([^{]+)\{(.*)\}$")
_LABEL_PAIR_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')


def split_labeled(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`labeled_name`: flat key -> (name, labels)."""
    m = _LABELED_RE.match(key)
    if m is None:
        return key, {}
    labels = {
        k: v.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
        for k, v in _LABEL_PAIR_RE.findall(m.group(2))
    }
    return m.group(1), labels


def default_buckets() -> List[float]:
    """Geometric latency-flavoured buckets: 10 us .. ~42 s, x1.5 steps."""
    bounds = []
    edge = 1e-5
    while edge < 50.0:
        bounds.append(edge)
        edge *= 1.5
    return bounds


class Histogram:
    """Fixed-bucket histogram with interpolated percentile summaries.

    ``buckets`` is the sorted list of bucket *upper bounds*; values above
    the last bound land in an overflow bucket.  Alongside the bucket
    counts the exact count/sum/min/max are tracked, so means are exact and
    only the percentiles are bucket-quantised.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = list(buckets) if buckets is not None else default_buckets()
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if sorted(bounds) != bounds:
            raise ValueError("bucket bounds must be sorted ascending")
        self.bounds: List[float] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (q in [0, 100]) from the buckets.

        Linear interpolation inside the bucket containing the target rank;
        the first bucket interpolates from the observed min, the overflow
        bucket towards the observed max.  Error is bounded by the width of
        the bucket the quantile falls in.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            raise ValueError("percentile of an empty histogram")
        rank = (q / 100.0) * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            lo = self.min if i == 0 else max(self.min, self.bounds[i - 1])
            hi = self.max if i == len(self.bounds) else min(self.max, self.bounds[i])
            if cumulative + n >= rank:
                frac = (rank - cumulative) / n
                return lo + (hi - lo) * max(0.0, min(1.0, frac))
            cumulative += n
        return self.max

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "max": self.max,
        }

    # -- merge / serialization (the cross-process telemetry contract) --

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram into this one, in place.

        Requires identical bucket bounds (the merge of differently
        bucketed histograms has no exact meaning).  Merging is
        commutative and associative: bucket counts, count, and total
        add; min/max take the extremum — so any merge tree over the same
        set of histograms yields the same state.  Returns ``self``.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} bounds)"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def state(self) -> Dict[str, Any]:
        """Full serializable state (JSON-safe; inf min/max elided)."""
        out: Dict[str, Any] = {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        return out

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "Histogram":
        """Rebuild a histogram from :meth:`state` output."""
        hist = cls(state["bounds"])
        counts = list(state["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError("histogram state counts do not match bounds")
        hist.counts = counts
        hist.count = int(state["count"])
        hist.total = float(state["total"])
        hist.min = float(state.get("min", float("inf")))
        hist.max = float(state.get("max", float("-inf")))
        return hist


class MetricsRegistry:
    """Named counters / gauges / histograms, no-ops until enabled."""

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- state ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop all recorded values (the enabled flag is left alone)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- hot-path mutators (cheap, no-op when disabled) ----------------

    def inc(
        self,
        name: str,
        value: float = 1.0,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if not self._enabled:
            return
        if labels:
            name = labeled_name(name, labels)
        self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if not self._enabled:
            return
        if labels:
            name = labeled_name(name, labels)
        self._gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if not self._enabled:
            return
        if labels:
            name = labeled_name(name, labels)
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def remove_labeled(self, labels: Mapping[str, str]) -> int:
        """Drop every instrument carrying **all** of ``labels``.

        Long-lived processes serving many short-lived tenants (the hub's
        per-session ``stream.*{session=...}`` gauges) would otherwise grow
        the registry without bound; callers invoke this at tenant close.
        Returns the number of instruments removed.  Unlike the mutators,
        this is administrative cleanup and applies even while disabled.
        """
        wanted = {str(k): str(v) for k, v in labels.items()}
        if not wanted:
            return 0
        removed = 0
        for store in (self._counters, self._gauges, self._histograms):
            for key in [k for k in store if "{" in k]:
                _, key_labels = split_labeled(key)
                if all(key_labels.get(k) == v for k, v in wanted.items()):
                    del store[key]
                    removed += 1
        return removed

    # -- declaration / reading -----------------------------------------

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create a histogram (to pin non-default buckets)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(buckets)
        return hist

    def get_histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram, or ``None`` — never creates one."""
        return self._histograms.get(name)

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def gauge_value(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """All current values as plain dicts (JSON-friendly)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def state(self) -> Dict[str, Any]:
        """Full mergeable state: like :meth:`snapshot`, but histograms
        carry their complete bucket state instead of a lossy summary."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: self._histograms[name].state()
                for name in sorted(self._histograms)
            },
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold a :meth:`state` dict (e.g. from a worker process) in.

        Counters add, gauges are last-write-wins (the merged state's
        value replaces ours), histograms bucket-merge.  Merging is an
        explicit administrative operation, so it applies even while the
        registry is disabled.
        """
        for name, value in state.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0.0) + value
        self._gauges.update(state.get("gauges", {}))
        for name, hist_state in state.get("histograms", {}).items():
            incoming = Histogram.from_state(hist_state)
            existing = self._histograms.get(name)
            if existing is None:
                self._histograms[name] = incoming
            else:
                existing.merge(incoming)

    def render(self) -> str:
        """Human-readable dump of every instrument (the `stats` view)."""
        lines: List[str] = []
        for name, value in sorted(self._counters.items()):
            lines.append(f"counter    {name} = {value:g}")
        for name, value in sorted(self._gauges.items()):
            lines.append(f"gauge      {name} = {value:g}")
        for name in sorted(self._histograms):
            s = self._histograms[name].summary()
            if s["count"] == 0:
                lines.append(f"histogram  {name} (empty)")
                continue
            lines.append(
                f"histogram  {name}: count={int(s['count'])} mean={s['mean']:g} "
                f"p50={s['p50']:g} p95={s['p95']:g} p99={s['p99']:g} "
                f"min={s['min']:g} max={s['max']:g}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"


#: The process-wide registry every repro subsystem writes to.
_GLOBAL_METRICS = MetricsRegistry(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The module-level metrics singleton (disabled until enabled)."""
    return _GLOBAL_METRICS


@contextmanager
def scoped_metrics(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Temporarily swap the process-wide registry for an isolated one.

    Everything instrumented with :func:`get_metrics` records into the
    scoped registry for the duration of the ``with`` block; the previous
    singleton (and whatever it had recorded) is restored on exit.  Used
    by benchmarks and tests that need per-run measurement scoping.
    """
    global _GLOBAL_METRICS
    scoped = registry if registry is not None else MetricsRegistry(enabled=True)
    previous = _GLOBAL_METRICS
    _GLOBAL_METRICS = scoped
    try:
        yield scoped
    finally:
        _GLOBAL_METRICS = previous
