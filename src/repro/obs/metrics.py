"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments::

    metrics = get_metrics()
    metrics.enable()
    metrics.inc("reader.reads", 37)
    metrics.set_gauge("reader.read_rate_hz", 291.4)
    metrics.observe("pipeline.detect_motion_s", 0.041)

Design constraints (mirroring what a production hot path needs):

* **no-op when disabled** — every mutate method starts with one attribute
  check and returns; the registry is disabled by default;
* **single dict lookup when enabled** — counters and gauges are plain
  dict slots; histograms bisect a fixed bucket table;
* **zero dependencies** — percentile summaries (p50/p95/p99) interpolate
  inside fixed buckets, no numpy.

Fixed-bucket histograms trade exactness for O(1) memory: the percentile
error is bounded by the bucket width at the quantile, which the tests pin
against ``numpy.percentile``.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence

__all__ = ["Histogram", "MetricsRegistry", "get_metrics", "default_buckets"]


def default_buckets() -> List[float]:
    """Geometric latency-flavoured buckets: 10 us .. ~42 s, x1.5 steps."""
    bounds = []
    edge = 1e-5
    while edge < 50.0:
        bounds.append(edge)
        edge *= 1.5
    return bounds


class Histogram:
    """Fixed-bucket histogram with interpolated percentile summaries.

    ``buckets`` is the sorted list of bucket *upper bounds*; values above
    the last bound land in an overflow bucket.  Alongside the bucket
    counts the exact count/sum/min/max are tracked, so means are exact and
    only the percentiles are bucket-quantised.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = list(buckets) if buckets is not None else default_buckets()
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if sorted(bounds) != bounds:
            raise ValueError("bucket bounds must be sorted ascending")
        self.bounds: List[float] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (q in [0, 100]) from the buckets.

        Linear interpolation inside the bucket containing the target rank;
        the first bucket interpolates from the observed min, the overflow
        bucket towards the observed max.  Error is bounded by the width of
        the bucket the quantile falls in.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            raise ValueError("percentile of an empty histogram")
        rank = (q / 100.0) * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            lo = self.min if i == 0 else max(self.min, self.bounds[i - 1])
            hi = self.max if i == len(self.bounds) else min(self.max, self.bounds[i])
            if cumulative + n >= rank:
                frac = (rank - cumulative) / n
                return lo + (hi - lo) * max(0.0, min(1.0, frac))
            cumulative += n
        return self.max

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "max": self.max,
        }


class MetricsRegistry:
    """Named counters / gauges / histograms, no-ops until enabled."""

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- state ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop all recorded values (the enabled flag is left alone)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- hot-path mutators (cheap, no-op when disabled) ----------------

    def inc(self, name: str, value: float = 1.0) -> None:
        if not self._enabled:
            return
        self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        if not self._enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not self._enabled:
            return
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    # -- declaration / reading -----------------------------------------

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create a histogram (to pin non-default buckets)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(buckets)
        return hist

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def gauge_value(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """All current values as plain dicts (JSON-friendly)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def render(self) -> str:
        """Human-readable dump of every instrument (the `stats` view)."""
        lines: List[str] = []
        for name, value in sorted(self._counters.items()):
            lines.append(f"counter    {name} = {value:g}")
        for name, value in sorted(self._gauges.items()):
            lines.append(f"gauge      {name} = {value:g}")
        for name in sorted(self._histograms):
            s = self._histograms[name].summary()
            if s["count"] == 0:
                lines.append(f"histogram  {name} (empty)")
                continue
            lines.append(
                f"histogram  {name}: count={int(s['count'])} mean={s['mean']:g} "
                f"p50={s['p50']:g} p95={s['p95']:g} p99={s['p99']:g} "
                f"min={s['min']:g} max={s['max']:g}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"


#: The process-wide registry every repro subsystem writes to.
_GLOBAL_METRICS = MetricsRegistry(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The module-level metrics singleton (disabled until enabled)."""
    return _GLOBAL_METRICS
