"""Declarative health rules over the live telemetry.

The paper's operational claim is sub-0.1 s end-to-end recognition
latency (Fig. 24); a deployment also dies quietly when the read rate
collapses (detuned tags, interference) or when the streaming layer
stalls (reads keep flowing but no windows close).  This module turns
those failure modes into *data*: a list of :class:`HealthRule` records —
loadable from JSON, shipped with defaults derived from the Fig. 24
budget — evaluated against the metrics registry, the tracer, and a
:class:`~repro.obs.telemetry.TelemetryHub` window.

Rule kinds
----------
``span_p95_budget``   p95 of all completed spans *named* ``target`` must
                      be <= ``threshold`` seconds.
``gauge_min`` /       the gauge ``target`` must be >= / <= ``threshold``.
``gauge_max``
``counter_min`` /     the counter ``target`` must be >= / <=
``counter_max``       ``threshold`` (``counter_max`` with threshold 0 is
                      the "any occurrence is a finding" form — drops,
                      aborts, crashes).
``histogram_p95_max`` the histogram ``target``'s p95 must be <=
                      ``threshold``.
``gauge_drop``        across the hub window, the latest value of gauge
                      ``target`` must not sit more than ``threshold``
                      (fraction, 0..1) below the window peak — the
                      read-rate-drop detector.
``counter_stall``     across the hub window, counter ``target`` must
                      have advanced whenever counter ``watch`` advanced
                      by more than ``threshold`` — the event-latency
                      stall detector (reads flowing, no windows closing).
``gauge_growth``      across the hub window, the latest value of gauge
                      ``target`` must not sit more than ``threshold``
                      above the window *minimum* — the sustained-growth
                      detector (a serving queue that only ever deepens is
                      a hub that cannot keep up).

Rules that reference telemetry not yet recorded evaluate to ``skip``
(not a failure): health rules describe a running system, and a cold
registry is not an unhealthy one.  Findings with status ``warn``/``fail``
are also emitted as structured one-line JSON warnings on the
``repro.obs.health`` logger, and ``repro top`` exits nonzero when any
rule fails — which is what lets ``scripts/check.sh`` gate on them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .log import get_logger
from .metrics import MetricsRegistry, get_metrics
from .trace import Tracer, get_tracer, percentile

__all__ = [
    "HealthFinding",
    "HealthRule",
    "HealthRuleError",
    "default_rules",
    "evaluate_rules",
    "load_rules",
    "render_status",
    "rules_from_doc",
    "worst_status",
]

_KINDS = (
    "span_p95_budget",
    "gauge_min",
    "gauge_max",
    "counter_min",
    "counter_max",
    "histogram_p95_max",
    "gauge_drop",
    "counter_stall",
    "gauge_growth",
)
_SEVERITIES = ("warn", "fail")


class HealthRuleError(ValueError):
    """A rule file (or embedded rule doc) is malformed."""


@dataclass(frozen=True)
class HealthRule:
    """One declarative check over the live telemetry (see module doc)."""

    name: str
    kind: str
    target: str
    threshold: float
    severity: str = "warn"
    watch: Optional[str] = None  # counter_stall only: the activity counter
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise HealthRuleError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(_KINDS)})"
            )
        if self.severity not in _SEVERITIES:
            raise HealthRuleError(
                f"rule {self.name!r}: severity must be 'warn' or 'fail', "
                f"got {self.severity!r}"
            )
        if self.kind == "counter_stall" and not self.watch:
            raise HealthRuleError(
                f"rule {self.name!r}: counter_stall needs a 'watch' counter"
            )
        if self.kind == "gauge_drop" and not 0.0 < self.threshold <= 1.0:
            raise HealthRuleError(
                f"rule {self.name!r}: gauge_drop threshold is a fraction "
                f"in (0, 1], got {self.threshold!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "threshold": self.threshold,
            "severity": self.severity,
        }
        if self.watch is not None:
            out["watch"] = self.watch
        if self.description:
            out["description"] = self.description
        return out


@dataclass(frozen=True)
class HealthFinding:
    """The outcome of evaluating one rule."""

    rule: HealthRule
    status: str  # "ok" | "warn" | "fail" | "skip"
    value: Optional[float]
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule.name,
            "kind": self.rule.kind,
            "target": self.rule.target,
            "status": self.status,
            "value": self.value,
            "threshold": self.rule.threshold,
            "message": self.message,
        }


# ----------------------------------------------------------------------
# Rule loading.


def rules_from_doc(doc: Any) -> List[HealthRule]:
    """Build rules from a parsed JSON document (a list of objects)."""
    if not isinstance(doc, list):
        raise HealthRuleError(
            f"rule file must be a JSON array of rule objects, got {type(doc).__name__}"
        )
    rules: List[HealthRule] = []
    for i, item in enumerate(doc):
        if not isinstance(item, dict):
            raise HealthRuleError(f"rule #{i} is not an object")
        missing = {"name", "kind", "target", "threshold"} - set(item)
        if missing:
            raise HealthRuleError(
                f"rule #{i} is missing required field(s): {', '.join(sorted(missing))}"
            )
        unknown = set(item) - {
            "name", "kind", "target", "threshold", "severity", "watch",
            "description",
        }
        if unknown:
            raise HealthRuleError(
                f"rule #{i} ({item.get('name')!r}) has unknown field(s): "
                f"{', '.join(sorted(unknown))}"
            )
        if not isinstance(item["threshold"], (int, float)) or isinstance(
            item["threshold"], bool
        ):
            raise HealthRuleError(
                f"rule #{i} ({item.get('name')!r}): threshold must be a number"
            )
        rules.append(
            HealthRule(
                name=str(item["name"]),
                kind=str(item["kind"]),
                target=str(item["target"]),
                threshold=float(item["threshold"]),
                severity=str(item.get("severity", "warn")),
                watch=item.get("watch"),
                description=str(item.get("description", "")),
            )
        )
    return rules


def load_rules(path: str) -> List[HealthRule]:
    """Load and validate a JSON rule file; raises :class:`HealthRuleError`."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise HealthRuleError(f"cannot read rule file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise HealthRuleError(f"rule file {path} is not valid JSON: {exc}") from exc
    return rules_from_doc(doc)


#: Default rule set (mirrored in scripts/health_rules.json).  The span
#: budgets derive from the paper's Fig. 24 sub-0.1 s end-to-end breakdown:
#: the whole recognition pass gets the 0.1 s claim as a hard budget, each
#: stage gets a slice of it (generous vs the measured p95s recorded in
#: BENCH_pipeline.json, which sit 10-100x below these bounds on the
#: reference container).
_DEFAULT_RULE_DOC: List[Dict[str, Any]] = [
    {"name": "detect_motion_budget", "kind": "span_p95_budget",
     "target": "detect_motion", "threshold": 0.1, "severity": "fail",
     "description": "Fig. 24: end-to-end single-stroke recognition < 0.1 s"},
    {"name": "recognize_letter_budget", "kind": "span_p95_budget",
     "target": "recognize_letter", "threshold": 0.1, "severity": "fail",
     "description": "Fig. 24: end-to-end letter recognition < 0.1 s"},
    {"name": "analyze_window_budget", "kind": "span_p95_budget",
     "target": "analyze_window", "threshold": 0.05, "severity": "warn",
     "description": "per-window analysis slice of the 0.1 s budget"},
    {"name": "segmentation_budget", "kind": "span_p95_budget",
     "target": "segmentation", "threshold": 0.02, "severity": "warn",
     "description": "segmentation slice of the 0.1 s budget"},
    {"name": "suppression_budget", "kind": "span_p95_budget",
     "target": "suppression", "threshold": 0.025, "severity": "warn",
     "description": "interference-suppression slice of the 0.1 s budget"},
    {"name": "unwrap_budget", "kind": "span_p95_budget",
     "target": "unwrap", "threshold": 0.01, "severity": "warn",
     "description": "phase-unwrap slice of the 0.1 s budget"},
    {"name": "imaging_budget", "kind": "span_p95_budget",
     "target": "imaging", "threshold": 0.01, "severity": "warn",
     "description": "imaging slice of the 0.1 s budget"},
    {"name": "otsu_budget", "kind": "span_p95_budget",
     "target": "otsu", "threshold": 0.01, "severity": "warn",
     "description": "binarization slice of the 0.1 s budget"},
    {"name": "classify_budget", "kind": "span_p95_budget",
     "target": "classify", "threshold": 0.01, "severity": "warn",
     "description": "stroke-classification slice of the 0.1 s budget"},
    {"name": "direction_budget", "kind": "span_p95_budget",
     "target": "direction", "threshold": 0.01, "severity": "warn",
     "description": "direction-resolution slice of the 0.1 s budget"},
    {"name": "grammar_budget", "kind": "span_p95_budget",
     "target": "grammar", "threshold": 0.01, "severity": "warn",
     "description": "tree-grammar slice of the 0.1 s budget"},
    {"name": "read_rate_floor", "kind": "gauge_min",
     "target": "reader.read_rate_hz", "threshold": 10.0, "severity": "warn",
     "description": "aggregate read rate a 5x5 pad needs for segmentation"},
    {"name": "read_rate_drop", "kind": "gauge_drop",
     "target": "reader.read_rate_hz", "threshold": 0.5, "severity": "warn",
     "description": "read rate fell >50% below its recent peak"},
    {"name": "stream_event_latency", "kind": "histogram_p95_max",
     "target": "stream.event_latency_s", "threshold": 1.5, "severity": "warn",
     "description": "stream-time stroke-event decision lag p95"},
    {"name": "stream_stall", "kind": "counter_stall",
     "target": "stream.windows", "watch": "stream.reads",
     "threshold": 500.0, "severity": "warn",
     "description": "reads flowing but no stroke windows closing"},
    {"name": "serve_drops", "kind": "counter_max",
     "target": "serve.dropped_chunks", "threshold": 0.0, "severity": "warn",
     "description": "any shed chunk means a session lost bit-identity"},
    {"name": "serve_queue_depth", "kind": "gauge_max",
     "target": "serve.queue_depth", "threshold": 1024.0, "severity": "warn",
     "description": "total pending chunks across all serving sessions"},
    {"name": "serve_queue_growth", "kind": "gauge_growth",
     "target": "serve.queue_depth", "threshold": 256.0, "severity": "warn",
     "description": "sustained queue-depth growth: the hub is not keeping up"},
    {"name": "serve_event_latency", "kind": "histogram_p95_max",
     "target": "serve.event_latency_s", "threshold": 0.15, "severity": "warn",
     "description": "hub-side final-event latency p95 vs the serving SLO"},
]


def default_rules() -> List[HealthRule]:
    """The built-in rule set (Fig. 24 budgets + flow detectors)."""
    return rules_from_doc(_DEFAULT_RULE_DOC)


# ----------------------------------------------------------------------
# Evaluation.


def _eval_rule(
    rule: HealthRule,
    metrics: MetricsRegistry,
    tracer: Tracer,
    hub: Optional[Any],
) -> HealthFinding:
    def finding(status: str, value: Optional[float], message: str) -> HealthFinding:
        return HealthFinding(rule=rule, status=status, value=value, message=message)

    def verdict(ok: bool, value: float, message: str) -> HealthFinding:
        return finding("ok" if ok else rule.severity, value, message)

    if rule.kind == "span_p95_budget":
        durs = tracer.durations(rule.target)
        if not durs:
            return finding("skip", None, f"no {rule.target!r} spans recorded")
        p95 = percentile(durs, 95.0)
        return verdict(
            p95 <= rule.threshold, p95,
            f"span {rule.target!r} p95 {p95 * 1e3:.2f} ms vs budget "
            f"{rule.threshold * 1e3:.0f} ms over {len(durs)} spans",
        )
    if rule.kind in ("gauge_min", "gauge_max"):
        value = metrics.gauge_value(rule.target)
        if value is None:
            return finding("skip", None, f"gauge {rule.target!r} not recorded")
        ok = value >= rule.threshold if rule.kind == "gauge_min" else (
            value <= rule.threshold
        )
        op = ">=" if rule.kind == "gauge_min" else "<="
        return verdict(
            ok, value,
            f"gauge {rule.target!r} = {value:g} (required {op} {rule.threshold:g})",
        )
    if rule.kind in ("counter_min", "counter_max"):
        value = metrics.counter_value(rule.target)
        ok = value >= rule.threshold if rule.kind == "counter_min" else (
            value <= rule.threshold
        )
        op = ">=" if rule.kind == "counter_min" else "<="
        return verdict(
            ok, value,
            f"counter {rule.target!r} = {value:g} "
            f"(required {op} {rule.threshold:g})",
        )
    if rule.kind == "histogram_p95_max":
        hist = metrics.get_histogram(rule.target)
        if hist is None or hist.count == 0:
            return finding("skip", None, f"histogram {rule.target!r} empty")
        p95 = hist.percentile(95.0)
        return verdict(
            p95 <= rule.threshold, p95,
            f"histogram {rule.target!r} p95 {p95:g} "
            f"(required <= {rule.threshold:g})",
        )
    if rule.kind == "gauge_drop":
        if hub is None:
            return finding("skip", None, "no telemetry hub window available")
        series = [v for _, v in hub.gauge_series(rule.target)]
        if len(series) < 2:
            return finding(
                "skip", None, f"gauge {rule.target!r}: <2 samples in window"
            )
        peak, last = max(series), series[-1]
        if peak <= 0:
            return finding("skip", last, f"gauge {rule.target!r} peak is 0")
        drop = 1.0 - last / peak
        return verdict(
            drop <= rule.threshold, drop,
            f"gauge {rule.target!r} dropped {drop * 100:.0f}% from window "
            f"peak {peak:g} (allowed {rule.threshold * 100:.0f}%)",
        )
    if rule.kind == "gauge_growth":
        if hub is None:
            return finding("skip", None, "no telemetry hub window available")
        series = [v for _, v in hub.gauge_series(rule.target)]
        if len(series) < 2:
            return finding(
                "skip", None, f"gauge {rule.target!r}: <2 samples in window"
            )
        growth = series[-1] - min(series)
        return verdict(
            growth <= rule.threshold, growth,
            f"gauge {rule.target!r} grew {growth:g} above its window "
            f"minimum {min(series):g} (allowed {rule.threshold:g})",
        )
    if rule.kind == "counter_stall":
        if hub is None:
            return finding("skip", None, "no telemetry hub window available")
        watch = [v for _, v in hub.counter_series(rule.watch)]
        target = [v for _, v in hub.counter_series(rule.target)]
        if len(watch) < 2:
            return finding(
                "skip", None, f"counter {rule.watch!r}: <2 samples in window"
            )
        activity = watch[-1] - watch[0]
        progress = (target[-1] - target[0]) if len(target) >= 2 else 0.0
        if activity <= rule.threshold:
            return finding(
                "ok", progress,
                f"{rule.watch!r} grew by {activity:g} (< stall threshold "
                f"{rule.threshold:g}); not enough activity to judge",
            )
        return verdict(
            progress > 0.0, progress,
            f"{rule.watch!r} grew by {activity:g} while {rule.target!r} "
            f"grew by {progress:g}",
        )
    raise AssertionError(f"unhandled rule kind {rule.kind!r}")  # pragma: no cover


def evaluate_rules(
    rules: List[HealthRule],
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    hub: Optional[Any] = None,
) -> List[HealthFinding]:
    """Evaluate every rule; warn/fail findings are logged as JSON lines."""
    metrics = metrics if metrics is not None else get_metrics()
    tracer = tracer if tracer is not None else get_tracer()
    logger = get_logger("obs.health")
    findings = [_eval_rule(rule, metrics, tracer, hub) for rule in rules]
    for f in findings:
        if f.status in ("warn", "fail"):
            logger.warning("health %s", json.dumps(f.to_dict(), sort_keys=True))
    return findings


def worst_status(findings: List[HealthFinding]) -> str:
    """Overall status: fail > warn > ok (skips don't count against)."""
    statuses = {f.status for f in findings}
    if "fail" in statuses:
        return "fail"
    if "warn" in statuses:
        return "warn"
    return "ok"


# ----------------------------------------------------------------------
# The `repro top` frame.

_STATUS_MARK = {"ok": " ok ", "warn": "WARN", "fail": "FAIL", "skip": " -- "}

#: Gauges surfaced in the live frame, in display order.
_TOP_GAUGES = (
    "reader.read_rate_hz",
    "stream.buffered_reads",
    "stream.lag_s",
)

#: Counters surfaced in the live frame, in display order.
_TOP_COUNTERS = (
    "reader.reads",
    "runner.motion_trials",
    "runner.letter_trials",
    "stream.windows",
    "stream.reads",
)


def render_status(
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    findings: Optional[List[HealthFinding]] = None,
    hub: Optional[Any] = None,
) -> str:
    """One ``repro top`` frame: span p95s, key gauges/rates, health table."""
    metrics = metrics if metrics is not None else get_metrics()
    tracer = tracer if tracer is not None else get_tracer()
    lines: List[str] = ["== spans (p95 by name, ms) =="]
    seen = set()
    rows = []
    for span in tracer.finished:
        if span.name in seen:
            continue
        seen.add(span.name)
        durs = tracer.durations(span.name)
        rows.append((span.name, len(durs), percentile(durs, 95.0)))
    if rows:
        width = max(len(name) for name, _, _ in rows)
        for name, count, p95 in rows:
            lines.append(
                f"  {name.ljust(width)}  count={count:>5d}  p95={p95 * 1e3:9.3f} ms"
            )
    else:
        lines.append("  (no spans recorded)")

    lines.append("== flow ==")
    for name in _TOP_GAUGES:
        value = metrics.gauge_value(name)
        if value is not None:
            lines.append(f"  gauge    {name} = {value:g}")
    for key, value in sorted(metrics.snapshot()["gauges"].items()):
        # Labeled per-session variants surface right below the aggregates.
        if key.startswith("stream.") and "{" in key:
            lines.append(f"  gauge    {key} = {value:g}")
    for name in _TOP_COUNTERS:
        value = metrics.counter_value(name)
        if value:
            rate = hub.counter_rate(name) if hub is not None else None
            rate_text = f"  ({rate:.1f}/s)" if rate is not None else ""
            lines.append(f"  counter  {name} = {value:g}{rate_text}")

    lines.append("== health ==")
    if findings:
        for f in findings:
            lines.append(f"  [{_STATUS_MARK[f.status]}] {f.rule.name}: {f.message}")
    else:
        lines.append("  (no rules evaluated)")
    return "\n".join(lines)
