"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``        list all registered experiments
``run <id> [...]``     run experiments and print their artefacts
``demo motion``        recognise the 13-motion battery live
``demo letter <L>``    write one letter and show the pipeline's view
``demo word <WORD>``   write a word (letters clustered by pauses)
``inspect``            dump the signal views of a single-motion session
``record <path>``      simulate a session and save its report stream (JSONL)
``replay <path>``      run the pipeline on a saved capture (``--stream`` feeds
                       it chunk-by-chunk through a ``StreamingSession``)
``live``               simulate a session and stream it, printing events as
                       stroke windows close
``stats``              run a standard battery with tracing + metrics on
                       (``--prometheus`` prints text exposition instead)
``serve-metrics``      expose /metrics (Prometheus) + /healthz over HTTP
``top``                live terminal health view: span p95s, read rate,
                       stream gauges, and declarative health rules
``serve``              run the multi-session serving hub: many concurrent
                       pads over length-prefixed TCP framing, micro-batched
                       analysis, bounded queues, graceful drain on SIGINT
``feed``               stream a saved capture into a running ``serve`` hub
                       and print the events it sends back
``loadgen``            drive N synthetic concurrent writers against a hub
                       and report throughput + tail-latency percentiles

Global observability flags: ``--trace-out PATH`` records every span of the
invoked command to a JSONL file; ``--metrics-out PATH`` samples the metric
registries on an interval (``--metrics-interval``) and writes the sampled
time series as JSONL; ``--log-level`` / ``--log-json`` configure the
``repro.*`` loggers (see README "Observability" and "Monitoring").
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import analysis
from .experiments import ALL_EXPERIMENTS, run_experiment
from .motion.script import script_for_letter, script_for_motion, script_for_word
from .motion.strokes import Motion, StrokeKind, all_motions
from .obs import configure as configure_logging
from .obs import get_logger, get_metrics, get_tracer
from .sim.runner import SessionRunner
from .sim.scenario import ScenarioConfig, build_scenario


def _parse_workspace(value: str) -> "tuple[int, int]":
    """Parse a ``--workspace`` tile grid like ``2x1`` into (tiles_x, tiles_y)."""
    try:
        tx, ty = (int(part) for part in value.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workspace must look like '2x1' (tiles_x x tiles_y), got {value!r}"
        )
    if tx < 1 or ty < 1:
        raise argparse.ArgumentTypeError("workspace needs at least 1x1 tiles")
    return tx, ty


def _workspace_tiles(args: argparse.Namespace) -> "tuple[int, int]":
    return getattr(args, "workspace", None) or (1, 1)


def _make_workspace_runner(args: argparse.Namespace):
    """A WorkspaceRunner for the CLI's tiled modes (``--workspace``)."""
    from .sim.runner import WorkspaceRunner
    from .sim.workspace import WorkspaceConfig, build_workspace

    tiles_x, tiles_y = _workspace_tiles(args)
    config = WorkspaceConfig(
        base=ScenarioConfig(
            seed=args.seed,
            mount=args.mount,
            location=args.location,
            tx_power_dbm=args.power,
        ),
        tiles_x=tiles_x,
        tiles_y=tiles_y,
        dwell_s=getattr(args, "dwell", 0.05),
    )
    return WorkspaceRunner(build_workspace(config))


def _make_runner(args: argparse.Namespace) -> SessionRunner:
    return SessionRunner(
        build_scenario(
            ScenarioConfig(
                seed=args.seed,
                mount=args.mount,
                location=args.location,
                tx_power_dbm=args.power,
            )
        )
    )


def cmd_experiments(args: argparse.Namespace) -> int:
    for eid in ALL_EXPERIMENTS:
        print(eid)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    ids = args.ids if args.ids else ALL_EXPERIMENTS
    failures = 0
    for eid in ids:
        result = run_experiment(
            eid, workers=args.workers, fast=not args.full, seed=args.seed
        )
        print(result.to_text())
        print()
        if result.expectation_met is False:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) missed their shape expectation",
              file=sys.stderr)
    return 1 if failures else 0


def cmd_demo_motion(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    correct = 0
    motions = all_motions()
    for motion in motions:
        trial = runner.run_motion(motion)
        obs = trial.observed
        mark = "ok " if trial.fully_correct else "** "
        correct += trial.fully_correct
        print(f"{mark}{motion.label:4s} -> {obs.label if obs else '(none)'}")
    print(f"\n{correct}/{len(motions)} motions correct")
    return 0


def cmd_demo_letter(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    script = script_for_letter(args.letter, runner.rng)
    log = runner.run_script(script)
    result = runner.pad.recognize_letter(log)
    print(f"wrote {args.letter!r}: read {result.letter!r} "
          f"(tokens {result.stroke_tokens})")
    print(f"candidates: {[(l, round(s, 2)) for l, s in result.candidates[:5]]}\n")
    print(analysis.session_summary(log, runner.pad.calibration))
    for i, stroke in enumerate(result.strokes, 1):
        print(f"\nstroke {i} ({stroke.label}):")
        print(stroke.binary.ascii_art())
    return 0


def cmd_demo_word(args: argparse.Namespace) -> int:
    from .core.words import WordDecoder, WordRecognizer

    runner = _make_runner(args)
    script = script_for_word(args.word, runner.rng)
    log = runner.run_script(script)
    lexicon = args.lexicon.split(",") if args.lexicon else []
    recognizer = WordRecognizer(runner.pad, decoder=WordDecoder(lexicon=lexicon))
    result = recognizer.recognize_word(log)
    print(f"wrote {args.word!r}: raw {result.raw!r}, decoded {result.text!r}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    kind = StrokeKind[args.stroke.upper()]
    script = script_for_motion(Motion(kind), runner.rng)
    log = runner.run_script(script)
    print(analysis.session_summary(log, runner.pad.calibration))
    print("\nper-tag |phase residual|:")
    for line in analysis.phase_sparklines(log, runner.pad.calibration):
        print(" ", line)
    print("\nper-tag RSS dip:")
    for line in analysis.rss_sparklines(log, runner.pad.calibration):
        print(" ", line)
    obs = runner.pad.detect_motion(log)
    print(f"\nrecognised: {obs.label if obs else '(nothing)'}")
    return 0


#: Header keys that pin a capture to its deployment; a session replayed
#: against a calibration capture whose values differ was recorded on a
#: *different* simulated rig, and the calibrated thresholds are suspect.
_SCENARIO_META_KEYS = ("seed", "mount", "location", "tx_power_dbm")


def _scenario_metadata(args: argparse.Namespace) -> dict:
    return {
        "seed": args.seed,
        "mount": args.mount,
        "location": args.location,
        "tx_power_dbm": args.power,
    }


def cmd_record(args: argparse.Namespace) -> int:
    from .rfid.capture import dump_log

    runner = _make_runner(args)
    if args.letter:
        script = script_for_letter(args.letter, runner.rng)
        label = args.letter
    else:
        kind = StrokeKind[args.stroke.upper()]
        script = script_for_motion(Motion(kind), runner.rng)
        label = kind.name
    log = runner.run_script(script)
    # The calibration capture travels with the session: a replayed capture
    # must be interpretable without re-simulating the deployment.  Both
    # headers carry the scenario identity so replay can detect mismatches.
    scenario_meta = _scenario_metadata(args)
    static_path = args.path + ".calibration"
    dump_log(runner.static_log, static_path,
             metadata={"kind": "static", **scenario_meta})
    count = dump_log(log, args.path, metadata={"label": label, **scenario_meta})
    print(f"recorded {count} reads to {args.path} "
          f"(+ calibration capture {static_path})")
    return 0


def _print_stream_events(events) -> None:
    from .stream import StrokeEvent

    for ev in events:
        if isinstance(ev, StrokeEvent):
            w = ev.window
            label = ev.stroke.label if ev.stroke is not None else "(no stroke)"
            kind = "stroke window" if ev.final else "stroke preview"
            print(f"[{ev.emitted_at:7.3f}s] {kind} "
                  f"{w.t0:.3f}-{w.t1:.3f}s -> {label}")
        elif ev.final:
            print(f"[{ev.emitted_at:7.3f}s] letter: {ev.result.letter!r} "
                  f"(tokens {ev.result.stroke_tokens})")
        else:
            print(f"[{ev.emitted_at:7.3f}s] letter preview: {ev.result.letter!r}")


def cmd_live(args: argparse.Namespace) -> int:
    from .sim.live import stream_log
    from .stream import StreamingSession

    tiles_x, tiles_y = _workspace_tiles(args)
    if tiles_x * tiles_y > 1:
        return _cmd_live_workspace(args, tiles_x * tiles_y)
    runner = _make_runner(args)
    if args.letter:
        script = script_for_letter(args.letter, runner.rng)
        truth = args.letter
    else:
        kind = StrokeKind[args.stroke.upper()]
        script = script_for_motion(Motion(kind), runner.rng)
        truth = kind.name
    log = runner.run_script(script)
    print(f"streaming {len(log)} reads in {args.chunk * 1000:.0f} ms chunks "
          f"(truth {truth!r})")
    session = StreamingSession(
        runner.pad, session_id="live", provisional=args.provisional
    )
    for ev in stream_log(runner.pad, log, args.chunk, session=session):
        _print_stream_events([ev])
    print(f"retained {session.buffered_reads} of {len(log)} reads at finish")
    return 0


def _cmd_live_workspace(args: argparse.Namespace, tile_count: int) -> int:
    """Tiled live mode: per-tile chunk streams through a WorkspaceSession."""
    from .sim.live import iter_chunks
    from .stream import WorkspaceSession

    runner = _make_workspace_runner(args)
    if args.letter:
        script = script_for_letter(args.letter, runner.rng)
        truth = args.letter
    else:
        kind = StrokeKind[args.stroke.upper()]
        script = script_for_motion(Motion(kind), runner.rng)
        truth = kind.name
    tile_logs = runner.workspace.collect_tiles(script.duration, script)
    total = sum(len(lg) for lg in tile_logs)
    per_tile = ", ".join(str(len(lg)) for lg in tile_logs)
    print(f"streaming {total} reads from {tile_count} tiles ({per_tile}) "
          f"in {args.chunk * 1000:.0f} ms chunks (truth {truth!r})")
    session = WorkspaceSession(
        runner.pad, tile_count=tile_count, session_id="live",
        provisional=args.provisional,
    )
    chunk_iters = [list(iter_chunks(lg, args.chunk)) for lg in tile_logs]
    for i in range(max((len(c) for c in chunk_iters), default=0)):
        for tile, chunks in enumerate(chunk_iters):
            if i < len(chunks):
                _print_stream_events(session.ingest_tile(tile, chunks[i]))
    _print_stream_events(session.finalize())
    stitched = session.stitched_windows
    print(f"stitched {sum(len(w) for w in session.tile_windows)} per-tile "
          f"windows into {len(stitched)} workspace windows")
    from .rfid.reports import merge_logs

    err = runner.stitched_trajectory_error(merge_logs(tile_logs), script)
    if err is not None:
        print(f"stitched trajectory error: {err * 100:.2f} cm")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from .core.pipeline import RFIPad
    from .physics.geometry import GridLayout
    from .rfid.capture import load_log, load_metadata

    logger = get_logger("cli.replay")
    log = load_log(args.path)
    meta = load_metadata(args.path)
    static_path = args.path + ".calibration"
    static_meta = load_metadata(static_path)
    for key in _SCENARIO_META_KEYS:
        session_value, static_value = meta.get(key), static_meta.get(key)
        if session_value != static_value:
            logger.warning(
                "capture %s: scenario %s mismatch between session (%r) and "
                "calibration capture (%r); calibrated thresholds may not fit "
                "this recording",
                args.path, key, session_value, static_value,
            )
    tiles_x, tiles_y = _workspace_tiles(args)
    tile_count = tiles_x * tiles_y
    # A tiled capture is replayed against the combined workspace grid:
    # --rows/--cols describe one tile, the workspace multiplies them.
    pad = RFIPad(
        GridLayout(rows=args.rows * tiles_y, cols=args.cols * tiles_x)
    )
    pad.calibrate_from(load_log(static_path))
    print(f"replaying {args.path}: {len(log)} reads, metadata {meta}")
    if args.stream:
        from .sim.live import stream_log
        from .stream import StreamingSession, WorkspaceSession

        if tile_count > 1:
            session = WorkspaceSession(
                pad, tile_count=tile_count, provisional=args.provisional
            )
        else:
            session = StreamingSession(pad, provisional=args.provisional)
        for ev in stream_log(pad, log, args.chunk, session=session):
            _print_stream_events([ev])
        result = session.letter_result
        if result.letter is None and len(result.strokes) <= 1:
            obs = session.motion_result()
            print(f"motion: {obs.label if obs else '(nothing)'}")
        return 0
    result = pad.recognize_letter(log)
    if result.letter is not None or len(result.strokes) > 1:
        print(f"letter: {result.letter!r} (tokens {result.stroke_tokens})")
    else:
        obs = pad.detect_motion(log)
        print(f"motion: {obs.label if obs else '(nothing)'}")
    return 0


def _run_observed_battery(
    args: argparse.Namespace,
    repeats: int = 1,
    motions=None,
    workers: Optional[int] = None,
) -> SessionRunner:
    """The standard observed workload: motions + a letter + a streamed leg.

    Shared by ``stats``, ``top``, and ``serve-metrics --populate`` so
    every observability surface describes the same battery.
    """
    runner = _make_runner(args)  # calibration collect() is traced too
    battery = motions if motions is not None else all_motions()
    runner.run_motion_battery(battery, repeats, workers=workers)
    # One letter session exercises the letter path: multi-stroke
    # segmentation plus the tree-grammar composition stage.
    runner.run_letter("T")
    # And one streamed session exercises the online layer, so the
    # stream.* spans and the event-latency histogram show up too.
    from .sim.live import LiveDriver

    LiveDriver(runner, chunk_s=0.1).run_letter("H")
    return runner


def cmd_stats(args: argparse.Namespace) -> int:
    """Run a standard battery with full observability and print summaries."""
    tracer = get_tracer()
    metrics = get_metrics()
    tracer.enable()
    metrics.enable()
    repeats = 1 if args.fast else args.repeats
    _run_observed_battery(args, repeats=repeats, workers=args.workers)

    if args.prometheus:
        from .obs.export import to_prometheus

        sys.stdout.write(to_prometheus(metrics, tracer))
        return 0
    print("== span tree (count / total / mean / p95 per path) ==")
    print(tracer.render_tree())
    print()
    print("== metrics ==")
    print(metrics.render())
    return 0


def _load_cli_rules(path: str):
    """Load health rules for a CLI command (default set when no path)."""
    from .obs.health import default_rules, load_rules

    return load_rules(path) if path else default_rules()


def cmd_serve_metrics(args: argparse.Namespace) -> int:
    """Serve /metrics (Prometheus exposition) and /healthz over HTTP."""
    from .obs.export import make_metrics_server
    from .obs.health import HealthRuleError
    from .obs.telemetry import TelemetryHub

    try:
        rules = _load_cli_rules(args.rules)
    except HealthRuleError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    get_tracer().enable()
    get_metrics().enable()
    if args.populate:
        # A small battery so the endpoint has data before the first scrape.
        _run_observed_battery(args, motions=all_motions()[:3])
    hub = TelemetryHub(interval_s=args.interval)
    hub.start()
    server = make_metrics_server(
        port=args.port, rules=rules, hub=hub, max_requests=args.max_requests
    )
    host, port = server.server_address[:2]
    print(f"serving metrics on http://{host}:{port}/metrics "
          f"(health at /healthz)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        hub.stop(final_sample=False)
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live health view; ``--once`` prints a single frame and exits."""
    import threading
    import time as _time

    from .obs.health import (
        HealthRuleError,
        evaluate_rules,
        load_rules,
        render_status,
        worst_status,
    )
    from .obs.telemetry import TelemetryHub

    if args.validate_rules:
        try:
            rules = load_rules(args.validate_rules)
        except HealthRuleError as exc:
            print(f"repro: invalid health rules: {exc}", file=sys.stderr)
            return 2
        print(f"{args.validate_rules}: {len(rules)} health rule(s) ok")
        return 0
    try:
        rules = _load_cli_rules(args.rules)
    except HealthRuleError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2

    tracer, metrics = get_tracer(), get_metrics()
    tracer.enable()
    metrics.enable()
    hub = TelemetryHub(interval_s=args.interval)

    def frame():
        findings = evaluate_rules(rules, metrics=metrics, tracer=tracer, hub=hub)
        return render_status(metrics, tracer, findings, hub=hub), findings

    if args.once:
        _run_observed_battery(
            args, repeats=1 if args.fast else 3, workers=args.workers
        )
        hub.sample()
        text, findings = frame()
        print(text)
        return 1 if worst_status(findings) == "fail" else 0

    # Live mode: batteries repeat on a worker thread while the foreground
    # refreshes one frame per interval from the hub's sampled window.
    stop = threading.Event()

    def _work() -> None:
        while not stop.is_set():
            _run_observed_battery(args, repeats=1, workers=args.workers)

    worker = threading.Thread(target=_work, name="repro-top-battery", daemon=True)
    worker.start()
    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
    iterations = 0
    findings = []
    try:
        while not args.iterations or iterations < args.iterations:
            _time.sleep(args.interval)
            hub.sample()
            text, findings = frame()
            print(f"{clear}{text}\n", flush=True)
            iterations += 1
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
    return 1 if worst_status(findings) == "fail" else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-session serving hub until interrupted, then drain."""
    import asyncio
    import signal
    import threading

    from .obs.export import make_metrics_server
    from .obs.health import HealthRuleError
    from .obs.telemetry import TelemetryHub
    from .serve import HubConfig, SessionHub

    try:
        rules = _load_cli_rules(args.rules)
    except HealthRuleError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    get_metrics().enable()
    get_tracer().enable()
    tiles_x, tiles_y = _workspace_tiles(args)
    tile_count = tiles_x * tiles_y
    if tile_count > 1:
        # Calibrates the combined workspace pad every session shares.
        runner = _make_workspace_runner(args)
    else:
        runner = _make_runner(args)  # calibrates the pad every session shares
    try:
        config = HubConfig(
            host=args.host,
            port=args.port,
            max_pending=args.max_pending,
            drop_policy=args.drop_policy,
            batch_sessions=args.batch_sessions,
            workers=args.workers,
        )
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    hub = SessionHub(
        runner.pad, config, scenario_meta=_scenario_metadata(args),
        tiles=tile_count,
    )

    tele = None
    http_server = None
    if args.metrics_port is not None:
        tele = TelemetryHub(interval_s=args.interval)
        tele.start()
        http_server = make_metrics_server(
            port=args.metrics_port, rules=rules, hub=tele
        )
        threading.Thread(
            target=http_server.serve_forever, name="repro-serve-scrape",
            daemon=True,
        ).start()
        mhost, mport = http_server.server_address[:2]
        print(f"metrics on http://{mhost}:{mport}/metrics", flush=True)

    async def _serve() -> None:
        await hub.start()
        host, port = hub.bound_address
        print(f"serving pad sessions on {host}:{port} "
              f"(policy {config.drop_policy}, max-pending {config.max_pending})",
              flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        print("draining open sessions...", flush=True)
        await hub.stop(drain=True)

    loop = asyncio.new_event_loop()
    try:
        loop.run_until_complete(_serve())
    finally:
        loop.close()
        if http_server is not None:
            http_server.shutdown()
            http_server.server_close()
        if tele is not None:
            tele.stop(final_sample=False)
    print(f"served {hub.sessions_opened} session(s)")
    return 0


def _print_event_headers(headers) -> None:
    """Render the wire form of hub events (`repro feed`'s output)."""
    for h in headers:
        kind = h.get("kind")
        at = float(h.get("emitted_at", 0.0))
        if kind == "stroke":
            what = "stroke window" if h.get("final") else "stroke preview"
            print(f"[{at:7.3f}s] {what} {h.get('t0'):.3f}-{h.get('t1'):.3f}s "
                  f"-> {h.get('token') or '(no stroke)'}")
        else:
            tokens = tuple(h.get("tokens", ()))
            print(f"[{at:7.3f}s] letter: {h.get('letter')!r} (tokens {tokens})")


def cmd_feed(args: argparse.Namespace) -> int:
    """Stream a saved capture into a running hub; print the events."""
    import asyncio
    import os

    from .rfid.capture import load_log, load_metadata
    from .serve.client import ServeClient
    from .sim.live import iter_chunks

    log = load_log(args.path)
    meta = load_metadata(args.path)
    chunks = list(iter_chunks(log, args.chunk))
    delay = 0.0 if args.no_pace else args.chunk * args.time_scale
    sid = args.session or os.path.basename(args.path)
    print(f"feeding {args.path}: {len(log)} reads in {len(chunks)} chunks "
          f"as session {sid!r}")

    async def _run() -> int:
        client = await ServeClient.connect(args.host, args.port)
        try:
            handle, latency = await client.run_session(
                sid,
                chunks,
                meta={k: meta[k] for k in _SCENARIO_META_KEYS if k in meta},
                pace=[delay] * len(chunks) if delay > 0.0 else None,
                timeout=args.timeout,
            )
        except (ConnectionError, asyncio.TimeoutError, OSError) as exc:
            print(f"repro: error: feed failed: {exc}", file=sys.stderr)
            return 1
        finally:
            await client.close()
        for warning in handle.warnings:
            print(f"warning: {warning}", file=sys.stderr)
        _print_event_headers(handle.events)
        if handle.dropped_chunks:
            print(f"hub shed {handle.dropped_chunks} chunk(s) "
                  f"({handle.dropped_reads} reads)", file=sys.stderr)
        print(f"letter: {handle.final_letter()!r} "
              f"(tail latency {latency * 1e3:.1f} ms)")
        return 0

    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(_run())
    finally:
        loop.close()


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive N synthetic writers against a hub and report what they saw."""
    import json

    from .serve.loadgen import run_loadgen_sync, session_logs

    runner = _make_runner(args)
    logs = session_logs(runner, args.letter, min(args.distinct, args.sessions))
    result = run_loadgen_sync(
        args.host,
        args.port,
        logs,
        sessions=args.sessions,
        concurrency=args.concurrency,
        chunk_s=args.chunk,
        time_scale=args.time_scale,
        pace=not args.no_pace,
        ramp_s=args.ramp,
        expected_letter=args.letter,
        meta=_scenario_metadata(args),
        session_timeout_s=args.timeout,
    )
    if args.json:
        print(json.dumps(result.as_dict(), sort_keys=True))
    else:
        print(f"{result.completed}/{result.sessions} sessions completed "
              f"({result.peak_concurrent} concurrent peak) in "
              f"{result.wall_s:.2f} s = {result.sessions_per_s:.1f} sessions/s")
        print(f"letter correct: {result.letters_expected}/{result.completed}; "
              f"dropped chunks: {result.dropped_chunks}")
        print(f"finalize-to-letter latency ms: p50 {result.event_p50_ms:.1f} "
              f"p95 {result.event_p95_ms:.1f} p99 {result.event_p99_ms:.1f}")
        for err in result.errors[:5]:
            print(f"  {err}", file=sys.stderr)
    return 0 if result.failed == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RFIPad reproduction: experiments and demos on a simulated pad",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--mount", choices=("nlos", "los"), default="nlos")
    parser.add_argument("--location", type=int, choices=(1, 2, 3, 4), default=2)
    parser.add_argument("--power", type=float, default=30.0, help="TX power, dBm")
    parser.add_argument(
        "--trace-out", default="",
        help="record all spans of this invocation to a JSONL file",
    )
    parser.add_argument(
        "--metrics-out", default="",
        help="sample the metric registries on an interval and write the "
             "time series to a JSONL file at exit",
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=0.5,
        help="sampling interval in seconds for --metrics-out (default 0.5)",
    )
    parser.add_argument(
        "--log-level", default="warning",
        choices=("debug", "info", "warning", "error"),
        help="repro.* logger level (default: warning)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines instead of plain text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list experiment ids")

    p_run = sub.add_parser("run", help="run experiments and print artefacts")
    p_run.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    p_run.add_argument("--full", action="store_true", help="paper-scale repeats")
    p_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan trial batteries out to N worker processes "
        "(default: serial, or REPRO_WORKERS)",
    )

    p_demo = sub.add_parser("demo", help="interactive-style demos")
    demo_sub = p_demo.add_subparsers(dest="demo", required=True)
    demo_sub.add_parser("motion", help="run the 13-motion battery")
    p_letter = demo_sub.add_parser("letter", help="write one letter")
    p_letter.add_argument("letter")
    p_word = demo_sub.add_parser("word", help="write a word")
    p_word.add_argument("word")
    p_word.add_argument("--lexicon", default="", help="comma-separated lexicon")

    p_inspect = sub.add_parser("inspect", help="signal views of one stroke session")
    p_inspect.add_argument(
        "--stroke", default="vbar",
        choices=[k.name.lower() for k in StrokeKind],
    )

    p_record = sub.add_parser("record", help="simulate + save a session capture")
    p_record.add_argument("path")
    p_record.add_argument("--letter", default="", help="record a letter session")
    p_record.add_argument(
        "--stroke", default="vbar",
        choices=[k.name.lower() for k in StrokeKind],
    )

    p_replay = sub.add_parser("replay", help="run the pipeline on a capture")
    p_replay.add_argument("path")
    p_replay.add_argument("--rows", type=int, default=5)
    p_replay.add_argument("--cols", type=int, default=5)
    p_replay.add_argument(
        "--stream", action="store_true",
        help="feed the capture chunk-by-chunk through a StreamingSession, "
             "printing events as stroke windows close",
    )
    p_replay.add_argument(
        "--chunk", type=float, default=0.1,
        help="streaming chunk length in seconds (default 0.1)",
    )
    p_replay.add_argument(
        "--provisional", action="store_true",
        help="with --stream: also print final=False previews of the "
             "still-forming stroke window and in-progress letter",
    )
    p_replay.add_argument(
        "--workspace", type=_parse_workspace, default=None, metavar="TXxTY",
        help="replay against a tiled workspace, e.g. 2x1; --rows/--cols "
             "describe one tile (default: single pad)",
    )

    p_live = sub.add_parser(
        "live",
        help="simulate a session and stream it chunk-by-chunk, printing "
             "stroke/letter events as they fire",
    )
    p_live.add_argument("--letter", default="", help="stream a letter session")
    p_live.add_argument(
        "--stroke", default="vbar",
        choices=[k.name.lower() for k in StrokeKind],
    )
    p_live.add_argument(
        "--chunk", type=float, default=0.1,
        help="chunk length in seconds (default 0.1)",
    )
    p_live.add_argument(
        "--provisional", action="store_true",
        help="also print final=False previews of the still-forming stroke "
             "window and in-progress letter",
    )
    p_live.add_argument(
        "--workspace", type=_parse_workspace, default=None, metavar="TXxTY",
        help="simulate a tiled workspace, e.g. 2x1, streaming per-tile "
             "chunks through the cross-pad stitching layer",
    )
    p_live.add_argument(
        "--dwell", type=float, default=0.05,
        help="with --workspace: per-tile antenna dwell in seconds "
             "(default 0.05)",
    )

    p_stats = sub.add_parser(
        "stats",
        help="run a standard motion+letter battery with tracing and metrics "
             "enabled, then print the aggregated span tree and metric summaries",
    )
    p_stats.add_argument("--fast", action="store_true",
                         help="single repeat per motion (smoke-test mode)")
    p_stats.add_argument("--repeats", type=int, default=3,
                         help="repeats per motion when not --fast (default 3)")
    p_stats.add_argument(
        "--prometheus", action="store_true",
        help="print the metrics in Prometheus text exposition format "
             "instead of the human-readable summaries",
    )
    p_stats.add_argument(
        "--workers", type=int, default=None,
        help="run the battery on N worker processes (telemetry is relayed "
             "back and merged, so the totals match a serial run)",
    )

    p_serve = sub.add_parser(
        "serve-metrics",
        help="expose /metrics (Prometheus text exposition) and /healthz "
             "(JSON health-rule findings) over HTTP",
    )
    p_serve.add_argument(
        "--port", type=int, default=9464,
        help="TCP port to bind on 127.0.0.1 (0 picks a free port; "
             "the bound address is printed at startup)",
    )
    p_serve.add_argument(
        "--max-requests", type=int, default=0,
        help="exit after N successful scrapes (0 = serve until interrupted)",
    )
    p_serve.add_argument(
        "--populate", action="store_true",
        help="run a small observed battery before serving so the first "
             "scrape already has data",
    )
    p_serve.add_argument(
        "--interval", type=float, default=1.0,
        help="telemetry-hub sampling interval in seconds (default 1.0)",
    )
    p_serve.add_argument(
        "--rules", default="",
        help="JSON health-rule file for /healthz (default: built-in rules)",
    )

    p_top = sub.add_parser(
        "top",
        help="live terminal health view: span p95s, read rate, stream "
             "gauges, and declarative health-rule findings; exits nonzero "
             "when a 'fail'-severity rule trips",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="run one observed battery, print a single frame, and exit",
    )
    p_top.add_argument("--fast", action="store_true",
                       help="single repeat per motion in --once mode")
    p_top.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh/sampling interval in seconds (default 1.0)",
    )
    p_top.add_argument(
        "--iterations", type=int, default=0,
        help="stop after N refreshes (0 = run until interrupted)",
    )
    p_top.add_argument(
        "--rules", default="",
        help="JSON health-rule file (default: built-in Fig. 24 budgets)",
    )
    p_top.add_argument(
        "--validate-rules", default="", metavar="PATH",
        help="validate a health-rule file and exit (nonzero if malformed)",
    )
    p_top.add_argument(
        "--workers", type=int, default=None,
        help="run the observed batteries on N worker processes",
    )

    p_hub = sub.add_parser(
        "serve",
        help="run the multi-session serving hub: concurrent pads over "
             "length-prefixed TCP framing with micro-batched analysis, "
             "bounded per-session queues, and graceful drain on SIGINT",
    )
    p_hub.add_argument("--host", default="127.0.0.1")
    p_hub.add_argument(
        "--port", type=int, default=9470,
        help="TCP port for pad sessions (0 picks a free port; the bound "
             "address is printed at startup)",
    )
    p_hub.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also expose /metrics + /healthz over HTTP on this port "
             "(0 picks a free port)",
    )
    p_hub.add_argument(
        "--workers", type=int, default=1,
        help="analysis worker threads (default 1)",
    )
    p_hub.add_argument(
        "--max-pending", type=int, default=64,
        help="bounded ingest queue: pending chunks per session (default 64)",
    )
    p_hub.add_argument(
        "--drop-policy", choices=("block", "oldest", "newest"),
        default="block",
        help="full-queue policy: block the connection (lossless, default) "
             "or shed the oldest/newest chunk (counted + reported)",
    )
    p_hub.add_argument(
        "--batch-sessions", type=int, default=32,
        help="max sessions coalesced into one analysis micro-batch",
    )
    p_hub.add_argument(
        "--interval", type=float, default=1.0,
        help="telemetry sampling interval for --metrics-port (default 1.0)",
    )
    p_hub.add_argument(
        "--rules", default="",
        help="JSON health-rule file for /healthz (default: built-in rules)",
    )
    p_hub.add_argument(
        "--workspace", type=_parse_workspace, default=None, metavar="TXxTY",
        help="serve tiled workspace sessions (e.g. 2x1): each tenant feeds "
             "N pad tiles over one connection via per-tile chunk routing",
    )
    p_hub.add_argument(
        "--dwell", type=float, default=0.05,
        help="per-tile reader dwell in seconds for --workspace (default 0.05)",
    )

    p_feed = sub.add_parser(
        "feed",
        help="stream a saved capture (see `record`) into a running serve "
             "hub and print the events it sends back",
    )
    p_feed.add_argument("path", help="capture file written by `repro record`")
    p_feed.add_argument("--host", default="127.0.0.1")
    p_feed.add_argument("--port", type=int, default=9470)
    p_feed.add_argument(
        "--session", default="",
        help="session id (default: the capture's file name)",
    )
    p_feed.add_argument(
        "--chunk", type=float, default=0.1,
        help="chunk length in seconds (default 0.1)",
    )
    p_feed.add_argument(
        "--time-scale", type=float, default=1.0,
        help="pace chunks at chunk*scale seconds apart (default 1.0 = "
             "real time)",
    )
    p_feed.add_argument(
        "--no-pace", action="store_true",
        help="send chunks as fast as the hub accepts them",
    )
    p_feed.add_argument(
        "--timeout", type=float, default=120.0,
        help="give up on the session after this many seconds",
    )

    p_load = sub.add_parser(
        "loadgen",
        help="drive N synthetic concurrent writers against a serve hub and "
             "report sessions/s plus finalize-to-letter latency percentiles",
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=9470)
    p_load.add_argument(
        "--sessions", type=int, default=50,
        help="total writer sessions to run (default 50)",
    )
    p_load.add_argument(
        "--concurrency", type=int, default=None,
        help="max simultaneous writers (default: all at once)",
    )
    p_load.add_argument(
        "--letter", default="T",
        help="letter every synthetic writer writes (default T)",
    )
    p_load.add_argument(
        "--distinct", type=int, default=8,
        help="distinct simulated session logs writers share round-robin",
    )
    p_load.add_argument(
        "--chunk", type=float, default=0.1,
        help="chunk length in seconds (default 0.1)",
    )
    p_load.add_argument(
        "--time-scale", type=float, default=1.0,
        help="pace chunks at chunk*scale seconds apart (default 1.0 = "
             "real time)",
    )
    p_load.add_argument(
        "--no-pace", action="store_true",
        help="send chunks as fast as the hub accepts them",
    )
    p_load.add_argument(
        "--ramp", type=float, default=0.0,
        help="stagger writer starts uniformly across this many seconds "
             "(writers are not phase-locked in real deployments)",
    )
    p_load.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-session timeout in seconds (default 120)",
    )
    p_load.add_argument(
        "--json", action="store_true",
        help="print the result record as one JSON object",
    )
    return parser


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "experiments":
        return cmd_experiments(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "demo":
        if args.demo == "motion":
            return cmd_demo_motion(args)
        if args.demo == "letter":
            return cmd_demo_letter(args)
        if args.demo == "word":
            return cmd_demo_word(args)
    if args.command == "inspect":
        return cmd_inspect(args)
    if args.command == "record":
        return cmd_record(args)
    if args.command == "replay":
        return cmd_replay(args)
    if args.command == "live":
        return cmd_live(args)
    if args.command == "stats":
        return cmd_stats(args)
    if args.command == "serve-metrics":
        return cmd_serve_metrics(args)
    if args.command == "top":
        return cmd_top(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "feed":
        return cmd_feed(args)
    if args.command == "loadgen":
        return cmd_loadgen(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def _check_writable(path: str, what: str) -> bool:
    # Fail fast: exports run after the command, and a long run that ends
    # in an unwritable path would silently lose the whole recording.
    try:
        with open(path, "w", encoding="utf-8"):
            pass
    except OSError as exc:
        print(f"repro: error: cannot write {what} to {path}: {exc}",
              file=sys.stderr)
        return False
    return True


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json=args.log_json)
    if args.trace_out:
        if not _check_writable(args.trace_out, "trace"):
            return 2
        get_tracer().enable()
    hub = None
    if args.metrics_out:
        from .obs.telemetry import TelemetryHub

        if not _check_writable(args.metrics_out, "metrics"):
            return 2
        get_metrics().enable()
        hub = TelemetryHub(interval_s=args.metrics_interval)
        hub.start()
    try:
        return _dispatch(args)
    except KeyboardInterrupt:
        # ^C is a normal way to leave `live`, `replay --stream`, `serve`,
        # and `top`: no traceback, but the finally below still stops the
        # telemetry sampler thread and the warmed worker pools, so the
        # process exits cleanly instead of hanging on non-daemon threads.
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        if hub is not None:
            hub.stop(final_sample=True)
            count = hub.export_jsonl(args.metrics_out)
            print(f"wrote {count} metric samples to {args.metrics_out}",
                  file=sys.stderr)
        if args.trace_out:
            count = get_tracer().export_jsonl(args.trace_out)
            print(f"wrote {count} spans to {args.trace_out}", file=sys.stderr)
        from .sim.parallel import shutdown_pools

        shutdown_pools()


if __name__ == "__main__":
    raise SystemExit(main())
