"""User diversity: volunteer profiles for the evaluation.

The paper's panel (section V-B.6) is ten volunteers spanning gender, age
22-30, height 158-183 cm, weight 45-80 kg, arm length 56-70 cm.  The
behavioural knobs that matter to the RF pipeline are writing speed, hand
wander (jitter), hover height, and how crisply they pause between strokes.
Volunteers #6 and #9 write noticeably fast — the paper singles them out as
the two with degraded accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class UserProfile:
    """Behavioural parameters of one writer."""

    user_id: int
    name: str
    speed: float = 0.20            # hand speed along strokes, m/s
    jitter: float = 0.004          # low-frequency wander std, m
    hover_height: float = 0.030    # writing height above the plane, m
    raised_height: float = 0.22   # height during adjustment intervals, m
    adjustment_time: float = 0.90  # nominal inter-stroke pause, s
    arm_length: float = 0.62       # m, sets the arm scatterer extent

    def __post_init__(self) -> None:
        if self.speed <= 0.0:
            raise ValueError("speed must be positive")
        if self.hover_height <= 0.0 or self.raised_height <= self.hover_height:
            raise ValueError("raised height must exceed hover height")
        if self.adjustment_time < 0.0:
            raise ValueError("adjustment time must be non-negative")


def default_users() -> List[UserProfile]:
    """The ten seeded volunteers. #6 and #9 are the fast writers."""
    specs = [
        # id, speed, jitter, hover, adjustment_time, arm
        (1, 0.18, 0.0035, 0.028, 0.95, 0.58),
        (2, 0.20, 0.0040, 0.030, 0.90, 0.62),
        (3, 0.17, 0.0030, 0.026, 1.00, 0.56),
        (4, 0.22, 0.0045, 0.032, 0.85, 0.66),
        (5, 0.19, 0.0038, 0.030, 0.92, 0.60),
        (6, 0.38, 0.0060, 0.036, 0.65, 0.64),   # fast writer
        (7, 0.21, 0.0042, 0.029, 0.90, 0.63),
        (8, 0.18, 0.0036, 0.027, 0.98, 0.59),
        (9, 0.34, 0.0055, 0.034, 0.68, 0.70),   # fast writer
        (10, 0.20, 0.0040, 0.031, 0.88, 0.61),
    ]
    return [
        UserProfile(
            user_id=uid,
            name=f"volunteer-{uid}",
            speed=speed,
            jitter=jit,
            hover_height=hover,
            adjustment_time=adj,
            arm_length=arm,
        )
        for uid, speed, jit, hover, adj, arm in specs
    ]


def user_by_id(user_id: int) -> UserProfile:
    """Look up one of the ten seeded volunteers by id (1-10)."""
    for u in default_users():
        if u.user_id == user_id:
            return u
    raise KeyError(f"no volunteer with id {user_id}")


DEFAULT_USER = default_users()[1]  # volunteer-2: a typical writer
