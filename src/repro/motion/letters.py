"""Letter decomposition: the tree-structure grammar's source data.

Each capital letter is a sequence of stroke specs positioned in a unit
letter box ([0,1]^2, y up), following the handwriting decomposition of
Agrawal et al. ("Using Mobile Phones to Write in Air", MobiSys 2011) that
the paper adopts (Fig. 10).  Stroke counts match the paper's grouping in
Fig. 23:

* 1 stroke:  C, I
* 2 strokes: D, J, L, O, P, S, T, V, X
* 3 strokes: A, B, F, G, H, K, N, Q, R, U, Y, Z
* 4 strokes: E, M, W

Letters sharing a stroke *sequence* (D/P, O/S, V/X) are distinguished by
stroke positions (section III-C.2): e.g. D's "⊃" spans the full height of
its "|", P's only the top half.  The spec anchors carry exactly that
information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .strokes import ArcOpening, Direction, StrokeKind


@dataclass(frozen=True)
class StrokeSpec:
    """One stroke of a letter, in unit letter-box coordinates (y up)."""

    kind: StrokeKind
    start: Tuple[float, float]
    end: Tuple[float, float]
    opening: Optional[ArcOpening] = None
    direction: Direction = Direction.FORWARD

    @property
    def shape_token(self) -> str:
        """Grammar token: stroke kind, with arcs qualified by opening."""
        if self.kind in (StrokeKind.ARC_C, StrokeKind.ARC_D) or self.opening is not None:
            op = self.opening
            if op is None:
                op = ArcOpening.RIGHT if self.kind is StrokeKind.ARC_C else ArcOpening.LEFT
            return f"arc:{op.value}"
        return self.kind.name.lower()


def _line(kind: StrokeKind, start, end) -> StrokeSpec:
    return StrokeSpec(kind, start, end)


def _arc(opening: ArcOpening, start, end) -> StrokeSpec:
    kind = StrokeKind.ARC_C if opening is ArcOpening.RIGHT else StrokeKind.ARC_D
    return StrokeSpec(kind, start, end, opening=opening)


H, V, S_, B_ = StrokeKind.HBAR, StrokeKind.VBAR, StrokeKind.SLASH, StrokeKind.BACKSLASH
R_, L_, U_, D_ = ArcOpening.RIGHT, ArcOpening.LEFT, ArcOpening.UP, ArcOpening.DOWN


#: The full alphabet decomposition.  Order of strokes is writing order.
LETTER_STROKES: Dict[str, Tuple[StrokeSpec, ...]] = {
    # -------- 1 stroke --------
    "C": (_arc(R_, (0.80, 0.85), (0.80, 0.15)),),
    "I": (_line(V, (0.50, 0.95), (0.50, 0.05)),),
    # -------- 2 strokes --------
    "D": (
        _line(V, (0.30, 0.95), (0.30, 0.05)),
        _arc(L_, (0.30, 0.95), (0.30, 0.05)),
    ),
    "J": (
        _line(V, (0.62, 0.95), (0.62, 0.35)),
        _arc(U_, (0.62, 0.35), (0.18, 0.42)),
    ),
    "L": (
        _line(V, (0.30, 0.95), (0.30, 0.05)),
        _line(H, (0.30, 0.05), (0.80, 0.05)),
    ),
    "O": (
        _arc(R_, (0.50, 0.95), (0.50, 0.05)),
        _arc(L_, (0.50, 0.95), (0.50, 0.05)),
    ),
    "P": (
        _line(V, (0.30, 0.95), (0.30, 0.05)),
        _arc(L_, (0.30, 0.95), (0.30, 0.50)),
    ),
    "S": (
        _arc(R_, (0.78, 0.90), (0.50, 0.50)),
        _arc(L_, (0.50, 0.50), (0.22, 0.10)),
    ),
    "T": (
        _line(H, (0.15, 0.95), (0.85, 0.95)),
        _line(V, (0.50, 0.95), (0.50, 0.05)),
    ),
    "V": (
        _line(B_, (0.20, 0.95), (0.50, 0.05)),
        _line(S_, (0.50, 0.05), (0.80, 0.95)),
    ),
    "X": (
        _line(B_, (0.20, 0.95), (0.80, 0.05)),
        _line(S_, (0.20, 0.05), (0.80, 0.95)),
    ),
    # -------- 3 strokes --------
    "A": (
        _line(S_, (0.20, 0.05), (0.50, 0.95)),
        _line(B_, (0.50, 0.95), (0.80, 0.05)),
        _line(H, (0.33, 0.40), (0.67, 0.40)),
    ),
    "B": (
        _line(V, (0.30, 0.95), (0.30, 0.05)),
        _arc(L_, (0.30, 0.95), (0.30, 0.50)),
        _arc(L_, (0.30, 0.50), (0.30, 0.05)),
    ),
    "F": (
        _line(V, (0.30, 0.95), (0.30, 0.05)),
        _line(H, (0.30, 0.95), (0.80, 0.95)),
        _line(H, (0.30, 0.55), (0.72, 0.55)),
    ),
    "G": (
        _arc(R_, (0.80, 0.85), (0.80, 0.20)),
        _line(H, (0.40, 0.45), (0.85, 0.45)),
        _line(V, (0.85, 0.50), (0.85, 0.05)),
    ),
    "H": (
        _line(V, (0.25, 0.95), (0.25, 0.05)),
        _line(H, (0.25, 0.50), (0.75, 0.50)),
        _line(V, (0.75, 0.95), (0.75, 0.05)),
    ),
    "K": (
        _line(V, (0.30, 0.95), (0.30, 0.05)),
        _line(S_, (0.30, 0.50), (0.78, 0.95), ),
        _line(B_, (0.30, 0.50), (0.78, 0.05)),
    ),
    "N": (
        _line(V, (0.25, 0.95), (0.25, 0.05)),
        _line(B_, (0.25, 0.95), (0.75, 0.05)),
        _line(V, (0.75, 0.05), (0.75, 0.95), ),
    ),
    "Q": (
        _arc(R_, (0.50, 0.95), (0.50, 0.08)),
        _arc(L_, (0.50, 0.95), (0.50, 0.08)),
        _line(B_, (0.52, 0.42), (0.95, 0.00)),
    ),
    "R": (
        _line(V, (0.30, 0.95), (0.30, 0.05)),
        _arc(L_, (0.30, 0.95), (0.30, 0.50)),
        _line(B_, (0.35, 0.50), (0.78, 0.05)),
    ),
    "U": (
        _line(V, (0.25, 0.95), (0.25, 0.30)),
        _arc(U_, (0.25, 0.30), (0.75, 0.30)),
        _line(V, (0.75, 0.30), (0.75, 0.95), ),
    ),
    "Y": (
        _line(B_, (0.20, 0.95), (0.50, 0.52)),
        _line(S_, (0.50, 0.52), (0.80, 0.95), ),
        _line(V, (0.50, 0.52), (0.50, 0.05)),
    ),
    "Z": (
        _line(H, (0.18, 0.95), (0.82, 0.95)),
        _line(S_, (0.82, 0.95), (0.18, 0.05), ),
        _line(H, (0.18, 0.05), (0.82, 0.05)),
    ),
    # -------- 4 strokes --------
    "E": (
        _line(V, (0.30, 0.95), (0.30, 0.05)),
        _line(H, (0.30, 0.95), (0.80, 0.95)),
        _line(H, (0.30, 0.50), (0.72, 0.50)),
        _line(H, (0.30, 0.05), (0.80, 0.05)),
    ),
    "M": (
        _line(V, (0.18, 0.05), (0.18, 0.95), ),
        _line(B_, (0.18, 0.95), (0.50, 0.35)),
        _line(S_, (0.50, 0.35), (0.82, 0.95), ),
        _line(V, (0.82, 0.95), (0.82, 0.05)),
    ),
    "W": (
        _line(B_, (0.12, 0.95), (0.34, 0.05)),
        _line(S_, (0.34, 0.05), (0.50, 0.60), ),
        _line(B_, (0.50, 0.60), (0.66, 0.05)),
        _line(S_, (0.66, 0.05), (0.88, 0.95), ),
    ),
}


ALPHABET: str = "".join(sorted(LETTER_STROKES))


def stroke_count(letter: str) -> int:
    """Number of strokes in a letter's decomposition."""
    return len(LETTER_STROKES[letter.upper()])


def letters_by_stroke_count() -> Dict[int, List[str]]:
    """The four groups of Fig. 23, keyed by stroke count."""
    groups: Dict[int, List[str]] = {}
    for letter, strokes in LETTER_STROKES.items():
        groups.setdefault(len(strokes), []).append(letter)
    for v in groups.values():
        v.sort()
    return groups


def shape_sequence(letter: str) -> Tuple[str, ...]:
    """The grammar token sequence of a letter (writing order)."""
    return tuple(spec.shape_token for spec in LETTER_STROKES[letter.upper()])


def ambiguous_groups() -> List[List[str]]:
    """Sets of letters sharing an identical token sequence (need positions)."""
    by_seq: Dict[Tuple[str, ...], List[str]] = {}
    for letter in LETTER_STROKES:
        by_seq.setdefault(shape_sequence(letter), []).append(letter)
    return sorted([sorted(v) for v in by_seq.values() if len(v) > 1])


def validate_grouping() -> None:
    """Assert the decomposition matches the paper's Fig. 23 groups."""
    groups = letters_by_stroke_count()
    expected = {
        1: ["C", "I"],
        2: ["D", "J", "L", "O", "P", "S", "T", "V", "X"],
        3: ["A", "B", "F", "G", "H", "K", "N", "Q", "R", "U", "Y", "Z"],
        4: ["E", "M", "W"],
    }
    if groups != expected:
        raise AssertionError(f"letter grouping drifted from the paper: {groups}")
