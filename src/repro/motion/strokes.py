"""Stroke primitives and their hand trajectories.

The paper defines 7 basic hand motions (section II-C): a "click" push
towards a tag plus six stroke shapes — "−", "|", "/", "\\", "⊂", "⊃".
Strokes 2-7 each have two travel directions, giving the 13 motions of the
evaluation (section V-B.1).

For letter composition the arcs additionally appear rotated (the bowl of a
"U", the cap of an "∩"-like stroke), so the shape vocabulary carries an
explicit :class:`ArcOpening`.  The motion-detection experiments use only
the paper's 7 primitives.

Trajectories are generated in the tag-plane frame (see
:mod:`repro.physics.geometry`): strokes are drawn at a small hover height
above the ``z = 0`` plane, scaled to the pad extent, with per-user speed
and jitter applied by the caller.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..physics.geometry import Vec3, path_length, resample_polyline


class StrokeKind(enum.Enum):
    """The paper's 7 basic motions (numbered #1..#7 as in section V-D)."""

    CLICK = 1       # "push" towards a tag
    HBAR = 2        # "−"
    VBAR = 3        # "|"
    SLASH = 4       # "/"
    BACKSLASH = 5   # "\"
    ARC_C = 6       # "⊂" (opens right, like "(")
    ARC_D = 7       # "⊃" (opens left, like ")")

    @property
    def glyph(self) -> str:
        return {
            StrokeKind.CLICK: "⊙",
            StrokeKind.HBAR: "−",
            StrokeKind.VBAR: "|",
            StrokeKind.SLASH: "/",
            StrokeKind.BACKSLASH: "\\",
            StrokeKind.ARC_C: "⊂",
            StrokeKind.ARC_D: "⊃",
        }[self]


class Direction(enum.Enum):
    """Travel direction along a stroke (click has only FORWARD)."""

    FORWARD = "forward"   # left→right, top→bottom, or clockwise-start
    REVERSE = "reverse"


class ArcOpening(enum.Enum):
    """Which way an arc's gap faces."""

    RIGHT = "right"  # "⊂" / "("
    LEFT = "left"    # "⊃" / ")"
    UP = "up"        # bowl "∪"
    DOWN = "down"    # cap "∩"


@dataclass(frozen=True)
class Motion:
    """One of the 13 evaluated motions: a stroke kind plus travel direction."""

    kind: StrokeKind
    direction: Direction = Direction.FORWARD

    @property
    def label(self) -> str:
        arrow = "" if self.kind is StrokeKind.CLICK else (
            "+" if self.direction is Direction.FORWARD else "-"
        )
        return f"{self.kind.glyph}{arrow}"


def all_motions() -> List[Motion]:
    """The paper's 13-motion battery: click + strokes 2-7 in two directions."""
    motions = [Motion(StrokeKind.CLICK)]
    for kind in (
        StrokeKind.HBAR,
        StrokeKind.VBAR,
        StrokeKind.SLASH,
        StrokeKind.BACKSLASH,
        StrokeKind.ARC_C,
        StrokeKind.ARC_D,
    ):
        motions.append(Motion(kind, Direction.FORWARD))
        motions.append(Motion(kind, Direction.REVERSE))
    return motions


@dataclass(frozen=True)
class TimedPoint:
    """One sample of a hand trajectory."""

    t: float
    position: Vec3


@dataclass(frozen=True)
class StrokeTrace:
    """A generated stroke: its samples plus generation ground truth."""

    kind: StrokeKind
    direction: Direction
    samples: Tuple[TimedPoint, ...]
    opening: Optional[ArcOpening] = None  # arcs only

    @property
    def t_start(self) -> float:
        return self.samples[0].t

    @property
    def t_end(self) -> float:
        return self.samples[-1].t

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def points(self) -> List[Vec3]:
        return [s.position for s in self.samples]


# ----------------------------------------------------------------------
# Shape skeletons (unit box [0,1]^2, y up)
# ----------------------------------------------------------------------

_ARC_POINTS = 24
_LINE_POINTS = 12


def _line_skeleton(p0: Tuple[float, float], p1: Tuple[float, float]) -> List[Tuple[float, float]]:
    return [
        (p0[0] + (p1[0] - p0[0]) * i / (_LINE_POINTS - 1),
         p0[1] + (p1[1] - p0[1]) * i / (_LINE_POINTS - 1))
        for i in range(_LINE_POINTS)
    ]


def _arc_skeleton(opening: ArcOpening) -> List[Tuple[float, float]]:
    """A 240-degree arc in the unit box whose gap faces ``opening``.

    The gap is centred on the opening direction; e.g. an ``ARC_C`` ("⊂")
    covers angles 60..300 degrees, leaving the right side open.
    """
    gap_centre = {
        ArcOpening.RIGHT: 0.0,
        ArcOpening.UP: 90.0,
        ArcOpening.LEFT: 180.0,
        ArcOpening.DOWN: 270.0,
    }[opening]
    start = gap_centre + 60.0
    end = gap_centre + 300.0
    pts = []
    for i in range(_ARC_POINTS):
        a = math.radians(start + (end - start) * i / (_ARC_POINTS - 1))
        pts.append((0.5 + 0.45 * math.cos(a), 0.5 + 0.45 * math.sin(a)))
    return pts


def stroke_skeleton(
    kind: StrokeKind, opening: Optional[ArcOpening] = None
) -> List[Tuple[float, float]]:
    """Canonical unit-box polyline for a stroke shape, in FORWARD order.

    FORWARD conventions: "−" left→right, "|" top→bottom, "/" bottom-left→
    top-right, "\\" top-left→bottom-right, arcs start at their upper tip.
    """
    if kind is StrokeKind.CLICK:
        raise ValueError("click is a push, not a planar polyline; use generate_click")
    if kind is StrokeKind.HBAR:
        return _line_skeleton((0.05, 0.5), (0.95, 0.5))
    if kind is StrokeKind.VBAR:
        return _line_skeleton((0.5, 0.95), (0.5, 0.05))
    if kind is StrokeKind.SLASH:
        return _line_skeleton((0.05, 0.05), (0.95, 0.95))
    if kind is StrokeKind.BACKSLASH:
        return _line_skeleton((0.05, 0.95), (0.95, 0.05))
    if kind is StrokeKind.ARC_C:
        return _arc_skeleton(opening if opening is not None else ArcOpening.RIGHT)
    if kind is StrokeKind.ARC_D:
        return _arc_skeleton(opening if opening is not None else ArcOpening.LEFT)
    raise ValueError(f"unhandled stroke kind {kind}")


def default_opening(kind: StrokeKind) -> Optional[ArcOpening]:
    """The canonical opening of an arc kind (None for lines/clicks)."""
    if kind is StrokeKind.ARC_C:
        return ArcOpening.RIGHT
    if kind is StrokeKind.ARC_D:
        return ArcOpening.LEFT
    return None


# ----------------------------------------------------------------------
# Trajectory generation
# ----------------------------------------------------------------------


def _smooth_noise(rng: np.random.Generator, n: int, sigma: float, kernel: int = 7) -> np.ndarray:
    """Low-frequency jitter: white noise convolved with a box kernel."""
    if sigma <= 0.0 or n == 0:
        return np.zeros(n)
    raw = rng.normal(0.0, sigma, size=n + kernel - 1)
    window = np.ones(kernel) / kernel
    return np.convolve(raw, window, mode="valid")


def generate_stroke(
    motion: Motion,
    rng: np.random.Generator,
    box_center: Tuple[float, float] = (0.0, 0.0),
    box_size: Tuple[float, float] = (0.24, 0.24),
    speed: float = 0.20,
    hover_height: float = 0.03,
    jitter: float = 0.004,
    t_start: float = 0.0,
    sample_dt: float = 0.01,
    opening: Optional[ArcOpening] = None,
) -> StrokeTrace:
    """Generate a hand trajectory for one stroke.

    Parameters
    ----------
    box_center, box_size:
        Where on the pad (metres, plane frame) the stroke is drawn.
    speed:
        Nominal hand speed along the path, m/s.
    hover_height:
        Height above the plane, metres; the paper's accuracy zone is <5 cm.
    jitter:
        Std (metres) of low-frequency hand wander added to the ideal path.
    """
    if motion.kind is StrokeKind.CLICK:
        return generate_click(
            rng,
            target=Vec3(box_center[0], box_center[1], 0.0),
            hover_height=hover_height,
            t_start=t_start,
            sample_dt=sample_dt,
            speed=speed,
        )
    if speed <= 0.0:
        raise ValueError(f"speed must be positive, got {speed}")

    opening = opening if opening is not None else default_opening(motion.kind)
    skeleton = stroke_skeleton(motion.kind, opening)
    if motion.direction is Direction.REVERSE:
        skeleton = skeleton[::-1]

    # Scale unit box to the requested pad region.
    pts = [
        Vec3(
            box_center[0] + (u - 0.5) * box_size[0],
            box_center[1] + (v - 0.5) * box_size[1],
            hover_height,
        )
        for u, v in skeleton
    ]
    length = path_length(pts)
    duration = max(0.25, length / speed)
    n = max(8, int(round(duration / sample_dt)) + 1)
    pts = resample_polyline(pts, n)

    # Hand wander + gentle height breathing.
    jx = _smooth_noise(rng, n, jitter)
    jy = _smooth_noise(rng, n, jitter)
    jz = _smooth_noise(rng, n, jitter * 0.5)
    samples = []
    for i, p in enumerate(pts):
        t = t_start + duration * i / (n - 1)
        samples.append(
            TimedPoint(
                t,
                Vec3(p.x + jx[i], p.y + jy[i], max(0.012, p.z + jz[i])),
            )
        )
    return StrokeTrace(motion.kind, motion.direction, tuple(samples), opening)


def generate_click(
    rng: np.random.Generator,
    target: Vec3,
    hover_height: float = 0.03,
    raised_height: float = 0.14,
    t_start: float = 0.0,
    sample_dt: float = 0.01,
    speed: float = 0.20,
    jitter: float = 0.003,
) -> StrokeTrace:
    """A "click": push down towards a tag and retract (paper's motion #1)."""
    descend = raised_height - hover_height
    duration = max(0.4, 2.2 * descend / max(speed, 1e-6))
    n = max(10, int(round(duration / sample_dt)) + 1)
    jx = _smooth_noise(rng, n, jitter)
    jy = _smooth_noise(rng, n, jitter)
    samples = []
    for i in range(n):
        frac = i / (n - 1)
        # Triangle profile: down for the first half, back up for the second.
        if frac <= 0.5:
            z = raised_height - descend * (frac / 0.5)
        else:
            z = hover_height + descend * ((frac - 0.5) / 0.5)
        t = t_start + duration * frac
        samples.append(TimedPoint(t, Vec3(target.x + jx[i], target.y + jy[i], max(0.012, z))))
    return StrokeTrace(StrokeKind.CLICK, Direction.FORWARD, tuple(samples), None)


def generate_line_between(
    rng: np.random.Generator,
    start_xy: Tuple[float, float],
    end_xy: Tuple[float, float],
    kind: StrokeKind,
    direction: Direction,
    speed: float = 0.20,
    hover_height: float = 0.03,
    jitter: float = 0.004,
    t_start: float = 0.0,
    sample_dt: float = 0.01,
    opening: Optional[ArcOpening] = None,
) -> StrokeTrace:
    """Generate a stroke between explicit pad coordinates (letter writing).

    For line kinds the path is the segment start→end.  For arcs the path is
    a circular arc whose chord is start→end and whose bulge faces away from
    ``opening``.
    """
    if speed <= 0.0:
        raise ValueError(f"speed must be positive, got {speed}")
    sx, sy = start_xy
    ex, ey = end_xy
    if kind in (StrokeKind.ARC_C, StrokeKind.ARC_D) or opening is not None:
        op = opening if opening is not None else default_opening(kind)
        pts2d = _arc_between((sx, sy), (ex, ey), op)
    else:
        pts2d = _line_skeleton((sx, sy), (ex, ey))
        # _line_skeleton interpolates raw coordinates; no unit-box scaling here.
    pts = [Vec3(x, y, hover_height) for x, y in pts2d]
    length = path_length(pts)
    duration = max(0.25, length / speed)
    n = max(8, int(round(duration / sample_dt)) + 1)
    pts = resample_polyline(pts, n)
    jx = _smooth_noise(rng, n, jitter)
    jy = _smooth_noise(rng, n, jitter)
    samples = []
    for i, p in enumerate(pts):
        t = t_start + duration * i / (n - 1)
        samples.append(TimedPoint(t, Vec3(p.x + jx[i], p.y + jy[i], p.z)))
    return StrokeTrace(kind, direction, tuple(samples), opening or default_opening(kind))


def _arc_between(
    start: Tuple[float, float], end: Tuple[float, float], opening: Optional[ArcOpening]
) -> List[Tuple[float, float]]:
    """Circular-ish arc from start to end bulging away from ``opening``."""
    sx, sy = start
    ex, ey = end
    mx, my = (sx + ex) / 2.0, (sy + ey) / 2.0
    chord = math.hypot(ex - sx, ey - sy)
    # Control-point offset of 1.0 * chord puts the curve's midpoint at half
    # a chord off the baseline — a near-semicircular bow, which is how
    # people actually round a "D" or the bowl of a "U" (and what keeps the
    # arc's path measurably non-straight at 5x5 tag resolution).
    bulge = 1.0 * chord if chord > 0 else 0.05
    offset = {
        ArcOpening.RIGHT: (-bulge, 0.0),
        ArcOpening.LEFT: (bulge, 0.0),
        ArcOpening.UP: (0.0, -bulge),
        ArcOpening.DOWN: (0.0, bulge),
        None: (-bulge, 0.0),
    }[opening]
    cx, cy = mx + offset[0], my + offset[1]
    # Quadratic Bezier through the bulge control point.
    pts = []
    for i in range(_ARC_POINTS):
        t = i / (_ARC_POINTS - 1)
        x = (1 - t) ** 2 * sx + 2 * (1 - t) * t * cx + t**2 * ex
        y = (1 - t) ** 2 * sy + 2 * (1 - t) * t * cy + t**2 * ey
        pts.append((x, y))
    return pts
