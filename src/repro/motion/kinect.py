"""Simulated Kinect ground truth.

The paper validates RFIPad against a Kinect placed behind the user, using
its skeletal output to track the hand (section V-A, Fig. 25).  Here the
"Kinect" samples the *true* simulated hand trajectory at the sensor's frame
rate with centimetre-scale skeletal noise and occasional dropped frames —
the same statistical role the real device plays: an independent, imperfect
reference trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..physics.geometry import Vec3
from .script import WritingScript
from .strokes import TimedPoint


#: Kinect v1/v2 skeletal stream rate, Hz.
KINECT_FRAME_RATE_HZ = 30.0

#: Skeletal joint jitter of the hand joint, metres (typical ~5-10 mm).
KINECT_JOINT_NOISE_M = 0.006


@dataclass(frozen=True)
class KinectFrame:
    """One skeletal frame: the tracked hand joint (None when lost)."""

    t: float
    hand: Optional[Vec3]


@dataclass
class KinectTrack:
    """A recorded skeletal session."""

    frames: List[KinectFrame]

    def positions(self) -> List[TimedPoint]:
        return [TimedPoint(f.t, f.hand) for f in self.frames if f.hand is not None]

    def tracked_fraction(self) -> float:
        if not self.frames:
            return 0.0
        return sum(1 for f in self.frames if f.hand is not None) / len(self.frames)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, positions[n,3]) of tracked frames."""
        pts = self.positions()
        times = np.array([p.t for p in pts])
        xyz = np.array([[p.position.x, p.position.y, p.position.z] for p in pts])
        return times, xyz


class KinectSimulator:
    """Samples a script's true trajectory like a skeletal tracker would."""

    def __init__(
        self,
        rng: np.random.Generator,
        frame_rate_hz: float = KINECT_FRAME_RATE_HZ,
        joint_noise_m: float = KINECT_JOINT_NOISE_M,
        drop_probability: float = 0.02,
    ) -> None:
        if frame_rate_hz <= 0.0:
            raise ValueError("frame rate must be positive")
        if not (0.0 <= drop_probability < 1.0):
            raise ValueError("drop probability must be in [0, 1)")
        self._rng = rng
        self.frame_rate_hz = frame_rate_hz
        self.joint_noise_m = joint_noise_m
        self.drop_probability = drop_probability

    def track(self, script: WritingScript) -> KinectTrack:
        frames: List[KinectFrame] = []
        dt = 1.0 / self.frame_rate_hz
        t = script.t_start
        while t <= script.t_end + 1e-9:
            pose = script.hand_pose_at(t)
            if pose is None or self._rng.random() < self.drop_probability:
                frames.append(KinectFrame(t, None))
            else:
                noise = self._rng.normal(0.0, self.joint_noise_m, size=3)
                p = pose.position
                frames.append(
                    KinectFrame(t, Vec3(p.x + noise[0], p.y + noise[1], p.z + noise[2]))
                )
            t += dt
        return KinectTrack(frames)


def trajectory_deviation(
    track: KinectTrack, reference: Sequence[TimedPoint]
) -> float:
    """Mean nearest-in-time distance between a track and a reference path.

    Used by Fig. 25-style comparisons to quantify "the two trajectories are
    very consistent".
    """
    ref = list(reference)
    if not ref:
        raise ValueError("empty reference trajectory")
    times = np.array([p.t for p in ref])
    total, count = 0.0, 0
    for point in track.positions():
        i = int(np.argmin(np.abs(times - point.t)))
        total += point.position.distance_to(ref[i].position)
        count += 1
    if count == 0:
        raise ValueError("track has no tracked frames")
    return total / count
