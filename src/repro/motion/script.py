"""Writing sessions: strokes, adjustment intervals, and the hand-pose clock.

A :class:`WritingScript` is the timed ground truth of one session — strokes
with their intervals, the inter-stroke *adjustment intervals* (hand raised
and repositioned, section III-C.1), and lead-in/lead-out periods with no
hand over the pad.  Its :meth:`WritingScript.hand_pose_at` is exactly the
scene callback the simulated reader consumes, and its ground-truth
accessors are what the metrics layer scores against.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..physics.geometry import Vec3
from ..physics.hand import HandPose, PoseTrack
from .letters import LETTER_STROKES, StrokeSpec
from .strokes import (
    ArcOpening,
    Direction,
    Motion,
    StrokeKind,
    StrokeTrace,
    TimedPoint,
    generate_line_between,
    generate_stroke,
)
from .user import DEFAULT_USER, UserProfile


@dataclass(frozen=True)
class Segment:
    """One timed piece of a session."""

    t0: float
    t1: float
    kind: str                 # "stroke" | "adjust" | "absent"
    trace: Optional[StrokeTrace] = None
    path: Tuple[TimedPoint, ...] = ()

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise ValueError(f"segment ends before it starts: {self.t0}..{self.t1}")


def _interpolate(
    samples: Sequence[TimedPoint], t: float, times: Optional[Sequence[float]] = None
) -> Vec3:
    """Linear interpolation of a timed sample sequence (clamped at ends).

    ``times`` optionally supplies the precomputed ``[s.t for s in samples]``
    key list — the pose clock calls this thousands of times per session on
    the same sample sequences.
    """
    if not samples:
        raise ValueError("cannot interpolate an empty sample sequence")
    if times is None:
        times = [s.t for s in samples]
    i = bisect.bisect_right(times, t)
    if i <= 0:
        return samples[0].position
    if i >= len(samples):
        return samples[-1].position
    a, b = samples[i - 1], samples[i]
    if b.t == a.t:
        return a.position
    frac = (t - a.t) / (b.t - a.t)
    return a.position.lerp(b.position, frac)


@dataclass
class WritingScript:
    """A complete session: ordered segments plus labels.

    ``label`` is the session-level ground truth (a letter, or a motion
    label for single-stroke sessions).
    """

    segments: List[Segment]
    label: str
    user: UserProfile = DEFAULT_USER

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a script needs at least one segment")
        for a, b in zip(self.segments, self.segments[1:]):
            if b.t0 < a.t1 - 1e-9:
                raise ValueError("segments overlap")
        # Per-segment interpolation keys, filled lazily by hand_pose_at.
        self._seg_times: dict = {}
        # Per-segment (times, positions) arrays, filled lazily by pose_at_many.
        self._seg_arrays: dict = {}

    @property
    def t_start(self) -> float:
        return self.segments[0].t0

    @property
    def t_end(self) -> float:
        return self.segments[-1].t1

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def strokes(self) -> List[StrokeTrace]:
        return [s.trace for s in self.segments if s.kind == "stroke" and s.trace is not None]

    def stroke_intervals(self) -> List[Tuple[float, float]]:
        """Ground-truth (t0, t1) of every stroke, for segmentation scoring."""
        return [(s.t0, s.t1) for s in self.segments if s.kind == "stroke"]

    def adjustment_intervals(self) -> List[Tuple[float, float]]:
        return [(s.t0, s.t1) for s in self.segments if s.kind == "adjust"]

    def hand_pose_at(self, t: float) -> Optional[HandPose]:
        """The scene callback for :meth:`repro.rfid.Reader.collect`."""
        for idx, seg in enumerate(self.segments):
            if seg.t0 <= t <= seg.t1:
                if seg.kind == "absent":
                    return None
                samples = seg.trace.samples if seg.trace is not None else seg.path
                if not samples:
                    return None
                times = self._seg_times.get(idx)
                if times is None:
                    times = self._seg_times[idx] = [s.t for s in samples]
                return HandPose(
                    position=_interpolate(samples, t, times),
                    arm_length=self.user.arm_length / 2.0,
                )
        return None

    def pose_at_many(self, times: "np.ndarray") -> "PoseTrack":
        """Vectorized :meth:`hand_pose_at`: one :class:`PoseTrack` for a whole
        batch of query times.

        Positions are bit-identical to the scalar clock: segment lookup is
        the same ordered first-match rule, ``searchsorted(side='right')``
        reproduces ``bisect.bisect_right``, and the clamped linear
        interpolation evaluates ``a + (b - a) * frac`` with the scalar
        ``Vec3.lerp`` operand order (degenerate rows — before the first
        sample, after the last, zero-length intervals — select the endpoint
        sample directly rather than re-deriving it arithmetically).
        """
        tq = np.ascontiguousarray(times, dtype=float)
        m = tq.size
        present = np.zeros(m, dtype=bool)
        xyz = np.zeros((m, 3))
        template_idx = np.full(m, -1, dtype=np.int64)
        assigned = np.zeros(m, dtype=bool)
        for idx, seg in enumerate(self.segments):
            mask = (~assigned) & (tq >= seg.t0) & (tq <= seg.t1)
            if not mask.any():
                continue
            assigned |= mask
            if seg.kind == "absent":
                continue
            samples = seg.trace.samples if seg.trace is not None else seg.path
            if not samples:
                continue
            arrays = self._seg_arrays.get(idx)
            if arrays is None:
                st = np.array([s.t for s in samples])
                pos = np.array([s.position.as_tuple() for s in samples])
                arrays = self._seg_arrays[idx] = (st, pos)
            st, pos = arrays
            n = st.size
            t_in = tq[mask]
            i = np.searchsorted(st, t_in, side="right")
            lo = np.clip(i - 1, 0, n - 1)
            hi = np.clip(i, 0, n - 1)
            ta = st[lo]
            tb = st[hi]
            pa = pos[lo]
            pb = pos[hi]
            denom = tb - ta
            safe = (denom != 0.0) & (i > 0) & (i < n)
            frac = np.where(
                safe, (t_in - ta) / np.where(safe, denom, 1.0), 0.0
            )
            interp = pa + (pb - pa) * frac[:, None]
            xyz[mask] = np.where(safe[:, None], interp, pa)
            present[mask] = True
            template_idx[mask] = 0
        template = HandPose(
            position=Vec3(0.0, 0.0, 0.0), arm_length=self.user.arm_length / 2.0
        )
        return PoseTrack(tq, present, xyz, [template], template_idx)

    def true_trajectory(self, dt: float = 1.0 / 30.0) -> List[TimedPoint]:
        """Dense ground-truth trajectory (used by the simulated Kinect)."""
        out: List[TimedPoint] = []
        t = self.t_start
        while t <= self.t_end + 1e-9:
            pose = self.hand_pose_at(t)
            if pose is not None:
                out.append(TimedPoint(t, pose.position))
            t += dt
        return out


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def script_for_motion(
    motion: Motion,
    rng: np.random.Generator,
    user: UserProfile = DEFAULT_USER,
    pad_extent: float = 0.24,
    lead_in: float = 0.6,
    lead_out: float = 0.6,
    box_center: Tuple[float, float] = (0.0, 0.0),
    speed: Optional[float] = None,
) -> WritingScript:
    """A single-motion session: quiet pad, one stroke, quiet pad.

    This is the workload of the motion-detection experiments (Table I,
    Figs. 16-21): the stroke spans most of the pad.
    """
    spd = speed if speed is not None else user.speed
    trace = generate_stroke(
        motion,
        rng,
        box_center=box_center,
        box_size=(pad_extent, pad_extent),
        speed=spd,
        hover_height=user.hover_height,
        jitter=user.jitter,
        t_start=lead_in,
    )
    segments = [
        Segment(0.0, lead_in, "absent"),
        Segment(trace.t_start, trace.t_end, "stroke", trace=trace),
        Segment(trace.t_end, trace.t_end + lead_out, "absent"),
    ]
    return WritingScript(segments, label=motion.label, user=user)


def _adjustment_path(
    rng: np.random.Generator,
    start: Vec3,
    end: Vec3,
    user: UserProfile,
    t0: float,
    duration: float,
    n: int = 20,
) -> Tuple[TimedPoint, ...]:
    """Raised repositioning path between two strokes (an arch in z)."""
    pts = []
    for i in range(n):
        frac = i / (n - 1)
        base = start.lerp(end, frac)
        # Arch: rise quickly to the raised height, come down at the end.
        lift = math.sin(math.pi * frac)
        z = base.z + (user.raised_height - base.z) * lift
        wobble = rng.normal(0.0, user.jitter * 0.5, size=2)
        pts.append(
            TimedPoint(
                t0 + duration * frac,
                Vec3(base.x + wobble[0], base.y + wobble[1], z),
            )
        )
    return tuple(pts)


def script_for_strokes(
    specs: Sequence[StrokeSpec],
    label: str,
    rng: np.random.Generator,
    user: UserProfile = DEFAULT_USER,
    pad_box: float = 0.27,
    lead_in: float = 0.6,
    lead_out: float = 0.6,
) -> WritingScript:
    """Write an arbitrary stroke-spec sequence scaled onto the pad.

    ``pad_box`` is the side of the square writing area (metres) centred on
    the array origin; letter-box coordinates (0..1) are mapped into it.
    """
    if not specs:
        raise ValueError("need at least one stroke spec")

    def to_pad(xy: Tuple[float, float]) -> Tuple[float, float]:
        return ((xy[0] - 0.5) * pad_box, (xy[1] - 0.5) * pad_box)

    segments: List[Segment] = [Segment(0.0, lead_in, "absent")]
    t = lead_in
    prev_end: Optional[Vec3] = None
    for spec in specs:
        start_xy, end_xy = to_pad(spec.start), to_pad(spec.end)
        if prev_end is not None:
            # Adjustment interval: raise, reposition, pause.
            duration = max(0.3, user.adjustment_time * float(rng.normal(1.0, 0.12)))
            target = Vec3(start_xy[0], start_xy[1], user.hover_height)
            path = _adjustment_path(rng, prev_end, target, user, t, duration)
            segments.append(Segment(t, t + duration, "adjust", path=path))
            t += duration
        trace = generate_line_between(
            rng,
            start_xy,
            end_xy,
            kind=spec.kind,
            direction=spec.direction,
            speed=user.speed,
            hover_height=user.hover_height,
            jitter=user.jitter,
            t_start=t,
            opening=spec.opening,
        )
        segments.append(Segment(trace.t_start, trace.t_end, "stroke", trace=trace))
        t = trace.t_end
        last = trace.samples[-1].position
        prev_end = last
    segments.append(Segment(t, t + lead_out, "absent"))
    return WritingScript(segments, label=label, user=user)


def script_for_letter(
    letter: str,
    rng: np.random.Generator,
    user: UserProfile = DEFAULT_USER,
    pad_box: float = 0.27,
    lead_in: float = 0.6,
    lead_out: float = 0.6,
) -> WritingScript:
    """Write one capital letter over the pad (the Fig. 22/23 workload)."""
    letter = letter.upper()
    if letter not in LETTER_STROKES:
        raise KeyError(f"no decomposition for {letter!r}")
    return script_for_strokes(
        LETTER_STROKES[letter], letter, rng, user=user, pad_box=pad_box,
        lead_in=lead_in, lead_out=lead_out,
    )


def script_for_word(
    word: str,
    rng: np.random.Generator,
    user: UserProfile = DEFAULT_USER,
    pad_box: float = 0.27,
    letter_pause_s: float = 2.2,
    lead_in: float = 0.6,
    lead_out: float = 0.6,
) -> WritingScript:
    """Write a word: letters in sequence, with a long pause (hand lifted
    off the pad entirely) between letters.

    The inter-letter pause is what the word layer's clustering keys on --
    it must exceed the inter-*stroke* adjustment time by a clear margin.
    """
    word = word.upper()
    if not word:
        raise ValueError("word must be non-empty")
    for ch in word:
        if ch not in LETTER_STROKES:
            raise KeyError(f"no decomposition for {ch!r}")

    segments: List[Segment] = []
    t = 0.0
    for i, ch in enumerate(word):
        letter_script = script_for_letter(
            ch, rng, user=user, pad_box=pad_box,
            lead_in=lead_in if i == 0 else 0.0,
            lead_out=lead_out if i == len(word) - 1 else 0.0,
        )
        for seg in letter_script.segments:
            if seg.t1 - seg.t0 <= 0.0:
                continue
            segments.append(
                Segment(
                    seg.t0 + t,
                    seg.t1 + t,
                    seg.kind,
                    trace=_shift_trace(seg.trace, t),
                    path=_shift_path(seg.path, t),
                )
            )
        t += letter_script.duration
        if i < len(word) - 1:
            pause = max(1.2, letter_pause_s * float(rng.normal(1.0, 0.1)))
            segments.append(Segment(t, t + pause, "absent"))
            t += pause
    return WritingScript(segments, label=word, user=user)


def _shift_trace(trace: Optional[StrokeTrace], dt: float) -> Optional[StrokeTrace]:
    if trace is None or dt == 0.0:
        return trace
    shifted = tuple(TimedPoint(s.t + dt, s.position) for s in trace.samples)
    return StrokeTrace(trace.kind, trace.direction, shifted, trace.opening)


def _shift_path(path: Tuple[TimedPoint, ...], dt: float) -> Tuple[TimedPoint, ...]:
    if not path or dt == 0.0:
        return path
    return tuple(TimedPoint(p.t + dt, p.position) for p in path)
