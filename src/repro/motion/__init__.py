"""Hand-motion synthesis: stroke primitives, letter decompositions, user
profiles, writing sessions, and the simulated Kinect ground truth.
"""

from .kinect import (
    KINECT_FRAME_RATE_HZ,
    KINECT_JOINT_NOISE_M,
    KinectFrame,
    KinectSimulator,
    KinectTrack,
    trajectory_deviation,
)
from .letters import (
    ALPHABET,
    LETTER_STROKES,
    StrokeSpec,
    ambiguous_groups,
    letters_by_stroke_count,
    shape_sequence,
    stroke_count,
    validate_grouping,
)
from .script import Segment, WritingScript, script_for_letter, script_for_motion, script_for_strokes
from .strokes import (
    ArcOpening,
    Direction,
    Motion,
    StrokeKind,
    StrokeTrace,
    TimedPoint,
    all_motions,
    default_opening,
    generate_click,
    generate_line_between,
    generate_stroke,
    stroke_skeleton,
)
from .user import DEFAULT_USER, UserProfile, default_users, user_by_id

__all__ = [
    "ALPHABET",
    "ArcOpening",
    "DEFAULT_USER",
    "Direction",
    "KINECT_FRAME_RATE_HZ",
    "KINECT_JOINT_NOISE_M",
    "KinectFrame",
    "KinectSimulator",
    "KinectTrack",
    "LETTER_STROKES",
    "Motion",
    "Segment",
    "StrokeKind",
    "StrokeSpec",
    "StrokeTrace",
    "TimedPoint",
    "UserProfile",
    "WritingScript",
    "all_motions",
    "ambiguous_groups",
    "default_opening",
    "default_users",
    "generate_click",
    "generate_line_between",
    "generate_stroke",
    "letters_by_stroke_count",
    "script_for_letter",
    "script_for_motion",
    "script_for_strokes",
    "shape_sequence",
    "stroke_count",
    "stroke_skeleton",
    "trajectory_deviation",
    "user_by_id",
    "validate_grouping",
]
