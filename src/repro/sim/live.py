"""Live-feed driver: replay collected report streams chunk-by-chunk.

The simulator's :meth:`Reader.collect` hands back a complete session log;
real deployments instead receive LLRP report batches every few tens of
milliseconds.  This module bridges the two: :func:`iter_chunks` slices a
log along the wall clock, and :class:`LiveDriver` feeds those slices into
a :class:`repro.stream.StreamingSession` — so the streaming stack is
exercised with exactly the traffic shape a live reader produces, while
staying deterministic and comparable to the batch path on the same log.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..core.pipeline import RFIPad
from ..motion.script import WritingScript, script_for_letter, script_for_motion
from ..motion.strokes import Motion
from ..rfid.reports import ReportLog
from ..stream import StreamEvent, StreamingSession
from .runner import SessionRunner

__all__ = ["LiveDriver", "iter_chunks", "stream_log"]


def iter_chunks(log: ReportLog, chunk_s: float = 0.1) -> Iterator[ReportLog]:
    """Slice a collected log into contiguous ``chunk_s`` report batches.

    Chunks are zero-copy time-slice views covering ``[start, end]``;
    quiet intervals yield empty chunks (a live reader's report timer
    fires whether or not tags answered), so consumers see realistic
    pacing gaps too.
    """
    if chunk_s <= 0.0:
        raise ValueError("chunk length must be positive")
    if len(log) == 0:
        return
    start = log.start_time
    t_end = log.end_time
    while start <= t_end:
        yield log.slice_time(start, start + chunk_s)
        start += chunk_s


def stream_log(
    pad: RFIPad,
    log: ReportLog,
    chunk_s: float = 0.1,
    bounded: bool = True,
    session: Optional[StreamingSession] = None,
    session_id: Optional[str] = None,
    provisional: bool = False,
) -> Iterable[StreamEvent]:
    """Run a whole log through a streaming session, yielding events live.

    Events surface as soon as their chunk closes them — iterate to react
    per-stroke; the final item is always the finalizing
    :class:`~repro.stream.LetterEvent`.  ``provisional=True`` additionally
    yields ``final=False`` previews of the still-forming window and its
    in-progress letter composition.
    """
    if session is None:
        session = StreamingSession(
            pad, bounded=bounded, session_id=session_id, provisional=provisional
        )
    for chunk in iter_chunks(log, chunk_s):
        yield from session.ingest(chunk)
    yield from session.finalize()


class LiveDriver:
    """Feed simulated sessions through the streaming stack.

    Binds a :class:`SessionRunner` (scenario + reader + calibrated pad)
    and replays each collected session chunk-by-chunk.  The returned
    session exposes the event list, the per-window strokes, and the
    letter/motion results — byte-for-byte what the batch pipeline computes
    on the same log (see the equivalence contract in ``repro.stream``).
    """

    def __init__(
        self,
        runner: SessionRunner,
        chunk_s: float = 0.1,
        bounded: bool = True,
        session_id: Optional[str] = None,
        provisional: bool = False,
    ) -> None:
        self.runner = runner
        self.chunk_s = chunk_s
        self.bounded = bounded
        self.session_id = session_id
        self.provisional = provisional

    def run_script(self, script: WritingScript) -> StreamingSession:
        """Collect one session and stream it; returns the finished session."""
        log = self.runner.run_script(script)
        session = StreamingSession(
            self.runner.pad,
            bounded=self.bounded,
            session_id=self.session_id,
            provisional=self.provisional,
        )
        for _ in stream_log(
            self.runner.pad, log, self.chunk_s, session=session
        ):
            pass
        return session

    def run_letter(self, letter: str) -> StreamingSession:
        return self.run_script(script_for_letter(letter, self.runner.rng))

    def run_motion(self, motion: Motion) -> StreamingSession:
        return self.run_script(script_for_motion(motion, self.runner.rng))
