"""Evaluation metrics: the quantities the paper's tables and figures report.

* accuracy, false-positive rate, false-negative rate (section V-A);
* stroke-segmentation insertion and underfill rates (section V-C);
* confusion matrices and empirical CDFs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.events import SegmentedWindow


@dataclass(frozen=True)
class DetectionCounts:
    """Raw counts behind accuracy / FPR / FNR."""

    total: int
    correct: int
    false_positives: int   # detected but wrong (or detected in quiet air)
    false_negatives: int   # nothing detected where a motion happened

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    @property
    def fpr(self) -> float:
        """Fraction of trials where a motion was falsely reported."""
        return self.false_positives / self.total if self.total else 0.0

    @property
    def fnr(self) -> float:
        """Fraction of trials where the motion went undetected."""
        return self.false_negatives / self.total if self.total else 0.0


def score_motion_trials(trials: Sequence["MotionTrial"]) -> DetectionCounts:  # noqa: F821
    """Aggregate motion trials into accuracy/FPR/FNR.

    A trial is a false negative when no stroke was reported at all, a false
    positive when a stroke was reported but misidentified (the paper's FPR:
    "falsely detected motions"), and correct when shape and direction both
    match.
    """
    total = len(trials)
    correct = sum(1 for t in trials if t.fully_correct)
    fn = sum(1 for t in trials if not t.detected)
    fp = sum(1 for t in trials if t.detected and not t.fully_correct)
    return DetectionCounts(total=total, correct=correct, false_positives=fp, false_negatives=fn)


def confusion_matrix(
    truths: Sequence[str], predictions: Sequence[Optional[str]]
) -> Tuple[List[str], np.ndarray]:
    """Label-indexed confusion matrix; None predictions become '∅'."""
    if len(truths) != len(predictions):
        raise ValueError("truths and predictions must align")
    preds = [p if p is not None else "∅" for p in predictions]
    labels = sorted(set(truths) | set(preds))
    index = {lab: i for i, lab in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(truths, preds):
        matrix[index[t], index[p]] += 1
    return labels, matrix


def per_label_accuracy(
    truths: Sequence[str], predictions: Sequence[Optional[str]]
) -> Dict[str, float]:
    """Per-class accuracy: fraction of each truth label predicted exactly."""
    totals: Dict[str, int] = {}
    hits: Dict[str, int] = {}
    for t, p in zip(truths, predictions):
        totals[t] = totals.get(t, 0) + 1
        if p == t:
            hits[t] = hits.get(t, 0) + 1
    return {t: hits.get(t, 0) / n for t, n in totals.items()}


# ----------------------------------------------------------------------
# Segmentation metrics (Fig. 22)
# ----------------------------------------------------------------------


def _overlap(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    return max(0.0, hi - lo)


@dataclass(frozen=True)
class SegmentationScore:
    """Insertion/underfill accounting for one or more sessions."""

    true_strokes: int
    detected_windows: int
    insertions: int   # windows living mostly inside adjustment intervals
    underfills: int   # true strokes whose detected coverage is incomplete
    misses: int       # true strokes with no overlapping window at all

    @property
    def insertion_rate(self) -> float:
        return self.insertions / self.detected_windows if self.detected_windows else 0.0

    @property
    def underfill_rate(self) -> float:
        return self.underfills / self.true_strokes if self.true_strokes else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.true_strokes if self.true_strokes else 0.0


def score_segmentation(
    windows: Sequence[SegmentedWindow],
    true_intervals: Sequence[Tuple[float, float]],
    coverage_threshold: float = 0.7,
    insertion_overlap: float = 0.5,
) -> SegmentationScore:
    """Score detected windows against ground-truth stroke intervals.

    * a window is an **insertion** when less than ``insertion_overlap`` of
      it overlaps any true stroke — it fired on the repositioning period;
    * a true stroke is **underfilled** when the union of windows covers
      less than ``coverage_threshold`` of it;
    * a true stroke with zero coverage is a **miss** (counted separately
      and also as underfill, matching the paper's definition of underfill
      as incomplete excavation).
    """
    insertions = 0
    for w in windows:
        covered = sum(_overlap((w.t0, w.t1), ti) for ti in true_intervals)
        if w.duration > 0 and covered / w.duration < insertion_overlap:
            insertions += 1

    underfills = 0
    misses = 0
    for ti in true_intervals:
        duration = ti[1] - ti[0]
        covered = sum(_overlap((w.t0, w.t1), ti) for w in windows)
        covered = min(covered, duration)
        if covered <= 0.0:
            misses += 1
            underfills += 1
        elif covered / duration < coverage_threshold:
            underfills += 1

    return SegmentationScore(
        true_strokes=len(true_intervals),
        detected_windows=len(windows),
        insertions=insertions,
        underfills=underfills,
        misses=misses,
    )


def merge_segmentation_scores(scores: Sequence[SegmentationScore]) -> SegmentationScore:
    """Pool segmentation counts across sessions."""
    return SegmentationScore(
        true_strokes=sum(s.true_strokes for s in scores),
        detected_windows=sum(s.detected_windows for s in scores),
        insertions=sum(s.insertions for s in scores),
        underfills=sum(s.underfills for s in scores),
        misses=sum(s.misses for s in scores),
    )


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative fractions) — the Fig. 21 presentation."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        return arr, arr
    fractions = np.arange(1, arr.size + 1) / arr.size
    return arr, fractions


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile of a non-empty value set."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty set")
    return float(np.percentile(arr, q))
