"""Scenario builder: a deployed pad + reader + environment in one object.

Centralises the deployment defaults of the paper's prototype (section IV-A
/ V-A) so every experiment varies only the knob it studies:

* 5x5 array, 6 cm tag spacing, Impinj AZ-E53-class tags (design B);
* reader antenna 32 cm behind the plane (NLOS) or overhead (LOS);
* 922.38 MHz, 30 dBm TX;
* one of the four office-location multipath presets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..physics.antenna import ReaderAntenna
from ..physics.coupling import TAG_DESIGN_B, TagAntennaProfile
from ..physics.geometry import GridLayout, Vec3, rotate_about_y
from ..physics.multipath import Environment, location_preset
from ..physics.noise import ReceiverNoise
from ..rfid.deployment import TagArray, WorkspaceLayout, deploy_array, deploy_tile
from ..rfid.reader import Reader, ReaderConfig


@dataclass(frozen=True)
class ScenarioConfig:
    """All deployment knobs, with the paper's defaults."""

    seed: int = 7
    rows: int = 5
    cols: int = 5
    tag_pitch: float = 0.06
    tag_design: TagAntennaProfile = TAG_DESIGN_B
    alternate_facing: bool = True
    mount: str = "nlos"                 # "nlos" (behind the board) or "los" (ceiling)
    reader_distance: float = 0.32       # antenna-to-plane distance, metres
    reader_angle_deg: float = 0.0       # tilt between antenna panel and tag plane
    tx_power_dbm: float = 30.0
    location: int = 2                   # multipath preset 1..4
    antenna_gain_dbi: float = 8.0
    #: Gen2 air-interface profile (None = dense-reader default).  Part of
    #: the scenario so calibration and sessions share the same sampling
    #: statistics — a profile switched mid-deployment would invalidate the
    #: auto-tuned segmentation threshold.
    link_profile: "object | None" = None

    def __post_init__(self) -> None:
        if self.mount not in ("nlos", "los"):
            raise ValueError(f"mount must be 'nlos' or 'los', got {self.mount!r}")
        if self.reader_distance <= 0.0:
            raise ValueError("reader distance must be positive")


@dataclass
class Scenario:
    """A fully built deployment ready to run sessions against."""

    config: ScenarioConfig
    layout: GridLayout
    array: TagArray
    antenna: ReaderAntenna
    environment: Environment
    rng: np.random.Generator

    def make_reader(
        self,
        noise: Optional[ReceiverNoise] = None,
        use_engine: Optional[bool] = None,
    ) -> Reader:
        reader_config = ReaderConfig(
            tx_power_dbm=self.config.tx_power_dbm,
            los_occlusion=(self.config.mount == "los"),
            link_profile=self.config.link_profile,
        )
        return Reader(
            self.antenna,
            self.array,
            reader_config,
            self.environment,
            noise if noise is not None else ReceiverNoise(),
            rng=self.rng,
            use_engine=use_engine,
        )


def _place_antenna(config: ScenarioConfig) -> ReaderAntenna:
    """The reader antenna's pose relative to a pad's own centre."""
    if config.mount == "nlos":
        # Behind the board, boresight through the plane towards the user.
        base_pos = Vec3(0.0, 0.0, -config.reader_distance)
        boresight = Vec3(0.0, 0.0, 1.0)
    else:
        # Ceiling mount: above and slightly in front, looking down at the pad.
        base_pos = Vec3(0.0, 0.3, 1.1)
        boresight = (Vec3(0.0, 0.0, 0.0) - base_pos).normalized()

    angle = math.radians(config.reader_angle_deg)
    if angle != 0.0:
        boresight = rotate_about_y(boresight, angle)

    return ReaderAntenna(
        position=base_pos, boresight=boresight, gain_dbi=config.antenna_gain_dbi
    )


def build_scenario(config: ScenarioConfig = ScenarioConfig()) -> Scenario:
    """Construct the deployment described by ``config`` (seeded)."""
    rng = np.random.default_rng(config.seed)
    layout = GridLayout(rows=config.rows, cols=config.cols, pitch=config.tag_pitch)
    array = deploy_array(
        rng, layout, design=config.tag_design, alternate_facing=config.alternate_facing
    )
    return Scenario(
        config=config,
        layout=layout,
        array=array,
        antenna=_place_antenna(config),
        environment=location_preset(config.location),
        rng=rng,
    )


def build_tile_scenario(
    config: ScenarioConfig,
    workspace: WorkspaceLayout,
    tile: int,
) -> Scenario:
    """Build one workspace tile's deployment, in the tile's local frame.

    Tile ``k`` is seeded ``config.seed + k`` so tiles carry independent
    manufacture diversity; tile 0 uses the base seed, which together with
    the local-frame antenna placement makes the 1x1 workspace's tile a
    bit-identical twin of ``build_scenario(config)`` (the only difference
    is the tags' global EPC/index rewrite, the identity for 1x1).
    """
    if (config.rows, config.cols) != (workspace.rows, workspace.cols) or \
            config.tag_pitch != workspace.pitch:
        raise ValueError("scenario grid must match the workspace tile grid")
    rng = np.random.default_rng(config.seed + tile)
    array = deploy_tile(
        rng, workspace, tile,
        design=config.tag_design, alternate_facing=config.alternate_facing,
    )
    return Scenario(
        config=config,
        layout=workspace.tile_layout(),
        array=array,
        antenna=_place_antenna(config),
        environment=location_preset(config.location),
        rng=rng,
    )
