"""Experiment orchestration: scenario construction, session running, and
evaluation metrics.
"""

from .metrics import (
    DetectionCounts,
    SegmentationScore,
    confusion_matrix,
    empirical_cdf,
    merge_segmentation_scores,
    per_label_accuracy,
    percentile,
    score_motion_trials,
    score_segmentation,
)
from .live import LiveDriver, iter_chunks, stream_log
from .runner import LetterTrial, MotionTrial, SessionRunner
from .scenario import Scenario, ScenarioConfig, build_scenario

__all__ = [
    "DetectionCounts",
    "LetterTrial",
    "LiveDriver",
    "MotionTrial",
    "Scenario",
    "ScenarioConfig",
    "SegmentationScore",
    "SessionRunner",
    "build_scenario",
    "confusion_matrix",
    "empirical_cdf",
    "iter_chunks",
    "merge_segmentation_scores",
    "per_label_accuracy",
    "percentile",
    "score_motion_trials",
    "score_segmentation",
    "stream_log",
]
