"""Process-pool battery runner: fan trials out across worker processes.

The paper-scale evaluation repeats hundreds of independent sessions per
deployment; each trial only shares the (read-only) deployment with its
siblings, so the battery is embarrassingly parallel.  The one thing a
naive fan-out breaks is determinism: the serial battery threads a single
RNG through every trial, so trial N's draws depend on trials 0..N-1.

The parallel path therefore gives every trial its *own* deterministic
stream, derived from the scenario seed and the trial's position in the
battery (``SeedSequence(entropy=seed, spawn_key=(trial_index,))``).  The
assignment of trials to workers — and the worker count itself — cannot
change any draw, so ``workers=1`` and ``workers=8`` produce bit-identical
batteries.  Results are collected with ``Executor.map``, which preserves
submission order.

Parallel batteries are **off by default** (``workers=0`` means the legacy
serial shared-RNG loop, byte-for-byte compatible with the pre-parallel
code).  Opt in per call (``workers=N``), per process (``REPRO_WORKERS``),
or per experiment run (:func:`workers_override`, wired to the CLI's
``--workers`` flag).

Caveats: each worker pays one deployment build + static calibration at
startup.

**Telemetry relay.**  When the parent's tracer or metrics registry is
enabled at pool-build time, each worker enables its own registries and
ships a per-trial delta :class:`~repro.obs.telemetry.TelemetrySnapshot`
(spans + counter/gauge deltas + mergeable histograms) back alongside the
trial result; the parent folds every snapshot into its own registries in
submission order.  Worker-side *calibration* telemetry is discarded (each
worker calibrates once, so it would scale with the worker count), which
makes the merged counter totals worker-count invariant: ``workers=1`` and
``workers=8`` report bit-identical totals in ``repro stats``.  Relayed
spans carry ``attrs["relayed"] = True`` and keep their worker-local
``start_s`` (only durations are cross-process comparable).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..motion.strokes import Motion
    from ..motion.user import UserProfile
    from .runner import LetterTrial, MotionTrial, SessionRunner

#: Environment knob: default worker count when no explicit value is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Per-process override installed by :func:`workers_override` (CLI --workers).
_override: Optional[int] = None


def resolve_workers(explicit: Optional[int] = None) -> int:
    """Resolve the worker count: explicit > override > env > 0 (serial)."""
    if explicit is not None:
        return int(explicit)
    if _override is not None:
        return _override
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            return int(env)
        except ValueError:
            raise ValueError(f"{WORKERS_ENV} must be an integer, got {env!r}")
    return 0


@contextmanager
def workers_override(workers: Optional[int]) -> Iterator[None]:
    """Temporarily set the process-wide default worker count (None = no-op)."""
    global _override
    if workers is None:
        yield
        return
    prev = _override
    _override = int(workers)
    try:
        yield
    finally:
        _override = prev


def trial_rng(seed: int, trial_index: int) -> np.random.Generator:
    """The independent RNG stream for trial ``trial_index`` of a battery.

    Derived with ``SeedSequence`` spawn keys, so streams are statistically
    independent across trials and deterministic in (seed, index) alone —
    a trial's draws do not depend on the worker that runs it, on the
    worker count, or on any other trial.
    """
    ss = np.random.SeedSequence(entropy=seed % 2**63, spawn_key=(trial_index,))
    return np.random.default_rng(ss)


# ----------------------------------------------------------------------
# Worker-side machinery.  Each worker builds its deployment once (module
# global), then every task reseeds it with the trial's own stream.

_worker_runner: "SessionRunner | None" = None
_worker_telemetry: bool = False


def _init_worker(
    scenario_config, pipeline_config, calibration_duration, telemetry
) -> None:
    global _worker_runner, _worker_telemetry
    from ..obs.metrics import get_metrics
    from ..obs.telemetry import capture_snapshot
    from ..obs.trace import get_tracer
    from .runner import SessionRunner
    from .scenario import build_scenario

    trace_on, metrics_on = telemetry
    _worker_telemetry = bool(trace_on or metrics_on)
    if trace_on:
        get_tracer().enable()
    else:
        get_tracer().disable()
    if metrics_on:
        get_metrics().enable()
    else:
        get_metrics().disable()
    _worker_runner = SessionRunner(
        build_scenario(scenario_config),
        pipeline_config=pipeline_config,
        calibration_duration=calibration_duration,
    )
    if _worker_telemetry:
        # Discard init-time telemetry (per-worker calibration, plus any
        # state a fork start method copied from the parent) so every
        # shipped snapshot is exactly one trial's delta and merged totals
        # do not depend on the worker count.
        capture_snapshot(reset=True)


def _task_snapshot():
    if not _worker_telemetry:
        return None
    from ..obs.telemetry import capture_snapshot

    return capture_snapshot(reset=True)


def _motion_task(task: "Tuple[int, Motion, UserProfile, Optional[float]]"):
    index, motion, user, speed = task
    runner = _worker_runner
    runner.reseed(trial_rng(runner.scenario.config.seed, index))
    trial = runner.run_motion(motion, user=user, speed=speed)
    return trial, _task_snapshot()


def _letter_task(task: "Tuple[int, str, UserProfile]"):
    index, letter, user = task
    runner = _worker_runner
    runner.reseed(trial_rng(runner.scenario.config.seed, index))
    trial = runner.run_letter(letter, user=user)
    return trial, _task_snapshot()


def _run_pool(runner: "SessionRunner", workers: int, task_fn, tasks: list) -> list:
    from ..obs.metrics import get_metrics
    from ..obs.telemetry import merge_snapshot
    from ..obs.trace import get_tracer

    tracer, metrics = get_tracer(), get_metrics()
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(
            runner.scenario.config,
            runner._pipeline_config,
            runner._calibration_duration,
            (tracer.enabled, metrics.enabled),
        ),
    ) as pool:
        # Executor.map yields results in submission order regardless of
        # which worker finishes first — both the trial list and the
        # telemetry merge below are deterministic.
        results = list(pool.map(task_fn, tasks))
    trials = []
    relayed = 0
    for trial, snapshot in results:
        trials.append(trial)
        if snapshot is not None and not snapshot.is_empty:
            merge_snapshot(
                snapshot, tracer=tracer, metrics=metrics,
                span_attrs={"relayed": True},
            )
            relayed += 1
    if metrics.enabled and relayed:
        metrics.inc("parallel.snapshots_merged", float(relayed))
    return trials


def run_motion_battery_parallel(
    runner: "SessionRunner",
    motions: "Sequence[Motion]",
    repeats: int,
    user: "UserProfile",
    workers: int,
) -> "List[MotionTrial]":
    """Run a motion battery on a process pool (see module docstring)."""
    ordered = [m for m in motions for _ in range(repeats)]
    tasks = [(i, m, user, None) for i, m in enumerate(ordered)]
    return _run_pool(runner, workers, _motion_task, tasks)


def run_letter_battery_parallel(
    runner: "SessionRunner",
    letters: Sequence[str],
    repeats: int,
    user: "UserProfile",
    workers: int,
) -> "List[LetterTrial]":
    """Run a letter battery on a process pool (see module docstring)."""
    ordered = [letter for letter in letters for _ in range(repeats)]
    tasks = [(i, letter, user) for i, letter in enumerate(ordered)]
    return _run_pool(runner, workers, _letter_task, tasks)
