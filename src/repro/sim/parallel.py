"""Process-pool battery runner: fan trials out across worker processes.

The paper-scale evaluation repeats hundreds of independent sessions per
deployment; each trial only shares the (read-only) deployment with its
siblings, so the battery is embarrassingly parallel.  The one thing a
naive fan-out breaks is determinism: the serial battery threads a single
RNG through every trial, so trial N's draws depend on trials 0..N-1.

The parallel path therefore gives every trial its *own* deterministic
stream, derived from the scenario seed and the trial's position in the
battery (``SeedSequence(entropy=seed, spawn_key=(trial_index,))``).  The
assignment of trials to workers — and the worker count itself — cannot
change any draw, so ``workers=1`` and ``workers=8`` produce bit-identical
batteries.  Chunk results are collected in submission order.

Parallel batteries are **off by default** (``workers=0`` means the legacy
serial shared-RNG loop, byte-for-byte compatible with the pre-parallel
code).  Opt in per call (``workers=N``), per process (``REPRO_WORKERS``),
or per experiment run (:func:`workers_override`, wired to the CLI's
``--workers`` flag).

**Warmed persistent workers.**  Pools are cached per (scenario config,
pipeline config, calibration, telemetry flags) and reused across
batteries, so the per-worker deployment build + static calibration is
paid once per process lifetime instead of once per battery.  Call
:func:`shutdown_pools` to tear them down explicitly (an ``atexit`` hook
does it on interpreter exit).

**Trial-axis chunking.**  Tasks are split into at most
``min(workers, os.cpu_count())`` contiguous chunks (override with
``REPRO_PARALLEL_CHUNKS``), and each worker advances its whole chunk in
*lockstep* through :meth:`SessionRunner.run_motion_batch` — one numpy
evaluation per round for all of the chunk's trials.  Chunking is pure
scheduling: per-trial RNG streams make the merged battery bit-identical
for any chunk/worker layout.

**Fault containment.**  Each chunk future is awaited with a per-trial
timeout (``REPRO_TRIAL_TIMEOUT_S`` seconds per trial, default 120).  A
worker crash (``BrokenProcessPool``) or hang (timeout) evicts the pool,
cancels what has not started, and re-executes every lost trial serially
on the parent runner — same seeds, so the recovered battery is
bit-identical to an undisturbed run.  ``REPRO_PARALLEL_FAULT``
(``crash:<trial>`` / ``hang:<trial>[:secs]``) injects such faults for
the tests.

**Telemetry relay.**  When the parent's tracer or metrics registry is
enabled at pool-build time, each worker enables its own registries and
ships one delta :class:`~repro.obs.telemetry.TelemetrySnapshot` per
*trial* (captured via the batch runner's ``on_trial`` hook, so reused
workers never accumulate cross-trial state); the parent folds snapshots
in submission order.  Worker-side *calibration* telemetry is discarded
once at init, which keeps merged counter totals worker-count invariant.
Relayed spans carry ``attrs["relayed"] = True``.

**Log transport.**  ``collect_logs=True`` ships each chunk's ReportLogs
back through one shared-memory columnar block (:mod:`repro.sim.shm`)
instead of pickling per-trial report rows.
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..motion.strokes import Motion
    from ..motion.user import UserProfile
    from .runner import LetterTrial, MotionTrial, SessionRunner

#: Environment knob: default worker count when no explicit value is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment knob: force the number of lockstep chunks per battery
#: (scheduling only — results are chunk-layout invariant).
CHUNKS_ENV = "REPRO_PARALLEL_CHUNKS"

#: Environment knob: per-trial timeout budget, seconds (default 120).
TRIAL_TIMEOUT_ENV = "REPRO_TRIAL_TIMEOUT_S"

#: Environment knob: worker fault injection for the recovery tests.
#: ``crash:<trial_index>`` exits the worker holding that trial;
#: ``hang:<trial_index>[:secs]`` sleeps it (default 600 s).
FAULT_ENV = "REPRO_PARALLEL_FAULT"

_DEFAULT_TRIAL_TIMEOUT_S = 120.0

#: Per-process override installed by :func:`workers_override` (CLI --workers).
_override: Optional[int] = None


def resolve_workers(explicit: Optional[int] = None) -> int:
    """Resolve the worker count: explicit > override > env > 0 (serial)."""
    if explicit is not None:
        return int(explicit)
    if _override is not None:
        return _override
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            return int(env)
        except ValueError:
            raise ValueError(f"{WORKERS_ENV} must be an integer, got {env!r}")
    return 0


@contextmanager
def workers_override(workers: Optional[int]) -> Iterator[None]:
    """Temporarily set the process-wide default worker count (None = no-op)."""
    global _override
    if workers is None:
        yield
        return
    prev = _override
    _override = int(workers)
    try:
        yield
    finally:
        _override = prev


def trial_rng(seed: int, trial_index: int) -> np.random.Generator:
    """The independent RNG stream for trial ``trial_index`` of a battery.

    Derived with ``SeedSequence`` spawn keys, so streams are statistically
    independent across trials and deterministic in (seed, index) alone —
    a trial's draws do not depend on the worker that runs it, on the
    worker count, or on any other trial.
    """
    ss = np.random.SeedSequence(entropy=seed % 2**63, spawn_key=(trial_index,))
    return np.random.default_rng(ss)


# ----------------------------------------------------------------------
# Worker-side machinery.  Each worker builds its deployment once (module
# global), then every task reseeds it with the trial's own stream.

_worker_runner: "SessionRunner | None" = None
_worker_telemetry: bool = False


def _init_worker(
    scenario_config, pipeline_config, calibration_duration, telemetry
) -> None:
    global _worker_runner, _worker_telemetry
    from ..obs.metrics import get_metrics
    from ..obs.telemetry import capture_snapshot
    from ..obs.trace import get_tracer
    from .runner import SessionRunner
    from .scenario import build_scenario

    trace_on, metrics_on = telemetry
    _worker_telemetry = bool(trace_on or metrics_on)
    if trace_on:
        get_tracer().enable()
    else:
        get_tracer().disable()
    if metrics_on:
        get_metrics().enable()
    else:
        get_metrics().disable()
    _worker_runner = SessionRunner(
        build_scenario(scenario_config),
        pipeline_config=pipeline_config,
        calibration_duration=calibration_duration,
    )
    if _worker_telemetry:
        # Discard init-time telemetry (per-worker calibration, plus any
        # state a fork start method copied from the parent) so every
        # shipped snapshot is exactly one trial's delta and merged totals
        # do not depend on the worker count.
        capture_snapshot(reset=True)


def _task_snapshot():
    if not _worker_telemetry:
        return None
    from ..obs.telemetry import capture_snapshot

    return capture_snapshot(reset=True)


def _maybe_inject_fault(indices: Sequence[int]) -> None:
    """Honour ``REPRO_PARALLEL_FAULT`` when this chunk holds the target."""
    spec = os.environ.get(FAULT_ENV, "")
    if not spec:
        return
    parts = spec.split(":")
    try:
        target = int(parts[1])
    except (IndexError, ValueError):
        return
    if target not in indices:
        return
    if parts[0] == "crash":
        os._exit(1)
    elif parts[0] == "hang":
        time.sleep(float(parts[2]) if len(parts) > 2 else 600.0)


def _motion_chunk_task(args):
    """Run one contiguous chunk of motion trials in lockstep."""
    chunk, collect_logs = args
    _maybe_inject_fault([t[0] for t in chunk])
    runner = _worker_runner
    seed = runner.scenario.config.seed
    items = [
        (motion, user, speed, trial_rng(seed, index))
        for index, motion, user, speed in chunk
    ]
    pairs = []
    runner.run_motion_batch(
        items,
        on_trial=lambda trial: pairs.append((trial, _task_snapshot())),
        keep_logs=collect_logs,
    )
    return _strip_logs(pairs, collect_logs)


def _letter_chunk_task(args):
    """Run one contiguous chunk of letter trials in lockstep."""
    chunk, collect_logs = args
    _maybe_inject_fault([t[0] for t in chunk])
    runner = _worker_runner
    seed = runner.scenario.config.seed
    items = [
        (letter, user, trial_rng(seed, index)) for index, letter, user in chunk
    ]
    pairs = []
    runner.run_letter_batch(
        items,
        on_trial=lambda trial: pairs.append((trial, _task_snapshot())),
        keep_logs=collect_logs,
    )
    return _strip_logs(pairs, collect_logs)


def _strip_logs(pairs, collect_logs):
    """Detach trial logs into a shared-memory payload for the return trip."""
    if not collect_logs:
        return pairs, None
    from .shm import pack_logs

    logs = [trial.log for trial, _ in pairs]
    for trial, _ in pairs:
        trial.log = None
    return pairs, pack_logs(logs)


def _motion_fallback(runner: "SessionRunner", task, collect_logs: bool):
    index, motion, user, speed = task
    runner.reseed(trial_rng(runner.scenario.config.seed, index))
    return runner.run_motion(motion, user=user, speed=speed, keep_log=collect_logs)


def _letter_fallback(runner: "SessionRunner", task, collect_logs: bool):
    index, letter, user = task
    runner.reseed(trial_rng(runner.scenario.config.seed, index))
    return runner.run_letter(letter, user=user, keep_log=collect_logs)


# ----------------------------------------------------------------------
# Parent-side pool cache and scheduling.

_pools: "dict[tuple, ProcessPoolExecutor]" = {}


def _pool_key(runner: "SessionRunner", flags: Tuple[bool, bool]) -> tuple:
    return (
        repr(runner.scenario.config),
        repr(runner._pipeline_config),
        runner._calibration_duration,
        flags,
    )


def _get_pool(runner: "SessionRunner", flags: Tuple[bool, bool]) -> ProcessPoolExecutor:
    key = _pool_key(runner, flags)
    pool = _pools.get(key)
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=max(1, os.cpu_count() or 1),
            initializer=_init_worker,
            initargs=(
                runner.scenario.config,
                runner._pipeline_config,
                runner._calibration_duration,
                flags,
            ),
        )
        _pools[key] = pool
    return pool


def _discard_pool(pool: ProcessPoolExecutor) -> None:
    """Evict a broken/hung pool; best-effort terminate its workers."""
    for key, cached in list(_pools.items()):
        if cached is pool:
            del _pools[key]
    pool.shutdown(wait=False, cancel_futures=True)
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already-dead workers
            pass


def shutdown_pools() -> None:
    """Tear down every cached worker pool (tests; interpreter exit)."""
    for pool in list(_pools.values()):
        pool.shutdown(wait=False, cancel_futures=True)
    _pools.clear()


atexit.register(shutdown_pools)


def _chunk_count(workers: int, n_tasks: int) -> int:
    env = os.environ.get(CHUNKS_ENV, "").strip()
    if env:
        try:
            chunks = int(env)
        except ValueError:
            raise ValueError(f"{CHUNKS_ENV} must be an integer, got {env!r}")
    else:
        # More chunks than cores just shrinks the lockstep width for no
        # concurrency gain, so cap at the physical parallelism.
        chunks = min(workers, os.cpu_count() or 1)
    return max(1, min(chunks, n_tasks))


def _split_chunks(tasks: list, n_chunks: int) -> "List[list]":
    base, extra = divmod(len(tasks), n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        if size:
            chunks.append(tasks[start : start + size])
        start += size
    return chunks


def _trial_timeout_s() -> float:
    env = os.environ.get(TRIAL_TIMEOUT_ENV, "").strip()
    if env:
        try:
            return float(env)
        except ValueError:
            raise ValueError(f"{TRIAL_TIMEOUT_ENV} must be a number, got {env!r}")
    return _DEFAULT_TRIAL_TIMEOUT_S


def _run_pool(
    runner: "SessionRunner",
    workers: int,
    chunk_fn,
    tasks: list,
    fallback_fn,
    collect_logs: bool,
) -> list:
    from ..obs.metrics import get_metrics
    from ..obs.telemetry import merge_snapshot
    from ..obs.trace import get_tracer
    from .shm import unpack_logs

    tracer, metrics = get_tracer(), get_metrics()
    pool = _get_pool(runner, (tracer.enabled, metrics.enabled))
    chunks = _split_chunks(tasks, _chunk_count(workers, len(tasks)))
    timeout = _trial_timeout_s()
    futures = [pool.submit(chunk_fn, (chunk, collect_logs)) for chunk in chunks]

    slots: "List[Optional[tuple]]" = [None] * len(chunks)
    lost: "List[int]" = []
    evicted = False
    for ci, fut in enumerate(futures):
        try:
            slots[ci] = fut.result(timeout=timeout * len(chunks[ci]))
        except (Exception, CancelledError):
            # Crash (BrokenProcessPool), hang (TimeoutError), or a chunk
            # cancelled by a previous eviction: drop the pool once, then
            # re-execute every lost trial serially on the parent runner —
            # same per-trial seeds, so the merged battery is unchanged.
            lost.append(ci)
            if not evicted:
                evicted = True
                _discard_pool(pool)

    recovered = 0
    for ci in lost:
        slots[ci] = (
            [
                (fallback_fn(runner, task, collect_logs), None)
                for task in chunks[ci]
            ],
            None,
        )
        recovered += len(chunks[ci])

    trials = []
    relayed = 0
    for pairs, logs_payload in slots:
        logs = (
            unpack_logs(*logs_payload) if logs_payload is not None else None
        )
        for j, (trial, snapshot) in enumerate(pairs):
            if logs is not None:
                trial.log = logs[j]
            trials.append(trial)
            if snapshot is not None and not snapshot.is_empty:
                merge_snapshot(
                    snapshot, tracer=tracer, metrics=metrics,
                    span_attrs={"relayed": True},
                )
                relayed += 1
    if metrics.enabled:
        if relayed:
            metrics.inc("parallel.snapshots_merged", float(relayed))
        if recovered:
            metrics.inc("parallel.trials_recovered", float(recovered))
    return trials


def run_motion_battery_parallel(
    runner: "SessionRunner",
    motions: "Sequence[Motion]",
    repeats: int,
    user: "UserProfile",
    workers: int,
    collect_logs: bool = False,
) -> "List[MotionTrial]":
    """Run a motion battery on the persistent pool (see module docstring)."""
    ordered = [m for m in motions for _ in range(repeats)]
    tasks = [(i, m, user, None) for i, m in enumerate(ordered)]
    return _run_pool(
        runner, workers, _motion_chunk_task, tasks, _motion_fallback, collect_logs
    )


def run_letter_battery_parallel(
    runner: "SessionRunner",
    letters: Sequence[str],
    repeats: int,
    user: "UserProfile",
    workers: int,
    collect_logs: bool = False,
) -> "List[LetterTrial]":
    """Run a letter battery on the persistent pool (see module docstring)."""
    ordered = [letter for letter in letters for _ in range(repeats)]
    tasks = [(i, letter, user) for i, letter in enumerate(ordered)]
    return _run_pool(
        runner, workers, _letter_chunk_task, tasks, _letter_fallback, collect_logs
    )
