"""Shared-memory columnar transport for worker-produced ReportLogs.

A trial's :class:`~repro.rfid.reports.ReportLog` is columnar already —
five numeric columns plus a per-tag EPC string column — so shipping logs
from a worker back to the parent does not need pickle's per-row object
walk.  :func:`pack_logs` lays every numeric column of every log in a
chunk end-to-end inside **one** ``multiprocessing.shared_memory`` block;
the pickled payload is just the block name plus a small metadata dict
(row counts, antenna ports, and the ``tag_index -> epc`` maps needed to
reconstruct the string column).  :func:`unpack_logs` copies the columns
out in the parent and unlinks the block.

The EPC column never crosses the process boundary as strings-per-row:
EPCs are a static property of the deployment, so a per-log
``{tag_index: epc}`` dict (a few dozen short strings) regenerates the
column exactly.

When ``shared_memory`` is unavailable or the segment cannot be created,
:func:`pack_logs` degrades to carrying the logs in the pickled payload
itself — same result, just slower for large batteries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..rfid.reports import ReportLog

try:  # pragma: no cover - stdlib, but gate for exotic platforms
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

#: Numeric columns shipped per log, in layout order.  ``tag`` rides as
#: float64 (tag indices are tiny, so the round-trip is lossless).
_N_COLS = 5


def epc_map_of(tag: np.ndarray, epc: np.ndarray) -> Dict[int, str]:
    """First-seen ``tag_index -> epc`` map for a column pair.

    EPCs are a static property of the deployment, so this small dict is
    all any transport needs to regenerate the per-row EPC string column
    exactly.  Shared by the shared-memory transport below and the socket
    framing codec (:mod:`repro.serve.framing`).
    """
    out: Dict[int, str] = {}
    for t, e in zip(tag.tolist(), epc.tolist()):
        if t not in out:
            out[t] = e
    return out


def pack_logs(logs: Sequence[Optional[ReportLog]]) -> Tuple[str, object]:
    """Pack a chunk's logs for transport; returns ``(kind, payload)``.

    ``kind`` is ``"shm"`` (payload: metadata dict referencing a shared
    memory block the *receiver* must unlink) or ``"pickle"`` (payload:
    the logs themselves; nothing else to clean up).
    """
    if shared_memory is None:
        return "pickle", list(logs)
    metas = []
    columns: List[Tuple[np.ndarray, ...]] = []
    total = 0
    for log in logs:
        if log is None:
            metas.append(None)
            columns.append(None)
            continue
        ts, tag, phase, rss, dopp, port, epc = log.columns()
        epc_map = epc_map_of(tag, epc)
        metas.append(
            {
                "rows": int(ts.size),
                "port": int(port[0]) if port.size else 1,
                "epc_map": epc_map,
            }
        )
        columns.append((ts, tag, phase, rss, dopp))
        total += int(ts.size)
    try:
        block = shared_memory.SharedMemory(
            create=True, size=max(8, total * 8 * _N_COLS)
        )
    except OSError:
        return "pickle", list(logs)
    try:
        # Ownership moves with the payload: the receiver unlinks in
        # unpack_logs.  Unregister here so the fork-shared resource
        # tracker does not report the cross-process unlink as a leak
        # (CPython gh-82300: attach/create both register per process).
        from multiprocessing import resource_tracker

        resource_tracker.unregister(block._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API is semi-private
        pass
    buf = np.ndarray((_N_COLS, total), dtype=np.float64, buffer=block.buf)
    offset = 0
    for cols in columns:
        if cols is None:
            continue
        ts, tag, phase, rss, dopp = cols
        n = ts.size
        buf[0, offset : offset + n] = ts
        buf[1, offset : offset + n] = tag
        buf[2, offset : offset + n] = phase
        buf[3, offset : offset + n] = rss
        buf[4, offset : offset + n] = dopp
        offset += n
    payload = {"name": block.name, "total": total, "metas": metas}
    del buf
    block.close()
    return "shm", payload


def unpack_logs(kind: str, payload: object) -> List[Optional[ReportLog]]:
    """Reverse :func:`pack_logs` in the parent; unlinks the shm block."""
    if kind == "pickle":
        return list(payload)
    assert kind == "shm" and shared_memory is not None
    meta = payload
    block = shared_memory.SharedMemory(name=meta["name"])
    try:
        buf = np.ndarray(
            (_N_COLS, meta["total"]), dtype=np.float64, buffer=block.buf
        )
        logs: List[Optional[ReportLog]] = []
        offset = 0
        for entry in meta["metas"]:
            if entry is None:
                logs.append(None)
                continue
            n = entry["rows"]
            ts = np.array(buf[0, offset : offset + n])
            tag = buf[1, offset : offset + n].astype(np.int64)
            phase = np.array(buf[2, offset : offset + n])
            rss = np.array(buf[3, offset : offset + n])
            dopp = np.array(buf[4, offset : offset + n])
            offset += n
            epc_map = entry["epc_map"]
            log = ReportLog()
            log.extend_columns(
                ts,
                tag,
                phase,
                rss,
                dopp,
                [epc_map[t] for t in tag.tolist()],
                antenna_port=entry["port"],
            )
            logs.append(log)
        del buf
    finally:
        block.close()
        try:
            block.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass
    return logs
