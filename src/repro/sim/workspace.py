"""Tiled workspaces: several pad tiles behind one duty-cycled reader.

The paper's cost argument (section I) scales spatially as well as per
tenant: one commodity reader can cover a desk- or wall-sized writing
surface by multiplexing antenna ports over a grid of pad *tiles*.  A
:class:`Workspace` owns the tiled deployment — per-tile scenarios built
in each tile's local frame (so every tile's channel engine and
``static_base`` precompute is bit-identical to a solo pad's) plus one
:class:`~repro.rfid.multiplex.MultiplexedReader` whose dwell scheduler
round-robins the ports — and exposes merged, workspace-level report logs
that the unchanged single-pad pipeline consumes against the *combined*
layout.

Frames and identity (DESIGN.md §15):

* Scripts and trajectories live in the **workspace frame** (the combined
  grid centred on the origin).  Each tile sees the scene through a
  translated view (:class:`_TileScript`) that subtracts the tile origin,
  so the tile's physics runs in its own local frame.
* Tags carry **global** indices/EPCs (``deploy_tile``), so per-tile logs
  merge into a workspace log with no remapping, and trough → trajectory
  reconstruction against the combined layout lands in workspace
  coordinates automatically.
* The 1x1 workspace is **bit-identical** to the solo path: tile 0 keeps
  the base seed and a zero origin (the script object is used directly,
  not wrapped), and the single-port dwell plan is one contiguous slice,
  preserving the solo reader's inventory-round/RNG boundaries exactly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..physics.geometry import GridLayout, Vec3
from ..physics.hand import PoseTrack
from ..physics.noise import ReceiverNoise
from ..rfid.deployment import WorkspaceLayout
from ..rfid.multiplex import MultiplexedReader, ReaderPort
from ..rfid.reader import HandPoseFn, ReaderConfig
from ..rfid.reports import ReportLog, merge_logs
from .scenario import Scenario, ScenarioConfig, build_tile_scenario


@dataclass(frozen=True)
class WorkspaceConfig:
    """A tiled deployment: per-tile knobs plus the tile arrangement."""

    base: ScenarioConfig = ScenarioConfig()
    tiles_x: int = 1
    tiles_y: int = 1
    #: Antenna-port dwell.  Deliberately short (50 ms, versus the 250 ms
    #: commodity default) so every 100 ms segmentation frame mixes reads
    #: from all tiles — the stitching layer then sees a continuous
    #: workspace stream rather than tile-length bursts.
    dwell_s: float = 0.05

    def layout(self) -> WorkspaceLayout:
        return WorkspaceLayout(
            tiles_x=self.tiles_x,
            tiles_y=self.tiles_y,
            rows=self.base.rows,
            cols=self.base.cols,
            pitch=self.base.tag_pitch,
        )


class _TileScript:
    """A writing script seen from one tile's local frame.

    Wraps the workspace-frame script, subtracting the tile origin from
    every pose.  Exposes the same ``hand_pose_at`` / ``pose_at_many``
    surface, so the reader's vectorized pose-clock auto-detection (bound
    method → owner → ``pose_at_many``) keeps engaging.
    """

    def __init__(self, script, origin: Vec3) -> None:
        self._script = script
        self._origin = np.array([origin.x, origin.y, origin.z])
        if getattr(script, "pose_at_many", None) is None:
            # Shadow the class method so the reader's getattr probe sees
            # no vectorized clock and falls back to the scalar path.
            self.pose_at_many = None  # type: ignore[assignment]

    @property
    def duration(self) -> float:
        return self._script.duration

    def hand_pose_at(self, t: float):
        pose = self._script.hand_pose_at(t)
        if pose is None:
            return None
        p = pose.position
        return dataclasses.replace(
            pose,
            position=Vec3(
                p.x - self._origin[0],
                p.y - self._origin[1],
                p.z - self._origin[2],
            ),
        )

    def pose_at_many(self, times: np.ndarray) -> PoseTrack:
        track = self._script.pose_at_many(times)
        return PoseTrack(
            times=track.times,
            present=track.present,
            xyz=track.xyz - self._origin,
            templates=track.templates,
            template_idx=track.template_idx,
        )


class Workspace:
    """A built tiled deployment ready to run sessions against."""

    def __init__(
        self,
        config: WorkspaceConfig,
        tiles: Sequence[Scenario],
        layout: WorkspaceLayout,
        noise: Optional[ReceiverNoise] = None,
    ) -> None:
        if len(tiles) != layout.tile_count:
            raise ValueError(
                f"workspace needs {layout.tile_count} tile scenarios, "
                f"got {len(tiles)}"
            )
        self.config = config
        self.layout = layout
        self.tiles = list(tiles)
        self.origins = [layout.tile_origin(k) for k in range(layout.tile_count)]
        base = config.base
        self.mux = MultiplexedReader(
            [ReaderPort(sc.antenna, sc.array, sc.environment) for sc in tiles],
            ReaderConfig(
                tx_power_dbm=base.tx_power_dbm,
                los_occlusion=(base.mount == "los"),
                link_profile=base.link_profile,
            ),
            noise if noise is not None else ReceiverNoise(),
            rng=tiles[0].rng,
            dwell_s=config.dwell_s,
            rngs=[sc.rng for sc in tiles],
        )

    @property
    def tile_count(self) -> int:
        return self.layout.tile_count

    @property
    def combined_layout(self) -> GridLayout:
        return self.layout.combined_layout()

    @property
    def rng(self) -> np.random.Generator:
        """Session RNG: tile 0's stream, shared with its reader — the
        same script/reader coupling ``SessionRunner`` has for one pad."""
        return self.tiles[0].rng

    def tile_views(self, script) -> List[Optional[HandPoseFn]]:
        """Per-port pose callbacks for a workspace-frame script.

        Zero-origin tiles get the script's own bound method (exact
        bit-identity for the 1x1 case); other tiles get a translated
        view.
        """
        fns: List[Optional[HandPoseFn]] = []
        for origin in self.origins:
            if origin.x == 0.0 and origin.y == 0.0 and origin.z == 0.0:
                fns.append(script.hand_pose_at)
            else:
                fns.append(_TileScript(script, origin).hand_pose_at)
        return fns

    def collect_tiles(
        self, duration: float, script=None
    ) -> List[ReportLog]:
        """Duty-cycled collect; one log per tile on the shared clock."""
        if script is None:
            return self.mux.collect_static(duration)
        return self.mux.collect(duration, self.tile_views(script))

    def collect(self, duration: float, script=None) -> ReportLog:
        """Duty-cycled collect, merged into one workspace-level log."""
        return merge_logs(self.collect_tiles(duration, script))

    def collect_static(self, duration: float) -> ReportLog:
        return self.collect(duration)

    def collect_script(self, script) -> ReportLog:
        return self.collect(script.duration, script)


def build_workspace(config: WorkspaceConfig = WorkspaceConfig()) -> Workspace:
    """Construct the tiled deployment described by ``config`` (seeded)."""
    layout = config.layout()
    tiles = [
        build_tile_scenario(config.base, layout, k)
        for k in range(layout.tile_count)
    ]
    return Workspace(config, tiles, layout)
