"""Session runner: drive the reader over writing scripts and score results.

The runner owns the experiment loop the paper's evaluation repeats
hundreds of times: calibrate once per deployment, then for each trial
generate a script, run inventory over it, and feed the log to the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.events import LetterResult, StrokeObservation
from ..core.pipeline import RFIPad, RFIPadConfig
from ..motion.letters import LETTER_STROKES
from ..motion.script import WritingScript, script_for_letter, script_for_motion
from ..motion.strokes import Motion
from ..motion.user import DEFAULT_USER, UserProfile
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..rfid.reader import Reader
from ..rfid.reports import ReportLog
from .scenario import Scenario, ScenarioConfig, build_scenario


@dataclass
class MotionTrial:
    """Outcome of one single-motion session."""

    truth: Motion
    observed: Optional[StrokeObservation]
    log_size: int

    @property
    def shape_correct(self) -> bool:
        return self.observed is not None and self.observed.kind is self.truth.kind

    @property
    def direction_correct(self) -> bool:
        if self.observed is None:
            return False
        from ..motion.strokes import StrokeKind

        if self.truth.kind is StrokeKind.CLICK:
            return True  # clicks have no direction
        return self.observed.direction is self.truth.direction

    @property
    def fully_correct(self) -> bool:
        return self.shape_correct and self.direction_correct

    @property
    def detected(self) -> bool:
        return self.observed is not None


@dataclass
class LetterTrial:
    """Outcome of one letter-writing session."""

    truth: str
    result: LetterResult
    true_stroke_intervals: List[Tuple[float, float]]
    true_stroke_tokens: Tuple[str, ...]

    @property
    def correct(self) -> bool:
        return self.result.letter == self.truth


class SessionRunner:
    """Binds a scenario, its reader, and a calibrated pipeline."""

    def __init__(
        self,
        scenario: Optional[Scenario] = None,
        pipeline_config: Optional[RFIPadConfig] = None,
        calibration_duration: float = 3.0,
    ) -> None:
        self.scenario = scenario if scenario is not None else build_scenario()
        self.reader: Reader = self.scenario.make_reader()
        self.pad = RFIPad(self.scenario.layout, config=pipeline_config)
        # Kept so parallel batteries can rebuild an equivalent runner in
        # each worker process (see repro.sim.parallel).
        self._pipeline_config = pipeline_config
        self._calibration_duration = calibration_duration
        static = self.reader.collect_static(calibration_duration)
        self.pad.calibrate_from(static)
        self.static_log = static

    @property
    def rng(self) -> np.random.Generator:
        return self.scenario.rng

    def reseed(self, rng: np.random.Generator) -> None:
        """Swap in a fresh RNG stream for the next trial.

        Used by the parallel battery runner to give every trial an
        independent, position-derived stream.  Clears the reader's read
        history so trial state cannot leak across reseeds.
        """
        self.scenario.rng = rng
        self.reader.rng = rng
        self.reader.reset_read_history()

    # ------------------------------------------------------------------

    def run_script(self, script: WritingScript) -> ReportLog:
        """Collect the report stream for one session."""
        return self.reader.collect(script.duration, script.hand_pose_at)

    def run_motion(
        self,
        motion: Motion,
        user: UserProfile = DEFAULT_USER,
        speed: Optional[float] = None,
    ) -> MotionTrial:
        with get_tracer().span("trial.motion", truth=motion.label) as sp:
            script = script_for_motion(motion, self.rng, user=user, speed=speed)
            log = self.run_script(script)
            observed = self.pad.detect_motion(log)
            trial = MotionTrial(truth=motion, observed=observed, log_size=len(log))
            sp.set(
                observed=observed.label if observed is not None else None,
                correct=trial.fully_correct,
                reads=len(log),
            )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("runner.motion_trials")
            metrics.inc("runner.motion_detected", float(trial.detected))
            metrics.inc("runner.motion_shape_correct", float(trial.shape_correct))
            metrics.inc("runner.motion_correct", float(trial.fully_correct))
        return trial

    def run_motion_battery(
        self,
        motions: Sequence[Motion],
        repeats: int,
        user: UserProfile = DEFAULT_USER,
        workers: Optional[int] = None,
    ) -> List[MotionTrial]:
        """Run ``len(motions) * repeats`` motion trials.

        ``workers`` <= 0 (the default via :func:`~repro.sim.parallel.
        resolve_workers`) keeps the legacy serial loop, which threads this
        runner's single RNG through every trial.  ``workers`` >= 1 fans
        trials out to a process pool with per-trial seeded streams —
        deterministic in the scenario seed and independent of the worker
        count, but a *different* (equally valid) draw sequence than the
        serial loop.
        """
        from .parallel import resolve_workers, run_motion_battery_parallel

        n_workers = resolve_workers(workers)
        self._note_battery(n_workers)
        if n_workers <= 0:
            trials = []
            for motion in motions:
                for _ in range(repeats):
                    trials.append(self.run_motion(motion, user=user))
            return trials
        return run_motion_battery_parallel(
            self, motions, repeats, user=user, workers=n_workers
        )

    @staticmethod
    def _note_battery(n_workers: int) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("runner.batteries")
            metrics.set_gauge("runner.battery_workers", float(max(n_workers, 0)))

    def run_letter(
        self, letter: str, user: UserProfile = DEFAULT_USER
    ) -> LetterTrial:
        with get_tracer().span("trial.letter", truth=letter.upper()) as sp:
            script = script_for_letter(letter, self.rng, user=user)
            log = self.run_script(script)
            result = self.pad.recognize_letter(log)
            trial = LetterTrial(
                truth=letter.upper(),
                result=result,
                true_stroke_intervals=script.stroke_intervals(),
                true_stroke_tokens=tuple(
                    s.shape_token for s in LETTER_STROKES[letter.upper()]
                ),
            )
            sp.set(observed=result.letter, correct=trial.correct, reads=len(log))
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("runner.letter_trials")
            metrics.inc("runner.letter_correct", float(trial.correct))
        return trial

    def run_letter_battery(
        self,
        letters: Sequence[str],
        repeats: int,
        user: UserProfile = DEFAULT_USER,
        workers: Optional[int] = None,
    ) -> List[LetterTrial]:
        """Letter-battery counterpart of :meth:`run_motion_battery`."""
        from .parallel import resolve_workers, run_letter_battery_parallel

        n_workers = resolve_workers(workers)
        self._note_battery(n_workers)
        if n_workers <= 0:
            trials = []
            for letter in letters:
                for _ in range(repeats):
                    trials.append(self.run_letter(letter, user=user))
            return trials
        return run_letter_battery_parallel(
            self, letters, repeats, user=user, workers=n_workers
        )
