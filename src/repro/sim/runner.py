"""Session runner: drive the reader over writing scripts and score results.

The runner owns the experiment loop the paper's evaluation repeats
hundreds of times: calibrate once per deployment, then for each trial
generate a script, run inventory over it, and feed the log to the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.events import LetterResult, StrokeObservation
from ..core.pipeline import RFIPad, RFIPadConfig
from ..motion.letters import LETTER_STROKES
from ..motion.script import WritingScript, script_for_letter, script_for_motion
from ..motion.strokes import Motion
from ..motion.user import DEFAULT_USER, UserProfile
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..rfid.reader import Reader
from ..rfid.reports import ReportLog
from .scenario import Scenario, ScenarioConfig, build_scenario


@dataclass
class MotionTrial:
    """Outcome of one single-motion session.

    ``log`` is only populated when the battery ran with
    ``collect_logs=True`` (excluded from equality: two trials with the
    same outcome compare equal whether or not their logs were kept).
    """

    truth: Motion
    observed: Optional[StrokeObservation]
    log_size: int
    log: Optional[ReportLog] = field(default=None, repr=False, compare=False)

    @property
    def shape_correct(self) -> bool:
        return self.observed is not None and self.observed.kind is self.truth.kind

    @property
    def direction_correct(self) -> bool:
        if self.observed is None:
            return False
        from ..motion.strokes import StrokeKind

        if self.truth.kind is StrokeKind.CLICK:
            return True  # clicks have no direction
        return self.observed.direction is self.truth.direction

    @property
    def fully_correct(self) -> bool:
        return self.shape_correct and self.direction_correct

    @property
    def detected(self) -> bool:
        return self.observed is not None


@dataclass
class LetterTrial:
    """Outcome of one letter-writing session."""

    truth: str
    result: LetterResult
    true_stroke_intervals: List[Tuple[float, float]]
    true_stroke_tokens: Tuple[str, ...]
    log: Optional[ReportLog] = field(default=None, repr=False, compare=False)

    @property
    def correct(self) -> bool:
        return self.result.letter == self.truth


class SessionRunner:
    """Binds a scenario, its reader, and a calibrated pipeline."""

    def __init__(
        self,
        scenario: Optional[Scenario] = None,
        pipeline_config: Optional[RFIPadConfig] = None,
        calibration_duration: float = 3.0,
    ) -> None:
        self.scenario = scenario if scenario is not None else build_scenario()
        self.reader: Reader = self.scenario.make_reader()
        self.pad = RFIPad(self.scenario.layout, config=pipeline_config)
        # Kept so parallel batteries can rebuild an equivalent runner in
        # each worker process (see repro.sim.parallel).
        self._pipeline_config = pipeline_config
        self._calibration_duration = calibration_duration
        static = self.reader.collect_static(calibration_duration)
        self.pad.calibrate_from(static)
        self.static_log = static

    @property
    def rng(self) -> np.random.Generator:
        return self.scenario.rng

    def reseed(self, rng: np.random.Generator) -> None:
        """Swap in a fresh RNG stream for the next trial.

        Used by the parallel battery runner to give every trial an
        independent, position-derived stream.  Clears the reader's read
        history so trial state cannot leak across reseeds.
        """
        self.scenario.rng = rng
        self.reader.rng = rng
        self.reader.reset_read_history()

    # ------------------------------------------------------------------

    def run_script(self, script: WritingScript) -> ReportLog:
        """Collect the report stream for one session."""
        return self.reader.collect(script.duration, script.hand_pose_at)

    def run_motion(
        self,
        motion: Motion,
        user: UserProfile = DEFAULT_USER,
        speed: Optional[float] = None,
        keep_log: bool = False,
    ) -> MotionTrial:
        with get_tracer().span("trial.motion", truth=motion.label) as sp:
            script = script_for_motion(motion, self.rng, user=user, speed=speed)
            log = self.run_script(script)
            observed = self.pad.detect_motion(log)
            trial = MotionTrial(truth=motion, observed=observed, log_size=len(log))
            if keep_log:
                trial.log = log
            sp.set(
                observed=observed.label if observed is not None else None,
                correct=trial.fully_correct,
                reads=len(log),
            )
        self._note_motion_trial(trial)
        return trial

    @staticmethod
    def _note_motion_trial(trial: MotionTrial) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("runner.motion_trials")
            metrics.inc("runner.motion_detected", float(trial.detected))
            metrics.inc("runner.motion_shape_correct", float(trial.shape_correct))
            metrics.inc("runner.motion_correct", float(trial.fully_correct))

    def run_motion_batch(
        self,
        items: Sequence[Tuple[Motion, UserProfile, Optional[float], np.random.Generator]],
        on_trial: Optional[Callable[[MotionTrial], None]] = None,
        keep_logs: bool = False,
    ) -> List[MotionTrial]:
        """Run many independent motion trials through one lockstep collect.

        ``items`` rows are ``(motion, user, speed, rng)`` — each trial's
        private RNG stream, exactly as :meth:`reseed` + :meth:`run_motion`
        would consume it, so every trial's log is bit-identical to its solo
        counterpart regardless of how trials are grouped into batches.
        ``on_trial`` fires after each trial's assembly and metrics (the
        parallel worker captures its per-trial telemetry snapshot there).

        Falls back to the solo loop when the reader cannot run the
        trial-axis path (scalar channel/inventory modes).
        """
        if not items:
            return []
        if not self.reader.supports_trial_batch:
            trials = []
            for motion, user, speed, rng in items:
                self.reseed(rng)
                trial = self.run_motion(motion, user=user, speed=speed, keep_log=keep_logs)
                if on_trial is not None:
                    on_trial(trial)
                trials.append(trial)
            return trials
        from ..rfid.reader import CollectSpec

        prepared = []
        specs = []
        for motion, user, speed, rng in items:
            script = script_for_motion(motion, rng, user=user, speed=speed)
            prepared.append((motion, script))
            specs.append(
                CollectSpec(
                    duration=script.duration,
                    hand_pose_at=script.hand_pose_at,
                    rng=rng,
                )
            )
        lanes = self.reader.collect_batch(specs)
        trials = []
        for (motion, script), lane in zip(prepared, lanes):
            with get_tracer().span("trial.motion", truth=motion.label) as sp:
                log = self.reader.emit_lane(lane)
                observed = self.pad.detect_motion(log)
                trial = MotionTrial(
                    truth=motion, observed=observed, log_size=len(log)
                )
                if keep_logs:
                    trial.log = log
                sp.set(
                    observed=observed.label if observed is not None else None,
                    correct=trial.fully_correct,
                    reads=len(log),
                )
            self._note_motion_trial(trial)
            if on_trial is not None:
                on_trial(trial)
            trials.append(trial)
        return trials

    def run_motion_battery(
        self,
        motions: Sequence[Motion],
        repeats: int,
        user: UserProfile = DEFAULT_USER,
        workers: Optional[int] = None,
        collect_logs: bool = False,
    ) -> List[MotionTrial]:
        """Run ``len(motions) * repeats`` motion trials.

        ``workers`` <= 0 (the default via :func:`~repro.sim.parallel.
        resolve_workers`) keeps the legacy serial loop, which threads this
        runner's single RNG through every trial.  ``workers`` >= 1 fans
        trials out to a process pool with per-trial seeded streams —
        deterministic in the scenario seed and independent of the worker
        count, but a *different* (equally valid) draw sequence than the
        serial loop.  ``collect_logs=True`` attaches each trial's
        :class:`ReportLog` (shipped back over shared memory from workers).
        """
        from .parallel import resolve_workers, run_motion_battery_parallel

        n_workers = resolve_workers(workers)
        self._note_battery(n_workers)
        if n_workers <= 0:
            trials = []
            for motion in motions:
                for _ in range(repeats):
                    trials.append(
                        self.run_motion(motion, user=user, keep_log=collect_logs)
                    )
            return trials
        return run_motion_battery_parallel(
            self, motions, repeats, user=user, workers=n_workers,
            collect_logs=collect_logs,
        )

    @staticmethod
    def _note_battery(n_workers: int) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("runner.batteries")
            metrics.set_gauge("runner.battery_workers", float(max(n_workers, 0)))

    def run_letter(
        self, letter: str, user: UserProfile = DEFAULT_USER, keep_log: bool = False
    ) -> LetterTrial:
        with get_tracer().span("trial.letter", truth=letter.upper()) as sp:
            script = script_for_letter(letter, self.rng, user=user)
            log = self.run_script(script)
            result = self.pad.recognize_letter(log)
            trial = LetterTrial(
                truth=letter.upper(),
                result=result,
                true_stroke_intervals=script.stroke_intervals(),
                true_stroke_tokens=tuple(
                    s.shape_token for s in LETTER_STROKES[letter.upper()]
                ),
            )
            if keep_log:
                trial.log = log
            sp.set(observed=result.letter, correct=trial.correct, reads=len(log))
        self._note_letter_trial(trial)
        return trial

    @staticmethod
    def _note_letter_trial(trial: LetterTrial) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("runner.letter_trials")
            metrics.inc("runner.letter_correct", float(trial.correct))

    def run_letter_batch(
        self,
        items: Sequence[Tuple[str, UserProfile, np.random.Generator]],
        on_trial: Optional[Callable[[LetterTrial], None]] = None,
        keep_logs: bool = False,
    ) -> List[LetterTrial]:
        """Letter counterpart of :meth:`run_motion_batch`."""
        if not items:
            return []
        if not self.reader.supports_trial_batch:
            trials = []
            for letter, user, rng in items:
                self.reseed(rng)
                trial = self.run_letter(letter, user=user, keep_log=keep_logs)
                if on_trial is not None:
                    on_trial(trial)
                trials.append(trial)
            return trials
        from ..rfid.reader import CollectSpec

        prepared = []
        specs = []
        for letter, user, rng in items:
            script = script_for_letter(letter, rng, user=user)
            prepared.append((letter, script))
            specs.append(
                CollectSpec(
                    duration=script.duration,
                    hand_pose_at=script.hand_pose_at,
                    rng=rng,
                )
            )
        lanes = self.reader.collect_batch(specs)
        trials = []
        for (letter, script), lane in zip(prepared, lanes):
            with get_tracer().span("trial.letter", truth=letter.upper()) as sp:
                log = self.reader.emit_lane(lane)
                result = self.pad.recognize_letter(log)
                trial = LetterTrial(
                    truth=letter.upper(),
                    result=result,
                    true_stroke_intervals=script.stroke_intervals(),
                    true_stroke_tokens=tuple(
                        s.shape_token for s in LETTER_STROKES[letter.upper()]
                    ),
                )
                if keep_logs:
                    trial.log = log
                sp.set(observed=result.letter, correct=trial.correct, reads=len(log))
            self._note_letter_trial(trial)
            if on_trial is not None:
                on_trial(trial)
            trials.append(trial)
        return trials

    def run_letter_battery(
        self,
        letters: Sequence[str],
        repeats: int,
        user: UserProfile = DEFAULT_USER,
        workers: Optional[int] = None,
        collect_logs: bool = False,
    ) -> List[LetterTrial]:
        """Letter-battery counterpart of :meth:`run_motion_battery`."""
        from .parallel import resolve_workers, run_letter_battery_parallel

        n_workers = resolve_workers(workers)
        self._note_battery(n_workers)
        if n_workers <= 0:
            trials = []
            for letter in letters:
                for _ in range(repeats):
                    trials.append(
                        self.run_letter(letter, user=user, keep_log=collect_logs)
                    )
            return trials
        return run_letter_battery_parallel(
            self, letters, repeats, user=user, workers=n_workers,
            collect_logs=collect_logs,
        )


class WorkspaceRunner:
    """Session runner over a tiled workspace (DESIGN.md §15).

    Same trial surface as :class:`SessionRunner`, but the report stream
    comes from the workspace's duty-cycled multiplexed reader, merged
    across tiles, and the pipeline is calibrated against the *combined*
    layout.  For a 1x1 workspace every log this runner produces is
    bit-identical to ``SessionRunner`` over ``build_scenario(base)``.
    """

    def __init__(
        self,
        workspace=None,
        pipeline_config: Optional[RFIPadConfig] = None,
        calibration_duration: float = 3.0,
    ) -> None:
        from .workspace import build_workspace

        self.workspace = workspace if workspace is not None else build_workspace()
        self.pad = RFIPad(self.workspace.combined_layout, config=pipeline_config)
        static = self.workspace.collect_static(calibration_duration)
        self.pad.calibrate_from(static)
        self.static_log = static

    @property
    def rng(self) -> np.random.Generator:
        return self.workspace.rng

    def run_script(self, script: WritingScript) -> ReportLog:
        """Collect the merged workspace report stream for one session."""
        return self.workspace.collect_script(script)

    def run_motion(
        self,
        motion: Motion,
        user: UserProfile = DEFAULT_USER,
        speed: Optional[float] = None,
        keep_log: bool = False,
    ) -> MotionTrial:
        with get_tracer().span("trial.motion", truth=motion.label) as sp:
            script = script_for_motion(motion, self.rng, user=user, speed=speed)
            log = self.run_script(script)
            observed = self.pad.detect_motion(log)
            trial = MotionTrial(truth=motion, observed=observed, log_size=len(log))
            if keep_log:
                trial.log = log
            sp.set(
                observed=observed.label if observed is not None else None,
                correct=trial.fully_correct,
                reads=len(log),
            )
        SessionRunner._note_motion_trial(trial)
        return trial

    def run_letter(
        self, letter: str, user: UserProfile = DEFAULT_USER, keep_log: bool = False
    ) -> LetterTrial:
        with get_tracer().span("trial.letter", truth=letter.upper()) as sp:
            script = script_for_letter(letter, self.rng, user=user)
            log = self.run_script(script)
            result = self.pad.recognize_letter(log)
            trial = LetterTrial(
                truth=letter.upper(),
                result=result,
                true_stroke_intervals=script.stroke_intervals(),
                true_stroke_tokens=tuple(
                    s.shape_token for s in LETTER_STROKES[letter.upper()]
                ),
            )
            if keep_log:
                trial.log = log
            sp.set(observed=result.letter, correct=trial.correct, reads=len(log))
        SessionRunner._note_letter_trial(trial)
        return trial

    def stitched_trajectory_error(
        self, log: ReportLog, script: WritingScript
    ) -> Optional[float]:
        """Fig. 25's Kinect trajectory-error metric, workspace-wide.

        Reconstructs the trajectory from the *merged* log against the
        combined layout — tags carry global indices, so anchors from
        different tiles land in one workspace frame — and scores it
        against the script's ground-truth path.  This is the stitch-
        quality number: a seam between tiles shows up directly as added
        mean xy error.  Returns None when too few troughs anchor a
        trajectory or the estimate doesn't overlap the reference.
        """
        from ..core.direction import detect_troughs
        from ..core.trajectory import reconstruct_trajectory, trajectory_error

        troughs = detect_troughs(log, self.pad.calibration)
        estimate = reconstruct_trajectory(troughs, self.workspace.combined_layout)
        if estimate is None:
            return None
        reference = [(p.t, p.position) for p in script.true_trajectory(dt=0.05)]
        try:
            return trajectory_error(estimate, reference)
        except ValueError:
            return None
