"""Streaming session layer: incremental, bounded-memory recognition.

See :mod:`repro.stream.session` for the equivalence and retention
contracts, and DESIGN.md §11 for the architecture.
"""

from .session import (
    LetterEvent,
    StreamEvent,
    StreamingSession,
    StrokeEvent,
    WorkspaceSession,
)

__all__ = [
    "LetterEvent",
    "StreamEvent",
    "StreamingSession",
    "StrokeEvent",
    "WorkspaceSession",
]
