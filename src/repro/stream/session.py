"""Bounded-memory streaming recognition sessions.

The paper's system is inherently online: the reader inventories tags
continuously and strokes must be segmented and recognised *as the user
writes* (Eq. 11-12 framing, the Fig. 24 latency budget).  A
:class:`StreamingSession` is the online driver over the same stage objects
the batch :class:`~repro.core.pipeline.RFIPad` uses:

* report chunks go in via :meth:`StreamingSession.ingest` (any chunking,
  down to one read at a time);
* :class:`StrokeEvent`\\ s come back as stroke windows close, each carrying
  the :class:`~repro.core.events.SegmentedWindow` and the analysed
  :class:`~repro.core.events.StrokeObservation`;
* :meth:`StreamingSession.finalize` flushes the tail and appends the
  :class:`LetterEvent` with the tree-grammar composition.

**Equivalence contract** (enforced by ``tests/stream/``): for any log and
any chunking, the streamed window/stroke/letter sequence is exactly — to
the float — what ``RFIPad.recognize_letter`` produces on the whole log.
This works because the segmenter is causal (see
:class:`~repro.core.segmentation.StreamSegmenter`) and every analysis
stage reads only ``[t0, t1)`` of the log, so running it over the
session's retention buffer is indistinguishable from running it over the
full log.

**Memory bound**: after each chunk the session discards buffered reads
older than the segmenter's retention horizon — everything before the
oldest frame that could still join a stroke window.  Retained state is
O(longest stroke + lookahead), independent of session length.

Observability: each chunk runs under a ``stream.chunk`` span;
``stream.buffered_reads`` / ``stream.lag_s`` gauges track the retention
buffer, and ``stream.event_latency_s`` is the end-to-end histogram of
(emission time − window close time) in stream time, surfaced by
``repro stats``.  Sessions constructed with a ``session_id`` additionally
publish their gauges under a ``{"session": id}`` label
(``stream.buffered_reads{session="pad-3"}``), so a multi-session serving
layer can tell its tenants apart on a Prometheus scrape while the
unlabeled aggregate gauges keep reflecting the most recent activity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ..core.events import LetterResult, SegmentedWindow, StrokeObservation
from ..core.pipeline import RFIPad
from ..core.segmentation import StreamSegmenter, stitch_windows
from ..core.stages import GrammarStage, StageContext, WindowAnalyzer, widest_window
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..rfid.reports import ReportLog, merge_logs

__all__ = [
    "LetterEvent",
    "StreamEvent",
    "StreamingSession",
    "StrokeEvent",
    "WorkspaceSession",
]


@dataclass(frozen=True)
class StrokeEvent:
    """One stroke window and its analysis.

    ``stroke`` is ``None`` when the window held no classifiable
    disturbance (the batch pipeline drops such windows from the stroke
    list the same way).  ``emitted_at`` is stream time — the timestamp of
    the newest read seen when the event fired — so ``emitted_at -
    window.t1`` is the end-to-end event latency.  ``final`` is false for
    provisional previews of a still-forming window (see
    ``StreamingSession(provisional=True)``); every provisional event is
    eventually superseded by a final one, and only final events feed the
    session's window/stroke state.
    """

    window: SegmentedWindow
    stroke: Optional[StrokeObservation]
    emitted_at: float
    final: bool = True


@dataclass(frozen=True)
class LetterEvent:
    """The tree-grammar composition (provisional mid-session or final)."""

    result: LetterResult
    emitted_at: float
    final: bool = True


StreamEvent = Union[StrokeEvent, LetterEvent]


class StreamingSession:
    """Incremental recognition over a live report stream.

    Parameters
    ----------
    pad:
        A calibrated :class:`~repro.core.pipeline.RFIPad`; the session
        snapshots its stage set at construction, so mid-session config
        changes on the pad do not affect an open session.
    bounded:
        When true (the default) the read buffer is pruned to the
        segmenter's retention horizon after every chunk.  Set false to
        retain the whole stream — only useful for the quiet-log fallback
        of :meth:`motion_result`, which then matches batch
        ``detect_motion`` exactly even for window-less sessions.
    session_id:
        Optional tenant identity.  When set, the session's gauges are
        *also* published under a ``{"session": session_id}`` label so
        concurrent sessions stay distinguishable on a scrape.
    provisional:
        When true, each ingested chunk may additionally emit
        ``final=False`` preview events: a :class:`StrokeEvent` for the
        segmenter's best guess of the still-forming window, followed by a
        :class:`LetterEvent` re-running the grammar with that guess
        appended — so a UI can show the letter forming instead of waiting
        for window closure.  Provisional events are recorded in
        :attr:`events` only; the final window/stroke/letter stream is
        **bit-identical** to ``provisional=False`` (and to batch).
    """

    def __init__(
        self,
        pad: RFIPad,
        bounded: bool = True,
        session_id: Optional[str] = None,
        provisional: bool = False,
    ) -> None:
        self._ctx: StageContext = pad.stage_context()
        stages = pad.stages
        self._analyzer: WindowAnalyzer = stages.analyzer
        self._grammar: GrammarStage = stages.grammar
        self._segmenter: StreamSegmenter = stages.segmentation.stream(self._ctx)
        self.bounded = bounded
        self.session_id = session_id
        self.provisional = provisional
        self._labels = {"session": session_id} if session_id else None
        self._buffer = ReportLog()
        self._events: List[StreamEvent] = []
        self._windows: List[SegmentedWindow] = []
        self._strokes: List[StrokeObservation] = []
        self._now: Optional[float] = None
        self._letter: Optional[LetterResult] = None
        self._finalized = False
        # -- provisional-preview state (inert unless provisional=True) --
        self._prov_key: Optional[Tuple[float, float]] = None
        self._letter_shown: Optional[str] = None    # letter currently displayed
        self._letter_settled_at: Optional[float] = None

    # -- ingestion -----------------------------------------------------

    def ingest(self, chunk: ReportLog) -> List[StreamEvent]:
        """Feed one time-ordered chunk; returns the events it triggered."""
        if self._finalized:
            raise RuntimeError("session already finalized")
        metrics = get_metrics()
        with get_tracer().span("stream.chunk", reads=len(chunk)) as sp:
            ts, tag, phase, rss, dopp, port, epc = chunk.columns()
            if ts.size:
                self._buffer.extend_columns(
                    ts, tag, phase, rss, dopp, epc,
                    antenna_port=int(port[0]),
                )
                self._now = float(ts[-1])
            windows = self._segmenter.ingest(ts, tag, phase)
            events = [self._emit(w) for w in windows]
            dropped = self._prune()
            if self.provisional:
                self._provisional_pass(events)
            sp.set(windows=len(windows), buffered=len(self._buffer))
        if metrics.enabled:
            metrics.inc("stream.chunks")
            metrics.inc("stream.reads", float(ts.size))
            if dropped:
                metrics.inc("stream.dropped_reads", float(dropped))
            metrics.set_gauge("stream.buffered_reads", float(len(self._buffer)))
            if self._labels:
                metrics.set_gauge(
                    "stream.buffered_reads", float(len(self._buffer)),
                    labels=self._labels,
                )
            if self._now is not None:
                horizon = self.retention_time
                if horizon is not None:
                    metrics.set_gauge("stream.lag_s", self._now - horizon)
                    if self._labels:
                        metrics.set_gauge(
                            "stream.lag_s", self._now - horizon,
                            labels=self._labels,
                        )
        return events

    def finalize(self) -> List[StreamEvent]:
        """End the stream: flush tail windows and compose the letter."""
        if self._finalized:
            raise RuntimeError("session already finalized")
        self._finalized = True
        with get_tracer().span("stream.finalize") as sp:
            events: List[StreamEvent] = [
                self._emit(w) for w in self._segmenter.finalize()
            ]
            self._letter = self._grammar.run(self._strokes, self._windows)
            letter_event = LetterEvent(
                result=self._letter,
                emitted_at=self._now if self._now is not None else 0.0,
            )
            self._events.append(letter_event)
            events.append(letter_event)
            if self.provisional:
                self._note_letter_settle(letter_event)
            sp.set(windows=len(events) - 1, letter=self._letter.letter)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("stream.sessions")
        return events

    # -- results -------------------------------------------------------

    @property
    def events(self) -> List[StreamEvent]:
        """Every event emitted so far, in order."""
        return list(self._events)

    @property
    def windows(self) -> List[SegmentedWindow]:
        return list(self._windows)

    @property
    def strokes(self) -> List[StrokeObservation]:
        return list(self._strokes)

    @property
    def letter_result(self) -> Optional[LetterResult]:
        """The grammar composition; ``None`` until :meth:`finalize`."""
        return self._letter

    def motion_result(self) -> Optional[StrokeObservation]:
        """Single-motion view of the finished session.

        Mirrors batch ``detect_motion``: the stroke of the widest window
        (earliest ``t0`` on ties).  For window-less sessions the batch
        path analyses the whole log; a bounded session has already shed
        most of it, so the fallback runs over the retention tail (exact
        only with ``bounded=False``).
        """
        if not self._finalized:
            raise RuntimeError("finalize() the session before reading results")
        if self._windows:
            target = widest_window(self._windows)
            for ev in self._events:
                if isinstance(ev, StrokeEvent) and ev.final and ev.window == target:
                    return ev.stroke
        if len(self._buffer) == 0:
            return None
        return self._analyzer.analyze(self._ctx, self._buffer)

    # -- retention -----------------------------------------------------

    @property
    def buffered_reads(self) -> int:
        """Reads currently retained (the memory-bound witness)."""
        return len(self._buffer)

    @property
    def retention_time(self) -> Optional[float]:
        """Oldest timestamp the session still needs; earlier reads are gone."""
        return self._segmenter.retention_time()

    def _prune(self) -> int:
        if not self.bounded:
            return 0
        horizon = self._segmenter.retention_time()
        if horizon is None:
            return 0
        return self._buffer.drop_before(horizon)

    # -- internals -----------------------------------------------------

    def _provisional_pass(self, events: List[StreamEvent]) -> None:
        """Emit ``final=False`` preview events when the open segment moved.

        Previews touch ``_events`` (history) and the caller's return list
        only — never ``_windows``/``_strokes`` — so every *final* event,
        and the end-of-session grammar run, stays bit-identical to a
        ``provisional=False`` session on the same chunks.
        """
        seg = self._segmenter.provisional_segment()
        if seg is None:
            return
        t0, t1, peak = seg
        if t1 - t0 < self._segmenter.config.min_stroke_s:
            return
        key = (t0, t1)
        if key == self._prov_key:
            return
        self._prov_key = key
        now = self._now if self._now is not None else t1
        window = SegmentedWindow(t0, t1, peak)
        obs = self._analyzer.analyze(self._ctx, self._buffer, t0, t1)
        stroke_event = StrokeEvent(
            window=window, stroke=obs, emitted_at=now, final=False
        )
        strokes = self._strokes + ([obs] if obs is not None else [])
        result = self._grammar.run(strokes, self._windows + [window])
        letter_event = LetterEvent(result=result, emitted_at=now, final=False)
        self._events.extend((stroke_event, letter_event))
        events.extend((stroke_event, letter_event))
        if self._letter_shown != result.letter:
            self._letter_shown = result.letter
            self._letter_settled_at = now
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("stream.provisional_events")
            metrics.observe("stream.provisional_latency_s", max(0.0, now - t1))

    def _note_letter_settle(self, event: LetterEvent) -> None:
        """Record how long the *displayed* letter took to stop changing.

        When the final composition agrees with the last preview, the user
        already saw the right letter at ``_letter_settled_at``; otherwise
        the correction only lands with the final event.  Latency is
        measured from the last final window's close — the earliest moment
        the full letter could possibly be known.
        """
        settled = self._letter_settled_at
        if self._letter_shown != event.result.letter or settled is None:
            settled = event.emitted_at
        base = self._windows[-1].t1 if self._windows else settled
        metrics = get_metrics()
        if metrics.enabled:
            metrics.observe("stream.letter_latency_s", max(0.0, settled - base))

    def _emit(self, window: SegmentedWindow) -> StrokeEvent:
        obs = self._analyzer.analyze(self._ctx, self._buffer, window.t0, window.t1)
        self._windows.append(window)
        if obs is not None:
            self._strokes.append(obs)
        now = self._now if self._now is not None else window.t1
        event = StrokeEvent(window=window, stroke=obs, emitted_at=now)
        self._events.append(event)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("stream.windows")
            metrics.observe(
                "stream.event_latency_s", max(0.0, now - window.t1)
            )
        return event


class WorkspaceSession:
    """Streaming recognition over a tiled workspace (DESIGN.md §15).

    N per-tile report streams come in via :meth:`ingest_tile`; one
    workspace-level event stream comes out.  Internally a watermark merge
    re-serializes the tile streams into global time order — a tile's
    reads are held until *every* tile's watermark has passed them — and
    feeds one inner :class:`StreamingSession` running against the
    combined-layout pad, so stroke windows that span a tile boundary
    close exactly as they would on the batch-merged log.

    The per-tile watermark is the newest timestamp the tile has vouched
    for: the last read of each chunk, or an explicit ``t_hi`` (which also
    lets an idle tile heartbeat the merge forward with empty chunks).
    Nothing is released until every tile has spoken at least once — a
    silent tile's first chunk may still carry arbitrarily old reads — so
    a tenant with a genuinely idle tile should heartbeat it; in the
    worst case :meth:`finalize` flushes everything held.

    For ``tile_count == 1`` the session is a pure pass-through to the
    inner :class:`StreamingSession` — no buffering, no extra state — so
    the 1x1 workspace's streamed events are bit-identical to today's
    single-pad stream.  For multi-tile workspaces, per-tile diagnostic
    segmenters additionally track what each tile would have said alone;
    :attr:`stitched_windows` merges those via
    :func:`~repro.core.segmentation.stitch_windows` to expose the
    boundary-crossing seams the workspace pipeline healed.

    When ``session_id`` is set, per-tile gauges are published as
    ``stream.tile_buffered_reads{session=..., tile=...}``; they carry the
    session label, so the serving hub's existing
    ``remove_labeled({"session": sid})`` sweep reclaims them when the
    tenant disconnects.
    """

    def __init__(
        self,
        pad: RFIPad,
        tile_count: int,
        bounded: bool = True,
        session_id: Optional[str] = None,
        provisional: bool = False,
    ) -> None:
        if tile_count < 1:
            raise ValueError("workspace needs at least one tile")
        self.tile_count = tile_count
        self.session_id = session_id
        self._inner = StreamingSession(
            pad, bounded=bounded, session_id=session_id,
            provisional=provisional,
        )
        self._pending: List[ReportLog] = [ReportLog() for _ in range(tile_count)]
        self._marks: List[float] = [-math.inf] * tile_count
        self._released = -math.inf
        if tile_count > 1:
            ctx = pad.stage_context()
            self._tile_segmenters: List[Optional[StreamSegmenter]] = [
                pad.stages.segmentation.stream(ctx) for _ in range(tile_count)
            ]
            self._tile_windows: List[List[SegmentedWindow]] = [
                [] for _ in range(tile_count)
            ]
        else:
            self._tile_segmenters = []
            self._tile_windows = []

    # -- ingestion -----------------------------------------------------

    def ingest_tile(
        self, tile: int, chunk: ReportLog, t_hi: Optional[float] = None
    ) -> List[StreamEvent]:
        """Feed one tile's next time-ordered chunk; returns the workspace
        events it unlocked (possibly none, if other tiles lag)."""
        if not 0 <= tile < self.tile_count:
            raise ValueError(f"tile {tile} outside 0..{self.tile_count - 1}")
        if self.tile_count == 1:
            return self._inner.ingest(chunk)
        ts, tag, phase, rss, dopp, port, epc = chunk.columns()
        if ts.size:
            self._pending[tile].extend_columns(
                ts, tag, phase, rss, dopp, epc, antenna_port=int(port[0])
            )
            self._segment_tile(tile, ts, tag, phase)
            self._marks[tile] = max(self._marks[tile], float(ts[-1]))
        if t_hi is not None:
            self._marks[tile] = max(self._marks[tile], float(t_hi))
        self._note_tile(tile)
        return self._release()

    def ingest(self, chunk: ReportLog) -> List[StreamEvent]:
        """Single-stream compatibility: route a merged chunk by port.

        Ports are 1-based tile numbers on a workspace's multiplexed
        reader; a chunk whose reads all share one port is an ordinary
        tile chunk, and a mixed chunk (a replayed merged log) is split
        per port.  The chunk's last timestamp vouches for *all* tiles —
        a merged stream is globally ordered, so every tile is implicitly
        up to date."""
        if self.tile_count == 1:
            return self._inner.ingest(chunk)
        ts, tag, phase, rss, dopp, port, epc = chunk.columns()
        events: List[StreamEvent] = []
        if ts.size:
            t_hi = float(ts[-1])
            for p in np.unique(port):
                tile = int(p) - 1
                mask = port == p
                sub = ReportLog()
                sub.extend_columns(
                    ts[mask], tag[mask], phase[mask], rss[mask],
                    dopp[mask], epc[mask], antenna_port=int(p),
                )
                events.extend(self.ingest_tile(tile, sub))
            for tile in range(self.tile_count):
                events.extend(self.ingest_tile(tile, ReportLog(), t_hi=t_hi))
        return events

    def finalize(self) -> List[StreamEvent]:
        """Flush every tile's held reads and close the inner session."""
        if self.tile_count == 1:
            return self._inner.finalize()
        tail = merge_logs(self._pending)
        self._pending = [ReportLog() for _ in range(self.tile_count)]
        events: List[StreamEvent] = []
        if len(tail):
            events.extend(self._inner.ingest(tail))
        for tile, seg in enumerate(self._tile_segmenters):
            if seg is not None:
                self._tile_windows[tile].extend(seg.finalize())
        events.extend(self._inner.finalize())
        return events

    # -- results -------------------------------------------------------

    @property
    def events(self) -> List[StreamEvent]:
        return self._inner.events

    @property
    def windows(self) -> List[SegmentedWindow]:
        return self._inner.windows

    @property
    def strokes(self) -> List[StrokeObservation]:
        return self._inner.strokes

    @property
    def letter_result(self) -> Optional[LetterResult]:
        return self._inner.letter_result

    def motion_result(self) -> Optional[StrokeObservation]:
        return self._inner.motion_result()

    @property
    def buffered_reads(self) -> int:
        """Inner retention buffer plus reads still held at the merge."""
        held = sum(len(p) for p in self._pending)
        return self._inner.buffered_reads + held

    @property
    def retention_time(self) -> Optional[float]:
        return self._inner.retention_time

    @property
    def tile_windows(self) -> List[List[SegmentedWindow]]:
        """Each tile's solo segmentation (diagnostic; [] per tile for 1x1)."""
        return [list(ws) for ws in self._tile_windows]

    @property
    def stitched_windows(self) -> List[SegmentedWindow]:
        """What per-tile segmentation + cross-tile stitching yields.

        Diagnostic view: the workspace pipeline itself segments the
        merged stream directly (``windows``); this property shows the
        same strokes as assembled from each tile's solo segmentation, so
        tests and experiments can score the stitch against the merged
        truth.  Empty for single-tile sessions (nothing to stitch).
        """
        if self.tile_count == 1:
            return []
        return stitch_windows(self._tile_windows)

    # -- internals -----------------------------------------------------

    def _segment_tile(
        self, tile: int, ts: np.ndarray, tag: np.ndarray, phase: np.ndarray
    ) -> None:
        seg = self._tile_segmenters[tile]
        if seg is not None:
            self._tile_windows[tile].extend(seg.ingest(ts, tag, phase))

    def _release(self) -> List[StreamEvent]:
        """Forward all reads every tile's watermark has passed."""
        safe = min(self._marks)
        if not safe > self._released or math.isinf(safe):
            return []
        self._released = safe
        # Inclusive cut: a tile's watermark vouches for reads *at* it.
        cut = float(np.nextafter(safe, math.inf))
        ready = merge_logs(
            [p.slice_time(-math.inf, cut) for p in self._pending]
        )
        for p in self._pending:
            p.drop_before(cut)
        if not len(ready):
            return []
        return self._inner.ingest(ready)

    def _note_tile(self, tile: int) -> None:
        metrics = get_metrics()
        if metrics.enabled and self.session_id is not None:
            metrics.set_gauge(
                "stream.tile_buffered_reads",
                float(len(self._pending[tile])),
                labels={"session": self.session_id, "tile": str(tile)},
            )
