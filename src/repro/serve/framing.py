"""Length-prefixed socket framing for the serving hub.

The wire protocol between a pad (client) and the :class:`~repro.serve.hub.
SessionHub` is a stream of self-delimiting frames over any reliable byte
transport (TCP here; the codec itself is transport-agnostic):

::

    frame := u32_be body_len | body
    body  := u32_be header_len | header_json | payload

``header_json`` is a compact UTF-8 JSON object (the message); ``payload``
is opaque binary — empty for control messages, a columnar block of reads
for ``chunk`` messages.  TCP delivers bytes, not frames: a single
``recv`` may hold half a frame or twenty, so :class:`FrameDecoder` is an
incremental parser — feed it arbitrary byte fragments and it yields every
complete message exactly once, in order, regardless of how the stream was
fragmented or coalesced (property-tested in ``tests/serve/``).

Chunk payloads reuse the columnar layout of the shared-memory transport
(:mod:`repro.sim.shm`): the five numeric columns of a
:class:`~repro.rfid.reports.ReportLog` laid end-to-end as little-endian
float64, with the EPC string column collapsed to a per-chunk
``tag_index -> epc`` map in the header (EPCs are a static property of the
deployment, so a few dozen short strings regenerate the column exactly).
float64 survives the byte round-trip bit-for-bit, which is what lets the
hub's finalized event streams stay bit-identical to batch.

Message vocabulary (``type`` field):

==============  =========  ==================================================
type            direction  meaning
==============  =========  ==================================================
``hello``       c -> s     open a session (``session`` id, optional ``meta``)
``chunk``       c -> s     one report chunk (columnar payload)
``finalize``    c -> s     end of stream; flush tail windows + letter
``welcome``     s -> c     session accepted (echoes ``session``)
``event``       s -> c     a stroke/letter event (``kind``, ``final``, ...)
``done``        s -> c     session finalized; no more events will follow
``dropped``     s -> c     the hub shed a chunk under a drop policy
``error``       s -> c     protocol violation; the connection will close
``shutdown``    s -> c     hub is draining; open sessions were finalized
==============  =========  ==================================================
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..rfid.reports import ReportLog
from ..sim.shm import epc_map_of

__all__ = [
    "FrameDecoder",
    "FramingError",
    "MAX_FRAME_BYTES",
    "chunk_message",
    "decode_chunk",
    "encode_frame",
    "t_hi_of",
    "tile_of",
]

#: Ceiling on one frame's body; a length prefix beyond this is corruption
#: (or a hostile peer), not a frame worth buffering for.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_U32 = struct.Struct(">I")

#: Numeric columns per chunk payload, in layout order (matches sim/shm):
#: timestamp, tag_index, phase, rss, doppler — all as little-endian f8.
_N_COLS = 5


class FramingError(ValueError):
    """The byte stream or a message violates the framing contract."""


def encode_frame(header: Dict[str, object], payload: bytes = b"") -> bytes:
    """Encode one message as a self-delimiting frame."""
    head = json.dumps(header, separators=(",", ":"), sort_keys=True).encode("utf-8")
    body_len = 4 + len(head) + len(payload)
    if body_len > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame body of {body_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    return b"".join((_U32.pack(body_len), _U32.pack(len(head)), head, payload))


class FrameDecoder:
    """Incremental frame parser over an arbitrarily fragmented byte stream.

    ``feed`` buffers whatever bytes arrive and returns the list of
    complete ``(header, payload)`` messages they completed, preserving
    stream order.  Partial frames stay buffered; a malformed prefix
    raises :class:`FramingError` (the connection is unrecoverable once
    frame boundaries are lost, so decoding must stop).
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards a not-yet-complete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[Tuple[Dict[str, object], bytes]]:
        self._buf += data
        out: List[Tuple[Dict[str, object], bytes]] = []
        while True:
            if len(self._buf) < 4:
                return out
            body_len = _U32.unpack_from(self._buf)[0]
            if body_len < 4 or body_len > MAX_FRAME_BYTES:
                raise FramingError(f"invalid frame length prefix {body_len}")
            if len(self._buf) < 4 + body_len:
                return out
            body = bytes(self._buf[4 : 4 + body_len])
            del self._buf[: 4 + body_len]
            head_len = _U32.unpack_from(body)[0]
            if head_len > body_len - 4:
                raise FramingError(
                    f"header length {head_len} overruns frame body of "
                    f"{body_len} bytes"
                )
            try:
                header = json.loads(body[4 : 4 + head_len].decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FramingError(f"frame header is not valid JSON: {exc}") from exc
            if not isinstance(header, dict) or "type" not in header:
                raise FramingError("frame header must be an object with a 'type'")
            out.append((header, body[4 + head_len :]))


# ----------------------------------------------------------------------
# Chunk payload codec (columnar, mirrors repro.sim.shm's layout).


def chunk_message(
    session: str,
    chunk: ReportLog,
    tile: Optional[int] = None,
    t_hi: Optional[float] = None,
) -> Tuple[Dict[str, object], bytes]:
    """Build the ``chunk`` message for one report chunk.

    Returns ``(header, payload)`` ready for :func:`encode_frame`.  The
    numeric columns ride as one contiguous little-endian float64 block;
    tag indices are exactly recoverable from their float64 image (they
    are tiny integers), matching the shared-memory transport's layout.

    Workspace tenants route per-tile streams over the same message by
    setting ``tile`` (0-based tile number) and optionally ``t_hi`` — the
    tile's watermark, vouching that no later chunk from this tile will
    carry reads at or before it.  Both keys are simply absent for
    ordinary single-pad sessions, so old clients and servers interop
    unchanged.
    """
    ts, tag, phase, rss, dopp, port, epc = chunk.columns()
    block = np.empty((_N_COLS, ts.size), dtype="<f8")
    block[0] = ts
    block[1] = tag
    block[2] = phase
    block[3] = rss
    block[4] = dopp
    header: Dict[str, object] = {
        "type": "chunk",
        "session": session,
        "rows": int(ts.size),
        "port": int(port[0]) if port.size else 1,
        "epcs": {str(t): e for t, e in epc_map_of(tag, epc).items()},
    }
    if tile is not None:
        header["tile"] = int(tile)
    if t_hi is not None:
        header["t_hi"] = float(t_hi)
    return header, block.tobytes()


def tile_of(header: Dict[str, object]) -> Optional[int]:
    """The ``tile`` field of a chunk message, if present (else ``None``)."""
    tile = header.get("tile")
    return int(tile) if tile is not None else None  # type: ignore[arg-type]


def t_hi_of(header: Dict[str, object]) -> Optional[float]:
    """The ``t_hi`` watermark of a chunk message, if present."""
    t_hi = header.get("t_hi")
    return float(t_hi) if t_hi is not None else None  # type: ignore[arg-type]


def decode_chunk(
    header: Dict[str, object], payload: bytes
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[str], int]:
    """Reverse :func:`chunk_message`.

    Returns ``(ts, tag, phase, rss, dopp, epcs, port)`` — the argument
    shape of :meth:`~repro.rfid.reports.ReportLog.extend_columns`.
    """
    try:
        rows = int(header["rows"])
        port = int(header.get("port", 1))
        epc_field = header.get("epcs", {})
    except (KeyError, TypeError, ValueError) as exc:
        raise FramingError(f"malformed chunk header: {exc}") from exc
    if rows < 0 or len(payload) != rows * 8 * _N_COLS:
        raise FramingError(
            f"chunk payload of {len(payload)} bytes does not hold "
            f"{rows} rows x {_N_COLS} float64 columns"
        )
    block = np.frombuffer(payload, dtype="<f8").reshape(_N_COLS, rows)
    ts = np.array(block[0])
    tag = block[1].astype(np.int64)
    epc_map = {int(k): str(v) for k, v in dict(epc_field).items()}
    try:
        epcs = [epc_map[t] for t in tag.tolist()]
    except KeyError as exc:
        raise FramingError(f"chunk references tag {exc} missing from epc map") from exc
    return ts, tag, np.array(block[2]), np.array(block[3]), np.array(block[4]), epcs, port


def chunk_log(header: Dict[str, object], payload: bytes) -> ReportLog:
    """Decode a ``chunk`` message straight into a fresh :class:`ReportLog`."""
    ts, tag, phase, rss, dopp, epcs, port = decode_chunk(header, payload)
    log = ReportLog()
    if ts.size:
        log.extend_columns(ts, tag, phase, rss, dopp, epcs, antenna_port=port)
    return log


def session_of(header: Dict[str, object]) -> Optional[str]:
    """The ``session`` field of a message, if present (else ``None``)."""
    sid = header.get("session")
    return str(sid) if sid is not None else None
