"""Asyncio client for the serving hub (used by ``repro feed``/``loadgen``).

:class:`ServeClient` speaks the framing protocol of
:mod:`repro.serve.framing` over one TCP connection and can multiplex any
number of sessions on it.  A background reader task dispatches incoming
frames to per-session :class:`SessionHandle` records, so senders and the
event stream never block each other — which is what lets the hub's
``block`` policy push back through TCP without deadlocking the client.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Tuple

from ..rfid.reports import ReportLog
from .framing import FrameDecoder, FramingError, chunk_message, encode_frame

__all__ = ["ServeClient", "SessionHandle"]


class SessionHandle:
    """Client-side record of one open session."""

    __slots__ = (
        "sid", "events", "event_walls", "warnings", "dropped_chunks",
        "dropped_reads", "shutdown", "error", "_welcome", "_done",
    )

    def __init__(self, sid: str) -> None:
        self.sid = sid
        #: Event headers in delivery order (``kind``, ``final``, ...).
        self.events: List[Dict[str, object]] = []
        #: ``time.monotonic()`` at receipt of each event (latency probes).
        self.event_walls: List[float] = []
        self.warnings: List[str] = []
        self.dropped_chunks = 0
        self.dropped_reads = 0
        self.shutdown = False
        self.error: Optional[str] = None
        self._welcome = asyncio.Event()
        self._done = asyncio.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def final_letter(self) -> Optional[str]:
        """The finalized letter event's letter, if one arrived."""
        for header in reversed(self.events):
            if header.get("kind") == "letter" and header.get("final"):
                return header.get("letter")  # type: ignore[return-value]
        return None


class ServeClient:
    """One hub connection; open sessions, feed chunks, await events."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._sessions: Dict[str, SessionHandle] = {}
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    break
                for header, _payload in decoder.feed(data):
                    self._dispatch(header)
        except (ConnectionResetError, BrokenPipeError, FramingError):
            pass
        finally:
            self._closed = True
            for handle in self._sessions.values():
                if handle.error is None and not handle.done:
                    handle.error = "connection closed before session finished"
                handle._welcome.set()
                handle._done.set()

    def _dispatch(self, header: Dict[str, object]) -> None:
        sid = header.get("session")
        handle = self._sessions.get(str(sid)) if sid is not None else None
        mtype = header.get("type")
        if handle is None:
            if mtype == "error":
                # Connection-level protocol error: poison every session.
                for h in self._sessions.values():
                    h.error = str(header.get("message"))
                    h._welcome.set()
                    h._done.set()
            return
        if mtype == "welcome":
            handle.warnings = [str(w) for w in header.get("warnings", [])]
            handle._welcome.set()
        elif mtype == "event":
            handle.events.append(header)
            handle.event_walls.append(time.monotonic())
        elif mtype == "dropped":
            handle.dropped_chunks += 1
            handle.dropped_reads += int(header.get("reads", 0))
        elif mtype == "done":
            handle._done.set()
        elif mtype == "shutdown":
            handle.shutdown = True
        elif mtype == "error":
            handle.error = str(header.get("message"))
            handle._welcome.set()
            handle._done.set()

    # -- protocol verbs ------------------------------------------------

    async def open(
        self, sid: str, meta: Optional[Dict[str, object]] = None
    ) -> SessionHandle:
        """Open a session and wait for the hub's ``welcome``."""
        if self._closed:
            raise ConnectionError("client connection is closed")
        if sid in self._sessions:
            raise ValueError(f"session {sid!r} already open on this connection")
        handle = SessionHandle(sid)
        self._sessions[sid] = handle
        header: Dict[str, object] = {"type": "hello", "session": sid}
        if meta:
            header["meta"] = meta
        self._writer.write(encode_frame(header))
        await self._writer.drain()
        await handle._welcome.wait()
        if handle.error is not None:
            raise ConnectionError(handle.error)
        return handle

    async def send_chunk(self, handle: SessionHandle, chunk: ReportLog) -> None:
        """Ship one report chunk (empty chunks ride too — pacing gaps)."""
        header, payload = chunk_message(handle.sid, chunk)
        self._writer.write(encode_frame(header, payload))
        await self._writer.drain()

    async def finalize(self, handle: SessionHandle) -> None:
        """Signal end of stream for one session (events keep arriving)."""
        self._writer.write(
            encode_frame({"type": "finalize", "session": handle.sid})
        )
        await self._writer.drain()

    async def wait_done(
        self, handle: SessionHandle, timeout: Optional[float] = None
    ) -> SessionHandle:
        """Block until the hub's ``done`` frame for this session."""
        await asyncio.wait_for(handle._done.wait(), timeout=timeout)
        if handle.error is not None:
            raise ConnectionError(handle.error)
        return handle

    async def run_session(
        self,
        sid: str,
        chunks: List[ReportLog],
        meta: Optional[Dict[str, object]] = None,
        pace: Optional[List[float]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[SessionHandle, float]:
        """Open, feed, finalize, await done; returns (handle, letter_latency_s).

        ``pace`` gives per-chunk inter-send delays in seconds (same length
        as ``chunks``); ``None`` sends as fast as the hub accepts.  The
        returned latency is finalize-send to final-letter receipt — the
        tail latency a writer perceives after lifting the pen.
        """
        handle = await self.open(sid, meta=meta)
        for i, chunk in enumerate(chunks):
            if pace is not None and pace[i] > 0.0:
                await asyncio.sleep(pace[i])
            await self.send_chunk(handle, chunk)
        finalize_wall = time.monotonic()
        await self.finalize(handle)
        await self.wait_done(handle, timeout=timeout)
        letter_wall = None
        for header, wall in zip(handle.events, handle.event_walls):
            if header.get("kind") == "letter" and header.get("final"):
                letter_wall = wall
        latency = (letter_wall - finalize_wall) if letter_wall is not None else 0.0
        return handle, max(0.0, latency)

    async def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._writer.close()
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # pragma: no cover
            pass
