"""Async multi-session serving hub: thousands of pads behind one engine.

:class:`SessionHub` lifts :class:`~repro.stream.StreamingSession` from a
single-tenant library into a service: an asyncio socket server
multiplexes many concurrent writing sessions (one
:class:`StreamingSession` each) over the length-prefixed framing of
:mod:`repro.serve.framing`, while **all numpy work stays off the event
loop** — the loop only parses frames, enforces queue policy, and ships
events back; analysis runs on a small warmed worker tier.

Serving contract (DESIGN.md §14)
--------------------------------
* **Ordering**: per session, chunks are analysed in arrival order and
  events are delivered in emission order.  Sessions are independent.
* **Micro-batching**: a dispatcher drains every session's pending chunks
  in one go (chunk *coalescing*) and analyses up to
  ``batch_sessions`` sessions per worker hand-off.  Both are pure
  scheduling: the streaming layer's chunking-invariance contract
  (DESIGN.md §11) guarantees the finalized event stream of a session is
  bit-identical to batch no matter how its chunks were coalesced, so
  batching buys amortization without touching correctness.
* **Backpressure & drop policy**: each session's ingest queue is bounded
  (``max_pending`` chunks).  Policy ``block`` (default) suspends reading
  the producing connection until the dispatcher catches up — lossless,
  TCP pushes back on the writer.  ``oldest`` / ``newest`` shed load
  instead, counting every shed chunk (labeled
  ``serve.dropped_chunks{policy=...}``) and notifying the client with a
  ``dropped`` frame.  A session that dropped chunks forfeits bit-identity
  (documented, counted, never silent).
* **Graceful drain**: ``stop(drain=True)`` stops accepting, finalizes
  every open session (flushing tail windows and the letter composition),
  delivers the remaining events plus a ``shutdown`` notice, then tears
  the worker tier down.

The worker tier is a *thread* pool: sessions are stateful (segmenter +
retention buffer), numpy releases the GIL across the heavy kernels, and
threads keep session affinity free.  The process-pool machinery of
:mod:`repro.sim.parallel` stays the right tool for stateless trial
batteries; its columnar transport idea is reused here at the framing
layer instead (see :func:`repro.serve.framing.chunk_message`).
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.pipeline import RFIPad
from ..obs.log import get_logger
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..rfid.reports import ReportLog
from ..stream import (
    LetterEvent,
    StreamEvent,
    StreamingSession,
    StrokeEvent,
    WorkspaceSession,
)
from .framing import (
    FrameDecoder,
    FramingError,
    chunk_message,
    decode_chunk,
    encode_frame,
    t_hi_of,
    tile_of,
)

__all__ = ["BackgroundHub", "DROP_POLICIES", "HubConfig", "LocalFeed", "SessionHub"]

DROP_POLICIES = ("block", "oldest", "newest")

#: Keys of the scenario identity compared between a client's ``hello``
#: metadata and the hub's own scenario (mirrors ``repro replay``).
SCENARIO_KEYS = ("seed", "mount", "location", "tx_power_dbm")


@dataclass
class HubConfig:
    """Tunables of one hub instance (all enforced per session)."""

    host: str = "127.0.0.1"
    port: int = 9470
    #: Bounded ingest queue: pending (not yet analysed) chunks per session.
    max_pending: int = 64
    #: What to do when a session's queue is full: "block" | "oldest" | "newest".
    drop_policy: str = "block"
    #: Max sessions coalesced into one worker hand-off.
    batch_sessions: int = 32
    #: Analysis worker threads (1 is right for a 1-core container).
    workers: int = 1
    #: Per-session labeled stream gauges (cleaned up at session close).
    label_sessions: bool = True
    #: Drain budget for stop(): seconds to finish open sessions.
    drain_timeout_s: float = 30.0
    #: Fault-injection knob for the policy tests: every analysis batch
    #: sleeps this long, so tests can force queue growth deterministically.
    analysis_stall_s: float = 0.0

    def __post_init__(self) -> None:
        if self.drop_policy not in DROP_POLICIES:
            raise ValueError(
                f"drop_policy must be one of {DROP_POLICIES}, "
                f"got {self.drop_policy!r}"
            )
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.batch_sessions < 1:
            raise ValueError("batch_sessions must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


class _HubSession:
    """Hub-side state of one tenant session."""

    __slots__ = (
        "sid", "stream", "pending", "pending_reads", "finalize_pending",
        "finalize_wall", "in_flight", "queued", "done", "aborted", "gate",
        "sender", "writer", "dropped_chunks",
    )

    def __init__(
        self,
        sid: str,
        stream: "StreamingSession | WorkspaceSession",
        sender: Callable[["_HubSession", List[StreamEvent], bool], None],
        writer: Optional[asyncio.StreamWriter],
    ) -> None:
        self.sid = sid
        self.stream = stream
        #: Pending chunks: (enqueue_wall, (ts, tag, phase, rss, dopp),
        #: epcs, port, tile, t_hi) — tile/t_hi are None for single-pad
        #: tenants.
        self.pending: List[
            Tuple[float, tuple, List[str], int, Optional[int], Optional[float]]
        ] = []
        self.pending_reads = 0
        self.finalize_pending = False
        self.finalize_wall: Optional[float] = None
        self.in_flight = False
        self.queued = False
        self.done = False
        self.aborted = False
        self.gate = asyncio.Event()
        self.gate.set()
        self.sender = sender
        self.writer = writer
        self.dropped_chunks = 0


class SessionHub:
    """Multiplex many concurrent streaming sessions over one engine.

    Parameters
    ----------
    pad:
        The calibrated :class:`RFIPad` every session runs against (the
        per-session :class:`StreamingSession` snapshots its stage set).
    config:
        :class:`HubConfig` tunables.
    scenario_meta:
        Optional scenario identity dict; compared against each client's
        ``hello`` metadata, mismatches are returned as warnings in the
        ``welcome`` frame (a session recorded on a different rig will be
        scored against the wrong calibration).
    tiles:
        Tile count of the workspace the hub's pad was calibrated against
        (1 = ordinary single-pad hub).  When > 1, every session is a
        :class:`~repro.stream.WorkspaceSession` and tenants may route
        per-tile chunk streams via the ``tile``/``t_hi`` header keys of
        :func:`~repro.serve.framing.chunk_message`.
    """

    def __init__(
        self,
        pad: RFIPad,
        config: Optional[HubConfig] = None,
        scenario_meta: Optional[Dict[str, object]] = None,
        tiles: int = 1,
    ) -> None:
        if tiles < 1:
            raise ValueError("tiles must be >= 1")
        self.pad = pad
        self.tiles = tiles
        self.config = config if config is not None else HubConfig()
        self.scenario_meta = dict(scenario_meta) if scenario_meta else None
        self._log = get_logger("serve.hub")
        self._sessions: Dict[str, _HubSession] = {}
        self._sessions_opened = 0
        self._queue_depth = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatchers: List[asyncio.Task] = []
        self._ready: Optional[asyncio.Queue] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping = False
        self._started = False

    # -- lifecycle -----------------------------------------------------

    async def start(self, serve_network: bool = True) -> None:
        """Warm the worker tier, start dispatchers, optionally bind."""
        if self._started:
            raise RuntimeError("hub already started")
        self._started = True
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        self._ready = asyncio.Queue()
        self._pool = ThreadPoolExecutor(
            max_workers=cfg.workers, thread_name_prefix="repro-serve"
        )
        # Warm every worker thread once: thread creation, the stage
        # objects' first-touch allocations, and the grammar's empty run
        # all happen before the first tenant's chunk, not during it.
        await asyncio.gather(
            *[
                self._loop.run_in_executor(self._pool, self._warm_worker)
                for _ in range(cfg.workers)
            ]
        )
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch_loop())
            for _ in range(cfg.workers)
        ]
        if serve_network:
            self._server = await asyncio.start_server(
                self._on_connection, host=cfg.host, port=cfg.port
            )

    def _warm_worker(self) -> None:
        session = StreamingSession(self.pad)
        session.ingest(ReportLog())
        session.finalize()

    @property
    def bound_address(self) -> Tuple[str, int]:
        """The listening ``(host, port)`` (resolves ``port=0`` bindings)."""
        if self._server is None:
            raise RuntimeError("hub is not serving a network endpoint")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def open_sessions(self) -> int:
        return len(self._sessions)

    @property
    def sessions_opened(self) -> int:
        """Total sessions ever accepted (monotonic)."""
        return self._sessions_opened

    @property
    def queue_depth(self) -> int:
        """Pending (accepted, not yet analysed) chunks across all sessions."""
        return self._queue_depth

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting; optionally drain and finalize open sessions."""
        if not self._started:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            for sess in list(self._sessions.values()):
                if not sess.done and not sess.finalize_pending:
                    self.request_finalize(sess)
            deadline = time.monotonic() + self.config.drain_timeout_s
            while self._sessions and time.monotonic() < deadline:
                await asyncio.sleep(0.005)
            if self._sessions:
                self._log.warning(
                    "drain timed out with %d session(s) open", len(self._sessions)
                )
                for sess in list(self._sessions.values()):
                    self._abort_session(sess)
        else:
            for sess in list(self._sessions.values()):
                self._abort_session(sess)
        assert self._ready is not None
        for _ in self._dispatchers:
            self._ready.put_nowait(None)
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._started = False
        self._stopping = False

    # -- session management --------------------------------------------

    def open_session(
        self,
        sid: str,
        sender: Callable[["_HubSession", List[StreamEvent], bool], None],
        writer: Optional[asyncio.StreamWriter] = None,
    ) -> _HubSession:
        if self._stopping:
            raise RuntimeError("hub is draining; not accepting sessions")
        if sid in self._sessions:
            raise ValueError(f"session {sid!r} is already open")
        label = sid if self.config.label_sessions else None
        if self.tiles > 1:
            stream: "StreamingSession | WorkspaceSession" = WorkspaceSession(
                self.pad, tile_count=self.tiles, session_id=label
            )
        else:
            stream = StreamingSession(self.pad, session_id=label)
        sess = _HubSession(sid, stream, sender, writer)
        self._sessions[sid] = sess
        self._sessions_opened += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("serve.sessions_opened")
            metrics.set_gauge("serve.sessions_open", float(len(self._sessions)))
        return sess

    async def submit_chunk(
        self,
        sess: _HubSession,
        columns: tuple,
        epcs: List[str],
        port: int,
        tile: Optional[int] = None,
        t_hi: Optional[float] = None,
    ) -> bool:
        """Enqueue one decoded chunk under the session's queue policy.

        Returns ``False`` when the chunk (or an older one) was shed by a
        drop policy; ``True`` when the chunk was accepted losslessly.
        Under ``block`` this coroutine suspends until the dispatcher has
        made room — the caller (a connection reader) therefore stops
        consuming its socket, which is the backpressure.
        """
        if sess.done or sess.finalize_pending:
            raise FramingError(f"session {sess.sid!r} is already finalized")
        cfg = self.config
        metrics = get_metrics()
        accepted = True
        while len(sess.pending) >= cfg.max_pending:
            if cfg.drop_policy == "block":
                if metrics.enabled:
                    metrics.inc("serve.backpressure_waits")
                    metrics.inc(
                        "serve.backpressure_waits", labels={"policy": "block"}
                    )
                sess.gate.clear()
                await sess.gate.wait()
                if sess.done or sess.aborted:
                    return False
                continue
            if cfg.drop_policy == "oldest":
                wall, cols, *_rest = sess.pending.pop(0)
                shed_reads = int(cols[0].size)
                sess.pending_reads -= shed_reads
                self._queue_depth -= 1
            else:  # newest: shed the incoming chunk itself
                shed_reads = int(columns[0].size)
                accepted = False
            sess.dropped_chunks += 1
            self._note_drop(sess, shed_reads)
            if not accepted:
                return False
            break
        rows = int(columns[0].size)
        sess.pending.append((time.monotonic(), columns, epcs, port, tile, t_hi))
        sess.pending_reads += rows
        self._queue_depth += 1
        if metrics.enabled:
            metrics.inc("serve.chunks")
            metrics.inc("serve.reads", float(rows))
            metrics.set_gauge("serve.queue_depth", float(self._queue_depth))
        self._enqueue_ready(sess)
        return accepted

    def request_finalize(self, sess: _HubSession) -> None:
        """Mark the session's stream ended; the tail flush is queued."""
        if sess.done or sess.finalize_pending:
            return
        sess.finalize_pending = True
        sess.finalize_wall = time.monotonic()
        self._enqueue_ready(sess)

    def _note_drop(self, sess: _HubSession, reads: int) -> None:
        policy = self.config.drop_policy
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("serve.dropped_chunks")
            metrics.inc("serve.dropped_chunks", labels={"policy": policy})
            metrics.inc("serve.dropped_reads", float(reads))
        if sess.writer is not None and not sess.writer.is_closing():
            sess.writer.write(
                encode_frame(
                    {
                        "type": "dropped",
                        "session": sess.sid,
                        "reads": reads,
                        "policy": policy,
                    }
                )
            )

    def _enqueue_ready(self, sess: _HubSession) -> None:
        if sess.queued or sess.in_flight or sess.done:
            return
        sess.queued = True
        assert self._ready is not None
        self._ready.put_nowait(sess)

    def _abort_session(self, sess: _HubSession) -> None:
        """Tear a session down without finalizing (peer vanished)."""
        if sess.done:
            return
        sess.aborted = True
        sess.done = True
        sess.gate.set()
        self._queue_depth -= len(sess.pending)
        sess.pending = []
        sess.pending_reads = 0
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("serve.sessions_aborted")
        self._forget_session(sess)

    def _forget_session(self, sess: _HubSession) -> None:
        self._sessions.pop(sess.sid, None)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("serve.sessions_closed")
            metrics.set_gauge("serve.sessions_open", float(len(self._sessions)))
            metrics.set_gauge("serve.queue_depth", float(self._queue_depth))
            if self.config.label_sessions:
                metrics.remove_labeled({"session": sess.sid})

    # -- the dispatcher ------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Micro-batching pump: coalesce pending work, hand to a worker.

        Waits for one ready session, then opportunistically drains every
        other session that became ready in the meantime (up to
        ``batch_sessions``) — so under load, one executor hand-off
        amortizes across many tenants, and when idle, latency is one
        queue wake-up.
        """
        assert self._ready is not None and self._loop is not None
        cfg = self.config
        metrics = get_metrics()
        while True:
            sess = await self._ready.get()
            if sess is None:
                return
            batch = [sess]
            while len(batch) < cfg.batch_sessions:
                try:
                    nxt = self._ready.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    self._ready.put_nowait(None)
                    break
                batch.append(nxt)
            jobs = []
            for s in batch:
                s.queued = False
                if s.done:
                    continue
                s.in_flight = True
                chunks, finalize = s.pending, s.finalize_pending
                s.pending = []
                s.pending_reads = 0
                s.finalize_pending = False
                self._queue_depth -= len(chunks)
                jobs.append((s, chunks, finalize))
                s.gate.set()  # room freed: release blocked producers
            if not jobs:
                continue
            if metrics.enabled:
                metrics.set_gauge("serve.queue_depth", float(self._queue_depth))
                metrics.inc("serve.batches")
                metrics.observe("serve.batch_sessions", float(len(jobs)))
            results = await self._loop.run_in_executor(
                self._pool, self._analyze_batch, jobs
            )
            writers = []
            for s, events, finalized in results:
                s.in_flight = False
                if s.aborted:
                    continue
                try:
                    s.sender(s, events, finalized)
                except Exception:  # pragma: no cover - peer went away mid-send
                    self._abort_session(s)
                    continue
                if s.writer is not None and not s.writer.is_closing():
                    writers.append(s.writer)
                if finalized:
                    s.done = True
                    s.gate.set()
                    self._forget_session(s)
                elif s.pending or s.finalize_pending:
                    self._enqueue_ready(s)
            for writer in writers:
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                    pass

    def _analyze_batch(
        self, jobs: Sequence[Tuple[_HubSession, list, bool]]
    ) -> List[Tuple[_HubSession, List[StreamEvent], bool]]:
        """Worker-side: run the numpy stages for one micro-batch.

        Each single-pad session's pending chunks are coalesced into
        **one** ingest call — legal because the finalized stream is
        chunking-invariant — which amortizes the per-ingest
        segmenter/stage dispatch across everything that queued since the
        session was last served.  Workspace sessions are instead ingested
        chunk-by-chunk in arrival order: each chunk routes to its tile's
        watermark merge, which does its own buffering, so coalescing
        across tiles would reorder the per-tile streams for nothing.
        """
        cfg = self.config
        metrics = get_metrics()
        tracer = get_tracer()
        if cfg.analysis_stall_s > 0.0:
            time.sleep(cfg.analysis_stall_s)
        out: List[Tuple[_HubSession, List[StreamEvent], bool]] = []
        with tracer.span("serve.batch", sessions=len(jobs)) as sp:
            total_reads = 0
            for sess, chunks, finalize in jobs:
                events: List[StreamEvent] = []
                oldest_wall: Optional[float] = None
                try:
                    if chunks and isinstance(sess.stream, WorkspaceSession):
                        oldest_wall = chunks[0][0]
                        for _, cols, epcs, port, tile, t_hi in chunks:
                            log = ReportLog()
                            if cols[0].size:
                                log.extend_columns(*cols, epcs, antenna_port=port)
                            total_reads += int(cols[0].size)
                            if tile is not None:
                                events.extend(
                                    sess.stream.ingest_tile(tile, log, t_hi=t_hi)
                                )
                            else:
                                events.extend(sess.stream.ingest(log))
                    elif chunks:
                        oldest_wall = chunks[0][0]
                        coalesced = ReportLog()
                        for _, cols, epcs, port, _tile, _t_hi in chunks:
                            if cols[0].size:
                                coalesced.extend_columns(
                                    *cols, epcs, antenna_port=port
                                )
                            total_reads += int(cols[0].size)
                        events.extend(sess.stream.ingest(coalesced))
                    if finalize:
                        if oldest_wall is None:
                            oldest_wall = sess.finalize_wall
                        events.extend(sess.stream.finalize())
                except Exception:
                    # A poisoned session must not take the batch (or the
                    # dispatcher) down with it.
                    self._log.exception(
                        "session %s: analysis failed; aborting it", sess.sid
                    )
                    sess.aborted = True
                    events, finalize = [], True
                if metrics.enabled and events and oldest_wall is not None:
                    lag = max(0.0, time.monotonic() - oldest_wall)
                    for ev in events:
                        if ev.final:
                            metrics.observe("serve.event_latency_s", lag)
                out.append((sess, events, finalize))
            sp.set(reads=total_reads)
        return out

    # -- network layer -------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_sessions: Dict[str, _HubSession] = {}
        decoder = FrameDecoder()
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("serve.connections")
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for header, payload in decoder.feed(data):
                    await self._handle_message(
                        conn_sessions, writer, header, payload
                    )
        except FramingError as exc:
            self._send_error(writer, str(exc))
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            for sess in conn_sessions.values():
                if not sess.done:
                    self._abort_session(sess)
            writer.close()

    async def _handle_message(
        self,
        conn_sessions: Dict[str, _HubSession],
        writer: asyncio.StreamWriter,
        header: Dict[str, object],
        payload: bytes,
    ) -> None:
        mtype = header.get("type")
        if mtype == "hello":
            sid = header.get("session")
            if not sid:
                raise FramingError("hello is missing a session id")
            sid = str(sid)
            try:
                sess = self.open_session(
                    sid, self._network_sender, writer=writer
                )
            except (RuntimeError, ValueError) as exc:
                self._send_error(writer, str(exc), session=sid)
                return
            conn_sessions[sid] = sess
            welcome: Dict[str, object] = {"type": "welcome", "session": sid}
            warnings = self._scenario_warnings(header.get("meta"))
            if warnings:
                welcome["warnings"] = warnings
            writer.write(encode_frame(welcome))
            return
        if mtype == "chunk":
            sess = self._resolve(conn_sessions, header)
            columns_epcs = decode_chunk(header, payload)
            ts, tag, phase, rss, dopp, epcs, port = columns_epcs
            await self.submit_chunk(
                sess, (ts, tag, phase, rss, dopp), epcs, port,
                tile=tile_of(header), t_hi=t_hi_of(header),
            )
            return
        if mtype == "finalize":
            sess = self._resolve(conn_sessions, header)
            self.request_finalize(sess)
            return
        raise FramingError(f"unknown message type {mtype!r}")

    def _resolve(
        self, conn_sessions: Dict[str, _HubSession], header: Dict[str, object]
    ) -> _HubSession:
        sid = header.get("session")
        sess = conn_sessions.get(str(sid)) if sid is not None else None
        if sess is None:
            raise FramingError(f"message references unknown session {sid!r}")
        if sess.done:
            raise FramingError(f"session {sid!r} is already closed")
        return sess

    def _scenario_warnings(self, meta: object) -> List[str]:
        if not isinstance(meta, dict) or self.scenario_meta is None:
            return []
        warnings = []
        for key in SCENARIO_KEYS:
            if key in meta and meta[key] != self.scenario_meta.get(key):
                warnings.append(
                    f"scenario {key} mismatch: session {meta[key]!r} vs "
                    f"hub {self.scenario_meta.get(key)!r}"
                )
        for w in warnings:
            self._log.warning("%s", w)
        return warnings

    def _network_sender(
        self, sess: _HubSession, events: List[StreamEvent], finalized: bool
    ) -> None:
        writer = sess.writer
        if writer is None or writer.is_closing():
            if not finalized:
                self._abort_session(sess)
            return
        for ev in events:
            writer.write(encode_frame(event_header(sess.sid, ev)))
        if finalized:
            writer.write(encode_frame({"type": "done", "session": sess.sid}))
            if self._stopping:
                writer.write(
                    encode_frame({"type": "shutdown", "session": sess.sid})
                )

    @staticmethod
    def _send_error(
        writer: asyncio.StreamWriter, message: str, session: Optional[str] = None
    ) -> None:
        if writer.is_closing():
            return
        header: Dict[str, object] = {"type": "error", "message": message}
        if session is not None:
            header["session"] = session
        writer.write(encode_frame(header))


def event_header(sid: str, ev: StreamEvent) -> Dict[str, object]:
    """The wire form of one stream event (lossy: labels, not arrays)."""
    if isinstance(ev, StrokeEvent):
        return {
            "type": "event",
            "session": sid,
            "kind": "stroke",
            "final": ev.final,
            "t0": ev.window.t0,
            "t1": ev.window.t1,
            "emitted_at": ev.emitted_at,
            "token": ev.stroke.token if ev.stroke is not None else None,
        }
    assert isinstance(ev, LetterEvent)
    return {
        "type": "event",
        "session": sid,
        "kind": "letter",
        "final": ev.final,
        "letter": ev.result.letter,
        "tokens": list(ev.result.stroke_tokens),
        "emitted_at": ev.emitted_at,
    }


# ----------------------------------------------------------------------
# In-process tenants (tests, benchmarks, embedded use).


class LocalFeed:
    """Drive one hub session in-process, skipping the socket layer.

    Exercises the same queue policy, dispatcher, coalescing, and worker
    tier as a network tenant — only the framing codec is bypassed — so
    the golden-stream equivalence tests can compare the hub's full event
    objects (numpy maps included) against the batch pipeline.
    """

    def __init__(self, hub: SessionHub, sid: str) -> None:
        self._hub = hub
        self.events: List[StreamEvent] = []
        self._done = asyncio.Event()
        self.session = hub.open_session(sid, self._collect)

    def _collect(
        self, sess: _HubSession, events: List[StreamEvent], finalized: bool
    ) -> None:
        self.events.extend(events)
        if finalized:
            self._done.set()

    async def feed(self, chunk: ReportLog) -> bool:
        """Submit one chunk (any chunking); see :meth:`SessionHub.submit_chunk`."""
        ts, tag, phase, rss, dopp, port, epc = chunk.columns()
        return await self._hub.submit_chunk(
            self.session,
            (ts, tag, phase, rss, dopp),
            list(epc),
            int(port[0]) if port.size else 1,
        )

    async def feed_tile(
        self, chunk: ReportLog, tile: int, t_hi: Optional[float] = None
    ) -> bool:
        """Submit one tile's chunk to a workspace-bound hub session."""
        ts, tag, phase, rss, dopp, port, epc = chunk.columns()
        return await self._hub.submit_chunk(
            self.session,
            (ts, tag, phase, rss, dopp),
            list(epc),
            int(port[0]) if port.size else 1,
            tile=tile,
            t_hi=t_hi,
        )

    async def finalize(self) -> List[StreamEvent]:
        """End the stream and wait for every remaining event."""
        self._hub.request_finalize(self.session)
        await self._done.wait()
        return list(self.events)


# ----------------------------------------------------------------------
# Running a hub off-thread (benchmarks, tests, `loadgen --self-serve`).


class BackgroundHub:
    """Run a :class:`SessionHub` on its own event loop in a daemon thread.

    The constructor blocks until the hub is listening; :attr:`address`
    then carries the bound ``(host, port)``.  :meth:`stop` drains
    gracefully and joins the thread.
    """

    def __init__(
        self,
        pad: RFIPad,
        config: Optional[HubConfig] = None,
        scenario_meta: Optional[Dict[str, object]] = None,
        tiles: int = 1,
    ) -> None:
        self.hub = SessionHub(
            pad, config=config, scenario_meta=scenario_meta, tiles=tiles
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self.address: Optional[Tuple[str, int]] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-hub", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failure is not None:
            raise RuntimeError("hub failed to start") from self._failure
        if self.address is None:
            raise RuntimeError("hub did not come up within 30 s")

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        stop = asyncio.Event()
        self._stop_event = stop

        async def _main() -> None:
            try:
                await self.hub.start()
                self.address = self.hub.bound_address
            except BaseException as exc:  # pragma: no cover - startup failure
                self._failure = exc
                self._ready.set()
                return
            self._ready.set()
            await stop.wait()
            await self.hub.stop(drain=True)

        try:
            loop.run_until_complete(_main())
        finally:
            loop.close()

    def stop(self) -> None:
        """Drain the hub and stop the background loop (idempotent)."""
        loop = self._loop
        if loop is None or not self._thread.is_alive():
            return
        loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=60.0)
