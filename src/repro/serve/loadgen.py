"""Load generator for the serving hub: N synthetic writers, measured.

Drives ``sessions`` concurrent writers against a running hub, each
replaying a simulated letter session chunk-by-chunk at (scaled) real-time
pace over its own connection — the traffic shape of N people writing on N
pads at once.  Records what the serving benchmark needs: sustained
concurrency, completed sessions per second, and the p50/p95/p99 of the
finalize-to-letter latency a writer perceives after lifting the pen.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..rfid.reports import ReportLog
from ..sim.live import iter_chunks
from ..sim.runner import SessionRunner
from ..motion.script import script_for_letter
from .client import ServeClient

__all__ = ["LoadgenResult", "run_loadgen", "run_loadgen_sync", "session_logs"]


def session_logs(
    runner: SessionRunner, letter: str, count: int
) -> List[ReportLog]:
    """Collect ``count`` distinct simulated sessions writing ``letter``.

    Writers share these round-robin: hub sessions are independent, so N
    writers replaying K distinct logs still exercise N concurrent
    sessions — while keeping loadgen startup O(K), not O(N).
    """
    return [
        runner.run_script(script_for_letter(letter, runner.rng))
        for _ in range(count)
    ]


@dataclass
class LoadgenResult:
    """What one loadgen run measured."""

    sessions: int
    completed: int = 0
    failed: int = 0
    letters_expected: int = 0
    #: Peak number of sessions open at the same instant.
    peak_concurrent: int = 0
    wall_s: float = 0.0
    sessions_per_s: float = 0.0
    event_p50_ms: float = 0.0
    event_p95_ms: float = 0.0
    event_p99_ms: float = 0.0
    dropped_chunks: int = 0
    errors: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "sessions": self.sessions,
            "completed": self.completed,
            "failed": self.failed,
            "letters_expected": self.letters_expected,
            "peak_concurrent": self.peak_concurrent,
            "wall_s": round(self.wall_s, 4),
            "sessions_per_s": round(self.sessions_per_s, 3),
            "event_p50_ms": round(self.event_p50_ms, 3),
            "event_p95_ms": round(self.event_p95_ms, 3),
            "event_p99_ms": round(self.event_p99_ms, 3),
            "dropped_chunks": self.dropped_chunks,
            "errors": self.errors[:10],
        }


def _percentile(sorted_vals: Sequence[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


async def run_loadgen(
    host: str,
    port: int,
    logs: Sequence[ReportLog],
    sessions: int,
    concurrency: Optional[int] = None,
    chunk_s: float = 0.1,
    time_scale: float = 1.0,
    pace: bool = True,
    ramp_s: float = 0.0,
    expected_letter: Optional[str] = None,
    meta: Optional[Dict[str, object]] = None,
    session_timeout_s: float = 120.0,
) -> LoadgenResult:
    """Drive ``sessions`` writers against ``host:port`` and measure.

    Each writer opens its own connection, replays one of ``logs``
    (round-robin) in ``chunk_s`` slices with ``chunk_s * time_scale``
    inter-chunk pacing (``pace=False`` firehoses instead), finalizes, and
    waits for its letter.  ``concurrency`` caps simultaneous writers
    (default: all at once).  ``ramp_s`` staggers writer starts uniformly
    across that many seconds — real writers are not phase-locked, and a
    ramp shorter than the session keeps them all concurrently open while
    spreading the finalize burst.
    """
    if not logs:
        raise ValueError("loadgen needs at least one session log")
    cap = concurrency if concurrency is not None else sessions
    gate = asyncio.Semaphore(max(1, cap))
    chunked = [list(iter_chunks(log, chunk_s)) for log in logs]
    delay = chunk_s * time_scale if pace else 0.0
    result = LoadgenResult(sessions=sessions)
    latencies: List[float] = []
    open_now = 0

    async def one_writer(i: int) -> None:
        nonlocal open_now
        if ramp_s > 0.0 and sessions > 1:
            await asyncio.sleep(ramp_s * i / sessions)
        async with gate:
            chunks = chunked[i % len(chunked)]
            client = await ServeClient.connect(host, port)
            open_now += 1
            result.peak_concurrent = max(result.peak_concurrent, open_now)
            try:
                handle, latency = await client.run_session(
                    f"loadgen-{i}",
                    chunks,
                    meta=meta,
                    pace=[delay] * len(chunks) if delay > 0.0 else None,
                    timeout=session_timeout_s,
                )
                result.completed += 1
                result.dropped_chunks += handle.dropped_chunks
                latencies.append(latency)
                if (
                    expected_letter is not None
                    and handle.final_letter() == expected_letter
                ):
                    result.letters_expected += 1
            except (ConnectionError, asyncio.TimeoutError, OSError) as exc:
                result.failed += 1
                result.errors.append(f"session {i}: {exc!r}")
            finally:
                open_now -= 1
                await client.close()

    t0 = time.monotonic()
    await asyncio.gather(*[one_writer(i) for i in range(sessions)])
    result.wall_s = time.monotonic() - t0
    if result.wall_s > 0.0:
        result.sessions_per_s = result.completed / result.wall_s
    latencies.sort()
    result.event_p50_ms = _percentile(latencies, 0.50) * 1e3
    result.event_p95_ms = _percentile(latencies, 0.95) * 1e3
    result.event_p99_ms = _percentile(latencies, 0.99) * 1e3
    return result


def run_loadgen_sync(*args, **kwargs) -> LoadgenResult:
    """Run :func:`run_loadgen` on a fresh event loop (CLI/bench entry)."""
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(run_loadgen(*args, **kwargs))
    finally:
        loop.close()


def loadgen_args_to_tuple(
    result: LoadgenResult,
) -> Tuple[int, float, float, float]:
    """(peak_concurrent, sessions_per_s, p95_ms, p99_ms) — bench fields."""
    return (
        result.peak_concurrent,
        result.sessions_per_s,
        result.event_p95_ms,
        result.event_p99_ms,
    )
