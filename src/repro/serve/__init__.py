"""Serving layer: multiplex thousands of pads behind one engine.

:mod:`repro.serve.framing` is the wire codec (length-prefixed frames,
columnar chunk payloads); :mod:`repro.serve.hub` runs the asyncio
:class:`SessionHub` with bounded ingest queues, micro-batched analysis on
a warmed worker tier, and graceful drain; :mod:`repro.serve.client` is
the asyncio client used by ``repro feed``; :mod:`repro.serve.loadgen`
drives N synthetic writers for the serving benchmark.  The contract
(ordering, backpressure, drop, bit-identity) is DESIGN.md §14.
"""

from .framing import FrameDecoder, FramingError, chunk_message, encode_frame
from .hub import DROP_POLICIES, BackgroundHub, HubConfig, LocalFeed, SessionHub

__all__ = [
    "BackgroundHub",
    "DROP_POLICIES",
    "FrameDecoder",
    "FramingError",
    "HubConfig",
    "LocalFeed",
    "SessionHub",
    "chunk_message",
    "encode_frame",
]
