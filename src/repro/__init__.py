"""repro — a full reproduction of RFIPad (ICDCS 2017).

RFIPad turns a plane of passive UHF RFID tags into a device-free, in-air
handwriting surface.  This package contains both the paper's recognition
pipeline (:mod:`repro.core`) and, because the original runs on hardware we
do not have, the complete simulation substrate it needs: backscatter
channel physics (:mod:`repro.physics`), an EPC C1G2 reader/tag system
(:mod:`repro.rfid`), hand-motion synthesis (:mod:`repro.motion`), and the
experiment harness (:mod:`repro.sim`, :mod:`repro.experiments`).

Quickstart::

    from repro import SessionRunner, Motion, StrokeKind

    runner = SessionRunner()                     # build + calibrate a pad
    trial = runner.run_motion(Motion(StrokeKind.VBAR))
    print(trial.observed.label, trial.fully_correct)
"""

from .core import (
    LetterResult,
    RFIPad,
    RFIPadConfig,
    StaticCalibration,
    StrokeObservation,
    TreeGrammar,
    calibrate,
)
from .motion import (
    ALPHABET,
    Direction,
    Motion,
    StrokeKind,
    UserProfile,
    WritingScript,
    all_motions,
    default_users,
    script_for_letter,
    script_for_motion,
)
from .physics import GridLayout, ReaderAntenna, Vec3
from .rfid import Reader, ReaderConfig, ReportLog, TagReadReport, deploy_array
from .sim import (
    ScenarioConfig,
    SessionRunner,
    build_scenario,
    score_motion_trials,
    score_segmentation,
)
from .stream import LetterEvent, StreamEvent, StreamingSession, StrokeEvent

__version__ = "1.0.0"

__all__ = [
    "ALPHABET",
    "Direction",
    "GridLayout",
    "LetterEvent",
    "LetterResult",
    "Motion",
    "RFIPad",
    "RFIPadConfig",
    "Reader",
    "ReaderConfig",
    "ReportLog",
    "ScenarioConfig",
    "SessionRunner",
    "StaticCalibration",
    "StreamEvent",
    "StreamingSession",
    "StrokeEvent",
    "StrokeKind",
    "StrokeObservation",
    "TagReadReport",
    "TreeGrammar",
    "UserProfile",
    "Vec3",
    "WritingScript",
    "all_motions",
    "build_scenario",
    "calibrate",
    "default_users",
    "deploy_array",
    "score_motion_trials",
    "score_segmentation",
    "script_for_letter",
    "script_for_motion",
    "__version__",
]
