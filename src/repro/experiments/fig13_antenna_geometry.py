"""Fig. 13 / section IV-B.3 — beam angle and minimum antenna distance.

Eq. 13-14 give the idealized beam angle of the 8 dBi panel and, from the
tag-plane size, the minimum antenna-to-plane distance for full 3 dB
coverage.  The paper computes sqrt(4*pi/8) ~= 72 degrees — note it plugs
the dBi *number* in as a linear gain; the physically correct linear gain
of 8 dBi is 6.31, giving ~81 degrees.  We report both, and verify the
coverage claim against the actual pattern model.
"""

from __future__ import annotations

import math

from ..physics.antenna import (
    ReaderAntenna,
    minimum_plane_distance,
    plane_side_for_grid,
)
from ..physics.geometry import Vec3
from ..units import db_to_linear, linear_to_db
from .base import ExperimentResult, register


@register("fig13")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    plane_side = plane_side_for_grid(tag_size=0.044, pitch=0.06, tags_per_side=5)

    # Paper's arithmetic: linear gain "8".
    paper_gain_dbi = linear_to_db(8.0)  # ~9.03 dBi
    paper_beam = math.degrees(math.sqrt(4.0 * math.pi / 8.0))
    paper_min_d = minimum_plane_distance(plane_side, paper_gain_dbi)

    # Correct physics for an 8 dBi panel.
    antenna = ReaderAntenna(Vec3(0, 0, -0.32), Vec3(0, 0, 1), gain_dbi=8.0)
    true_beam = antenna.beam_angle_degrees()
    true_min_d = minimum_plane_distance(plane_side, 8.0)

    # Verify the coverage claim with the actual pattern: at the minimum
    # distance, the plane corner must still be within 3 dB of boresight.
    ant_at_min = ReaderAntenna(
        Vec3(0, 0, -true_min_d), Vec3(0, 0, 1), gain_dbi=8.0
    )
    corner = Vec3(plane_side / 2.0, plane_side / 2.0, 0.0)
    edge = Vec3(plane_side / 2.0, 0.0, 0.0)
    drop_edge_db = linear_to_db(
        ant_at_min.gain_linear / ant_at_min.gain_towards(edge)
    )

    rows = [
        {"quantity": "tag plane side (m)", "value": plane_side},
        {"quantity": "beam angle, paper arithmetic (deg)", "value": paper_beam},
        {"quantity": "min distance, paper arithmetic (m)", "value": paper_min_d},
        {"quantity": "beam angle, 8 dBi physical (deg)", "value": true_beam},
        {"quantity": "min distance, 8 dBi physical (m)", "value": true_min_d},
        {"quantity": "pattern drop at plane edge @ min distance (dB)", "value": drop_edge_db},
    ]
    met = (
        abs(plane_side - 0.46) < 0.01
        and abs(paper_beam - 72.0) < 2.0
        and abs(paper_min_d - 0.317) < 0.02
        and drop_edge_db <= 3.2
    )
    return ExperimentResult(
        experiment_id="fig13",
        title="Idealized beam geometry and minimum reader-to-plane distance",
        rows=rows,
        expectation=(
            "paper's numbers (72 deg, ~31.7 cm) reproduce under its own "
            "arithmetic; the edge of the plane stays within ~3 dB at the "
            "minimum distance"
        ),
        expectation_met=met,
        notes=[
            "the paper substitutes the dBi value 8 as a linear gain in Eq. 14; "
            "the physically correct beam for 8 dBi is ~81 deg (min distance ~27 cm)"
        ],
    )
