"""Fig. 22 — stroke segmentation and letter deduction for L, T, Z, H, E.

Per letter: insertion rate (windows fired during repositioning), underfill
rate (incomplete stroke excavation), stroke recognition accuracy, and
letter recognition accuracy.  Shape checks: underfill stays low (< ~0.15
here vs the paper's 0.07 on real hardware), and insertion grows with the
stroke count of the letter.
"""

from __future__ import annotations

import numpy as np

from ..motion.letters import LETTER_STROKES
from ..sim.metrics import merge_segmentation_scores, score_segmentation
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register

LETTERS = ("L", "T", "Z", "H", "E")


@register("fig22")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 4 if fast else 20
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))

    rows = []
    underfills = []
    insertion_by_strokes = {}
    for letter in LETTERS:
        seg_scores = []
        stroke_hits = 0
        stroke_total = 0
        letter_hits = 0
        for _ in range(repeats):
            trial = runner.run_letter(letter)
            seg_scores.append(
                score_segmentation(trial.result.windows, trial.true_stroke_intervals)
            )
            letter_hits += trial.correct
            want = trial.true_stroke_tokens
            got = trial.result.stroke_tokens
            stroke_total += len(want)
            stroke_hits += sum(1 for w, g in zip(want, got) if w == g)
        merged = merge_segmentation_scores(seg_scores)
        underfills.append(merged.underfill_rate)
        n_strokes = len(LETTER_STROKES[letter])
        insertion_by_strokes.setdefault(n_strokes, []).append(merged.insertion_rate)
        rows.append(
            {
                "letter": letter,
                "strokes": n_strokes,
                "insertion_rate": merged.insertion_rate,
                "underfill_rate": merged.underfill_rate,
                "stroke_recognition": stroke_hits / max(1, stroke_total),
                "letter_recognition": letter_hits / repeats,
            }
        )

    met = max(underfills) <= 0.25 and float(np.mean(underfills)) <= 0.15
    return ExperimentResult(
        experiment_id="fig22",
        title="Segmentation + letter deduction over L, T, Z, H, E",
        rows=rows,
        expectation=(
            "underfill stays low for all letters (paper: < 0.07); insertion "
            "varies by letter and grows with stroke count"
        ),
        expectation_met=met,
    )
