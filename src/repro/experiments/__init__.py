"""One module per paper artefact (table/figure), all registered in
:data:`repro.experiments.REGISTRY` and runnable via
:func:`repro.experiments.run_experiment`.
"""

from .base import REGISTRY, ExperimentResult, register, run_experiment

# Importing the modules populates the registry.
from . import (  # noqa: F401  (imported for registration side effects)
    ablations,
    extensions,
    fig02_observations,
    fig04_tag_diversity,
    fig05_deviation_bias,
    fig06_unwrap,
    fig07_suppression_image,
    fig08_phase_symmetry,
    fig09_segmentation_trace,
    fig11_pair_interference,
    fig12_array_interference,
    fig13_antenna_geometry,
    fig16_environments,
    fig17_tx_power,
    fig18_angle,
    fig19_distance,
    fig20_users,
    fig21_time_cdf,
    fig22_segmentation,
    fig23_letters,
    fig24_latency,
    fig25_kinect,
    tab1_los_nlos,
)

ALL_EXPERIMENTS = sorted(REGISTRY)

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "REGISTRY",
    "register",
    "run_experiment",
]
