"""Ablation studies for the design choices called out in DESIGN.md §5.

These go beyond the paper's own figures: each isolates one design decision
of the RFIPad pipeline and measures what it buys.

* ``abl_weighting``  — Eq. 9/10 inverse-bias weighting vs uniform weights
  (both calibrated+unwrapped), in the asymmetric-multipath location #4.
* ``abl_otsu``       — OTSU's adaptive threshold vs fixed thresholds for
  trail-pixel recovery as the effective hand reflectivity varies.
* ``abl_window``     — segmentation window size sweep (the paper fixes
  0.5 s): insertion vs underfill trade-off.
* ``abl_direction``  — RSS-trough ordering vs a phase-based ordering for
  direction estimation (the paper's section III-B argument).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.imaging import render_grey_map
from ..core.otsu import binarize, binarize_fixed
from ..core.pipeline import RFIPadConfig
from ..core.segmentation import SegmentationConfig
from ..core.suppression import accumulative_differences
from ..core.unwrap import unwrap_residual
from ..motion.script import script_for_letter, script_for_motion
from ..motion.strokes import Direction, Motion, StrokeKind, all_motions
from ..sim.metrics import merge_segmentation_scores, score_motion_trials, score_segmentation
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("abl_weighting")
def run_weighting(fast: bool = True, seed: int = 7) -> ExperimentResult:
    """Inverse-bias weighting vs uniform weights at location #4."""
    repeats = 2 if fast else 15
    motions = all_motions()
    accs = {}
    for weighted in (False, True):
        config = RFIPadConfig(bias_weighting=weighted)
        runner = SessionRunner(
            build_scenario(ScenarioConfig(seed=seed, location=4)),
            pipeline_config=config,
        )
        accs[weighted] = score_motion_trials(
            runner.run_motion_battery(motions, repeats)
        ).accuracy
    rows = [
        {"variant": "uniform weights", "accuracy": accs[False]},
        {"variant": "inverse-bias weights (Eq. 10)", "accuracy": accs[True]},
    ]
    return ExperimentResult(
        experiment_id="abl_weighting",
        title="Ablation: deviation-bias weighting at the multipath-rich location",
        rows=rows,
        expectation="weighting does not hurt, and helps where biases vary",
        expectation_met=accs[True] >= accs[False] - 0.05,
    )


@register("abl_otsu")
def run_otsu(fast: bool = True, seed: int = 7) -> ExperimentResult:
    """OTSU vs fixed thresholds as the disturbance strength varies.

    We vary the hand's hover height (weaker disturbance higher up) and
    score how well each binarisation recovers the true trail column.
    A fixed threshold tuned for one strength fails at others; OTSU adapts.
    """
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    layout = runner.scenario.layout
    col = 2
    x = (col - (layout.cols - 1) / 2.0) * layout.pitch
    heights = (0.025, 0.04, 0.055)
    repeats = 2 if fast else 8
    fixed_thresholds = (0.5, 1.5, 4.0)

    def trail_f1(binary) -> float:
        fg = set(binary.foreground_cells())
        truth = {(r, col) for r in range(layout.rows)}
        tp = len(fg & truth)
        if tp == 0:
            return 0.0
        precision = tp / len(fg)
        recall = tp / len(truth)
        return 2 * precision * recall / (precision + recall)

    scores: dict = {"otsu": []}
    for thr in fixed_thresholds:
        scores[f"fixed@{thr}"] = []
    from ..motion.user import DEFAULT_USER

    for height in heights:
        user = dataclasses.replace(DEFAULT_USER, hover_height=height)
        for _ in range(repeats):
            script = script_for_motion(
                Motion(StrokeKind.VBAR), runner.rng, user=user, box_center=(x, 0.0)
            )
            log = runner.run_script(script)
            supp = accumulative_differences(log, runner.pad.calibration)
            grey = render_grey_map(supp.suppressed, layout)
            scores["otsu"].append(trail_f1(binarize(grey)))
            for thr in fixed_thresholds:
                scores[f"fixed@{thr}"].append(trail_f1(binarize_fixed(grey, thr)))

    rows = [
        {"binarisation": name, "trail_f1_mean": float(np.mean(vals))}
        for name, vals in scores.items()
    ]
    best_fixed = max(float(np.mean(v)) for k, v in scores.items() if k != "otsu")
    otsu_score = float(np.mean(scores["otsu"]))
    return ExperimentResult(
        experiment_id="abl_otsu",
        title="Ablation: OTSU vs fixed binarisation thresholds",
        rows=rows,
        expectation="adaptive OTSU matches or beats the best fixed threshold",
        expectation_met=otsu_score >= best_fixed - 0.05,
    )


@register("abl_window")
def run_window(fast: bool = True, seed: int = 7) -> ExperimentResult:
    """Segmentation window-size sweep (paper default: 0.5 s)."""
    repeats = 3 if fast else 12
    letters = ("T", "H", "E")
    window_sizes = (2, 5, 10)  # frames of 100 ms -> 0.2/0.5/1.0 s

    rows = []
    results = {}
    for frames in window_sizes:
        runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
        runner.pad.config.segmentation = dataclasses.replace(
            runner.pad.config.segmentation, window_frames=frames
        )
        scores = []
        for letter in letters:
            for _ in range(repeats):
                trial = runner.run_letter(letter)
                scores.append(
                    score_segmentation(
                        trial.result.windows, trial.true_stroke_intervals
                    )
                )
        merged = merge_segmentation_scores(scores)
        results[frames] = merged
        rows.append(
            {
                "window_s": frames * 0.1,
                "insertion_rate": merged.insertion_rate,
                "underfill_rate": merged.underfill_rate,
                "miss_rate": merged.miss_rate,
            }
        )

    default = results[5]
    met = (
        default.underfill_rate <= results[10].underfill_rate + 0.1
        and default.miss_rate <= min(r.miss_rate for r in results.values()) + 0.1
    )
    return ExperimentResult(
        experiment_id="abl_window",
        title="Ablation: segmentation window size (0.2 / 0.5 / 1.0 s)",
        rows=rows,
        expectation="the paper's 0.5 s window is on the trade-off's sweet spot",
        expectation_met=met,
    )


@register("abl_direction")
def run_direction(fast: bool = True, seed: int = 7) -> ExperimentResult:
    """RSS-trough ordering vs phase-based ordering for direction.

    The phase alternative orders tags by the time of their largest phase
    activity (peak absolute residual derivative).  Per the paper's Fig. 8
    argument, phase profiles are shape-inconsistent, so this ordering is
    noisier than the RSS troughs.
    """
    repeats = 4 if fast else 25
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    layout = runner.scenario.layout
    cal = runner.pad.calibration

    motions = [
        Motion(StrokeKind.HBAR, Direction.FORWARD),
        Motion(StrokeKind.HBAR, Direction.REVERSE),
        Motion(StrokeKind.VBAR, Direction.FORWARD),
        Motion(StrokeKind.VBAR, Direction.REVERSE),
    ]

    rss_hits = 0
    phase_hits = 0
    total = 0
    from ..core.direction import Trough, estimate_direction

    for motion in motions:
        for _ in range(repeats):
            script = script_for_motion(motion, runner.rng)
            log = runner.run_script(script)
            obs = runner.pad.detect_motion(log)
            if obs is None or obs.kind is not motion.kind:
                continue
            total += 1
            rss_hits += obs.direction is motion.direction

            # Phase-based ordering within the same analysis window.
            window = log.slice_time(obs.t0, obs.t1)
            pseudo = []
            for idx, series in window.per_tag().items():
                if idx not in cal.tags or len(series) < 4:
                    continue
                residual = unwrap_residual(series.phases, cal.central_phase(idx))
                derivative = np.abs(np.diff(residual))
                k = int(np.argmax(derivative))
                t_peak = float((series.timestamps[k] + series.timestamps[k + 1]) / 2)
                pseudo.append(Trough(idx, t_peak, float(derivative[k])))
            pseudo.sort(key=lambda tr: tr.time)
            d_phase, _ = estimate_direction(motion.kind, pseudo, layout)
            phase_hits += d_phase is motion.direction

    rows = [
        {"ordering": "RSS troughs (paper)", "direction_accuracy": rss_hits / max(1, total)},
        {"ordering": "phase activity peaks", "direction_accuracy": phase_hits / max(1, total)},
        {"ordering": "samples", "direction_accuracy": total},
    ]
    met = total > 0 and rss_hits >= phase_hits
    return ExperimentResult(
        experiment_id="abl_direction",
        title="Ablation: direction from RSS troughs vs phase ordering",
        rows=rows,
        expectation="RSS-trough ordering is at least as accurate as phase ordering",
        expectation_met=met,
    )
