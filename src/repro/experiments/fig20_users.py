"""Fig. 20 — detection accuracy across ten volunteers.

Most volunteers land above 90%; the two fast writers (#6 and #9) dip but
stay >= ~85% — undersampling at higher hand speeds costs accuracy.
"""

from __future__ import annotations

import numpy as np

from ..motion.strokes import all_motions
from ..motion.user import default_users
from ..sim.metrics import score_motion_trials
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig20")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 2 if fast else 20
    motions = all_motions()
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))

    rows = []
    accs = {}
    for user in default_users():
        trials = runner.run_motion_battery(motions, repeats, user=user)
        accs[user.user_id] = score_motion_trials(trials).accuracy
        rows.append(
            {"user": user.user_id, "speed_mps": user.speed, "accuracy": accs[user.user_id]}
        )

    values = np.array(list(accs.values()))
    slow_users = [u for u in accs if u not in (6, 9)]
    slow_mean = float(np.mean([accs[u] for u in slow_users]))
    fast_mean = float(np.mean([accs[6], accs[9]]))
    rows.append({"user": "median", "speed_mps": "", "accuracy": float(np.median(values))})

    met = float(np.median(values)) >= 0.8 and fast_mean <= slow_mean
    return ExperimentResult(
        experiment_id="fig20",
        title="Accuracy across ten volunteers",
        rows=rows,
        expectation=(
            "median accuracy high; fast writers #6/#9 below the rest "
            "(speed costs accuracy)"
        ),
        expectation_met=met,
    )
