"""Fig. 9 — phase / RMS / std(RMS) while a volunteer writes 'H'.

The paper's segmentation illustration: during each of H's three strokes
std(RMS) rises sharply, and in the two adjustment intervals it falls to
near zero.  We reproduce the trace and check the separation between
stroke-window and adjustment-window std(RMS) levels.
"""

from __future__ import annotations

import numpy as np

from ..core.segmentation import frame_rms, window_std
from ..motion.script import script_for_letter
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig09")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    script = script_for_letter("H", runner.rng)
    log = runner.run_script(script)
    cfg = runner.pad.config.segmentation
    times, rms = frame_rms(log, runner.pad.calibration, cfg.frame_s)
    stds = window_std(rms, cfg.window_frames)

    def mean_in(values, intervals):
        vals = []
        for t0, t1 in intervals:
            mask = (times >= t0) & (times < t1)
            vals.extend(values[mask])
        return float(np.mean(vals)) if vals else 0.0

    # std(rms) windows look *ahead* by window_frames, so a window whose
    # start frame lies in an adjustment interval already sees the next
    # stroke; the RMS level itself is the per-phase-of-session statistic
    # to compare, with std(rms) reported alongside (Fig. 9's panels).
    def interior(iv, frac=0.3):
        return [
            (t0 + frac * (t1 - t0), t1 - frac * (t1 - t0)) for t0, t1 in iv
        ]

    stroke_rms = mean_in(rms, interior(script.stroke_intervals()))
    adjust_rms = mean_in(rms, interior(script.adjustment_intervals()))
    idle_rms = mean_in(rms, [(0.0, 0.4)])
    stroke_std = mean_in(stds, interior(script.stroke_intervals()))
    idle_std = mean_in(stds, [(0.0, 0.2)])

    rows = [
        {"phase": "strokes (interior)", "mean_rms": stroke_rms, "mean_std_rms": stroke_std},
        {"phase": "adjustment intervals (interior)", "mean_rms": adjust_rms, "mean_std_rms": ""},
        {"phase": "idle lead-in", "mean_rms": idle_rms, "mean_std_rms": idle_std},
        {
            "phase": "stroke/adjust rms separation",
            "mean_rms": stroke_rms / max(1e-9, adjust_rms),
            "mean_std_rms": "",
        },
    ]
    met = (
        stroke_rms > 3.0 * adjust_rms
        and adjust_rms > idle_rms
        and stroke_std > 10.0 * max(idle_std, 1e-3)
    )
    return ExperimentResult(
        experiment_id="fig09",
        title="Phase RMS and std(RMS) while writing 'H'",
        rows=rows,
        expectation=(
            "std(RMS) in stroke interiors exceeds adjustment-interval "
            "levels by >3x; idle pad is quietest"
        ),
        expectation_met=met,
        notes=[
            "trace (time, rms, std):\n"
            + "\n".join(
                f"{t:5.2f}  {r:7.3f}  {s:7.3f}" for t, r, s in zip(times, rms, stds)
            )
        ],
    )
