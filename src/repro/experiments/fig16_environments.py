"""Fig. 16 — detection accuracy at four locations, with and without the
diversity-suppression algorithm.

Suppression helps everywhere and helps *most* at the multipath-richest
location #4 (paper: 75% -> 93% there).
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import RFIPadConfig
from ..motion.strokes import all_motions
from ..sim.metrics import score_motion_trials
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig16")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 2 if fast else 30
    motions = all_motions()

    rows = []
    gains = {}
    accs = {}
    for location in (1, 2, 3, 4):
        per_mode = {}
        for suppress in (False, True):
            config = RFIPadConfig(diversity_suppression=suppress)
            runner = SessionRunner(
                build_scenario(ScenarioConfig(seed=seed, location=location)),
                pipeline_config=config,
            )
            trials = runner.run_motion_battery(motions, repeats)
            per_mode[suppress] = score_motion_trials(trials).accuracy
        gains[location] = per_mode[True] - per_mode[False]
        accs[location] = per_mode
        rows.append(
            {
                "location": location,
                "without_suppression": per_mode[False],
                "with_suppression": per_mode[True],
                "gain": gains[location],
            }
        )

    met = (
        all(gains[loc] >= -0.05 for loc in gains)          # never clearly hurts
        and gains[4] >= max(gains[1], 0.0)                  # biggest win where multipath is richest
        and accs[4][True] > accs[4][False]
    )
    return ExperimentResult(
        experiment_id="fig16",
        title="Accuracy vs location, with/without diversity suppression",
        rows=rows,
        expectation=(
            "suppression improves accuracy in all locations; largest gain at "
            "multipath-richest location #4"
        ),
        expectation_met=met,
    )
