"""Fig. 21 — CDF of the time needed to complete/recognise each stroke.

The paper plots, per motion, the distribution of time used to correctly
recognise it: ~90% of clicks, "−", "|", "/" finish within 2 s, and "⊂"
takes longer (longer path).  The stroke time in our pipeline is the
segmented window duration of a correctly recognised motion.
"""

from __future__ import annotations

import numpy as np

from ..motion.strokes import Direction, Motion, StrokeKind
from ..sim.metrics import empirical_cdf, percentile
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig21")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 6 if fast else 40
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    motions = {
        "click": Motion(StrokeKind.CLICK),
        "−": Motion(StrokeKind.HBAR),
        "|": Motion(StrokeKind.VBAR),
        "/": Motion(StrokeKind.SLASH),
        "⊂": Motion(StrokeKind.ARC_C),
    }

    rows = []
    p90 = {}
    for name, motion in motions.items():
        durations = []
        for _ in range(repeats):
            trial = runner.run_motion(motion)
            if trial.fully_correct and trial.observed is not None:
                durations.append(trial.observed.duration)
        if not durations:
            p90[name] = float("inf")
            rows.append({"motion": name, "samples": 0, "p50_s": "", "p90_s": ""})
            continue
        p90[name] = percentile(durations, 90.0)
        rows.append(
            {
                "motion": name,
                "samples": len(durations),
                "p50_s": percentile(durations, 50.0),
                "p90_s": p90[name],
            }
        )

    simple = [p90[k] for k in ("click", "−", "|", "/") if np.isfinite(p90[k])]
    met = bool(simple) and max(simple) <= 2.5 and p90["⊂"] >= np.median(simple)
    return ExperimentResult(
        experiment_id="fig21",
        title="Stroke completion-time distribution (CDF summary)",
        rows=rows,
        expectation=(
            "~90% of click/−/|// strokes complete within ~2 s; ⊂ takes "
            "longer (longer trail)"
        ),
        expectation_met=met,
    )
