"""Fig. 8 — symmetry classes of phase trends under a passing hand.

Depending on where a tag sits relative to the trail, its (unwrapped) phase
trend during a pass can be monotonous, axially symmetric, or circularly
symmetric — which is why the paper rejects phase ordering for direction
estimation and uses RSS troughs instead (section III-B).

We reproduce the observation quantitatively: for tags at different offsets
from the trail we measure the *monotonicity* (|net change| / total
variation) of the phase residual during the pass, and the same statistic
for the RSS dip asymmetry.  Shape check: phase monotonicity varies wildly
across tag positions (some near 1, some near 0) while every on-trail tag
shows a clean single RSS trough.
"""

from __future__ import annotations

import numpy as np

from ..core.unwrap import unwrap_residual
from ..motion.script import script_for_motion
from ..motion.strokes import Direction, Motion, StrokeKind
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


def _monotonicity(series: np.ndarray) -> float:
    if series.size < 3:
        return 1.0
    tv = float(np.abs(np.diff(series)).sum())
    if tv <= 1e-12:
        return 1.0
    return abs(float(series[-1] - series[0])) / tv


@register("fig08")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    layout = runner.scenario.layout
    cal = runner.pad.calibration
    repeats = 3 if fast else 10

    monotonicities: dict = {}
    trough_counts: dict = {}
    for _ in range(repeats):
        script = script_for_motion(
            Motion(StrokeKind.HBAR, Direction.FORWARD), runner.rng
        )
        log = runner.run_script(script)
        t0, t1 = script.stroke_intervals()[0]
        window = log.slice_time(t0, t1)
        for idx, series in window.per_tag().items():
            if len(series) < 5:
                continue
            row, col = layout.row_col(idx)
            offset = abs(row - 2)  # rows away from the mid-row trail
            res = unwrap_residual(series.phases, cal.central_phase(idx))
            monotonicities.setdefault(offset, []).append(_monotonicity(res))
            if offset == 0:
                # count local minima of the smoothed RSS (trough cleanliness)
                rss = np.convolve(series.rss, np.ones(5) / 5, mode="same")
                minima = sum(
                    1
                    for i in range(2, len(rss) - 2)
                    if rss[i] == min(rss[max(0, i - 3) : i + 4])
                    and rss[i] < rss.mean() - 1.0
                )
                trough_counts.setdefault(idx, []).append(max(1, minima))

    rows = []
    spreads = []
    for offset in sorted(monotonicities):
        values = np.array(monotonicities[offset])
        rows.append(
            {
                "rows_from_trail": offset,
                "phase_monotonicity_mean": float(values.mean()),
                "phase_monotonicity_min": float(values.min()),
                "phase_monotonicity_max": float(values.max()),
            }
        )
        spreads.append(float(values.max() - values.min()))

    all_mono = np.concatenate([np.array(v) for v in monotonicities.values()])
    single_troughs = [np.mean(v) for v in trough_counts.values()]
    rows.append(
        {
            "rows_from_trail": "on-trail troughs/pass",
            "phase_monotonicity_mean": float(np.mean(single_troughs)) if single_troughs else 0.0,
            "phase_monotonicity_min": "",
            "phase_monotonicity_max": "",
        }
    )

    met = (
        float(all_mono.max() - all_mono.min()) > 0.5
        and bool(single_troughs)
        and float(np.mean(single_troughs)) < 2.0
    )
    return ExperimentResult(
        experiment_id="fig08",
        title="Phase-trend symmetry vs tag position; RSS trough cleanliness",
        rows=rows,
        expectation=(
            "phase monotonicity is inconsistent across tag positions "
            "(spread > 0.5) while on-trail RSS shows ~one trough per pass"
        ),
        expectation_met=met,
    )
