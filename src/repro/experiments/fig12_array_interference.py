"""Fig. 12 — shadowing inside a growing tag array, for four tag designs.

A target tag behind the array loses received power with every added row
and column; the magnitude tracks the design's radar cross-section: the
big-antenna design D costs ~20 dB at three columns, the small AZ-E53-class
design B only ~2 dB.
"""

from __future__ import annotations

from ..physics.coupling import (
    ALL_DESIGNS,
    TAG_DESIGN_B,
    TAG_DESIGN_D,
    aggregate_shadow_loss_db,
)
from ..physics.geometry import GridLayout, Vec3
from .base import ExperimentResult, register


@register("fig12")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    # The target tag sits behind the array centre (as in Fig. 12a).
    target = Vec3(0.0, 0.0, -0.03)

    rows = []
    losses = {}
    for design in ALL_DESIGNS:
        for cols in (1, 2, 3):
            layout = GridLayout(rows=5, cols=cols, pitch=0.06)
            positions = layout.positions()
            loss = aggregate_shadow_loss_db(target, positions, design, same_facing=True)
            losses[(design.name, cols)] = loss
            rows.append(
                {
                    "design": design.name,
                    "columns_of_5_tags": cols,
                    "target_rss_drop_db": loss,
                }
            )

    # Row sweep for the monotone-with-count observation.
    for n in (1, 3, 5):
        layout = GridLayout(rows=n, cols=1, pitch=0.06)
        loss = aggregate_shadow_loss_db(target, layout.positions(), TAG_DESIGN_D)
        rows.append(
            {"design": "D (single column)", "columns_of_5_tags": f"{n} tags", "target_rss_drop_db": loss}
        )

    d3 = losses[("D", 3)]
    b3 = losses[("B", 3)]
    met = (
        d3 > 12.0                       # large-RCS design: tens of dB
        and b3 < 5.0                    # small-RCS design: a few dB
        and all(
            losses[(d.name, 1)] <= losses[(d.name, 2)] <= losses[(d.name, 3)]
            for d in ALL_DESIGNS
        )
    )
    return ExperimentResult(
        experiment_id="fig12",
        title="Array shadowing vs rows/columns for four tag designs",
        rows=rows,
        expectation=(
            "loss grows monotonically with tag count; design D ~20 dB at "
            "3 columns vs design B ~2 dB (RCS ordering)"
        ),
        expectation_met=met,
    )
