"""Fig. 6 — phase de-periodicity: the trend before and after unwrapping.

A tag whose channel drifts across the 0/2*pi boundary shows a sudden jump
in the reported phase; after unwrapping the trend is smooth.  Shape check:
the largest successive jump drops from ~2*pi to below pi.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.unwrap import largest_jump, unwrap
from ..motion.script import script_for_motion
from ..motion.strokes import Motion, StrokeKind
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig06")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    rows = []
    worst_before = 0.0
    worst_after = 0.0
    attempts = 6 if fast else 20
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    for _ in range(attempts):
        script = script_for_motion(Motion(StrokeKind.VBAR), runner.rng)
        log = runner.run_script(script)
        for idx, series in log.per_tag().items():
            if len(series) < 8:
                continue
            before = largest_jump(series.phases)
            after = largest_jump(unwrap(series.phases))
            if before > worst_before:
                worst_before = before
                worst_after = after

    rows.append(
        {
            "trace": "worst wrap jump",
            "largest_step_before_rad": worst_before,
            "largest_step_after_rad": worst_after,
        }
    )
    # Synthetic boundary-crossing trace (the textbook Fig. 6 case).
    t = np.linspace(0.0, 10.0, 200)
    true_phase = 5.8 + 0.12 * t  # drifts across 2*pi
    wrapped = np.mod(true_phase, 2.0 * math.pi)
    rows.append(
        {
            "trace": "synthetic drift",
            "largest_step_before_rad": largest_jump(wrapped),
            "largest_step_after_rad": largest_jump(unwrap(wrapped)),
        }
    )

    met = (
        rows[1]["largest_step_before_rad"] > math.pi
        and rows[1]["largest_step_after_rad"] < math.pi
        and worst_after <= math.pi + 1e-9
    )
    return ExperimentResult(
        experiment_id="fig06",
        title="Phase trend before/after de-periodicity",
        rows=rows,
        expectation=(
            "unwrapping removes ~2*pi boundary jumps: max successive step "
            "falls below pi"
        ),
        expectation_met=met,
    )
