"""Table I — motion identification accuracy, LOS vs NLOS antenna mounts.

13 motions x N repeats x 3 groups per mount.  The paper's surprise: NLOS
(antenna behind the board) beats LOS (ceiling) — 94% vs 88% — because in
the LOS geometry the writer's forearm cuts reader-tag lines of sight and
injects noise.
"""

from __future__ import annotations

import numpy as np

from ..motion.strokes import all_motions
from ..sim.metrics import score_motion_trials
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("tab1")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 2 if fast else 20
    groups = 3
    motions = all_motions()

    accuracy: dict = {"los": [], "nlos": []}
    for mount in ("los", "nlos"):
        for group in range(groups):
            runner = SessionRunner(
                build_scenario(ScenarioConfig(seed=seed + group, mount=mount))
            )
            trials = runner.run_motion_battery(motions, repeats)
            accuracy[mount].append(score_motion_trials(trials).accuracy)

    rows = []
    for mount in ("los", "nlos"):
        row = {"case": mount.upper()}
        for i, acc in enumerate(accuracy[mount], 1):
            row[f"group{i}"] = acc
        row["average"] = float(np.mean(accuracy[mount]))
        rows.append(row)

    nlos_avg = float(np.mean(accuracy["nlos"]))
    los_avg = float(np.mean(accuracy["los"]))
    met = nlos_avg > los_avg and nlos_avg >= 0.85
    return ExperimentResult(
        experiment_id="tab1",
        title="Motion identification accuracy (Table I): LOS vs NLOS",
        rows=rows,
        expectation=(
            "NLOS accuracy exceeds LOS (paper: 0.94 vs 0.88) and stays high"
        ),
        expectation_met=met,
    )
