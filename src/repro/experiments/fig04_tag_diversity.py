"""Fig. 4 — per-tag mean static phase: tag diversity.

Each of the 25 tags is interrogated ~100 times with no hand present; the
mean phase of each tag scatters irregularly over [0, 2*pi) because of the
manufacture phase offset theta_tag (plus per-location path differences).
The shape check: the per-tag means cover a wide spread of the circle —
i.e. calibration is *necessary*, one global offset cannot fix them all.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.calibration import calibrate, circular_std
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from ..units import TWO_PI
from .base import ExperimentResult, register


@register("fig04")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    duration = 8.0 if fast else 20.0  # ~100+ reads per tag
    log = runner.reader.collect_static(duration)
    cal = calibrate(log)

    rows = []
    means = []
    for idx in cal.tag_indices():
        tc = cal.tags[idx]
        means.append(tc.central_phase)
        rows.append(
            {
                "tag": idx + 1,
                "mean_phase_rad": tc.central_phase,
                "reads": tc.sample_count,
            }
        )

    # Circular spread of the per-tag means: near-uniform coverage gives a
    # circular std well above what a single shared offset could explain.
    spread = circular_std(np.array(means))
    coverage = (max(means) - min(means)) / TWO_PI
    rows.append({"tag": "spread(circ std)", "mean_phase_rad": spread, "reads": ""})

    met = spread > 1.0 and coverage > 0.6
    return ExperimentResult(
        experiment_id="fig04",
        title="Average static phase per tag (tag diversity)",
        rows=rows,
        expectation=(
            "per-tag mean phases distribute irregularly across [0, 2*pi) "
            "(circular std > 1 rad; range covering most of the circle)"
        ),
        expectation_met=met,
    )
