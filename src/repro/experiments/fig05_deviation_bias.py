"""Fig. 5 — standard deviation of static phase per tag: the Deviation bias.

Multiple static capture groups per tag; tags vibrate at visibly different
levels because their locations see different multipath (location
diversity).  Shape check: the max/min ratio of per-tag biases is
substantially above 1, i.e. uniform weighting is wrong and Eq. 9's
bias-proportional weighting has something to normalise.
"""

from __future__ import annotations

import numpy as np

from ..core.calibration import calibrate
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig05")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    # A multipath-rich location makes the per-tag spread visible.
    runner = SessionRunner(
        build_scenario(ScenarioConfig(seed=seed, location=4))
    )
    groups = 2 if fast else 5
    duration = 4.0 if fast else 10.0

    per_tag_bias: dict = {}
    for _ in range(groups):
        log = runner.reader.collect_static(duration)
        cal = calibrate(log)
        for idx in cal.tag_indices():
            per_tag_bias.setdefault(idx, []).append(cal.tags[idx].deviation_bias)

    rows = []
    averages = {}
    for idx in sorted(per_tag_bias):
        avg = float(np.mean(per_tag_bias[idx]))
        averages[idx] = avg
        rows.append({"tag": idx + 1, "phase_std_rad": avg, "groups": groups})

    biases = np.array(list(averages.values()))
    ratio = float(biases.max() / max(1e-9, biases.min()))
    rows.append({"tag": "max/min ratio", "phase_std_rad": ratio, "groups": ""})

    met = ratio > 1.5
    return ExperimentResult(
        experiment_id="fig05",
        title="Static phase std per tag (Deviation bias)",
        rows=rows,
        expectation="per-tag deviation biases vary significantly (max/min > 1.5)",
        expectation_met=met,
    )
