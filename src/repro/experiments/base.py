"""Experiment framework: uniform results, registry, and text rendering.

Every paper artefact (table or figure) has one module here exposing
``run(fast=True, seed=7) -> ExperimentResult``.  ``fast`` trims repeat
counts so the benchmark suite completes in minutes; the paper-scale
workloads are available by passing ``fast=False``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer


@dataclass
class ExperimentResult:
    """One reproduced artefact: labelled rows plus free-form notes.

    ``rows`` is a list of flat dicts sharing a column set, in presentation
    order — exactly the rows/series the paper's table or figure reports.
    ``expectation`` documents the shape-level claim being checked and
    ``expectation_met`` whether this run met it.
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]]
    expectation: str = ""
    expectation_met: Optional[bool] = None
    notes: List[str] = field(default_factory=list)

    def column_names(self) -> List[str]:
        # Ordered-set pass: dict.fromkeys keeps first-seen order and makes
        # this O(rows x keys) instead of O(rows x keys x columns) — the
        # list-membership variant was quadratic for wide result sets.
        names: Dict[str, None] = {}
        for row in self.rows:
            names.update(dict.fromkeys(row))
        return list(names)

    def to_text(self) -> str:
        """Human-readable rendering (used by benches and examples)."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        cols = self.column_names()
        if cols:
            widths = {
                c: max(len(c), *(len(_fmt(r.get(c, ""))) for r in self.rows))
                for c in cols
            }
            lines.append("  ".join(c.ljust(widths[c]) for c in cols))
            for row in self.rows:
                lines.append(
                    "  ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in cols)
                )
        if self.expectation:
            status = (
                "MET" if self.expectation_met
                else "NOT MET" if self.expectation_met is not None
                else "unchecked"
            )
            lines.append(f"expectation [{status}]: {self.expectation}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


#: Registry: experiment id -> runner.  Populated by repro.experiments.
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator adding a run() function to the registry."""

    def wrap(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        REGISTRY[experiment_id] = fn
        return fn

    return wrap


def run_experiment(
    experiment_id: str, workers: Optional[int] = None, **kwargs: Any
) -> ExperimentResult:
    """Run one registered experiment.

    ``workers`` (default None = leave the process-wide setting alone)
    makes every battery inside the experiment fan out to that many worker
    processes — see :mod:`repro.sim.parallel` for the determinism
    contract.  The ``REPRO_WORKERS`` environment variable sets the same
    knob globally.
    """
    if experiment_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(REGISTRY)}"
        )
    from ..sim.parallel import workers_override

    metrics = get_metrics()
    start = time.perf_counter()
    with get_tracer().span("experiment", id=experiment_id):
        with workers_override(workers):
            result = REGISTRY[experiment_id](**kwargs)
    result.notes.append(f"runtime {time.perf_counter() - start:.2f} s")
    if metrics.enabled:
        # A compact counters snapshot rides along with the artefact, so a
        # saved result is self-describing about the work that produced it.
        counters = metrics.snapshot()["counters"]
        if counters:
            rendered = ", ".join(f"{k}={v:g}" for k, v in counters.items())
            result.notes.append(f"metrics: {rendered}")
    return result
