"""Fig. 18 — recognition accuracy vs reader-to-tag-plane angle.

"−" and "|" motions over different rows/columns with the antenna panel
tilted -30/0/30/45 degrees relative to the tag plane.  Best at 0 degrees;
accuracy decreases as the tilt grows (uneven beam coverage).
"""

from __future__ import annotations

import numpy as np

from ..motion.strokes import Direction, Motion, StrokeKind
from ..sim.metrics import score_motion_trials
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig18")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 3 if fast else 10
    angles = (-30.0, 0.0, 30.0, 45.0)
    motions = [
        Motion(StrokeKind.HBAR, Direction.FORWARD),
        Motion(StrokeKind.HBAR, Direction.REVERSE),
        Motion(StrokeKind.VBAR, Direction.FORWARD),
        Motion(StrokeKind.VBAR, Direction.REVERSE),
    ]

    rows = []
    acc = {}
    for angle in angles:
        runner = SessionRunner(
            build_scenario(ScenarioConfig(seed=seed, reader_angle_deg=angle))
        )
        # Strokes over different rows and columns of the panel, as the
        # paper does: vary the stroke's centre line.
        trials = []
        offsets = (-0.06, 0.0, 0.06)
        for motion in motions:
            for off in offsets:
                for _ in range(repeats):
                    from ..motion.script import script_for_motion

                    centre = (0.0, off) if motion.kind is StrokeKind.HBAR else (off, 0.0)
                    script = script_for_motion(motion, runner.rng, box_center=centre)
                    log = runner.run_script(script)
                    observed = runner.pad.detect_motion(log)
                    from ..sim.runner import MotionTrial

                    trials.append(MotionTrial(motion, observed, len(log)))
        acc[angle] = score_motion_trials(trials).accuracy
        rows.append({"angle_deg": angle, "accuracy": acc[angle]})

    met = acc[0.0] >= max(acc[a] for a in angles) - 1e-9 and acc[0.0] > acc[45.0]
    return ExperimentResult(
        experiment_id="fig18",
        title="Accuracy vs reader-to-tag-plane angle",
        rows=rows,
        expectation="best accuracy at 0 degrees; degraded at 45 degrees",
        expectation_met=met,
    )
