"""Fig. 7 — grey maps for a hand crossing the 3rd column, with and without
diversity suppression, plus the OTSU binarisation.

Shape checks, mirroring the paper's three panels:

* with suppression, the third column's mean intensity clearly dominates
  the rest of the map (the paper's (b) vs (a));
* OTSU's foreground covers the third column and little else (panel (c)).
"""

from __future__ import annotations

import numpy as np

from ..core.imaging import render_grey_map
from ..core.otsu import binarize
from ..core.suppression import accumulative_differences
from ..motion.script import script_for_motion
from ..motion.strokes import Direction, Motion, StrokeKind
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


def _column_contrast(values: np.ndarray, col: int) -> float:
    inside = values[:, col].mean()
    outside = np.delete(values, col, axis=1).mean()
    return float(inside / max(1e-9, outside))


@register("fig07")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    runner = SessionRunner(
        build_scenario(ScenarioConfig(seed=seed, location=4))
    )
    layout = runner.scenario.layout
    col = 2  # third column
    x = (col - (layout.cols - 1) / 2.0) * layout.pitch

    script = script_for_motion(
        Motion(StrokeKind.VBAR, Direction.FORWARD),
        runner.rng,
        box_center=(x, 0.0),
    )
    log = runner.run_script(script)
    supp = accumulative_differences(log, runner.pad.calibration)

    raw_map = render_grey_map(supp.raw, layout)
    sup_map = render_grey_map(supp.suppressed, layout)
    binary = binarize(sup_map)

    raw_contrast = _column_contrast(raw_map.values, col)
    sup_contrast = _column_contrast(sup_map.values, col)
    fg = set(binary.foreground_cells())
    col_hits = sum(1 for (r, c) in fg if c == col)
    spill = sum(1 for (r, c) in fg if abs(c - col) > 1)

    rows = [
        {"panel": "(a) without suppression", "col3_contrast": raw_contrast, "fg_cells": ""},
        {"panel": "(b) with suppression", "col3_contrast": sup_contrast, "fg_cells": ""},
        {
            "panel": "(c) after OTSU",
            "col3_contrast": "",
            "fg_cells": f"{binary.foreground_count()} ({col_hits} on col3, {spill} spill)",
        },
    ]
    met = sup_contrast > raw_contrast and col_hits >= 3 and spill == 0
    return ExperimentResult(
        experiment_id="fig07",
        title="Grey maps w/o+w/ diversity suppression and after OTSU (3rd column)",
        rows=rows,
        expectation=(
            "suppression raises the trail-column contrast and OTSU outlines "
            "the third column without far spill"
        ),
        expectation_met=met,
        notes=["suppressed map:\n" + sup_map.ascii_art(), "binary:\n" + binary.ascii_art()],
    )
