"""Fig. 11 — interference within a pair of tags.

A testing tag approaching a target tag suppresses the target's RSS:
strongly in the near field (~3 cm, same facing), mildly in the transition
region (~6 cm), and negligibly beyond ~12 cm; flipping the testing tag to
face the opposite way nearly removes the effect (section IV-B.1).
"""

from __future__ import annotations

from ..physics.coupling import TAG_DESIGN_D, pair_shadow_loss_db
from ..physics.geometry import Vec3
from ..rfid.deployment import deploy_array
from ..rfid.reader import Reader, ReaderConfig
from ..physics.antenna import ReaderAntenna
from ..physics.geometry import GridLayout
from ..units import watts_to_dbm_floor
from .base import ExperimentResult, register

import numpy as np


@register("fig11")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    """Measured RSS of a target tag 2 m from the reader as a testing tag
    approaches, for both facing configurations."""
    rng = np.random.default_rng(seed)
    layout = GridLayout(rows=1, cols=1, pitch=0.06)
    array = deploy_array(rng, layout)
    antenna = ReaderAntenna(Vec3(0.0, 0.0, -2.0), Vec3(0.0, 0.0, 1.0))
    reader = Reader(antenna, array, ReaderConfig(), rng=rng)
    tag = array.tags[0]

    base_report = reader.observe_tag(0, 0.0, None)
    rows = [
        {
            "separation_cm": "none (isolated)",
            "same_facing_rss_dbm": base_report.rss_dbm,
            "opposite_facing_rss_dbm": base_report.rss_dbm,
        }
    ]

    separations = (0.03, 0.06, 0.09, 0.12, 0.15)
    same_losses, opp_losses = [], []
    for sep in separations:
        same = pair_shadow_loss_db(sep, TAG_DESIGN_D, same_facing=True)
        opp = pair_shadow_loss_db(sep, TAG_DESIGN_D, same_facing=False)
        same_losses.append(same)
        opp_losses.append(opp)
        rows.append(
            {
                "separation_cm": round(sep * 100),
                "same_facing_rss_dbm": base_report.rss_dbm - same,
                "opposite_facing_rss_dbm": base_report.rss_dbm - opp,
            }
        )

    met = (
        same_losses[0] > 3.0                    # near field: strong suppression
        and same_losses[0] > 4.0 * same_losses[-1]  # monotone decay
        and same_losses[-1] < 1.0               # far field: negligible
        and all(o < s * 0.5 for s, o in zip(same_losses, opp_losses))
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="Pair interference: target-tag RSS vs testing-tag separation",
        rows=rows,
        expectation=(
            "same-facing coupling strong at 3 cm, negligible beyond 12 cm; "
            "opposite facing removes most of it"
        ),
        expectation_met=met,
        notes=[
            "near-field boundary lambda/2pi ~= 5.2 cm; far field ~= 2*lambda/2pi "
            "~= 10.4 cm (the paper quotes 12 cm empirically)"
        ],
    )
