"""Fig. 23 — recognition accuracy over the full alphabet, grouped by
stroke count (1: C,I; 2: D..X; 3: A..Z; 4: E,M,W).

The paper reports ~91% average.  Our simulated pad reproduces the shape:
high accuracy overall, with the single-stroke group easiest and accuracy
generally decreasing as strokes (and segmentation chances) compound.
"""

from __future__ import annotations

import numpy as np

from ..motion.letters import ALPHABET, letters_by_stroke_count
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig23")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 2 if fast else 10
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    # Alongside the paper's grammar pipeline, score the hybrid with the
    # holistic fallback (the paper's own section-VI proposal) on the same
    # segmented strokes — it quantifies how much of the letter-accuracy
    # gap is compounding stroke errors.
    from ..core.holistic import HolisticRecognizer, HybridRecognizer
    from ..motion.script import script_for_letter

    hybrid = HybridRecognizer(
        runner.pad.grammar, HolisticRecognizer(runner.scenario.layout)
    )

    per_letter = {}
    per_letter_hybrid = {}
    for letter in ALPHABET:
        hits = 0
        hybrid_hits = 0
        for _ in range(repeats):
            script = script_for_letter(letter, runner.rng)
            log = runner.run_script(script)
            windows = runner.pad.segment(log)
            strokes = []
            for w in windows:
                obs = runner.pad.analyze_window(log, w.t0, w.t1)
                if obs is not None:
                    strokes.append(obs)
            hits += runner.pad.grammar.recognize(strokes, windows).letter == letter
            hybrid_hits += hybrid.recognize(strokes, windows).letter == letter
        per_letter[letter] = hits / repeats
        per_letter_hybrid[letter] = hybrid_hits / repeats

    rows = [
        {
            "letter": letter,
            "accuracy": per_letter[letter],
            "hybrid_accuracy": per_letter_hybrid[letter],
        }
        for letter in ALPHABET
    ]
    groups = letters_by_stroke_count()
    group_acc = {}
    for count, letters in sorted(groups.items()):
        group_acc[count] = float(np.mean([per_letter[l] for l in letters]))
        rows.append(
            {
                "letter": f"group {count}-stroke",
                "accuracy": group_acc[count],
                "hybrid_accuracy": float(
                    np.mean([per_letter_hybrid[l] for l in letters])
                ),
            }
        )
    average = float(np.mean(list(per_letter.values())))
    hybrid_average = float(np.mean(list(per_letter_hybrid.values())))
    rows.append(
        {"letter": "average", "accuracy": average, "hybrid_accuracy": hybrid_average}
    )

    met = (
        average >= 0.70
        and all(acc >= 0.5 for acc in group_acc.values())
        and hybrid_average >= average - 0.02
    )
    return ExperimentResult(
        experiment_id="fig23",
        title="Letter recognition accuracy (26 letters, 4 groups)",
        rows=rows,
        expectation=(
            "high average accuracy (paper ~0.91; simulated pad >= 0.70) and "
            "every stroke-count group usable (>= 0.5)"
        ),
        expectation_met=met,
    )
