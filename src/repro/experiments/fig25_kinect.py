"""Fig. 25 — RFIPad vs Kinect ground truth while writing 'Z'.

The paper overlays the Kinect-tracked hand trajectory with RFIPad's grey
maps to show they are consistent.  We reproduce it quantitatively: the
simulated Kinect tracks the same session, and we check (a) the Kinect
trajectory deviates from the true hand path only by its joint noise, and
(b) RFIPad's per-stroke grey-map centroids lie on the corresponding
Kinect stroke segments.
"""

from __future__ import annotations

import numpy as np

from ..motion.kinect import KinectSimulator, trajectory_deviation
from ..motion.script import script_for_letter
from ..physics.geometry import Vec3
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig25")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    script = script_for_letter("Z", runner.rng)
    log = runner.run_script(script)
    result = runner.pad.recognize_letter(log)

    kinect = KinectSimulator(np.random.default_rng(seed))
    track = kinect.track(script)
    deviation = trajectory_deviation(track, script.true_trajectory())

    layout = runner.scenario.layout
    centroid_errors = []
    for obs, (t0, t1) in zip(result.strokes, script.stroke_intervals()):
        if obs.features is None:
            continue
        cx, cy = obs.features.centroid  # cell units, y up
        pad_x = (cx - (layout.cols - 1) / 2.0) * layout.pitch
        pad_y = (cy - (layout.rows - 1) / 2.0) * layout.pitch
        # Closest distance from the grey-map centroid to the Kinect track
        # within that stroke's time span.
        pts = [
            p.position
            for p in track.positions()
            if t0 - 0.2 <= p.t <= t1 + 0.2
        ]
        if not pts:
            continue
        dist = min(
            ((p.x - pad_x) ** 2 + (p.y - pad_y) ** 2) ** 0.5 for p in pts
        )
        centroid_errors.append(dist)

    rows = [
        {"quantity": "kinect tracked fraction", "value": track.tracked_fraction()},
        {"quantity": "kinect-vs-truth deviation (m)", "value": deviation},
        {"quantity": "recognised letter", "value": str(result.letter)},
        {
            "quantity": "grey-map centroid to kinect track (m, mean)",
            "value": float(np.mean(centroid_errors)) if centroid_errors else float("nan"),
        },
    ]
    # Lead-in/lead-out segments have no hand over the pad, so the skeletal
    # stream legitimately loses the joint there (~0.6 s each end).
    met = (
        track.tracked_fraction() > 0.6
        and deviation < 0.02
        and bool(centroid_errors)
        and float(np.mean(centroid_errors)) < 0.08
    )
    return ExperimentResult(
        experiment_id="fig25",
        title="RFIPad grey maps vs Kinect skeletal track while writing 'Z'",
        rows=rows,
        expectation=(
            "kinect and RFIPad describe the same trajectory: joint noise "
            "~mm and grey-map centroids within one tag pitch of the track"
        ),
        expectation_met=met,
    )
