"""Fig. 2 — Doppler, phase, and RSS of one tag: static vs hand movement.

The paper's motivating observation: over ~20 s, a tag's phase and RSS are
nearly constant in a static scene and visibly disturbed while a hand moves
above it, while Doppler is noise-dominated in *both* cases.  We reproduce
the three panels as summary statistics (std of each channel parameter per
condition) plus the shape check: phase/RSS disturbance ratios are large,
the Doppler ratio is not.
"""

from __future__ import annotations

import numpy as np

from ..motion.script import script_for_motion
from ..motion.strokes import Motion, StrokeKind
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig02")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    duration = 6.0 if fast else 20.0
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    centre_tag = runner.scenario.layout.index_of(2, 2)

    static_log = runner.reader.collect_static(duration)

    # Hand repeatedly sweeping over the centre column.
    motion_log = runner.reader.collect(
        duration,
        _sweeping_hand(runner, duration),
    )

    rows = []
    stats = {}
    for condition, log in (("static", static_log), ("hand", motion_log)):
        series = log.per_tag()[centre_tag]
        from ..core.unwrap import unwrap_residual

        cal = runner.pad.calibration
        phase_res = unwrap_residual(series.phases, cal.central_phase(centre_tag))
        doppler = np.array(
            [r.doppler_hz for r in log if r.tag_index == centre_tag], dtype=float
        )
        stats[condition] = {
            "phase_std": float(phase_res.std()),
            "rss_std": float(series.rss.std()),
            "doppler_std": float(doppler.std()) if doppler.size else 0.0,
        }
        rows.append(
            {
                "condition": condition,
                "reads": len(series),
                "phase_std_rad": stats[condition]["phase_std"],
                "rss_std_db": stats[condition]["rss_std"],
                "doppler_std_hz": stats[condition]["doppler_std"],
            }
        )

    phase_ratio = stats["hand"]["phase_std"] / max(1e-9, stats["static"]["phase_std"])
    rss_ratio = stats["hand"]["rss_std"] / max(1e-9, stats["static"]["rss_std"])
    dop_ratio = stats["hand"]["doppler_std"] / max(1e-9, stats["static"]["doppler_std"])
    rows.append(
        {
            "condition": "hand/static ratio",
            "reads": "",
            "phase_std_rad": phase_ratio,
            "rss_std_db": rss_ratio,
            "doppler_std_hz": dop_ratio,
        }
    )

    met = phase_ratio > 3.0 and rss_ratio > 3.0 and dop_ratio < max(phase_ratio, rss_ratio)
    return ExperimentResult(
        experiment_id="fig02",
        title="Channel parameters, static vs hand movement (one tag)",
        rows=rows,
        expectation=(
            "phase and RSS are strongly disturbed by the hand (ratios >> 1) "
            "while Doppler is noise-dominated in both conditions"
        ),
        expectation_met=met,
    )


def _sweeping_hand(runner: SessionRunner, duration: float):
    """A hand sweeping back and forth over the centre column."""
    from ..motion.script import WritingScript, Segment
    from ..motion.strokes import Direction

    segments = []
    t = 0.0
    forward = True
    rng = runner.rng
    while t < duration:
        motion = Motion(
            StrokeKind.VBAR,
            Direction.FORWARD if forward else Direction.REVERSE,
        )
        script = script_for_motion(motion, rng, lead_in=0.05, lead_out=0.05)
        span = script.duration
        segments.append((t, script))
        t += span
        forward = not forward

    def pose_at(time_s: float):
        for start, script in segments:
            if start <= time_s < start + script.duration:
                return script.hand_pose_at(time_s - start)
        return None

    return pose_at
