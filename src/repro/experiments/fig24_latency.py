"""Fig. 24 — response time per motion category.

The paper measures the time between finishing a motion and its correct
report; with the report stream buffered that is the pipeline's compute
latency.  The paper sees < 0.1 s on a 2014 laptop; the shape check here is
that every motion's mean latency is far below one second and that the
spread across motions is small.

Latency comes from the observability layer rather than ad-hoc timing: the
pipeline's ``detect_motion`` span is the end-to-end number, and the stage
spans recorded under it give the per-stage breakdown the paper's figure
never had (reported in the result notes).
"""

from __future__ import annotations

import numpy as np

from ..motion.script import script_for_motion
from ..motion.strokes import all_motions
from ..obs.trace import get_tracer
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register

#: Stage spans expected under one detect_motion (suppression nests unwrap).
STAGE_SPANS = (
    "segmentation",
    "unwrap",
    "suppression",
    "imaging",
    "otsu",
    "direction",
    "classify",
)


@register("fig24")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 3 if fast else 50
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))

    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enable()
    per_kind: dict = {}
    stage_durations: dict = {name: [] for name in STAGE_SPANS}
    try:
        for motion in all_motions():
            for _ in range(repeats):
                script = script_for_motion(motion, runner.rng)
                log = runner.run_script(script)
                mark = tracer.mark()
                runner.pad.detect_motion(log)
                spans = tracer.spans_since(mark)
                root = next(s for s in spans if s.name == "detect_motion")
                per_kind.setdefault(motion.kind.value, []).append(root.duration)
                for span in spans:
                    if span.name in stage_durations:
                        stage_durations[span.name].append(span.duration)
    finally:
        if not was_enabled:
            tracer.disable()

    rows = []
    means = []
    for kind_value in sorted(per_kind):
        values = np.array(per_kind[kind_value])
        means.append(float(values.mean()))
        rows.append(
            {
                "motion_category": kind_value,
                "mean_s": float(values.mean()),
                "max_s": float(values.max()),
            }
        )

    breakdown = ", ".join(
        f"{name} {1e3 * float(np.mean(durs)):.2f} ms"
        for name, durs in stage_durations.items()
        if durs
    )

    spread = max(means) - min(means)
    met = max(means) < 0.5 and spread < 0.2
    return ExperimentResult(
        experiment_id="fig24",
        title="Recognition response time per motion category",
        rows=rows,
        expectation=(
            "all motion categories report well below 0.5 s with a small "
            "spread (paper: < 0.1 s, spread < 0.035 s on their hardware)"
        ),
        expectation_met=met,
        notes=[f"per-stage mean latency: {breakdown}" if breakdown else
               "per-stage breakdown unavailable (no stage spans recorded)"],
    )
