"""Fig. 24 — response time per motion category.

The paper measures the time between finishing a motion and its correct
report; with the report stream buffered that is the pipeline's compute
latency.  The paper sees < 0.1 s on a 2014 laptop; the shape check here is
that every motion's mean latency is far below one second and that the
spread across motions is small.
"""

from __future__ import annotations

import numpy as np

from ..motion.strokes import all_motions
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig24")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 3 if fast else 50
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))

    per_kind: dict = {}
    for motion in all_motions():
        for _ in range(repeats):
            from ..motion.script import script_for_motion

            script = script_for_motion(motion, runner.rng)
            log = runner.run_script(script)
            _, latency = runner.pad.timed_detect_motion(log)
            per_kind.setdefault(motion.kind.value, []).append(latency)

    rows = []
    means = []
    for kind_value in sorted(per_kind):
        values = np.array(per_kind[kind_value])
        means.append(float(values.mean()))
        rows.append(
            {
                "motion_category": kind_value,
                "mean_s": float(values.mean()),
                "max_s": float(values.max()),
            }
        )

    spread = max(means) - min(means)
    met = max(means) < 0.5 and spread < 0.2
    return ExperimentResult(
        experiment_id="fig24",
        title="Recognition response time per motion category",
        rows=rows,
        expectation=(
            "all motion categories report well below 0.5 s with a small "
            "spread (paper: < 0.1 s, spread < 0.035 s on their hardware)"
        ),
        expectation_met=met,
    )
