"""Fig. 19 — error rate vs reader-to-tag-plane distance (20/50/80 cm).

Shorter distances give lower error (FPR/FNR ~5% at 20 cm); at larger
distances the direct path weakens relative to environmental reflections
and the backscatter gets noisier.
"""

from __future__ import annotations

from ..motion.strokes import all_motions
from ..sim.metrics import score_motion_trials
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig19")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 3 if fast else 30
    motions = all_motions()
    distances = (0.20, 0.50, 0.80)

    rows = []
    err = {}
    for d in distances:
        # Location #4: the multipath-rich corner, where the direct path
        # weakening with distance costs the most (the paper's "complex
        # environmental interference" explanation).
        runner = SessionRunner(
            build_scenario(ScenarioConfig(seed=seed, reader_distance=d, location=4))
        )
        counts = score_motion_trials(runner.run_motion_battery(motions, repeats))
        err[d] = counts.fpr + counts.fnr
        rows.append(
            {"distance_cm": round(d * 100), "fpr": counts.fpr, "fnr": counts.fnr}
        )

    met = err[0.20] <= err[0.80] and err[0.20] <= 0.25
    return ExperimentResult(
        experiment_id="fig19",
        title="Error rate vs reader-to-tag distance",
        rows=rows,
        expectation=(
            "shortest distance has the lowest error; paper suggests keeping "
            "the reader within 50 cm"
        ),
        expectation_met=met,
    )
