"""Fig. 17 — false-positive / false-negative rate vs reader TX power.

Error rates are ~5% at 32.5 dBm and climb towards ~20% at 15 dBm: weaker
carrier means less harvested energy, weaker backscatter, noisier phase,
and hand-shadowed tags dropping out of inventory.
"""

from __future__ import annotations

from ..motion.strokes import all_motions
from ..sim.metrics import score_motion_trials
from ..sim.runner import SessionRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from .base import ExperimentResult, register


@register("fig17")
def run(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 2 if fast else 30
    motions = all_motions()
    powers = (15.0, 18.0, 20.0, 25.0, 32.5)

    rows = []
    error_by_power = {}
    for power in powers:
        runner = SessionRunner(
            build_scenario(ScenarioConfig(seed=seed, tx_power_dbm=power))
        )
        counts = score_motion_trials(runner.run_motion_battery(motions, repeats))
        error_by_power[power] = counts.fpr + counts.fnr
        rows.append(
            {"power_dbm": power, "fpr": counts.fpr, "fnr": counts.fnr, "accuracy": counts.accuracy}
        )

    met = (
        error_by_power[32.5] <= error_by_power[15.0]
        and error_by_power[32.5] <= 0.25
        and error_by_power[15.0] >= error_by_power[25.0]
    )
    return ExperimentResult(
        experiment_id="fig17",
        title="Error rate vs reader transmitting power",
        rows=rows,
        expectation=(
            "errors lowest at 32.5 dBm and grow as power drops to 15 dBm "
            "(paper: ~5% -> ~20%)"
        ),
        expectation_met=met,
    )
