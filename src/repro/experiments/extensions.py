"""Extension experiments: the paper's section-VI limitations and future
work, implemented and measured.

* ``ext_speed``    — accuracy vs hand speed under different Gen2 link
  profiles.  The paper blames fast-motion errors on undersampling and
  proposes shortening tag packets / speeding the link; the experiment
  shows the fast profile recovering accuracy at high speeds.
* ``ext_hover``    — accuracy vs hand-to-plane distance.  The paper's
  prototype is rated "within 5 cm"; we quantify the fall-off.
* ``ext_holistic`` — whole-letter (template) recognition vs the stroke
  grammar vs the hybrid, the paper's proposed compounding-error fix.
* ``ext_words``    — multi-letter input with pause-based letter
  clustering and lexicon decoding (future work in section III-C.2).
* ``ext_multipad`` — one reader serving two RFIPads by antenna
  multiplexing (the cost story of section I), vs a dedicated reader.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List

import numpy as np

from ..core.holistic import HolisticRecognizer, HybridRecognizer
from ..core.pipeline import RFIPad
from ..core.words import WordDecoder, WordRecognizer
from ..motion.script import script_for_letter, script_for_motion, script_for_word
from ..motion.strokes import Motion, StrokeKind, all_motions
from ..motion.user import DEFAULT_USER
from ..rfid.multiplex import MultiplexedReader, ReaderPort
from ..rfid.protocol import PROFILE_DENSE, PROFILE_FAST_SHORT
from ..rfid.reader import ReaderConfig
from ..sim.metrics import score_motion_trials
from ..sim.runner import MotionTrial, SessionRunner, WorkspaceRunner
from ..sim.scenario import ScenarioConfig, build_scenario
from ..sim.workspace import WorkspaceConfig, build_workspace
from .base import ExperimentResult, register


@register("ext_speed")
def run_speed(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 2 if fast else 15
    speeds = (0.2, 0.45, 0.7)
    profiles = (PROFILE_DENSE, PROFILE_FAST_SHORT)
    motions = all_motions()

    rows = []
    acc: dict = {}
    for profile in profiles:
        # The profile is part of the scenario so calibration and sessions
        # share the same sampling statistics.
        runner = SessionRunner(
            build_scenario(ScenarioConfig(seed=seed, link_profile=profile))
        )
        for speed in speeds:
            trials = []
            for motion in motions:
                for _ in range(repeats):
                    trials.append(runner.run_motion(motion, speed=speed))
            acc[(profile.name, speed)] = score_motion_trials(trials).accuracy
            rows.append(
                {
                    "profile": profile.name,
                    "hand_speed_mps": speed,
                    "accuracy": acc[(profile.name, speed)],
                }
            )

    dense, fast_p = profiles[0].name, profiles[1].name
    met = (
        acc[(dense, 0.2)] >= acc[(dense, 0.7)]          # undersampling bites
        and acc[(fast_p, 0.7)] >= acc[(dense, 0.7)]     # faster link recovers
    )
    return ExperimentResult(
        experiment_id="ext_speed",
        title="Extension: hand speed vs Gen2 link profile (undersampling)",
        rows=rows,
        expectation=(
            "slow hands beat fast hands on the dense profile; the fast/"
            "short-EPC profile recovers accuracy at high speed"
        ),
        expectation_met=met,
    )


@register("ext_hover")
def run_hover(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 2 if fast else 15
    heights = (0.03, 0.05, 0.08, 0.12)
    motions = all_motions()
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))

    rows = []
    acc = {}
    for height in heights:
        user = dataclasses.replace(
            DEFAULT_USER, hover_height=height, raised_height=max(0.2, height + 0.12)
        )
        trials = runner.run_motion_battery(motions, repeats, user=user)
        acc[height] = score_motion_trials(trials).accuracy
        rows.append({"hover_cm": height * 100, "accuracy": acc[height]})

    met = acc[0.03] >= 0.8 and acc[0.03] > acc[0.12] and acc[0.05] >= acc[0.12]
    return ExperimentResult(
        experiment_id="ext_hover",
        title="Extension: accuracy vs hand-to-plane distance",
        rows=rows,
        expectation=(
            "satisfactory accuracy within ~5 cm of the plane, degrading "
            "beyond (the paper's section-VI soft constraint)"
        ),
        expectation_met=met,
    )


@register("ext_holistic")
def run_holistic(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 2 if fast else 8
    letters = "AEHLOSTZ"  # a mix of easy and hard letters
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    holistic = HolisticRecognizer(runner.scenario.layout)
    hybrid = HybridRecognizer(runner.pad.grammar, holistic)

    hits = {"grammar": 0, "holistic": 0, "hybrid": 0}
    total = 0
    for letter in letters:
        for _ in range(repeats):
            script = script_for_letter(letter, runner.rng)
            log = runner.run_script(script)
            windows = runner.pad.segment(log)
            strokes = []
            for w in windows:
                obs = runner.pad.analyze_window(log, w.t0, w.t1)
                if obs is not None:
                    strokes.append(obs)
            total += 1
            hits["grammar"] += runner.pad.grammar.recognize(strokes, windows).letter == letter
            hits["holistic"] += holistic.recognize(strokes, windows).letter == letter
            hits["hybrid"] += hybrid.recognize(strokes, windows).letter == letter

    rows = [
        {"recogniser": name, "accuracy": count / max(1, total)}
        for name, count in hits.items()
    ]
    met = hits["hybrid"] >= hits["grammar"] and hits["holistic"] > 0
    return ExperimentResult(
        experiment_id="ext_holistic",
        title="Extension: stroke grammar vs holistic templates vs hybrid",
        rows=rows,
        expectation=(
            "the hybrid (grammar + holistic fallback) never loses to the "
            "grammar alone — holistic matching absorbs compounded stroke "
            "errors, the paper's section-VI proposal"
        ),
        expectation_met=met,
    )


@register("ext_words")
def run_words(fast: bool = True, seed: int = 7) -> ExperimentResult:
    words = ["HI", "LET"] if fast else ["HI", "LET", "HELP", "EXIT", "TEA"]
    lexicon = ["HI", "LET", "HELP", "EXIT", "TEA", "ILL", "HAT", "TILE"]
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    recognizer = WordRecognizer(
        runner.pad, decoder=WordDecoder(lexicon=lexicon), letter_gap_s=1.3
    )

    rows = []
    letter_ok = 0
    letter_total = 0
    word_ok = 0
    for word in words:
        script = script_for_word(word, runner.rng)
        log = runner.run_script(script)
        result = recognizer.recognize_word(log)
        seg_ok = len(result.letters) == len(word)
        if seg_ok:
            letter_total += len(word)
            letter_ok += sum(
                1 for got, want in zip(result.raw, word) if got == want
            )
        word_ok += result.text == word
        rows.append(
            {
                "word": word,
                "letters_found": len(result.letters),
                "raw": result.raw,
                "decoded": result.text,
                "correct": result.text == word,
            }
        )

    rows.append(
        {
            "word": "summary",
            "letters_found": "",
            "raw": f"letter acc {letter_ok}/{max(1, letter_total)}",
            "decoded": f"word acc {word_ok}/{len(words)}",
            "correct": "",
        }
    )
    met = word_ok >= len(words) - 1
    return ExperimentResult(
        experiment_id="ext_words",
        title="Extension: multi-letter input with lexicon decoding",
        rows=rows,
        expectation="pause clustering separates letters; the lexicon decode fixes stragglers",
        expectation_met=met,
    )


@register("ext_multipad")
def run_multipad(fast: bool = True, seed: int = 7) -> ExperimentResult:
    repeats = 2 if fast else 10
    motions = [
        Motion(StrokeKind.HBAR),
        Motion(StrokeKind.VBAR),
        Motion(StrokeKind.SLASH),
        Motion(StrokeKind.BACKSLASH),
    ]

    # Two pads, side by side, one reader multiplexing between them.
    scen_a = build_scenario(ScenarioConfig(seed=seed))
    scen_b = build_scenario(ScenarioConfig(seed=seed + 1))
    ports = [
        ReaderPort(scen_a.antenna, scen_a.array, scen_a.environment),
        ReaderPort(scen_b.antenna, scen_b.array, scen_b.environment),
    ]
    # Short dwell: 100 ms gaps cost each pad little stroke continuity;
    # commodity readers support per-antenna dwell configuration.  Each
    # port carries its own RNG stream so pad A's draws are untouched by
    # how long pad B's script runs — the same decoupling that makes
    # battery results identical no matter how many REPRO_WORKERS run.
    mux = MultiplexedReader(
        ports,
        ReaderConfig(),
        dwell_s=0.1,
        rngs=[np.random.default_rng(seed), np.random.default_rng(seed + 1)],
    )
    script_rng = np.random.default_rng(seed)

    # Calibrate both pads from a shared quiet capture.
    static_logs = mux.collect_static(6.0)
    pads: List[RFIPad] = []
    for scen, static in zip((scen_a, scen_b), static_logs):
        pad = RFIPad(scen.layout)
        pad.calibrate_from(static)
        pads.append(pad)

    # Simultaneous writers on both pads, timed for the bench ledger.
    trials_mux: List[List[MotionTrial]] = [[], []]
    trial_count = 0
    t_start = time.perf_counter()
    for motion_a in motions:
        for motion_b in motions:
            for _ in range(repeats):
                script_a = script_for_motion(motion_a, script_rng)
                script_b = script_for_motion(motion_b, script_rng)
                duration = max(script_a.duration, script_b.duration)
                logs = mux.collect(
                    duration, [script_a.hand_pose_at, script_b.hand_pose_at]
                )
                for pad, log, motion, sink in (
                    (pads[0], logs[0], motion_a, trials_mux[0]),
                    (pads[1], logs[1], motion_b, trials_mux[1]),
                ):
                    obs = pad.detect_motion(log)
                    sink.append(MotionTrial(motion, obs, len(log)))
                trial_count += 2
    elapsed = time.perf_counter() - t_start
    trials_per_s = trial_count / elapsed if elapsed > 0 else float("inf")

    # Dwell accounting comes from the scheduler's closed form — a pure
    # function of (ports, dwell, duration), so the reported shares are
    # identical whether the battery ran serial or on N workers.
    shares = mux.dwell_totals(10.0)
    share_a, share_b = (s / sum(shares) for s in shares)

    # Dedicated-reader baseline on pad A.
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    baseline = score_motion_trials(
        runner.run_motion_battery(motions, repeats * 2)
    ).accuracy

    # Workspace leg: the same two tiles as one 2x1 workspace, with a
    # boundary-crossing letter stitched across the seam (DESIGN.md §15).
    ws_runner = WorkspaceRunner(
        build_workspace(
            WorkspaceConfig(base=ScenarioConfig(seed=seed), tiles_x=2)
        )
    )
    letter = "L"
    ws_script = script_for_letter(letter, ws_runner.rng)
    ws_log = ws_runner.run_script(ws_script)
    ws_result = ws_runner.pad.recognize_letter(ws_log)
    stitch_err = ws_runner.stitched_trajectory_error(ws_log, ws_script)
    stitch_err_cm = stitch_err * 100 if stitch_err is not None else float("nan")

    acc_a = score_motion_trials(trials_mux[0]).accuracy
    acc_b = score_motion_trials(trials_mux[1]).accuracy
    rows = [
        {"configuration": "dedicated reader (1 pad)", "accuracy": baseline},
        {
            "configuration": f"multiplexed pad A ({share_a:.0%} dwell)",
            "accuracy": acc_a,
        },
        {
            "configuration": f"multiplexed pad B ({share_b:.0%} dwell)",
            "accuracy": acc_b,
        },
        {
            "configuration": "2x1 workspace, boundary letter "
            f"'{letter}' -> '{ws_result.letter}'",
            "accuracy": float(ws_result.letter == letter),
        },
    ]
    met = (
        min(acc_a, acc_b) >= 0.55
        and baseline >= min(acc_a, acc_b)
        and ws_result.letter == letter
    )
    result = ExperimentResult(
        experiment_id="ext_multipad",
        title="Extension: one reader serving two RFIPads (antenna multiplexing)",
        rows=rows,
        expectation=(
            "both multiplexed pads remain usable at 50% dwell, at some cost "
            "vs a dedicated reader (half the sampling rate); a 2x1 workspace "
            "stitches a boundary-crossing letter"
        ),
        expectation_met=met,
    )
    result.notes.append(
        f"vectorized engine path: {mux.vectorized}; "
        f"multipad_trials_per_s {trials_per_s:.2f}; "
        f"stitch_trajectory_err_cm {stitch_err_cm:.2f}"
    )
    return result


@register("ext_tracking")
def run_tracking(fast: bool = True, seed: int = 7) -> ExperimentResult:
    """Trajectory reconstruction from trough anchors vs the Kinect.

    RFIPad's outputs are symbolic (strokes, letters); the same trough
    anchors also support a crude continuous tracker.  We reconstruct the
    hand path for each motion and measure the mean xy error against the
    ground-truth trajectory — tag-pitch-resolution tracking for free.
    """
    from ..core.direction import detect_troughs
    from ..core.trajectory import reconstruct_trajectory, trajectory_error

    repeats = 3 if fast else 15
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
    layout = runner.scenario.layout
    cal = runner.pad.calibration

    motions = {
        "−": Motion(StrokeKind.HBAR),
        "|": Motion(StrokeKind.VBAR),
        "/": Motion(StrokeKind.SLASH),
        "⊂": Motion(StrokeKind.ARC_C),
    }
    rows = []
    errors_all = []
    for name, motion in motions.items():
        errors = []
        for _ in range(repeats):
            script = script_for_motion(motion, runner.rng)
            log = runner.run_script(script)
            troughs = detect_troughs(log, cal)
            estimate = reconstruct_trajectory(troughs, layout)
            if estimate is None:
                continue
            reference = [(p.t, p.position) for p in script.true_trajectory(dt=0.05)]
            try:
                errors.append(trajectory_error(estimate, reference))
            except ValueError:
                continue
        if errors:
            errors_all.extend(errors)
            rows.append(
                {
                    "motion": name,
                    "mean_xy_error_cm": float(np.mean(errors)) * 100,
                    "samples": len(errors),
                }
            )
        else:
            rows.append({"motion": name, "mean_xy_error_cm": float("nan"), "samples": 0})

    overall = float(np.mean(errors_all)) if errors_all else float("inf")
    rows.append(
        {"motion": "overall", "mean_xy_error_cm": overall * 100, "samples": len(errors_all)}
    )

    # Workspace leg: the same metric across a 2x1 tile seam.  The letter
    # script spans both tiles, so trough anchors from the two halves must
    # stitch into one coherent workspace-frame trajectory (DESIGN.md §15).
    ws_runner = WorkspaceRunner(
        build_workspace(
            WorkspaceConfig(base=ScenarioConfig(seed=seed), tiles_x=2)
        )
    )
    stitch_errors = []
    for _ in range(repeats):
        ws_script = script_for_letter("L", ws_runner.rng)
        err = ws_runner.stitched_trajectory_error(
            ws_runner.run_script(ws_script), ws_script
        )
        if err is not None:
            stitch_errors.append(err)
    stitch_err = float(np.mean(stitch_errors)) if stitch_errors else float("inf")
    rows.append(
        {
            "motion": "2x1 workspace stitch (letter L)",
            "mean_xy_error_cm": stitch_err * 100,
            "samples": len(stitch_errors),
        }
    )

    met = (
        bool(errors_all)
        and overall < 0.08  # ~ one tag pitch (6 cm) + slack
        and bool(stitch_errors)
        and stitch_err < 0.08
    )
    result = ExperimentResult(
        experiment_id="ext_tracking",
        title="Extension: trough-anchor trajectory reconstruction accuracy",
        rows=rows,
        expectation=(
            "mean xy tracking error within ~a tag pitch for line and arc "
            "strokes, including stitched trajectories across a 2x1 seam"
        ),
        expectation_met=met,
    )
    result.notes.append(f"stitch_trajectory_err_cm {stitch_err * 100:.2f}")
    return result
