#!/usr/bin/env python
"""Realtime-style streaming recognition.

The other examples run sessions batch-style.  Here the report stream is
consumed *incrementally*, the way the paper's C# frontend does: reports
arrive as the reader produces them, the segmenter is polled periodically,
and each stroke is classified as soon as its window closes — including
the live prefix narrowing of the tree grammar ("these strokes so far can
still become H, K, N, ...").

Run:  python examples/realtime_stream.py
"""

from repro import ScenarioConfig, SessionRunner, build_scenario
from repro.motion.script import script_for_letter
from repro.rfid.reports import ReportLog


def main() -> None:
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=99)))
    pad = runner.pad
    letter = "E"
    script = script_for_letter(letter, runner.rng)
    full_log = runner.run_script(script)

    print(f"user writes {letter!r}; consuming the report stream in 0.3 s ticks\n")

    live = ReportLog()
    reported = 0  # strokes already emitted
    strokes = []
    tick = 0.3
    t = 0.0
    pending = list(full_log)
    i = 0
    while i < len(pending) or t < script.duration:
        t += tick
        while i < len(pending) and pending[i].timestamp <= t:
            live.append(pending[i])
            i += 1
        if len(live) < 50:
            continue
        windows = pad.segment(live)
        # Emit strokes whose windows closed at least 0.3 s ago (debounce).
        closed = [w for w in windows if w.t1 < t - 0.3]
        while reported < len(closed):
            w = closed[reported]
            obs = pad.analyze_window(live, w.t0, w.t1)
            reported += 1
            if obs is None:
                continue
            strokes.append(obs)
            prefix = tuple(s.token for s in strokes)
            candidates = pad.grammar.candidates_for_prefix(prefix)
            print(f"t={t:4.1f}s  stroke #{len(strokes)}: {obs.label:4s} "
                  f"({obs.token}); still possible: "
                  f"{''.join(candidates) if candidates else '(soft matching)'}")

    result = pad.grammar.recognize(strokes, windows)
    print(f"\nfinal: {result.letter!r} "
          f"(candidates {[(l, round(s, 2)) for l, s in result.candidates[:3]]})")


if __name__ == "__main__":
    main()
