#!/usr/bin/env python
"""Realtime-style streaming recognition.

The other examples run sessions batch-style.  Here the report stream is
consumed *incrementally*, the way the paper's C# frontend does: reports
arrive in 100 ms batches, a :class:`repro.StreamingSession` ingests each
batch, and every stroke is classified the moment its window closes —
including the live prefix narrowing of the tree grammar ("these strokes
so far can still become H, K, N, ...").  The session retains only a
bounded tail of the stream, and its output is bit-identical to running
the batch pipeline on the whole log (DESIGN.md §11).

Run:  python examples/realtime_stream.py
"""

from repro import (
    ScenarioConfig,
    SessionRunner,
    StreamingSession,
    StrokeEvent,
    build_scenario,
)
from repro.motion.script import script_for_letter
from repro.sim import iter_chunks


def main() -> None:
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=99)))
    pad = runner.pad
    letter = "E"
    script = script_for_letter(letter, runner.rng)
    log = runner.run_script(script)

    print(f"user writes {letter!r}; ingesting the report stream "
          f"in 100 ms chunks\n")

    session = StreamingSession(pad)
    tokens = []

    def show(event) -> None:
        if not isinstance(event, StrokeEvent) or event.stroke is None:
            return
        obs = event.stroke
        tokens.append(obs.token)
        candidates = pad.grammar.candidates_for_prefix(tuple(tokens))
        print(f"t={event.emitted_at:4.1f}s  stroke #{len(tokens)}: "
              f"{obs.label:4s} ({obs.token}); still possible: "
              f"{''.join(candidates) if candidates else '(soft matching)'}  "
              f"[{session.buffered_reads} reads buffered]")

    for chunk in iter_chunks(log, 0.1):
        for event in session.ingest(chunk):
            show(event)
    for event in session.finalize():
        show(event)

    result = session.letter_result
    print(f"\nfinal: {result.letter!r} "
          f"(candidates {[(l, round(s, 2)) for l, s in result.candidates[:3]]})")
    print(f"retained {session.buffered_reads} of {len(log)} reads at finish")


if __name__ == "__main__":
    main()
