#!/usr/bin/env python
"""Kiosk text entry: the paper's motivating scenario.

A public kiosk (library / hospital / airport) shows a prompt; a visitor
writes a query letter by letter over the tag pad, contact-free.  This
example spells a whole word, letter by letter, showing the per-letter
candidate ranking and a simple word-level correction using a lexicon —
the natural next layer on top of RFIPad's per-letter output (the paper
leaves multi-letter input as future work; the lexicon correction shows
how compounding letter errors can be absorbed downstream).

Run:  python examples/kiosk_text_entry.py
"""

from typing import List, Sequence, Tuple

from repro import ScenarioConfig, SessionRunner, build_scenario

#: Things people ask a kiosk for.
LEXICON = ["WARD", "EXIT", "GATE", "BOOK", "TAXI", "HELP", "CAFE", "LIFT"]

WORD = "GATE"


def best_lexicon_match(per_letter_candidates: Sequence[Sequence[Tuple[str, float]]]) -> str:
    """Pick the lexicon word whose letters best fit the candidate rankings.

    Score of a word = sum over positions of the candidate score of its
    letter (or a miss penalty when the letter is not among candidates).
    """
    def letter_cost(candidates: Sequence[Tuple[str, float]], letter: str) -> float:
        for cand, score in candidates:
            if cand == letter:
                return score
        return 2.0  # not even in the top candidates

    best_word, best_cost = "", float("inf")
    for word in LEXICON:
        if len(word) != len(per_letter_candidates):
            continue
        cost = sum(
            letter_cost(cands, letter)
            for cands, letter in zip(per_letter_candidates, word)
        )
        if cost < best_cost:
            best_word, best_cost = word, cost
    return best_word


def main() -> None:
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=2026)))
    print(f"kiosk ready — visitor writes {WORD!r} in the air\n")

    raw_reading: List[str] = []
    rankings: List[List[Tuple[str, float]]] = []
    for letter in WORD:
        trial = runner.run_letter(letter)
        result = trial.result
        got = result.letter if result.letter is not None else "?"
        raw_reading.append(got)
        rankings.append(list(result.candidates[:5]))
        print(f"  wrote {letter!r}: read {got!r}  "
              f"candidates={[(l, round(s, 2)) for l, s in result.candidates[:3]]}")

    raw = "".join(raw_reading)
    corrected = best_lexicon_match(rankings)
    print(f"\nraw per-letter reading : {raw}")
    print(f"lexicon-corrected query: {corrected}")
    print("=> kiosk responds:",
          "directions to the gate" if corrected == "GATE" else f"results for {corrected!r}")


if __name__ == "__main__":
    main()
