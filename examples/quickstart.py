#!/usr/bin/env python
"""Quickstart: deploy a simulated RFIPad, calibrate it, and recognise
hand motions and a letter.

Run:  python examples/quickstart.py
"""

from repro import (
    Motion,
    ScenarioConfig,
    SessionRunner,
    StrokeKind,
    build_scenario,
)
from repro.motion.strokes import Direction


def main() -> None:
    # 1. Build the paper's prototype deployment: a 5x5 tag pad, reader
    #    antenna 32 cm behind the board (NLOS), 30 dBm, an office with
    #    moderate multipath.  The SessionRunner captures a static
    #    calibration automatically (no training — just a quiet pad).
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=42)))
    print(f"pad: {runner.scenario.layout.rows}x{runner.scenario.layout.cols} tags, "
          f"antenna at {runner.scenario.antenna.position}")
    print(f"static capture: {len(runner.static_log)} tag reads "
          f"({runner.static_log.aggregate_read_rate():.0f} reads/s)\n")

    # 2. Touch-screen operations: a click, a swipe, a scroll.
    for name, motion in [
        ("click", Motion(StrokeKind.CLICK)),
        ("swipe right", Motion(StrokeKind.HBAR, Direction.FORWARD)),
        ("scroll down", Motion(StrokeKind.VBAR, Direction.FORWARD)),
    ]:
        trial = runner.run_motion(motion)
        obs = trial.observed
        verdict = "OK" if trial.fully_correct else "miss"
        print(f"{name:12s} -> {obs.label if obs else 'nothing':4s} [{verdict}] "
              f"confidence={obs.confidence:.2f}" if obs else f"{name}: undetected")

    # 3. In-air handwriting: write the letter 'H' and watch the pipeline
    #    segment it into strokes and compose them via the tree grammar.
    trial = runner.run_letter("H")
    result = trial.result
    print(f"\nwrote 'H': segmented {len(result.windows)} strokes, "
          f"tokens={result.stroke_tokens}, recognised as {result.letter!r}")
    print("top candidates:", [(l, round(s, 2)) for l, s in result.candidates[:3]])

    # 4. Peek at the signal processing: the last stroke's grey map and
    #    OTSU mask (the paper's Fig. 7-style view).
    last = result.strokes[-1]
    print("\nlast stroke grey map:")
    print(last.grey.ascii_art())
    print("after OTSU:")
    print(last.binary.ascii_art())


if __name__ == "__main__":
    main()
