#!/usr/bin/env python
"""Deployment planner: the paper's section IV engineering guidance as a tool.

Given a pad size and tag design, this walks the deployment questions an
integrator faces — tag spacing and facing (mutual coupling, Fig. 11/12),
antenna distance (beam coverage, Fig. 13 / Eq. 13-14), TX power margin —
then validates the chosen deployment end-to-end with a quick motion battery.

Run:  python examples/deployment_planner.py
"""

from repro import ScenarioConfig, SessionRunner, all_motions, build_scenario, score_motion_trials
from repro.physics.antenna import minimum_plane_distance, plane_side_for_grid
from repro.physics.coupling import ALL_DESIGNS, aggregate_shadow_loss_db, pair_shadow_loss_db
from repro.physics.geometry import GridLayout, Vec3
from repro.units import dbm_to_watts, watts_to_dbm


def main() -> None:
    rows = cols = 5
    tag_size = 0.044
    spacing = 0.06
    gain_dbi = 8.0

    # --- 1. tag design selection: who pollutes the array least? --------
    print("== tag design selection (array self-interference) ==")
    layout = GridLayout(rows=rows, cols=cols, pitch=spacing)
    centre = layout.position(rows // 2, cols // 2)
    for design in ALL_DESIGNS:
        loss = aggregate_shadow_loss_db(centre, layout.positions(), design)
        print(f"  design {design.name}: centre-tag coupling loss "
              f"{loss:5.1f} dB  (RCS {design.rcs_m2 * 1e4:.1f} cm^2)")
    best = min(
        ALL_DESIGNS,
        key=lambda d: aggregate_shadow_loss_db(centre, layout.positions(), d),
    )
    print(f"  -> pick design {best.name} (smallest RCS, as the paper concludes)\n")

    # --- 2. spacing and facing ------------------------------------------
    print("== spacing & facing (pairwise coupling) ==")
    for sep in (0.03, 0.06, 0.12):
        same = pair_shadow_loss_db(sep, best, same_facing=True)
        opp = pair_shadow_loss_db(sep, best, same_facing=False)
        print(f"  {sep * 100:4.0f} cm: same-facing {same:4.2f} dB, "
              f"opposite-facing {opp:4.2f} dB")
    print("  -> 6 cm spacing with checkerboard facing keeps coupling negligible\n")

    # --- 3. antenna distance (Eq. 13-14 / Fig. 13) ----------------------
    side = plane_side_for_grid(tag_size, spacing, rows)
    d_min = minimum_plane_distance(side, gain_dbi)
    print("== antenna geometry ==")
    print(f"  pad side {side * 100:.0f} cm, {gain_dbi:.0f} dBi panel "
          f"-> minimum antenna distance {d_min * 100:.1f} cm for 3 dB coverage\n")

    # --- 4. validate the plan end-to-end --------------------------------
    print("== end-to-end validation (13-motion battery) ==")
    config = ScenarioConfig(
        seed=7,
        rows=rows,
        cols=cols,
        tag_pitch=spacing,
        tag_design=best,
        reader_distance=max(0.32, round(d_min + 0.02, 2)),
        antenna_gain_dbi=gain_dbi,
    )
    runner = SessionRunner(build_scenario(config))
    trials = runner.run_motion_battery(all_motions(), repeats=2)
    counts = score_motion_trials(trials)
    print(f"  deployment at {config.reader_distance * 100:.0f} cm, "
          f"{config.tx_power_dbm:.0f} dBm:")
    print(f"  accuracy {counts.accuracy:.1%}  FPR {counts.fpr:.1%}  FNR {counts.fnr:.1%}")
    verdict = "ship it" if counts.accuracy >= 0.85 else "revisit the plan"
    print(f"  -> {verdict}")


if __name__ == "__main__":
    main()
