"""Benchmark regenerating Extension - hand speed vs link profile (extension ext_speed, paper section VI)."""

from .conftest import run_and_report


def test_ext_speed(benchmark, fast_mode):
    run_and_report(benchmark, "ext_speed", fast=fast_mode)
