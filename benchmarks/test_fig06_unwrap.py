"""Benchmark regenerating Fig. 6 phase de-periodicity (paper artefact fig06)."""

from .conftest import run_and_report


def test_fig06_unwrap(benchmark, fast_mode):
    run_and_report(benchmark, "fig06", fast=fast_mode)
