"""Benchmark regenerating Ablation - segmentation window size (ablation abl_window, DESIGN.md §5)."""

from .conftest import run_and_report


def test_abl_window(benchmark, fast_mode):
    run_and_report(benchmark, "abl_window", fast=fast_mode)
