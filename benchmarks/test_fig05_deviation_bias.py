"""Benchmark regenerating Fig. 5 per-tag phase std (Deviation bias) (paper artefact fig05)."""

from .conftest import run_and_report


def test_fig05_deviation_bias(benchmark, fast_mode):
    run_and_report(benchmark, "fig05", fast=fast_mode)
