"""Benchmark regenerating Fig. 12 array shadowing x tag designs (paper artefact fig12)."""

from .conftest import run_and_report


def test_fig12_array_interference(benchmark, fast_mode):
    run_and_report(benchmark, "fig12", fast=fast_mode)
