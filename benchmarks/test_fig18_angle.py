"""Benchmark regenerating Fig. 18 accuracy vs reader angle (paper artefact fig18)."""

from .conftest import run_and_report


def test_fig18_angle(benchmark, fast_mode):
    run_and_report(benchmark, "fig18", fast=fast_mode)
