"""Benchmark regenerating Fig. 21 stroke time CDF (paper artefact fig21)."""

from .conftest import run_and_report


def test_fig21_time_cdf(benchmark, fast_mode):
    run_and_report(benchmark, "fig21", fast=fast_mode)
