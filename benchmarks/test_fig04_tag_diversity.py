"""Benchmark regenerating Fig. 4 per-tag static phase (tag diversity) (paper artefact fig04)."""

from .conftest import run_and_report


def test_fig04_tag_diversity(benchmark, fast_mode):
    run_and_report(benchmark, "fig04", fast=fast_mode)
