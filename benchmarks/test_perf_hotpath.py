"""Hot-path performance benchmark: the `repro stats` battery, timed.

Measures the standard motion+letter workload (13 motions + the letter
"T" on the seed-11 NLOS deployment) three ways:

* **engine** — the vectorized :class:`ChannelEngine` path (the default);
* **scalar** — the scalar reference path (``REPRO_SCALAR_CHANNEL=1``),
  i.e. the pre-vectorization architecture;
* **parallel** — the engine path fanned out over worker processes.

Every run appends one trajectory entry to ``BENCH_pipeline.json`` at the
repo root: wall times, speedup, reads/sec, trials/sec, and per-stage p95
latencies from the tracer, so the performance history is recorded next to
the code it measures.

``REPRO_BENCH_SMOKE=1`` shrinks the workload to a few trials and a single
round — `scripts/check.sh` uses it to keep the benchmark exercised without
paying the full measurement cost.  Full runs: ``sh scripts/bench.sh``.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Dict, List, Tuple

from repro.motion.strokes import all_motions
from repro.obs.trace import get_tracer
from repro.sim.runner import SessionRunner
from repro.sim.scenario import ScenarioConfig, build_scenario

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(ROOT, "BENCH_pipeline.json")

#: Pre-vectorization baseline: the same workload at commit 1d0d95e
#: (scalar ChannelModel per read, serial battery), best of 3 interleaved
#: runs on the reference container.  Kept for the trajectory record; the
#: speedup asserted below is measured live against the in-repo scalar path.
PRE_PR_BASELINE_S = 4.418


def _battery_spec() -> Tuple[list, str]:
    motions = all_motions()
    if SMOKE:
        motions = motions[:3]
    return motions, "T"


def _run_battery(use_engine: bool, trace: bool = False) -> Dict[str, float]:
    """One full workload run; returns wall time and read/trial counts."""
    prev = os.environ.pop("REPRO_SCALAR_CHANNEL", None)
    if not use_engine:
        os.environ["REPRO_SCALAR_CHANNEL"] = "1"
    tracer = get_tracer()
    if trace:
        tracer.reset()
        tracer.enable()
    try:
        motions, letter = _battery_spec()
        t0 = time.perf_counter()
        runner = SessionRunner(
            build_scenario(ScenarioConfig(seed=11, mount="nlos", location=2))
        )
        reads = 0
        slots = 0
        for motion in motions:
            reads += runner.run_motion(motion).log_size
            slots += runner.reader.last_inventory_stats.slots
        runner.run_letter(letter)
        slots += runner.reader.last_inventory_stats.slots
        wall = time.perf_counter() - t0
        # reads counts the motion trials' logs (the letter log is not
        # retained on LetterTrial); the rate is still apples-to-apples
        # across entries because the workload is fixed.  slots counts every
        # MAC slot (successes + collisions + idles) the inventory engine
        # resolved across the battery's collect windows.
        return {
            "wall_s": wall,
            "reads": float(reads),
            "slots": float(slots),
            "trials": float(len(motions) + 1),
        }
    finally:
        os.environ.pop("REPRO_SCALAR_CHANNEL", None)
        if prev is not None:
            os.environ["REPRO_SCALAR_CHANNEL"] = prev


def _best_of(use_engine: bool, rounds: int) -> Dict[str, float]:
    best = None
    for _ in range(rounds):
        run = _run_battery(use_engine)
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    return best


def _stage_p95() -> Dict[str, float]:
    """Per-stage p95 (ms) from a traced engine run of the workload."""
    _run_battery(use_engine=True, trace=True)
    tracer = get_tracer()
    agg = tracer.aggregate()
    tracer.reset()
    return {path: round(stats["p95_s"] * 1e3, 4) for path, stats in agg.items()}


def _stream_event_p95_ms() -> "float | None":
    """p95 stroke-event latency of one streamed letter session, in ms.

    Latency is measured in *stream time* (newest read seen at emission
    minus window close), so it captures the segmenter's decision lag —
    lookahead windows + merge-gap settling — not host speed.  The run is
    scoped to a fresh registry (``scoped_metrics``) so nothing recorded
    by earlier benchmark legs — or left behind by previous entries in the
    same process — can leak into the histogram this leg reports.
    """
    from repro.obs.metrics import MetricsRegistry, scoped_metrics
    from repro.sim.live import LiveDriver

    with scoped_metrics(MetricsRegistry(enabled=True)) as metrics:
        runner = SessionRunner(
            build_scenario(ScenarioConfig(seed=11, mount="nlos", location=2))
        )
        LiveDriver(runner, chunk_s=0.1).run_letter("T")
        hist = metrics.get_histogram("stream.event_latency_s")
        if hist is None or hist.count == 0:
            return None
        return round(hist.percentile(95.0) * 1e3, 4)


def _telemetry_wall_s(rounds: int) -> float:
    """Best engine-battery wall with the full telemetry stack *on*.

    Tracer + metrics enabled (scoped, so the measurement doesn't pollute
    the process registries) and a TelemetryHub sampling at 10 Hz — the
    worst-case observability configuration a monitored run pays.
    """
    from repro.obs.metrics import MetricsRegistry, scoped_metrics
    from repro.obs.telemetry import TelemetryHub
    from repro.obs.trace import Tracer, scoped_tracer

    best = None
    for _ in range(rounds):
        with scoped_tracer(Tracer(enabled=True)), scoped_metrics(
            MetricsRegistry(enabled=True)
        ):
            hub = TelemetryHub(interval_s=0.1)
            hub.start()
            try:
                wall = _run_battery(use_engine=True)["wall_s"]
            finally:
                hub.stop(final_sample=True)
        if best is None or wall < best:
            best = wall
    return best


def _stream_provisional_p95_ms() -> Dict[str, "float | None"]:
    """Provisional-session latency percentiles from one streamed letter.

    ``stream.provisional_latency_s`` is the stream-time lag of each
    preview behind the newest ingested read; ``stream.letter_latency_s``
    is the lag of the *finalized* letter decision behind the last read of
    its final window — the number the acceptance bound (< 150 ms) gates.
    """
    from repro.obs.metrics import MetricsRegistry, scoped_metrics
    from repro.sim.live import LiveDriver

    with scoped_metrics(MetricsRegistry(enabled=True)) as metrics:
        runner = SessionRunner(
            build_scenario(ScenarioConfig(seed=11, mount="nlos", location=2))
        )
        LiveDriver(runner, chunk_s=0.05, provisional=True).run_letter("T")
        out: Dict[str, "float | None"] = {}
        for key, name in (
            ("stream_provisional_p95_ms", "stream.provisional_latency_s"),
            ("stream_letter_p95_ms", "stream.letter_latency_s"),
        ):
            hist = metrics.get_histogram(name)
            if hist is None or hist.count == 0:
                out[key] = None
            else:
                out[key] = round(hist.percentile(95.0) * 1e3, 4)
        return out


#: Serving-leg shape: the acceptance bar is >= 200 concurrent real-time
#: sessions on the 1-core container with finalized-letter p95 < 150 ms.
SERVE_SESSIONS = 200
SERVE_CHUNK_S = 0.4
SERVE_RAMP_S = 2.0


def _serve_leg() -> Dict[str, "float | None"]:
    """Multi-session serving throughput: 200 concurrent paced writers.

    A :class:`BackgroundHub` serves on an ephemeral port while the
    loadgen drives ``SERVE_SESSIONS`` concurrent writers, each replaying
    a seed-11 letter-"T" session over its own TCP connection in
    real-time-paced ``SERVE_CHUNK_S`` report batches (starts staggered
    across ``SERVE_RAMP_S`` — writers are not phase-locked in real
    deployments).  ``serve_event_p95_ms`` is the client-perceived
    finalize-to-letter tail latency; ``serve_hub_event_p95_ms`` is the
    hub-side enqueue-to-emit lag of final events.  Runs at full scale in
    smoke mode too: the 200-session bar *is* the acceptance criterion,
    and the leg costs seconds, not minutes.
    """
    from repro.obs.metrics import MetricsRegistry, scoped_metrics
    from repro.serve import BackgroundHub, HubConfig
    from repro.serve.loadgen import run_loadgen_sync, session_logs

    runner = SessionRunner(
        build_scenario(ScenarioConfig(seed=11, mount="nlos", location=2))
    )
    logs = session_logs(runner, "T", 4)
    with scoped_metrics(MetricsRegistry(enabled=True)) as metrics:
        hub = BackgroundHub(
            runner.pad, HubConfig(port=0, workers=1, batch_sessions=32)
        )
        try:
            result = run_loadgen_sync(
                hub.address[0],
                hub.address[1],
                logs,
                sessions=SERVE_SESSIONS,
                chunk_s=SERVE_CHUNK_S,
                time_scale=1.0,
                pace=True,
                ramp_s=SERVE_RAMP_S,
                expected_letter="T",
            )
        finally:
            hub.stop()
        hist = metrics.get_histogram("serve.event_latency_s")
        hub_p95 = (
            round(hist.percentile(95.0) * 1e3, 4)
            if hist is not None and hist.count
            else None
        )
        dropped = metrics.counter_value("serve.dropped_chunks")
    assert result.completed == SERVE_SESSIONS, (
        f"serving leg: only {result.completed}/{SERVE_SESSIONS} sessions "
        f"completed; errors: {result.errors[:3]}"
    )
    assert result.peak_concurrent >= SERVE_SESSIONS, (
        f"serving leg never reached {SERVE_SESSIONS} concurrent sessions "
        f"(peak {result.peak_concurrent})"
    )
    assert result.letters_expected == result.completed, (
        "serving leg: some sessions finalized the wrong letter — the hub "
        "is not stream-equivalent under concurrency"
    )
    return {
        "serve_concurrent_sessions": float(result.peak_concurrent),
        "serve_sessions_per_s": round(result.sessions_per_s, 2),
        "serve_event_p95_ms": round(result.event_p95_ms, 4),
        "serve_event_p99_ms": round(result.event_p99_ms, 4),
        "serve_hub_event_p95_ms": hub_p95,
        "serve_dropped_chunks": dropped,
    }


def _multipad_leg() -> Dict[str, "float | None"]:
    """Multipad throughput + workspace stitch quality.

    Throughput: simultaneous writers on two multiplexed pads (the
    ``ext_multipad`` shape) on the vectorized engine path, in trials/s.
    Stitch quality: a 2x1 workspace runs one boundary-crossing letter
    and reports fig25's Kinect trajectory-error metric on the stitched
    workspace-frame trajectory, in cm — the seam cost, recorded next to
    the throughput it buys.
    """
    import numpy as np

    from repro.motion.script import script_for_letter, script_for_motion
    from repro.motion.strokes import Motion, StrokeKind
    from repro.rfid.multiplex import MultiplexedReader, ReaderPort
    from repro.rfid.reader import ReaderConfig
    from repro.sim.runner import WorkspaceRunner
    from repro.sim.workspace import WorkspaceConfig, build_workspace

    scen_a = build_scenario(ScenarioConfig(seed=11, mount="nlos", location=2))
    scen_b = build_scenario(ScenarioConfig(seed=12, mount="nlos", location=2))
    mux = MultiplexedReader(
        [
            ReaderPort(scen_a.antenna, scen_a.array, scen_a.environment),
            ReaderPort(scen_b.antenna, scen_b.array, scen_b.environment),
        ],
        ReaderConfig(),
        dwell_s=0.1,
        rngs=[np.random.default_rng(11), np.random.default_rng(12)],
    )
    assert mux.vectorized, "multipad leg must run the engine path"
    motions = [Motion(StrokeKind.HBAR), Motion(StrokeKind.VBAR)]
    if not SMOKE:
        motions += [Motion(StrokeKind.SLASH), Motion(StrokeKind.BACKSLASH)]
    script_rng = np.random.default_rng(11)
    trials = 0
    t0 = time.perf_counter()
    for motion_a in motions:
        for motion_b in motions:
            script_a = script_for_motion(motion_a, script_rng)
            script_b = script_for_motion(motion_b, script_rng)
            mux.collect(
                max(script_a.duration, script_b.duration),
                [script_a.hand_pose_at, script_b.hand_pose_at],
            )
            trials += 2
    wall = time.perf_counter() - t0

    ws_runner = WorkspaceRunner(
        build_workspace(WorkspaceConfig(base=ScenarioConfig(seed=7), tiles_x=2))
    )
    script = script_for_letter("L", ws_runner.rng)
    log = ws_runner.run_script(script)
    letter = ws_runner.pad.recognize_letter(log).letter
    err = ws_runner.stitched_trajectory_error(log, script)
    return {
        "multipad_trials_per_s": round(trials / wall, 2),
        "multipad_boundary_letter_ok": letter == "L",
        "stitch_trajectory_err_cm": round(err * 100, 3) if err is not None else None,
    }


def _serial_trials_per_s(rounds: int) -> float:
    """True serial battery throughput: shared-RNG loop, workers=0."""
    motions, _ = _battery_spec()
    runner = SessionRunner(
        build_scenario(ScenarioConfig(seed=11, mount="nlos", location=2))
    )
    best = None
    trials = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        trials = runner.run_motion_battery(motions, 1, workers=0)
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    return len(trials) / best


def _parallel_trials_per_s(workers: int, rounds: int) -> float:
    """Warmed-pool battery throughput for a given worker count.

    The first battery pays pool spawn + per-worker engine construction;
    it is run once and discarded so the recorded number is the steady
    state a monitored session reaches after its opening battery.
    Recorded in smoke mode too, so the "parallel vs serial" trajectory
    stays visible in every entry, not just full runs.
    """
    from repro.sim.parallel import shutdown_pools

    motions, _ = _battery_spec()
    runner = SessionRunner(
        build_scenario(ScenarioConfig(seed=11, mount="nlos", location=2))
    )
    try:
        runner.run_motion_battery(motions, 1, workers=workers)  # warm
        best = None
        trials = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            trials = runner.run_motion_battery(motions, 1, workers=workers)
            wall = time.perf_counter() - t0
            best = wall if best is None else min(best, wall)
        return len(trials) / best
    finally:
        shutdown_pools()


def _git_head() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT, capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def _append_entry(entry: Dict) -> None:
    doc = {"workload": "repro stats battery (13 motions + letter T, seed 11)",
           "entries": []}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, encoding="utf-8") as fh:
            doc = json.load(fh)
    doc.setdefault("entries", []).append(entry)
    with open(BENCH_JSON, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def _best_recorded_wall(smoke: bool) -> "float | None":
    """Fastest engine wall among recorded entries of the same workload size."""
    if not os.path.exists(BENCH_JSON):
        return None
    with open(BENCH_JSON, encoding="utf-8") as fh:
        doc = json.load(fh)
    walls = [
        e["engine_wall_s"]
        for e in doc.get("entries", [])
        if e.get("smoke", False) == smoke and e.get("engine_wall_s")
    ]
    return min(walls) if walls else None


def test_hotpath_benchmark():
    rounds = 1 if SMOKE else 3
    prior_best_wall = _best_recorded_wall(SMOKE)
    engine = _best_of(use_engine=True, rounds=rounds)
    scalar = _best_of(use_engine=False, rounds=rounds)
    speedup = scalar["wall_s"] / engine["wall_s"]
    telemetry_wall = _telemetry_wall_s(rounds)
    stage_p95_ms = _stage_p95()
    serial_tps = _serial_trials_per_s(rounds)
    parallel2_tps = _parallel_trials_per_s(2, rounds)
    parallel4_tps = _parallel_trials_per_s(4, rounds)
    stream_p95 = _stream_provisional_p95_ms()
    serve = _serve_leg()
    multipad = _multipad_leg()

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "commit": _git_head(),
        "smoke": SMOKE,
        "rounds": rounds,
        "engine_wall_s": round(engine["wall_s"], 4),
        "scalar_wall_s": round(scalar["wall_s"], 4),
        "speedup_engine_vs_scalar": round(speedup, 2),
        "pre_pr_scalar_baseline_s": PRE_PR_BASELINE_S,
        "speedup_vs_pre_pr_baseline": round(PRE_PR_BASELINE_S / engine["wall_s"], 2)
        if not SMOKE
        else None,
        "reads_per_s": round(engine["reads"] / engine["wall_s"], 1),
        "slots_per_s": round(engine["slots"] / engine["wall_s"], 1),
        "trials_per_s": round(engine["trials"] / engine["wall_s"], 2),
        "reader_collect_p95_ms": stage_p95_ms.get("trial.motion/reader.collect"),
        "stream_event_p95_ms": _stream_event_p95_ms(),
        "telemetry_wall_s": round(telemetry_wall, 4),
        "telemetry_overhead_pct": round(
            100.0 * (telemetry_wall - engine["wall_s"]) / engine["wall_s"], 2
        ),
        "serial_trials_per_s": round(serial_tps, 2),
        "parallel_trials_per_s_workers2": round(parallel2_tps, 2),
        "parallel_trials_per_s_workers4": round(parallel4_tps, 2),
        "parallel_speedup_workers4": round(parallel4_tps / serial_tps, 2),
        "stream_provisional_p95_ms": stream_p95["stream_provisional_p95_ms"],
        "stream_letter_p95_ms": stream_p95["stream_letter_p95_ms"],
        **serve,
        **multipad,
        "stage_p95_ms": stage_p95_ms,
    }
    _append_entry(entry)
    print()
    print(json.dumps(entry, indent=2))

    assert engine["reads"] > 0
    assert os.path.exists(BENCH_JSON)
    if not SMOKE:
        # The engine must beat the in-repo scalar reference comfortably;
        # the 5x acceptance number is vs the pre-PR baseline and is
        # recorded (not asserted) because this container's clock is noisy.
        assert speedup > 1.5
    # Regression floor: never regress more than 2x over the best recorded
    # wall for the same workload size.  check.sh's smoke run arms this
    # against the smoke history; full runs guard against the full history.
    if prior_best_wall is not None:
        assert engine["wall_s"] <= 2.0 * prior_best_wall, (
            f"engine wall {engine['wall_s']:.4f}s regressed more than 2x over "
            f"the best recorded entry ({prior_best_wall:.4f}s)"
        )
    # Telemetry overhead bound: the fully-instrumented run (tracer +
    # metrics + 10 Hz hub sampling) must stay within 5% of the same-run
    # plain engine wall, with a small absolute slack term absorbing this
    # container's clock noise on sub-second walls.
    assert telemetry_wall <= 1.05 * engine["wall_s"] + 0.05, (
        f"telemetry-on wall {telemetry_wall:.4f}s exceeds the 5% overhead "
        f"budget over the plain engine wall {engine['wall_s']:.4f}s"
    )
    # Parallel must never fall behind serial again (the regression this
    # battery of changes fixed).  The warmed 4-worker pool batches the
    # whole battery along the trial axis, so even on a 1-core container
    # it beats the serial loop; check.sh re-enforces the same bound from
    # the recorded entry.
    assert parallel4_tps >= serial_tps, (
        f"parallel(4) throughput {parallel4_tps:.2f} trials/s fell below "
        f"serial {serial_tps:.2f} trials/s"
    )
    # Finalized letter decisions must land promptly after their last
    # read: the provisional layer's reason to exist.
    if stream_p95["stream_letter_p95_ms"] is not None:
        assert stream_p95["stream_letter_p95_ms"] < 150.0, (
            f"finalized letter-event p95 "
            f"{stream_p95['stream_letter_p95_ms']:.1f} ms breaches the "
            f"150 ms streaming budget"
        )
    # Serving acceptance: 200 concurrent real-time sessions on this
    # 1-core container must finalize letters with p95 tail latency under
    # the same 150 ms budget, without shedding a single chunk.
    assert serve["serve_event_p95_ms"] < 150.0, (
        f"serving letter-event p95 {serve['serve_event_p95_ms']:.1f} ms "
        f"breaches the 150 ms budget at {SERVE_SESSIONS} concurrent sessions"
    )
    assert serve["serve_dropped_chunks"] == 0, (
        f"the lossless 'block' policy shed {serve['serve_dropped_chunks']} "
        f"chunk(s) during the serving leg"
    )
    # Workspace acceptance: the 2x1 tiled run must recognize its
    # boundary-crossing letter and keep the stitched trajectory within a
    # tag pitch (+ slack) of ground truth — the seam must not cost more
    # than the solo tracker's own error budget.
    assert multipad["multipad_boundary_letter_ok"], (
        "2x1 workspace failed to recognize the boundary-crossing letter"
    )
    assert multipad["stitch_trajectory_err_cm"] is not None, (
        "2x1 workspace produced no stitched trajectory"
    )
    assert multipad["stitch_trajectory_err_cm"] < 8.0, (
        f"stitched trajectory error {multipad['stitch_trajectory_err_cm']} cm "
        f"breaches the 8 cm (~tag pitch + slack) budget"
    )
