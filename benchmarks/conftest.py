"""Benchmark harness shared plumbing.

Each benchmark regenerates one paper artefact (table or figure) via the
corresponding :mod:`repro.experiments` module, prints the rows the paper
reports, and asserts the shape-level expectation.  Set ``REPRO_FULL=1`` to
run paper-scale repeat counts instead of the fast defaults.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentResult, run_experiment

FULL_SCALE = os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    return not FULL_SCALE


def run_and_report(
    benchmark, experiment_id: str, fast: bool, require_met: bool = True
) -> ExperimentResult:
    """Run one experiment under pytest-benchmark and print its artefact."""
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, fast=fast),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())
    if require_met:
        assert result.expectation_met, (
            f"{experiment_id} failed its shape expectation: {result.expectation}"
        )
    return result
