"""Benchmark regenerating Extension - trough-anchor trajectory tracking (ext_tracking)."""

from .conftest import run_and_report


def test_ext_tracking(benchmark, fast_mode):
    run_and_report(benchmark, "ext_tracking", fast=fast_mode)
