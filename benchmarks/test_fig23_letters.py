"""Benchmark regenerating Fig. 23 alphabet accuracy (paper artefact fig23)."""

from .conftest import run_and_report


def test_fig23_letters(benchmark, fast_mode):
    run_and_report(benchmark, "fig23", fast=fast_mode)
