"""Benchmark regenerating Fig. 22 segmentation + letters L,T,Z,H,E (paper artefact fig22)."""

from .conftest import run_and_report


def test_fig22_segmentation(benchmark, fast_mode):
    run_and_report(benchmark, "fig22", fast=fast_mode)
