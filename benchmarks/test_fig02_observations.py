"""Benchmark regenerating Fig. 2 channel parameters static vs hand (paper artefact fig02)."""

from .conftest import run_and_report


def test_fig02_observations(benchmark, fast_mode):
    run_and_report(benchmark, "fig02", fast=fast_mode)
