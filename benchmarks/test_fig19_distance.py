"""Benchmark regenerating Fig. 19 error vs reader distance (paper artefact fig19)."""

from .conftest import run_and_report


def test_fig19_distance(benchmark, fast_mode):
    run_and_report(benchmark, "fig19", fast=fast_mode)
