"""Benchmark regenerating Extension - one reader, two pads (extension ext_multipad, paper section VI)."""

from .conftest import run_and_report


def test_ext_multipad(benchmark, fast_mode):
    run_and_report(benchmark, "ext_multipad", fast=fast_mode)
