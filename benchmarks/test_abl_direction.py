"""Benchmark regenerating Ablation - RSS vs phase direction ordering (ablation abl_direction, DESIGN.md §5)."""

from .conftest import run_and_report


def test_abl_direction(benchmark, fast_mode):
    run_and_report(benchmark, "abl_direction", fast=fast_mode)
