"""Benchmark regenerating Fig. 13 beam geometry + min distance (paper artefact fig13)."""

from .conftest import run_and_report


def test_fig13_antenna_geometry(benchmark, fast_mode):
    run_and_report(benchmark, "fig13", fast=fast_mode)
