"""Benchmark regenerating Extension - accuracy vs hover height (extension ext_hover, paper section VI)."""

from .conftest import run_and_report


def test_ext_hover(benchmark, fast_mode):
    run_and_report(benchmark, "ext_hover", fast=fast_mode)
