"""Benchmark regenerating Ablation - Eq.10 bias weighting (ablation abl_weighting, DESIGN.md §5)."""

from .conftest import run_and_report


def test_abl_weighting(benchmark, fast_mode):
    run_and_report(benchmark, "abl_weighting", fast=fast_mode)
