"""Benchmark regenerating Fig. 11 pair interference (paper artefact fig11)."""

from .conftest import run_and_report


def test_fig11_pair_interference(benchmark, fast_mode):
    run_and_report(benchmark, "fig11", fast=fast_mode)
