"""Benchmark regenerating Extension - word input with lexicon decoding (extension ext_words, paper section VI)."""

from .conftest import run_and_report


def test_ext_words(benchmark, fast_mode):
    run_and_report(benchmark, "ext_words", fast=fast_mode)
