"""Benchmark regenerating Fig. 24 response time per motion (paper artefact fig24)."""

from .conftest import run_and_report


def test_fig24_latency(benchmark, fast_mode):
    run_and_report(benchmark, "fig24", fast=fast_mode)
