"""Benchmark regenerating Fig. 8 phase-trend symmetry classes (paper artefact fig08)."""

from .conftest import run_and_report


def test_fig08_phase_symmetry(benchmark, fast_mode):
    run_and_report(benchmark, "fig08", fast=fast_mode)
