"""Benchmark regenerating Table I LOS vs NLOS motion accuracy (paper artefact tab1)."""

from .conftest import run_and_report


def test_tab1_los_nlos(benchmark, fast_mode):
    run_and_report(benchmark, "tab1", fast=fast_mode)
