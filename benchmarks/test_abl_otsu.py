"""Benchmark regenerating Ablation - OTSU vs fixed thresholds (ablation abl_otsu, DESIGN.md §5)."""

from .conftest import run_and_report


def test_abl_otsu(benchmark, fast_mode):
    run_and_report(benchmark, "abl_otsu", fast=fast_mode)
