"""Benchmark regenerating Fig. 9 RMS/std(RMS) while writing H (paper artefact fig09)."""

from .conftest import run_and_report


def test_fig09_segmentation_trace(benchmark, fast_mode):
    run_and_report(benchmark, "fig09", fast=fast_mode)
