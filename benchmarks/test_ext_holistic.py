"""Benchmark regenerating Extension - holistic vs grammar letters (extension ext_holistic, paper section VI)."""

from .conftest import run_and_report


def test_ext_holistic(benchmark, fast_mode):
    run_and_report(benchmark, "ext_holistic", fast=fast_mode)
