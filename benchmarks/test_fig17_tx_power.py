"""Benchmark regenerating Fig. 17 error vs TX power (paper artefact fig17)."""

from .conftest import run_and_report


def test_fig17_tx_power(benchmark, fast_mode):
    run_and_report(benchmark, "fig17", fast=fast_mode)
