"""Benchmark regenerating Fig. 7 grey maps +/- suppression + OTSU (paper artefact fig07)."""

from .conftest import run_and_report


def test_fig07_suppression_image(benchmark, fast_mode):
    run_and_report(benchmark, "fig07", fast=fast_mode)
