"""Benchmark regenerating Fig. 25 Kinect vs RFIPad trajectory (paper artefact fig25)."""

from .conftest import run_and_report


def test_fig25_kinect_groundtruth(benchmark, fast_mode):
    run_and_report(benchmark, "fig25", fast=fast_mode)
