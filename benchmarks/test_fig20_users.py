"""Benchmark regenerating Fig. 20 accuracy across ten users (paper artefact fig20)."""

from .conftest import run_and_report


def test_fig20_users(benchmark, fast_mode):
    run_and_report(benchmark, "fig20", fast=fast_mode)
