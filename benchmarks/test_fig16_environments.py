"""Benchmark regenerating Fig. 16 locations +/- suppression (paper artefact fig16)."""

from .conftest import run_and_report


def test_fig16_environments(benchmark, fast_mode):
    run_and_report(benchmark, "fig16", fast=fast_mode)
