#!/usr/bin/env sh
# Hot-path performance benchmark: times the standard motion+letter battery
# on the vectorized engine vs the scalar reference path and appends a
# trajectory entry to BENCH_pipeline.json (wall times, speedup, reads/sec,
# trials/sec, per-stage p95 from the tracer).
#
#   sh scripts/bench.sh            # full measurement (best-of-3 rounds)
#   REPRO_BENCH_SMOKE=1 sh scripts/bench.sh   # tiny smoke workload
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

python -m pytest benchmarks/test_perf_hotpath.py -q -s "$@"

echo
echo "== BENCH_pipeline.json (latest entry) =="
python - <<'EOF'
import json
with open("BENCH_pipeline.json", encoding="utf-8") as fh:
    doc = json.load(fh)
entry = doc["entries"][-1]
for key in ("timestamp", "commit", "engine_wall_s", "scalar_wall_s",
            "speedup_engine_vs_scalar", "speedup_vs_pre_pr_baseline",
            "reads_per_s", "slots_per_s", "trials_per_s",
            "serial_trials_per_s", "parallel_trials_per_s_workers2",
            "parallel_trials_per_s_workers4", "parallel_speedup_workers4",
            "stream_provisional_p95_ms", "stream_letter_p95_ms",
            "reader_collect_p95_ms",
            "serve_concurrent_sessions", "serve_sessions_per_s",
            "serve_event_p95_ms", "serve_event_p99_ms",
            "serve_hub_event_p95_ms", "serve_dropped_chunks"):
    print(f"  {key}: {entry.get(key)}")
EOF
