#!/usr/bin/env sh
# Repo check script: tests, a live observability smoke run, and lint.
# No make required; run from anywhere:  sh scripts/check.sh
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== pytest =="
python -m pytest -x -q

echo "== repro stats --fast (observability smoke test) =="
python -m repro stats --fast > /tmp/repro-stats-smoke.$$ 2>&1 || {
    cat /tmp/repro-stats-smoke.$$
    rm -f /tmp/repro-stats-smoke.$$
    echo "repro stats --fast failed" >&2
    exit 1
}
# The smoke run must surface every pipeline stage span.
for stage in unwrap suppression imaging otsu classify direction segmentation grammar; do
    if ! grep -q "$stage" /tmp/repro-stats-smoke.$$; then
        rm -f /tmp/repro-stats-smoke.$$
        echo "stats output is missing the '$stage' span" >&2
        exit 1
    fi
done
# The streaming leg of the battery must surface the stream layer's spans.
for span in stream.chunk stream.finalize; do
    if ! grep -q "$span" /tmp/repro-stats-smoke.$$; then
        rm -f /tmp/repro-stats-smoke.$$
        echo "stats output is missing the '$span' span" >&2
        exit 1
    fi
done
rm -f /tmp/repro-stats-smoke.$$
echo "ok"

echo "== replay --stream (streaming smoke test) =="
# Record a letter capture, replay it chunk-by-chunk through the streaming
# session, and check stroke events plus the final letter come out.
capture=/tmp/repro-stream-smoke.$$.jsonl
python -m repro record "$capture" --letter T > /dev/null
python -m repro replay "$capture" --stream > /tmp/repro-stream-smoke.$$ 2>&1 || {
    cat /tmp/repro-stream-smoke.$$
    rm -f /tmp/repro-stream-smoke.$$ "$capture" "$capture.calibration"
    echo "repro replay --stream failed" >&2
    exit 1
}
for needle in "stroke window" "letter: 'T'"; do
    if ! grep -q "$needle" /tmp/repro-stream-smoke.$$; then
        cat /tmp/repro-stream-smoke.$$
        rm -f /tmp/repro-stream-smoke.$$ "$capture" "$capture.calibration"
        echo "replay --stream output is missing $needle" >&2
        exit 1
    fi
done
rm -f /tmp/repro-stream-smoke.$$ "$capture" "$capture.calibration"
echo "ok"

echo "== hot-path benchmark (smoke mode, with regression floor) =="
# Appends a smoke entry to BENCH_pipeline.json and FAILS if the engine
# wall regresses more than 2x over the best recorded smoke entry.
REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/test_perf_hotpath.py -q

echo "== ruff =="
if command -v ruff > /dev/null 2>&1; then
    ruff check src tests
elif python -c "import ruff" > /dev/null 2>&1; then
    python -m ruff check src tests
else
    echo "ruff not installed; skipping lint (pip install ruff to enable)"
fi

echo "all checks passed"
