#!/usr/bin/env sh
# Repo check script: tests, a live observability smoke run, and lint.
# No make required; run from anywhere:  sh scripts/check.sh
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== pytest =="
python -m pytest -x -q

echo "== repro stats --fast (observability smoke test) =="
python -m repro stats --fast > /tmp/repro-stats-smoke.$$ 2>&1 || {
    cat /tmp/repro-stats-smoke.$$
    rm -f /tmp/repro-stats-smoke.$$
    echo "repro stats --fast failed" >&2
    exit 1
}
# The smoke run must surface every pipeline stage span.
for stage in unwrap suppression imaging otsu classify direction segmentation grammar; do
    if ! grep -q "$stage" /tmp/repro-stats-smoke.$$; then
        rm -f /tmp/repro-stats-smoke.$$
        echo "stats output is missing the '$stage' span" >&2
        exit 1
    fi
done
# The streaming leg of the battery must surface the stream layer's spans.
for span in stream.chunk stream.finalize; do
    if ! grep -q "$span" /tmp/repro-stats-smoke.$$; then
        rm -f /tmp/repro-stats-smoke.$$
        echo "stats output is missing the '$span' span" >&2
        exit 1
    fi
done
rm -f /tmp/repro-stats-smoke.$$
echo "ok"

echo "== replay --stream (streaming smoke test) =="
# Record a letter capture, replay it chunk-by-chunk through the streaming
# session, and check stroke events plus the final letter come out.
capture=/tmp/repro-stream-smoke.$$.jsonl
python -m repro record "$capture" --letter T > /dev/null
python -m repro replay "$capture" --stream > /tmp/repro-stream-smoke.$$ 2>&1 || {
    cat /tmp/repro-stream-smoke.$$
    rm -f /tmp/repro-stream-smoke.$$ "$capture" "$capture.calibration"
    echo "repro replay --stream failed" >&2
    exit 1
}
for needle in "stroke window" "letter: 'T'"; do
    if ! grep -q "$needle" /tmp/repro-stream-smoke.$$; then
        cat /tmp/repro-stream-smoke.$$
        rm -f /tmp/repro-stream-smoke.$$ "$capture" "$capture.calibration"
        echo "replay --stream output is missing $needle" >&2
        exit 1
    fi
done
rm -f /tmp/repro-stream-smoke.$$ "$capture" "$capture.calibration"
echo "ok"

echo "== hot-path benchmark (smoke mode, with regression floor) =="
# Appends a smoke entry to BENCH_pipeline.json and FAILS if the engine
# wall regresses more than 2x over the best recorded smoke entry.
REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/test_perf_hotpath.py -q

echo "== parallel throughput gate (parallel(4) vs serial) =="
# The regression this gate pins down: a warmed 4-worker battery must
# never fall behind the plain serial loop again.  Reads the entry the
# smoke bench just appended.
python - <<'PY'
import json, sys

with open("BENCH_pipeline.json", encoding="utf-8") as fh:
    entry = json.load(fh)["entries"][-1]
serial = entry.get("serial_trials_per_s")
parallel4 = entry.get("parallel_trials_per_s_workers4")
if serial is None or parallel4 is None:
    sys.exit("bench entry is missing serial/parallel throughput keys")
if parallel4 < serial:
    sys.exit(
        f"parallel(4) throughput {parallel4} trials/s fell below "
        f"serial {serial} trials/s"
    )
print(f"parallel(4) {parallel4} >= serial {serial} trials/s")
PY

echo "== repro top --once (health-rule smoke test) =="
# One observed battery, evaluated against the shipped rule set; a failed
# Fig. 24 budget (or any 'fail' rule) makes this exit nonzero.
python -m repro top --once --fast --rules scripts/health_rules.json \
    > /tmp/repro-top-smoke.$$ 2>&1 || {
    cat /tmp/repro-top-smoke.$$
    rm -f /tmp/repro-top-smoke.$$
    echo "repro top --once reported a health failure" >&2
    exit 1
}
grep -q "== health ==" /tmp/repro-top-smoke.$$ || {
    rm -f /tmp/repro-top-smoke.$$
    echo "top output is missing the health table" >&2
    exit 1
}
rm -f /tmp/repro-top-smoke.$$
echo "ok"

echo "== health-rule self-check =="
# The shipped rule file must validate; a malformed file must be rejected.
python -m repro top --validate-rules scripts/health_rules.json
echo '[{"name": "bad", "kind": "vibes", "target": "g", "threshold": 1}]' \
    > /tmp/repro-bad-rules.$$.json
if python -m repro top --validate-rules /tmp/repro-bad-rules.$$.json \
    > /dev/null 2>&1; then
    rm -f /tmp/repro-bad-rules.$$.json
    echo "malformed rule file was not rejected" >&2
    exit 1
fi
rm -f /tmp/repro-bad-rules.$$.json
echo "ok"

echo "== serve-metrics scrape (Prometheus endpoint smoke test) =="
# Start the scrape server on an ephemeral port, pull one /metrics
# snapshot, and lint it against the exposition format; --max-requests 1
# makes the server exit on its own after the scrape.
serve_log=/tmp/repro-serve-smoke.$$
python -m repro serve-metrics --port 0 --populate --max-requests 1 \
    > "$serve_log" 2>&1 &
serve_pid=$!
if python - "$serve_log" "$serve_pid" <<'PY'
import re, sys, time, urllib.request

log_path, pid = sys.argv[1], int(sys.argv[2])
deadline = time.time() + 120.0
port = None
while time.time() < deadline and port is None:
    try:
        with open(log_path, encoding="utf-8") as fh:
            m = re.search(r"http://[^:]+:(\d+)/metrics", fh.read())
        if m:
            port = int(m.group(1))
    except OSError:
        pass
    time.sleep(0.2)
if port is None:
    sys.exit("serve-metrics never printed its address")
with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=30) as resp:
    ctype = resp.headers["Content-Type"]
    body = resp.read().decode("utf-8")
if "version=0.0.4" not in ctype:
    sys.exit(f"unexpected scrape content type: {ctype}")
sys.path.insert(0, "src")
from repro.obs.export import lint_exposition

problems = lint_exposition(body)
if problems:
    sys.exit("scrape failed exposition lint:\n" + "\n".join(problems))
if "repro_runner_motion_trials_total" not in body:
    sys.exit("scrape is missing the populated battery counters")
print(f"scraped {len(body.splitlines())} exposition lines from :{port}")
PY
then
    wait "$serve_pid" || {
        cat "$serve_log"
        rm -f "$serve_log"
        echo "serve-metrics exited nonzero" >&2
        exit 1
    }
    rm -f "$serve_log"
    echo "ok"
else
    kill "$serve_pid" 2> /dev/null || true
    cat "$serve_log"
    rm -f "$serve_log"
    echo "metrics scrape failed" >&2
    exit 1
fi

echo "== serve hub smoke (repro serve + feed + loadgen + scrape) =="
# Start the serving hub on ephemeral ports, feed a recorded capture
# through it, drive a few concurrent synthetic sessions, scrape
# /metrics for the serve counters, then SIGINT for a graceful drain.
hub_log=/tmp/repro-hub-smoke.$$
capture=/tmp/repro-hub-capture.$$.jsonl
python -m repro record "$capture" --letter T > /dev/null
python -m repro serve --port 0 --metrics-port 0 > "$hub_log" 2>&1 &
hub_pid=$!
hub_port=$(python - "$hub_log" <<'PY'
import re, sys, time

deadline = time.time() + 120.0
while time.time() < deadline:
    try:
        with open(sys.argv[1], encoding="utf-8") as fh:
            m = re.search(r"serving pad sessions on [^:]+:(\d+)", fh.read())
        if m:
            print(m.group(1))
            sys.exit(0)
    except OSError:
        pass
    time.sleep(0.2)
sys.exit("serve never printed its address")
PY
) || {
    kill "$hub_pid" 2> /dev/null || true
    cat "$hub_log"
    rm -f "$hub_log" "$capture" "$capture.calibration"
    echo "repro serve failed to start" >&2
    exit 1
}
hub_fail=""
python -m repro feed "$capture" --port "$hub_port" --no-pace \
    > /tmp/repro-feed-smoke.$$ 2>&1 || hub_fail="repro feed failed"
if [ -z "$hub_fail" ]; then
    grep -q "letter: 'T'" /tmp/repro-feed-smoke.$$ \
        || hub_fail="feed output is missing the final letter event"
fi
if [ -z "$hub_fail" ]; then
    python -m repro loadgen --port "$hub_port" --sessions 3 --distinct 1 \
        --no-pace --json > /tmp/repro-loadgen-smoke.$$ 2>&1 \
        || hub_fail="repro loadgen failed"
fi
if [ -z "$hub_fail" ]; then
    python - /tmp/repro-loadgen-smoke.$$ "$hub_log" <<'PY' || hub_fail="serve smoke assertions failed"
import json, re, sys, urllib.request

with open(sys.argv[1], encoding="utf-8") as fh:
    result = json.loads(fh.read().splitlines()[-1])
if result["completed"] != result["sessions"] or result["failed"]:
    sys.exit(f"loadgen sessions failed: {result}")
if result["letters_expected"] != result["completed"]:
    sys.exit(f"loadgen letters wrong: {result}")
with open(sys.argv[2], encoding="utf-8") as fh:
    m = re.search(r"metrics on http://[^:]+:(\d+)/metrics", fh.read())
if m is None:
    sys.exit("serve never printed its metrics address")
with urllib.request.urlopen(
    f"http://127.0.0.1:{m.group(1)}/metrics", timeout=30
) as resp:
    body = resp.read().decode("utf-8")
for needle in (
    "repro_serve_sessions_opened_total",
    "repro_serve_chunks_total",
    "repro_serve_batches_total",
):
    if needle not in body:
        sys.exit(f"/metrics scrape is missing {needle}")
print("serve smoke: sessions, letters, and serve_* counters all present")
PY
fi
kill -INT "$hub_pid" 2> /dev/null || true
wait "$hub_pid" || [ -n "$hub_fail" ] || hub_fail="serve did not drain cleanly on SIGINT"
if [ -z "$hub_fail" ]; then
    grep -q "draining open sessions" "$hub_log" \
        || hub_fail="serve log is missing the graceful-drain notice"
fi
if [ -n "$hub_fail" ]; then
    cat "$hub_log" /tmp/repro-feed-smoke.$$ /tmp/repro-loadgen-smoke.$$ 2> /dev/null
    rm -f "$hub_log" "$capture" "$capture.calibration" \
        /tmp/repro-feed-smoke.$$ /tmp/repro-loadgen-smoke.$$
    echo "$hub_fail" >&2
    exit 1
fi
rm -f "$hub_log" "$capture" "$capture.calibration" \
    /tmp/repro-feed-smoke.$$ /tmp/repro-loadgen-smoke.$$
echo "ok"

echo "== serving throughput gate (200 concurrent sessions, p95 < 150 ms) =="
# Reads the entry the smoke bench appended above: the serving leg must
# have sustained the acceptance concurrency under the latency budget.
python - <<'PY'
import json, sys

with open("BENCH_pipeline.json", encoding="utf-8") as fh:
    entry = json.load(fh)["entries"][-1]
concurrent = entry.get("serve_concurrent_sessions")
rate = entry.get("serve_sessions_per_s")
p95 = entry.get("serve_event_p95_ms")
if concurrent is None or rate is None or p95 is None:
    sys.exit("bench entry is missing the serve_* keys")
if concurrent < 200:
    sys.exit(f"serving leg peaked at {concurrent} concurrent sessions (< 200)")
if p95 >= 150.0:
    sys.exit(f"serving letter-event p95 {p95} ms breaches the 150 ms budget")
if entry.get("serve_dropped_chunks"):
    sys.exit(f"serving leg shed {entry['serve_dropped_chunks']} chunk(s)")
print(f"serve: {concurrent:.0f} concurrent, {rate} sessions/s, p95 {p95} ms")
PY

echo "== workspace smoke (repro live --workspace 2x1, stitched letter) =="
# A tiled 2x1 workspace session end to end: per-tile streams, cross-pad
# stitching, and the fig25 trajectory-error score on the merged log.
python -m repro live --workspace 2x1 --letter L > /tmp/repro-ws-smoke.$$ 2>&1 || {
    cat /tmp/repro-ws-smoke.$$
    rm -f /tmp/repro-ws-smoke.$$
    echo "repro live --workspace failed" >&2
    exit 1
}
for needle in "from 2 tiles" "letter: 'L'" "stitched" "trajectory error"; do
    if ! grep -q "$needle" /tmp/repro-ws-smoke.$$; then
        cat /tmp/repro-ws-smoke.$$
        rm -f /tmp/repro-ws-smoke.$$
        echo "workspace smoke output is missing $needle" >&2
        exit 1
    fi
done
rm -f /tmp/repro-ws-smoke.$$
echo "ok"

echo "== multipad gate (throughput + stitch error, vs recorded history) =="
# Reads the entry the smoke bench appended: the multiplexed-pad leg must
# keep its throughput within 2x of the best recorded same-size entry and
# hold the stitched trajectory inside the 8 cm budget.
python - <<'PY'
import json, sys

with open("BENCH_pipeline.json", encoding="utf-8") as fh:
    doc = json.load(fh)
entry = doc["entries"][-1]
tps = entry.get("multipad_trials_per_s")
err = entry.get("stitch_trajectory_err_cm")
if tps is None or err is None:
    sys.exit("bench entry is missing the multipad_* / stitch_* keys")
if not entry.get("multipad_boundary_letter_ok"):
    sys.exit("2x1 workspace failed its boundary-crossing letter")
if err >= 8.0:
    sys.exit(f"stitched trajectory error {err} cm breaches the 8 cm budget")
prior = [
    e["multipad_trials_per_s"]
    for e in doc["entries"][:-1]
    if e.get("smoke") == entry.get("smoke")
    and e.get("multipad_trials_per_s")
]
if prior and tps < max(prior) / 2.0:
    sys.exit(
        f"multipad throughput {tps} trials/s regressed more than 2x "
        f"below the best recorded entry ({max(prior)})"
    )
print(f"multipad: {tps} trials/s, stitch error {err} cm")
PY

echo "== ruff =="
if command -v ruff > /dev/null 2>&1; then
    ruff check src tests
elif python -c "import ruff" > /dev/null 2>&1; then
    python -m ruff check src tests
else
    echo "ruff not installed; skipping lint (pip install ruff to enable)"
fi

echo "all checks passed"
