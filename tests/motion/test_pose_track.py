"""``WritingScript.pose_at_many`` vs the scalar ``hand_pose_at`` clock.

The batched reader path resolves all of a window's success-slot poses in
one vectorized call; these tests pin that call to the scalar reference
*bitwise* — same presence mask, same positions (exact float equality,
including segment-boundary and degenerate-interpolation rows), same
template parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion.script import script_for_letter, script_for_motion
from repro.motion.strokes import Direction, Motion, StrokeKind
from repro.physics.hand import PoseTrack


def _scripts():
    rng = np.random.default_rng(21)
    yield "slash", script_for_motion(Motion(StrokeKind.SLASH, Direction.FORWARD), rng)
    yield "arc", script_for_motion(Motion(StrokeKind.ARC_D, Direction.REVERSE), rng)
    yield "letter-T", script_for_letter("T", rng)


def _probe_times(script) -> np.ndarray:
    # Dense sweep beyond both ends, plus every segment boundary (the exact
    # t0/t1 floats, where first-match segment selection and degenerate
    # interpolation corners live).
    times = [np.linspace(-0.05, script.duration + 0.05, 601)]
    for seg in script.segments:
        times.append(np.array([seg.t0, seg.t1]))
    return np.concatenate(times)


@pytest.mark.parametrize("name,script", list(_scripts()), ids=lambda v: v if isinstance(v, str) else "")
def test_pose_at_many_matches_scalar_bitwise(name, script):
    times = _probe_times(script)
    track = script.pose_at_many(times)
    assert track.times.shape == times.shape
    n_present = 0
    for i, t in enumerate(times.tolist()):
        pose = script.hand_pose_at(t)
        if pose is None:
            assert not track.present[i]
            assert track.template_idx[i] == -1
            continue
        n_present += 1
        assert track.present[i]
        got = track.pose_at(i)
        # Exact equality — no tolerance: the batched channel consumes
        # these coordinates and must see the scalar path's bits.
        assert (got.position.x, got.position.y, got.position.z) == (
            pose.position.x, pose.position.y, pose.position.z
        )
        assert got.arm_direction == pose.arm_direction
        assert got.arm_length == pose.arm_length
        assert got.hand_rcs_m2 == pose.hand_rcs_m2
        assert got.arm_rcs_m2 == pose.arm_rcs_m2
        assert got.shadow_depth_db == pose.shadow_depth_db
        assert got.detune_rad == pose.detune_rad
    assert n_present > 0  # the sweep actually covered writing segments


def test_pose_at_many_single_template():
    _, script = next(_scripts())
    track = script.pose_at_many(np.linspace(0.0, script.duration, 301))
    # One parameter template per script: the batched kernel groups all
    # present rows into a single hand/arm geometry.
    assert len(track.templates) == 1
    present_idx = track.template_idx[track.present]
    assert (present_idx == 0).all()


def test_from_poses_matches_pose_at_many():
    _, script = next(_scripts())
    times = np.linspace(-0.02, script.duration + 0.02, 257)
    via_many = script.pose_at_many(times)
    via_rows = PoseTrack.from_poses(
        times, [script.hand_pose_at(t) for t in times.tolist()]
    )
    assert (via_many.present == via_rows.present).all()
    assert (via_many.template_idx == via_rows.template_idx).all()
    p = via_many.present
    assert (via_many.xyz[p] == via_rows.xyz[p]).all()


def test_unsorted_and_duplicate_query_times():
    _, script = next(_scripts())
    rng = np.random.default_rng(3)
    times = rng.uniform(-0.1, script.duration + 0.1, 400)
    times = np.concatenate([times, times[:50]])  # duplicates, unsorted
    track = script.pose_at_many(times)
    for i in rng.integers(0, times.size, 60).tolist():
        pose = script.hand_pose_at(float(times[i]))
        if pose is None:
            assert not track.present[i]
        else:
            got = track.pose_at(i)
            assert (got.position.x, got.position.y, got.position.z) == (
                pose.position.x, pose.position.y, pose.position.z
            )
