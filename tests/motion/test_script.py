import numpy as np
import pytest

from repro.motion.script import (
    Segment,
    WritingScript,
    script_for_letter,
    script_for_motion,
    script_for_strokes,
)
from repro.motion.strokes import Direction, Motion, StrokeKind
from repro.motion.user import user_by_id


class TestMotionScript:
    def test_structure(self, rng):
        script = script_for_motion(Motion(StrokeKind.HBAR), rng)
        kinds = [s.kind for s in script.segments]
        assert kinds == ["absent", "stroke", "absent"]
        assert script.duration > 1.0

    def test_hand_absent_in_lead_in(self, rng):
        script = script_for_motion(Motion(StrokeKind.VBAR), rng, lead_in=0.5)
        assert script.hand_pose_at(0.2) is None
        t0, t1 = script.stroke_intervals()[0]
        assert script.hand_pose_at((t0 + t1) / 2) is not None

    def test_hand_absent_after_end(self, rng):
        script = script_for_motion(Motion(StrokeKind.VBAR), rng)
        assert script.hand_pose_at(script.t_end + 1.0) is None

    def test_user_speed_respected(self, rng):
        slow = script_for_motion(Motion(StrokeKind.HBAR), rng, user=user_by_id(3))
        fast = script_for_motion(Motion(StrokeKind.HBAR), rng, user=user_by_id(6))
        assert slow.stroke_intervals()[0][1] - slow.stroke_intervals()[0][0] > (
            fast.stroke_intervals()[0][1] - fast.stroke_intervals()[0][0]
        )


class TestLetterScript:
    def test_stroke_count_matches_decomposition(self, rng):
        script = script_for_letter("H", rng)
        assert len(script.stroke_intervals()) == 3
        assert len(script.adjustment_intervals()) == 2
        assert script.label == "H"

    def test_adjustment_raises_hand(self, rng):
        script = script_for_letter("T", rng)
        (a0, a1) = script.adjustment_intervals()[0]
        mid_pose = script.hand_pose_at((a0 + a1) / 2)
        assert mid_pose is not None
        assert mid_pose.position.z > 0.1

    def test_strokes_near_pad_plane(self, rng):
        script = script_for_letter("Z", rng)
        for t0, t1 in script.stroke_intervals():
            pose = script.hand_pose_at((t0 + t1) / 2)
            assert pose.position.z < 0.06

    def test_unknown_letter(self, rng):
        with pytest.raises(KeyError):
            script_for_letter("?", rng)

    def test_trajectory_continuous_between_segments(self, rng):
        script = script_for_letter("L", rng)
        # Sampling at segment boundaries should not teleport.
        prev = None
        for t in np.arange(script.t_start + 0.7, script.t_end - 0.7, 0.02):
            pose = script.hand_pose_at(float(t))
            if pose is None:
                prev = None
                continue
            if prev is not None:
                assert prev.distance_to(pose.position) < 0.08
            prev = pose.position


class TestValidation:
    def test_segments_must_not_overlap(self, rng):
        s1 = Segment(0.0, 1.0, "absent")
        s2 = Segment(0.5, 2.0, "absent")
        with pytest.raises(ValueError):
            WritingScript([s1, s2], label="x")

    def test_empty_script_rejected(self):
        with pytest.raises(ValueError):
            WritingScript([], label="x")

    def test_reversed_segment_rejected(self):
        with pytest.raises(ValueError):
            Segment(1.0, 0.5, "stroke")

    def test_script_for_strokes_requires_specs(self, rng):
        with pytest.raises(ValueError):
            script_for_strokes([], "x", rng)


def test_true_trajectory_samples_only_present_hand(rng):
    script = script_for_letter("I", rng)
    traj = script.true_trajectory()
    assert traj, "trajectory must not be empty"
    assert all(p.t >= 0.0 for p in traj)
    # lead-in has no hand, so the first sample comes later than t=0.3
    assert traj[0].t > 0.3
