import numpy as np
import pytest

from repro.motion.kinect import KinectSimulator, trajectory_deviation
from repro.motion.script import script_for_letter
from repro.motion.strokes import TimedPoint
from repro.physics.geometry import Vec3


@pytest.fixture()
def script(rng):
    return script_for_letter("Z", rng)


def test_frame_rate(rng, script):
    kinect = KinectSimulator(rng, frame_rate_hz=30.0, drop_probability=0.0)
    track = kinect.track(script)
    expected = int(script.duration * 30.0)
    assert abs(len(track.frames) - expected) <= 2


def test_tracked_fraction_reflects_absences(rng, script):
    kinect = KinectSimulator(rng, drop_probability=0.0)
    track = kinect.track(script)
    # lead-in/out are untracked, the rest tracked.
    assert 0.6 < track.tracked_fraction() < 1.0


def test_joint_noise_bounded(rng, script):
    kinect = KinectSimulator(rng, joint_noise_m=0.005, drop_probability=0.0)
    track = kinect.track(script)
    deviation = trajectory_deviation(track, script.true_trajectory(dt=1.0 / 60.0))
    assert deviation < 0.02


def test_zero_noise_tracks_exactly(rng, script):
    kinect = KinectSimulator(rng, joint_noise_m=0.0, drop_probability=0.0)
    track = kinect.track(script)
    deviation = trajectory_deviation(track, script.true_trajectory(dt=1.0 / 120.0))
    assert deviation < 0.005


def test_drops_reduce_tracked_fraction(script):
    low = KinectSimulator(np.random.default_rng(0), drop_probability=0.0).track(script)
    high = KinectSimulator(np.random.default_rng(0), drop_probability=0.4).track(script)
    assert high.tracked_fraction() < low.tracked_fraction()


def test_as_arrays_shape(rng, script):
    track = KinectSimulator(rng).track(script)
    times, xyz = track.as_arrays()
    assert xyz.shape == (times.size, 3)


def test_validation(rng):
    with pytest.raises(ValueError):
        KinectSimulator(rng, frame_rate_hz=0.0)
    with pytest.raises(ValueError):
        KinectSimulator(rng, drop_probability=1.0)


def test_trajectory_deviation_validates(rng, script):
    track = KinectSimulator(rng).track(script)
    with pytest.raises(ValueError):
        trajectory_deviation(track, [])
