import math

import numpy as np
import pytest

from repro.motion.strokes import (
    ArcOpening,
    Direction,
    Motion,
    StrokeKind,
    all_motions,
    default_opening,
    generate_click,
    generate_line_between,
    generate_stroke,
    stroke_skeleton,
)
from repro.physics.geometry import Vec3, path_length


def test_thirteen_motions():
    motions = all_motions()
    assert len(motions) == 13
    assert motions[0].kind is StrokeKind.CLICK
    # Every non-click kind appears with both directions.
    labelled = {(m.kind, m.direction) for m in motions[1:]}
    assert len(labelled) == 12


def test_motion_labels_unique():
    labels = [m.label for m in all_motions()]
    assert len(set(labels)) == 13


class TestSkeletons:
    def test_hbar_goes_right(self):
        sk = stroke_skeleton(StrokeKind.HBAR)
        assert sk[-1][0] > sk[0][0]
        assert sk[0][1] == pytest.approx(sk[-1][1])

    def test_vbar_goes_down(self):
        sk = stroke_skeleton(StrokeKind.VBAR)
        assert sk[-1][1] < sk[0][1]

    def test_slash_positive_slope(self):
        sk = stroke_skeleton(StrokeKind.SLASH)
        dx = sk[-1][0] - sk[0][0]
        dy = sk[-1][1] - sk[0][1]
        assert dx > 0 and dy > 0

    def test_arc_c_opens_right(self):
        sk = stroke_skeleton(StrokeKind.ARC_C)
        xs = [p[0] for p in sk]
        # Gap faces right: no point enters the rightmost band of the box.
        assert max(xs) < 0.99
        assert min(xs) < 0.1

    def test_click_has_no_skeleton(self):
        with pytest.raises(ValueError):
            stroke_skeleton(StrokeKind.CLICK)

    def test_default_openings(self):
        assert default_opening(StrokeKind.ARC_C) is ArcOpening.RIGHT
        assert default_opening(StrokeKind.ARC_D) is ArcOpening.LEFT
        assert default_opening(StrokeKind.HBAR) is None


class TestGenerateStroke:
    def test_reverse_flips_endpoints(self, rng):
        fwd = generate_stroke(Motion(StrokeKind.HBAR, Direction.FORWARD), rng, jitter=0.0)
        rev = generate_stroke(Motion(StrokeKind.HBAR, Direction.REVERSE), rng, jitter=0.0)
        assert fwd.samples[0].position.x < fwd.samples[-1].position.x
        assert rev.samples[0].position.x > rev.samples[-1].position.x

    def test_duration_scales_with_speed(self, rng):
        slow = generate_stroke(Motion(StrokeKind.HBAR), rng, speed=0.1)
        fast = generate_stroke(Motion(StrokeKind.HBAR), rng, speed=0.4)
        assert slow.duration > fast.duration

    def test_times_monotonic(self, rng):
        trace = generate_stroke(Motion(StrokeKind.ARC_C), rng)
        times = [s.t for s in trace.samples]
        assert times == sorted(times)
        assert trace.t_start == pytest.approx(0.0)

    def test_hover_height_respected(self, rng):
        trace = generate_stroke(Motion(StrokeKind.VBAR), rng, hover_height=0.05, jitter=0.0)
        zs = [s.position.z for s in trace.samples]
        assert all(abs(z - 0.05) < 0.01 for z in zs)

    def test_box_scaling(self, rng):
        trace = generate_stroke(
            Motion(StrokeKind.HBAR), rng, box_center=(0.1, -0.05), box_size=(0.1, 0.1), jitter=0.0
        )
        xs = [s.position.x for s in trace.samples]
        assert min(xs) >= 0.1 - 0.06
        assert max(xs) <= 0.1 + 0.06

    def test_speed_validation(self, rng):
        with pytest.raises(ValueError):
            generate_stroke(Motion(StrokeKind.HBAR), rng, speed=0.0)


class TestClick:
    def test_click_descends_and_retracts(self, rng):
        trace = generate_click(rng, Vec3(0, 0, 0))
        zs = [s.position.z for s in trace.samples]
        assert min(zs) < 0.04
        assert zs[0] > 0.1 and zs[-1] > 0.1

    def test_click_stays_above_target(self, rng):
        trace = generate_click(rng, Vec3(0.03, -0.06, 0), jitter=0.0)
        assert all(abs(s.position.x - 0.03) < 0.01 for s in trace.samples)


class TestLineBetween:
    def test_line_connects_endpoints(self, rng):
        trace = generate_line_between(
            rng, (0.0, 0.0), (0.1, 0.1), StrokeKind.SLASH, Direction.FORWARD, jitter=0.0
        )
        start, end = trace.samples[0].position, trace.samples[-1].position
        assert start.distance_to(Vec3(0, 0, start.z)) < 0.005
        assert end.distance_to(Vec3(0.1, 0.1, end.z)) < 0.005

    def test_arc_bulges_off_chord(self, rng):
        trace = generate_line_between(
            rng, (0.0, 0.1), (0.0, -0.1), StrokeKind.ARC_C, Direction.FORWARD, jitter=0.0
        )
        xs = [s.position.x for s in trace.samples]
        # "⊂" between two points on the y axis bulges towards -x.
        assert min(xs) < -0.05

    def test_arc_longer_than_chord(self, rng):
        arc = generate_line_between(
            rng, (0.0, 0.1), (0.0, -0.1), StrokeKind.ARC_C, Direction.FORWARD, jitter=0.0
        )
        assert path_length(arc.points()) > 0.25  # chord is 0.2
