import pytest

from repro.motion.letters import (
    ALPHABET,
    LETTER_STROKES,
    ambiguous_groups,
    letters_by_stroke_count,
    shape_sequence,
    stroke_count,
    validate_grouping,
)


def test_all_26_letters_present():
    assert len(LETTER_STROKES) == 26
    assert ALPHABET == "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def test_grouping_matches_paper():
    validate_grouping()  # raises on drift
    groups = letters_by_stroke_count()
    assert groups[1] == ["C", "I"]
    assert len(groups[2]) == 9
    assert len(groups[3]) == 12
    assert groups[4] == ["E", "M", "W"]


def test_stroke_count():
    assert stroke_count("c") == 1
    assert stroke_count("E") == 4


def test_shape_sequences_use_known_tokens():
    valid_lines = {"hbar", "vbar", "slash", "backslash", "click"}
    for letter in ALPHABET:
        for token in shape_sequence(letter):
            assert token in valid_lines or token.startswith("arc:")


def test_anchors_inside_letter_box():
    for letter, specs in LETTER_STROKES.items():
        for spec in specs:
            for x, y in (spec.start, spec.end):
                assert -0.05 <= x <= 1.05, (letter, spec)
                assert -0.05 <= y <= 1.05, (letter, spec)


def test_known_ambiguous_groups_resolved_by_position():
    groups = ambiguous_groups()
    flat = {letter for group in groups for letter in group}
    # The paper's canonical collisions must be in there (D/P, O/S-type).
    assert {"D", "P"} <= flat
    # Ambiguity is positional only: same tokens, different anchors.
    for group in groups:
        anchor_sets = {
            tuple((s.start, s.end) for s in LETTER_STROKES[letter])
            for letter in group
        }
        assert len(anchor_sets) == len(group)


def test_h_decomposition_is_bar_bar_bar():
    assert shape_sequence("H") == ("vbar", "hbar", "vbar")


def test_unknown_letter_raises():
    with pytest.raises(KeyError):
        stroke_count("é")
