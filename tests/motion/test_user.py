import pytest

from repro.motion.user import DEFAULT_USER, UserProfile, default_users, user_by_id


def test_ten_volunteers():
    users = default_users()
    assert len(users) == 10
    assert [u.user_id for u in users] == list(range(1, 11))


def test_fast_writers_are_6_and_9():
    users = {u.user_id: u for u in default_users()}
    speeds = sorted(users.values(), key=lambda u: u.speed, reverse=True)
    assert {speeds[0].user_id, speeds[1].user_id} == {6, 9}


def test_lookup():
    assert user_by_id(4).user_id == 4
    with pytest.raises(KeyError):
        user_by_id(11)


def test_default_user_is_typical():
    speeds = [u.speed for u in default_users()]
    assert min(speeds) <= DEFAULT_USER.speed <= sorted(speeds)[6]


def test_profile_validation():
    with pytest.raises(ValueError):
        UserProfile(user_id=0, name="x", speed=0.0)
    with pytest.raises(ValueError):
        UserProfile(user_id=0, name="x", raised_height=0.02, hover_height=0.03)
    with pytest.raises(ValueError):
        UserProfile(user_id=0, name="x", adjustment_time=-1.0)


def test_profiles_span_paper_ranges():
    users = default_users()
    arms = [u.arm_length for u in users]
    assert min(arms) >= 0.56 and max(arms) <= 0.70  # paper: 56-70 cm
