"""Unit tests for the experiment framework itself."""

import pytest

from repro.experiments.base import REGISTRY, ExperimentResult, register, run_experiment


def _result(**overrides):
    defaults = dict(
        experiment_id="x",
        title="t",
        rows=[{"a": 1, "b": 2.5}, {"a": 3, "c": "z"}],
    )
    defaults.update(overrides)
    return ExperimentResult(**defaults)


class TestExperimentResult:
    def test_column_names_union_in_order(self):
        assert _result().column_names() == ["a", "b", "c"]

    def test_column_access_with_gaps(self):
        assert _result().column("b") == [2.5, None]

    def test_to_text_contains_header_and_rows(self):
        text = _result().to_text()
        assert "== x: t ==" in text
        assert "2.500" in text  # float formatting

    def test_to_text_expectation_states(self):
        met = _result(expectation="always", expectation_met=True).to_text()
        assert "[MET]" in met
        unmet = _result(expectation="never", expectation_met=False).to_text()
        assert "[NOT MET]" in unmet
        unchecked = _result(expectation="maybe").to_text()
        assert "[unchecked]" in unchecked

    def test_to_text_renders_notes(self):
        text = _result(notes=["hello world"]).to_text()
        assert "note: hello world" in text

    def test_empty_rows(self):
        text = _result(rows=[]).to_text()
        assert text.startswith("==")

    def test_column_names_thousand_rows(self):
        # Regression: column_names used a list-membership scan per key,
        # O(rows x keys x columns); the ordered-set pass must keep the
        # exact first-seen order on wide/tall result sets.
        rows = [{"a": i, "b": i} for i in range(500)]
        rows += [{"b": i, "c": i, "d": i} for i in range(500)]
        rows.append({"e": 1, "a": 2})
        result = _result(rows=rows)
        assert result.column_names() == ["a", "b", "c", "d", "e"]


class TestRegistry:
    def test_register_and_run(self):
        @register("_test_tmp")
        def runner(fast=True, seed=0):
            return _result(experiment_id="_test_tmp")

        try:
            result = run_experiment("_test_tmp")
            assert result.experiment_id == "_test_tmp"
        finally:
            del REGISTRY["_test_tmp"]

    def test_run_kwargs_forwarded(self):
        @register("_test_kwargs")
        def runner(fast=True, seed=0):
            return _result(rows=[{"fast": fast, "seed": seed}])

        try:
            result = run_experiment("_test_kwargs", fast=False, seed=42)
            assert result.rows[0] == {"fast": False, "seed": 42}
        finally:
            del REGISTRY["_test_kwargs"]

    def test_unknown_id_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("_does_not_exist")
