import numpy as np
import pytest

from repro.rfid.multiplex import MultiplexedReader, ReaderPort
from repro.rfid.reader import ReaderConfig
from repro.sim.scenario import ScenarioConfig, build_scenario


@pytest.fixture()
def two_pads():
    a = build_scenario(ScenarioConfig(seed=1))
    b = build_scenario(ScenarioConfig(seed=2))
    ports = [
        ReaderPort(a.antenna, a.array, a.environment),
        ReaderPort(b.antenna, b.array, b.environment),
    ]
    return MultiplexedReader(ports, ReaderConfig(), rng=np.random.default_rng(0))


def test_validation():
    with pytest.raises(ValueError):
        MultiplexedReader([], ReaderConfig())
    scenario = build_scenario(ScenarioConfig(seed=1))
    port = ReaderPort(scenario.antenna, scenario.array)
    with pytest.raises(ValueError):
        MultiplexedReader([port], ReaderConfig(), dwell_s=0.0)


def test_both_pads_get_reads(two_pads):
    logs = two_pads.collect(2.0, [None, None])
    assert len(logs) == 2
    assert len(logs[0]) > 30
    assert len(logs[1]) > 30


def test_duty_cycle_halves_per_pad_rate(two_pads):
    logs = two_pads.collect(4.0, [None, None])
    # Each pad is served ~half the time: per-pad read count should be well
    # below a dedicated reader's (>150/s) but still substantial.
    for log in logs:
        rate = len(log) / 4.0
        assert 40.0 < rate < 160.0


def test_timestamps_on_shared_clock(two_pads):
    logs = two_pads.collect(1.5, [None, None])
    for log in logs:
        times = [r.timestamp for r in log]
        assert times == sorted(times)
        assert times[-1] <= 1.8


def test_dwell_interleaving(two_pads):
    logs = two_pads.collect(1.0, [None, None])
    # Port 0 owns [0, 0.25) and [0.5, 0.75); port 1 the rest — reads must
    # respect their dwell slots, allowing the in-flight inventory round to
    # overhang a slot boundary by up to one round (~tens of ms).
    for r in logs[0]:
        slot = (r.timestamp // 0.25) % 2
        assert slot == 0 or r.timestamp % 0.25 < 0.15
    assert len(logs[1]) > 0


def test_pose_callbacks_validated(two_pads):
    with pytest.raises(ValueError):
        two_pads.collect(1.0, [None])
    with pytest.raises(ValueError):
        two_pads.collect(0.0, [None, None])


def test_antenna_ports_recorded(two_pads):
    logs = two_pads.collect(1.0, [None, None])
    assert {r.antenna_port for r in logs[0]} == {1}
    assert {r.antenna_port for r in logs[1]} == {2}


# ----------------------------------------------------------------------
# Dwell scheduling: fairness, determinism, and the 1-port degeneracy.


@pytest.mark.parametrize("port_count", [2, 3, 4])
def test_dwell_totals_fair_across_port_counts(port_count):
    from repro.rfid.multiplex import DwellScheduler

    sched = DwellScheduler(port_count, dwell_s=0.25)
    for duration in (1.0, 3.3, 10.0):
        totals = sched.dwell_totals(duration)
        assert len(totals) == port_count
        assert sum(totals) == pytest.approx(duration)
        # Round-robin fairness: no port leads another by more than one
        # dwell slot, whatever the duration's remainder.
        assert max(totals) - min(totals) <= 0.25 + 1e-12


@pytest.mark.parametrize("port_count", [2, 3, 4])
def test_dwell_plan_deterministic(port_count):
    from repro.rfid.multiplex import DwellScheduler

    a = DwellScheduler(port_count, dwell_s=0.1).plan(2.7)
    b = DwellScheduler(port_count, dwell_s=0.1).plan(2.7)
    assert a == b  # pure data: same args, same plan, no clock involved
    # Slices tile [0, duration) contiguously in round-robin port order.
    assert a[0].t0 == 0.0
    assert a[-1].t1 == pytest.approx(2.7)
    for prev, cur in zip(a, a[1:]):
        assert cur.t0 == pytest.approx(prev.t1)
        assert cur.port == (prev.port + 1) % port_count


def test_single_port_plan_is_one_contiguous_slice():
    from repro.rfid.multiplex import DwellScheduler

    plan = DwellScheduler(1, dwell_s=0.25).plan(4.0)
    assert len(plan) == 1
    assert (plan[0].port, plan[0].t0, plan[0].t1) == (0, 0.0, 4.0)


def test_single_port_collect_bit_identical_to_solo_reader():
    from repro.physics.noise import ReceiverNoise
    from repro.rfid.reader import Reader

    scenario = build_scenario(ScenarioConfig(seed=5))
    solo = Reader(
        scenario.antenna,
        scenario.array,
        ReaderConfig(),
        scenario.environment,
        ReceiverNoise(),
        rng=np.random.default_rng(11),
    )
    solo_log = solo.collect(2.0)

    mux = MultiplexedReader(
        [ReaderPort(scenario.antenna, scenario.array, scenario.environment)],
        ReaderConfig(),
        rng=np.random.default_rng(11),
    )
    (mux_log,) = mux.collect_static(2.0)
    for solo_col, mux_col in zip(solo_log.columns(), mux_log.columns()):
        assert np.array_equal(solo_col, mux_col)


def test_per_port_rng_streams_isolate_ports():
    # With per-port RNGs, port 0's log must not depend on what scenario
    # port 1 carries: swap pad B for a different deployment and pad A's
    # stream stays bit-identical.
    a = build_scenario(ScenarioConfig(seed=1))

    def mux_with_partner(partner):
        ports = [
            ReaderPort(a.antenna, a.array, a.environment),
            ReaderPort(partner.antenna, partner.array, partner.environment),
        ]
        return MultiplexedReader(
            ports,
            ReaderConfig(),
            rngs=[np.random.default_rng(10), np.random.default_rng(20)],
        )

    logs_b = mux_with_partner(build_scenario(ScenarioConfig(seed=2))).collect_static(2.0)
    logs_c = mux_with_partner(build_scenario(ScenarioConfig(seed=3))).collect_static(2.0)
    for col_b, col_c in zip(logs_b[0].columns(), logs_c[0].columns()):
        assert np.array_equal(col_b, col_c)
    # Sanity: the partner pads themselves do differ.
    assert len(logs_b[1]) != len(logs_c[1]) or not np.array_equal(
        logs_b[1].columns()[2], logs_c[1].columns()[2]
    )


def test_rngs_length_validated():
    scenario = build_scenario(ScenarioConfig(seed=1))
    port = ReaderPort(scenario.antenna, scenario.array, scenario.environment)
    with pytest.raises(ValueError):
        MultiplexedReader(
            [port, port], ReaderConfig(), rngs=[np.random.default_rng(0)]
        )


def test_vectorized_property_reports_engine_path(two_pads):
    assert two_pads.vectorized
