import numpy as np
import pytest

from repro.rfid.multiplex import MultiplexedReader, ReaderPort
from repro.rfid.reader import ReaderConfig
from repro.sim.scenario import ScenarioConfig, build_scenario


@pytest.fixture()
def two_pads():
    a = build_scenario(ScenarioConfig(seed=1))
    b = build_scenario(ScenarioConfig(seed=2))
    ports = [
        ReaderPort(a.antenna, a.array, a.environment),
        ReaderPort(b.antenna, b.array, b.environment),
    ]
    return MultiplexedReader(ports, ReaderConfig(), rng=np.random.default_rng(0))


def test_validation():
    with pytest.raises(ValueError):
        MultiplexedReader([], ReaderConfig())
    scenario = build_scenario(ScenarioConfig(seed=1))
    port = ReaderPort(scenario.antenna, scenario.array)
    with pytest.raises(ValueError):
        MultiplexedReader([port], ReaderConfig(), dwell_s=0.0)


def test_both_pads_get_reads(two_pads):
    logs = two_pads.collect(2.0, [None, None])
    assert len(logs) == 2
    assert len(logs[0]) > 30
    assert len(logs[1]) > 30


def test_duty_cycle_halves_per_pad_rate(two_pads):
    logs = two_pads.collect(4.0, [None, None])
    # Each pad is served ~half the time: per-pad read count should be well
    # below a dedicated reader's (>150/s) but still substantial.
    for log in logs:
        rate = len(log) / 4.0
        assert 40.0 < rate < 160.0


def test_timestamps_on_shared_clock(two_pads):
    logs = two_pads.collect(1.5, [None, None])
    for log in logs:
        times = [r.timestamp for r in log]
        assert times == sorted(times)
        assert times[-1] <= 1.8


def test_dwell_interleaving(two_pads):
    logs = two_pads.collect(1.0, [None, None])
    # Port 0 owns [0, 0.25) and [0.5, 0.75); port 1 the rest — reads must
    # respect their dwell slots, allowing the in-flight inventory round to
    # overhang a slot boundary by up to one round (~tens of ms).
    for r in logs[0]:
        slot = (r.timestamp // 0.25) % 2
        assert slot == 0 or r.timestamp % 0.25 < 0.15
    assert len(logs[1]) > 0


def test_pose_callbacks_validated(two_pads):
    with pytest.raises(ValueError):
        two_pads.collect(1.0, [None])
    with pytest.raises(ValueError):
        two_pads.collect(0.0, [None, None])


def test_antenna_ports_recorded(two_pads):
    logs = two_pads.collect(1.0, [None, None])
    assert {r.antenna_port for r in logs[0]} == {1}
    assert {r.antenna_port for r in logs[1]} == {2}
