import numpy as np
import pytest

from repro.rfid.reports import ReportLog, TagReadReport


def _report(tag: int, t: float, phase: float = 1.0, rss: float = -40.0) -> TagReadReport:
    return TagReadReport(
        epc=f"E-{tag:04d}", tag_index=tag, timestamp=t, phase_rad=phase, rss_dbm=rss
    )


def test_append_and_len():
    log = ReportLog()
    log.append(_report(0, 0.0))
    log.extend([_report(1, 0.1), _report(0, 0.2)])
    assert len(log) == 3


def test_iteration_sorted_even_if_appended_out_of_order():
    log = ReportLog([_report(0, 0.5), _report(1, 0.1), _report(2, 0.3)])
    times = [r.timestamp for r in log]
    assert times == sorted(times)


def test_duration_and_bounds():
    log = ReportLog([_report(0, 1.0), _report(0, 3.5)])
    assert log.duration == pytest.approx(2.5)
    assert log.start_time == 1.0
    assert log.end_time == 3.5


def test_empty_log_properties():
    log = ReportLog()
    assert log.duration == 0.0
    with pytest.raises(ValueError):
        _ = log.start_time
    with pytest.raises(ValueError):
        _ = log.end_time


def test_per_tag_series():
    log = ReportLog(
        [_report(0, 0.0, phase=1.0), _report(1, 0.1, phase=2.0), _report(0, 0.2, phase=3.0)]
    )
    series = log.per_tag()
    assert set(series) == {0, 1}
    assert list(series[0].phases) == [1.0, 3.0]
    assert len(series[1]) == 1


def test_series_slice_time():
    log = ReportLog([_report(0, t / 10.0) for t in range(10)])
    series = log.per_tag()[0]
    sliced = series.slice_time(0.25, 0.65)
    assert list(sliced.timestamps) == pytest.approx([0.3, 0.4, 0.5, 0.6])


def test_log_slice_time_half_open():
    log = ReportLog([_report(0, float(t)) for t in range(5)])
    window = log.slice_time(1.0, 3.0)
    assert [r.timestamp for r in window] == [1.0, 2.0]


def test_read_count_and_tag_indices():
    log = ReportLog([_report(0, 0.0), _report(0, 0.1), _report(3, 0.2)])
    assert log.read_count(0) == 2
    assert log.read_count(9) == 0
    assert log.tag_indices() == [0, 3]


def test_aggregate_read_rate():
    log = ReportLog([_report(0, t * 0.01) for t in range(101)])
    assert log.aggregate_read_rate() == pytest.approx(101.0, rel=0.02)


def test_getitem_sorted():
    log = ReportLog([_report(0, 2.0), _report(1, 1.0)])
    assert log[0].timestamp == 1.0


# -- columnar-storage property tests ----------------------------------------
#
# The log is struct-of-arrays with searchsorted/mask views; these checks pin
# its behaviour to the historical row-list semantics over randomized data.


def _random_log(rng: np.random.Generator, n: int = 200):
    ts = np.round(rng.uniform(0.0, 10.0, n), 3)
    tags = rng.integers(0, 6, n).astype(np.int64)
    phases = rng.uniform(0.0, 6.28, n)
    rss = rng.uniform(-70.0, -30.0, n)
    dopp = rng.normal(0.0, 5.0, n)
    epcs = [f"E-{int(t):04d}" for t in tags]
    log = ReportLog()
    half = n // 2
    # Mixed producers: a bulk columnar block plus row-at-a-time appends.
    log.extend_columns(ts[:half], tags[:half], phases[:half], rss[:half],
                       dopp[:half], epcs[:half])
    for i in range(half, n):
        log.append(TagReadReport(
            epc=epcs[i], tag_index=int(tags[i]), timestamp=float(ts[i]),
            phase_rad=float(phases[i]), rss_dbm=float(rss[i]),
            doppler_hz=float(dopp[i]),
        ))
    rows = [
        TagReadReport(
            epc=epcs[i], tag_index=int(tags[i]), timestamp=float(ts[i]),
            phase_rad=float(phases[i]), rss_dbm=float(rss[i]),
            doppler_hz=float(dopp[i]),
        )
        for i in range(n)
    ]
    rows.sort(key=lambda r: r.timestamp)
    return log, rows


def test_mixed_producers_iterate_like_sorted_row_list():
    rng = np.random.default_rng(0)
    log, rows = _random_log(rng)
    assert list(log) == rows


def test_slice_time_matches_bruteforce_filter():
    rng = np.random.default_rng(1)
    log, rows = _random_log(rng)
    for _ in range(20):
        t0, t1 = sorted(rng.uniform(-1.0, 11.0, 2).tolist())
        got = list(log.slice_time(t0, t1))
        want = [r for r in rows if t0 <= r.timestamp < t1]
        assert got == want


def test_per_tag_matches_bruteforce_groupby():
    rng = np.random.default_rng(2)
    log, rows = _random_log(rng)
    series = log.per_tag()
    buckets: dict = {}
    for r in rows:
        buckets.setdefault(r.tag_index, []).append(r)
    # Same keys, in first-appearance order of the time-sorted stream.
    assert list(series) == list(buckets)
    for tag, bucket in buckets.items():
        s = series[tag]
        assert s.epc == bucket[0].epc
        assert s.timestamps.tolist() == [r.timestamp for r in bucket]
        assert s.phases.tolist() == [r.phase_rad for r in bucket]
        assert s.rss.tolist() == [r.rss_dbm for r in bucket]


def test_slice_time_returns_views_not_copies():
    log = ReportLog([_report(0, float(t)) for t in range(8)])
    window = log.slice_time(2.0, 6.0)
    assert np.shares_memory(window.timestamps, log.timestamps)


def test_stable_order_for_equal_timestamps():
    # Ties must keep producer order (stable sort), like list.sort did.
    log = ReportLog()
    log.append(_report(3, 1.0, phase=0.1))
    log.append(_report(1, 0.5))
    log.append(_report(4, 1.0, phase=0.2))
    assert [(r.tag_index, r.phase_rad) for r in log] == [
        (1, 1.0), (3, 0.1), (4, 0.2)
    ]
