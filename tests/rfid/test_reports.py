import numpy as np
import pytest

from repro.rfid.reports import ReportLog, TagReadReport


def _report(tag: int, t: float, phase: float = 1.0, rss: float = -40.0) -> TagReadReport:
    return TagReadReport(
        epc=f"E-{tag:04d}", tag_index=tag, timestamp=t, phase_rad=phase, rss_dbm=rss
    )


def test_append_and_len():
    log = ReportLog()
    log.append(_report(0, 0.0))
    log.extend([_report(1, 0.1), _report(0, 0.2)])
    assert len(log) == 3


def test_iteration_sorted_even_if_appended_out_of_order():
    log = ReportLog([_report(0, 0.5), _report(1, 0.1), _report(2, 0.3)])
    times = [r.timestamp for r in log]
    assert times == sorted(times)


def test_duration_and_bounds():
    log = ReportLog([_report(0, 1.0), _report(0, 3.5)])
    assert log.duration == pytest.approx(2.5)
    assert log.start_time == 1.0
    assert log.end_time == 3.5


def test_empty_log_properties():
    log = ReportLog()
    assert log.duration == 0.0
    with pytest.raises(ValueError):
        _ = log.start_time
    with pytest.raises(ValueError):
        _ = log.end_time


def test_per_tag_series():
    log = ReportLog(
        [_report(0, 0.0, phase=1.0), _report(1, 0.1, phase=2.0), _report(0, 0.2, phase=3.0)]
    )
    series = log.per_tag()
    assert set(series) == {0, 1}
    assert list(series[0].phases) == [1.0, 3.0]
    assert len(series[1]) == 1


def test_series_slice_time():
    log = ReportLog([_report(0, t / 10.0) for t in range(10)])
    series = log.per_tag()[0]
    sliced = series.slice_time(0.25, 0.65)
    assert list(sliced.timestamps) == pytest.approx([0.3, 0.4, 0.5, 0.6])


def test_log_slice_time_half_open():
    log = ReportLog([_report(0, float(t)) for t in range(5)])
    window = log.slice_time(1.0, 3.0)
    assert [r.timestamp for r in window] == [1.0, 2.0]


def test_read_count_and_tag_indices():
    log = ReportLog([_report(0, 0.0), _report(0, 0.1), _report(3, 0.2)])
    assert log.read_count(0) == 2
    assert log.read_count(9) == 0
    assert log.tag_indices() == [0, 3]


def test_aggregate_read_rate():
    log = ReportLog([_report(0, t * 0.01) for t in range(101)])
    assert log.aggregate_read_rate() == pytest.approx(101.0, rel=0.02)


def test_getitem_sorted():
    log = ReportLog([_report(0, 2.0), _report(1, 1.0)])
    assert log[0].timestamp == 1.0
