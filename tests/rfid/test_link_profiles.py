import numpy as np
import pytest

from repro.rfid.protocol import (
    Gen2Inventory,
    LinkProfile,
    PROFILE_DENSE,
    PROFILE_FAST,
    PROFILE_FAST_SHORT,
    PROFILE_ROBUST,
)


def test_profile_validation():
    with pytest.raises(ValueError):
        LinkProfile(tari_s=0.0)
    with pytest.raises(ValueError):
        LinkProfile(miller=3)
    with pytest.raises(ValueError):
        LinkProfile(epc_bits=8)


def test_slot_duration_ordering():
    for p in (PROFILE_DENSE, PROFILE_FAST, PROFILE_ROBUST):
        assert p.idle_slot_s < p.collision_slot_s < p.success_slot_s


def test_faster_link_shorter_slots():
    assert PROFILE_FAST.success_slot_s < PROFILE_DENSE.success_slot_s
    assert PROFILE_ROBUST.success_slot_s > PROFILE_DENSE.success_slot_s


def test_short_epc_shortens_success_slot_only():
    assert PROFILE_FAST_SHORT.success_slot_s < PROFILE_FAST.success_slot_s
    assert PROFILE_FAST_SHORT.idle_slot_s == PROFILE_FAST.idle_slot_s


def test_dense_profile_realistic_timing():
    # An Impinj-style dense-reader profile singulates a tag in ~2-4 ms.
    assert 1.5e-3 < PROFILE_DENSE.success_slot_s < 5e-3


@pytest.mark.parametrize(
    "profile", [PROFILE_DENSE, PROFILE_FAST, PROFILE_FAST_SHORT, PROFILE_ROBUST]
)
def test_read_rate_scales_with_profile(profile):
    inv = Gen2Inventory(np.random.default_rng(0), profile=profile)
    n = sum(1 for s in inv.run_until(2.0, lambda t: list(range(25))) if s.kind == "success")
    rate = n / inv.stats.elapsed
    assert rate > 0
    # Sanity bands: robust ~100/s, dense ~200/s, fast >500/s.
    if profile is PROFILE_ROBUST:
        assert rate < 200
    if profile is PROFILE_FAST_SHORT:
        assert rate > 400


def test_inventory_defaults_to_dense():
    inv = Gen2Inventory(np.random.default_rng(0))
    assert inv.profile is PROFILE_DENSE
