import math

import numpy as np
import pytest

from repro.physics.coupling import TAG_DESIGN_B
from repro.physics.geometry import Vec3
from repro.rfid.tag import (
    DEFAULT_IC_SENSITIVITY_DBM,
    Tag,
    make_epc,
    sample_ic_sensitivity_dbm,
    sample_modulation_efficiency,
    sample_theta_tag,
)
from repro.units import TWO_PI, dbm_to_watts


def _tag(**kwargs) -> Tag:
    defaults = dict(epc="E200-0001", index=0, position=Vec3(0, 0, 0))
    defaults.update(kwargs)
    return Tag(**defaults)


def test_power_threshold():
    tag = _tag(ic_sensitivity_dbm=-17.0)
    assert tag.is_powered(dbm_to_watts(-16.0))
    assert tag.is_powered(dbm_to_watts(-17.0))
    assert not tag.is_powered(dbm_to_watts(-18.0))


def test_gain_linear_from_design():
    tag = _tag(design=TAG_DESIGN_B)
    assert tag.gain_linear == pytest.approx(10 ** (TAG_DESIGN_B.gain_dbi / 10.0))


def test_validation():
    with pytest.raises(ValueError):
        _tag(epc="")
    with pytest.raises(ValueError):
        _tag(modulation_efficiency=0.0)
    with pytest.raises(ValueError):
        _tag(modulation_efficiency=1.5)
    with pytest.raises(ValueError):
        _tag(static_shadow_db=-1.0)


def test_make_epc_unique_and_deterministic():
    epcs = [make_epc(i) for i in range(100)]
    assert len(set(epcs)) == 100
    assert make_epc(7) == make_epc(7)
    with pytest.raises(ValueError):
        make_epc(-1)


def test_theta_tag_spread(rng):
    draws = [sample_theta_tag(rng) for _ in range(500)]
    assert all(0.0 <= d < TWO_PI for d in draws)
    # Uniform over the circle: mean resultant length should be small.
    resultant = abs(np.exp(1j * np.array(draws)).mean())
    assert resultant < 0.15


def test_modulation_efficiency_bounds(rng):
    draws = [sample_modulation_efficiency(rng) for _ in range(500)]
    assert all(0.05 <= d <= 1.0 for d in draws)
    assert np.mean(draws) == pytest.approx(0.25, abs=0.02)


def test_ic_sensitivity_spread(rng):
    draws = [sample_ic_sensitivity_dbm(rng) for _ in range(500)]
    assert np.mean(draws) == pytest.approx(DEFAULT_IC_SENSITIVITY_DBM, abs=0.2)
    assert 0.2 < np.std(draws) < 1.0
