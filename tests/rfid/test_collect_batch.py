"""Trial-axis collection: batched batteries must be bitwise solo-equal.

The tentpole contract of the trial-axis path: grouping trials into one
lockstep :meth:`Reader.collect_batch` evaluation — whatever the grouping
— changes *nothing* observable.  Every trial's ReportLog is byte-for-byte
the log its solo ``reseed + run_motion`` counterpart collects, because
each lane keeps its own RNG stream and every shared numpy evaluation is
bit-identical per lane (see DESIGN.md §13).
"""

from __future__ import annotations

import numpy as np

from repro.motion.strokes import all_motions
from repro.motion.user import DEFAULT_USER
from repro.sim.parallel import trial_rng
from repro.sim.runner import SessionRunner
from repro.sim.scenario import ScenarioConfig, build_scenario


def _columns_equal(a, b) -> bool:
    ca, cb = a.columns(), b.columns()
    for va, vb in zip(ca, cb):
        if isinstance(va, np.ndarray):
            if not np.array_equal(va, vb):
                return False
        elif list(va) != list(vb):
            return False
    return True


def _motion_items(seed: int, n_each: int):
    motions = all_motions()[:3]
    return [
        (m, DEFAULT_USER, None, trial_rng(seed, i * n_each + j))
        for i, m in enumerate(motions)
        for j in range(n_each)
    ]


class TestMotionBatchBitIdentity:
    def test_batch_logs_equal_solo_logs(self):
        runner = SessionRunner(build_scenario(ScenarioConfig(seed=19)))
        batched = runner.run_motion_batch(_motion_items(19, 2), keep_logs=True)

        solo = []
        for motion, user, speed, rng in _motion_items(19, 2):
            runner.reseed(rng)
            solo.append(
                runner.run_motion(motion, user=user, speed=speed, keep_log=True)
            )

        assert len(batched) == len(solo) == 6
        for tb, ts in zip(batched, solo):
            assert tb.truth == ts.truth
            assert (tb.observed is None) == (ts.observed is None)
            if tb.observed is not None:
                assert tb.observed.label == ts.observed.label
            assert tb.log_size == ts.log_size > 0
            assert _columns_equal(tb.log, ts.log)

    def test_batch_composition_does_not_change_results(self):
        # One fat batch vs two sub-batches over the same items: lanes are
        # independent, so the grouping is pure scheduling.
        runner = SessionRunner(build_scenario(ScenarioConfig(seed=19)))
        whole = runner.run_motion_batch(_motion_items(19, 2), keep_logs=True)
        items = _motion_items(19, 2)
        split = runner.run_motion_batch(
            items[:2], keep_logs=True
        ) + runner.run_motion_batch(items[2:], keep_logs=True)
        for tw, tsp in zip(whole, split):
            assert tw.log_size == tsp.log_size
            assert _columns_equal(tw.log, tsp.log)


class TestLetterBatchBitIdentity:
    def test_batch_logs_equal_solo_logs(self):
        runner = SessionRunner(build_scenario(ScenarioConfig(seed=23)))
        items = [
            (letter, DEFAULT_USER, trial_rng(23, i))
            for i, letter in enumerate(["T", "H", "L"])
        ]
        batched = runner.run_letter_batch(items, keep_logs=True)

        solo = []
        for letter, user, rng in [
            (letter, DEFAULT_USER, trial_rng(23, i))
            for i, letter in enumerate(["T", "H", "L"])
        ]:
            runner.reseed(rng)
            solo.append(runner.run_letter(letter, user=user, keep_log=True))

        for tb, ts in zip(batched, solo):
            assert tb.truth == ts.truth
            assert tb.result.letter == ts.result.letter
            assert _columns_equal(tb.log, ts.log)
