import numpy as np
import pytest

from repro.physics.coupling import TAG_DESIGN_B, TAG_DESIGN_D
from repro.physics.geometry import GridLayout
from repro.rfid.deployment import TagArray, deploy_array


def test_default_deployment_is_5x5(rng):
    array = deploy_array(rng)
    assert len(array) == 25
    assert array.layout.rows == 5


def test_unique_epcs(rng):
    array = deploy_array(rng)
    assert len({t.epc for t in array}) == 25


def test_positions_match_layout(rng):
    array = deploy_array(rng)
    for tag in array:
        r, c = array.layout.row_col(tag.index)
        assert tag.position == array.layout.position(r, c)


def test_checkerboard_facing(rng):
    array = deploy_array(rng)
    t00 = array.tag_at(0, 0)
    t01 = array.tag_at(0, 1)
    assert t00.facing_default != t01.facing_default


def test_alternate_facing_reduces_shadow(rng):
    alternating = deploy_array(np.random.default_rng(0), alternate_facing=True)
    uniform = deploy_array(np.random.default_rng(0), alternate_facing=False)
    centre_alt = alternating.tag_at(2, 2).static_shadow_db
    centre_uni = uniform.tag_at(2, 2).static_shadow_db
    assert centre_alt < centre_uni


def test_corner_tags_less_shadowed_than_centre(rng):
    array = deploy_array(rng)
    assert array.tag_at(0, 0).static_shadow_db < array.tag_at(2, 2).static_shadow_db


def test_big_rcs_design_more_shadow(rng):
    small = deploy_array(np.random.default_rng(0), design=TAG_DESIGN_B)
    big = deploy_array(np.random.default_rng(0), design=TAG_DESIGN_D)
    assert big.tag_at(2, 2).static_shadow_db > small.tag_at(2, 2).static_shadow_db


def test_by_epc_lookup(rng):
    array = deploy_array(rng)
    tag = array.tags[7]
    assert array.by_epc(tag.epc) is tag
    with pytest.raises(KeyError):
        array.by_epc("nope")


def test_mismatched_population_rejected(rng):
    array = deploy_array(rng)
    with pytest.raises(ValueError):
        TagArray(layout=GridLayout(rows=2, cols=2), tags=array.tags)


def test_theta_tags_diverse(rng):
    array = deploy_array(rng)
    thetas = [t.theta_tag for t in array]
    assert max(thetas) - min(thetas) > 2.0  # spread over the circle
