import json

import pytest

from repro.motion.script import script_for_motion
from repro.motion.strokes import Motion, StrokeKind
from repro.rfid.capture import dump_log, load_log, load_metadata
from repro.rfid.reports import ReportLog, TagReadReport


@pytest.fixture()
def session_log(shared_runner):
    script = script_for_motion(Motion(StrokeKind.VBAR), shared_runner.rng)
    return shared_runner.run_script(script)


def test_roundtrip_preserves_reports(session_log, tmp_path):
    path = tmp_path / "session.jsonl"
    count = dump_log(session_log, path, metadata={"label": "|+"})
    assert count == len(session_log)
    loaded = load_log(path)
    assert len(loaded) == len(session_log)
    for a, b in zip(session_log, loaded):
        assert a == b


def test_metadata_roundtrip(session_log, tmp_path):
    path = tmp_path / "session.jsonl"
    dump_log(session_log, path, metadata={"label": "|+", "seed": 7})
    meta = load_metadata(path)
    assert meta == {"label": "|+", "seed": 7}


def test_pipeline_runs_on_replayed_capture(shared_runner, session_log, tmp_path):
    path = tmp_path / "session.jsonl"
    dump_log(session_log, path)
    replayed = load_log(path)
    live = shared_runner.pad.detect_motion(session_log)
    from_capture = shared_runner.pad.detect_motion(replayed)
    assert live is not None and from_capture is not None
    assert live.kind == from_capture.kind
    assert live.direction == from_capture.direction


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_log(path)


def test_wrong_version_rejected(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(json.dumps({"repro_capture": 99}) + "\n")
    with pytest.raises(ValueError, match="version"):
        load_log(path)


def test_malformed_record_reports_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps({"repro_capture": 1}) + "\n" + json.dumps({"epc": "x"}) + "\n"
    )
    with pytest.raises(ValueError, match="line 2"):
        load_log(path)


def test_blank_lines_tolerated(tmp_path):
    log = ReportLog(
        [TagReadReport(epc="E", tag_index=0, timestamp=0.0, phase_rad=1.0, rss_dbm=-40.0)]
    )
    path = tmp_path / "gaps.jsonl"
    dump_log(log, path)
    with open(path, "a") as fh:
        fh.write("\n\n")
    assert len(load_log(path)) == 1


def test_optional_fields_defaulted(tmp_path):
    path = tmp_path / "minimal.jsonl"
    record = {
        "epc": "E", "tag_index": 3, "timestamp": 1.5,
        "phase_rad": 0.4, "rss_dbm": -42.0,
    }
    path.write_text(json.dumps({"repro_capture": 1}) + "\n" + json.dumps(record) + "\n")
    loaded = load_log(path)
    assert loaded[0].doppler_hz == 0.0
    assert loaded[0].antenna_port == 1
