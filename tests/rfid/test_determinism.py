"""Determinism regression tests for the vectorized channel engine.

Two bit-identity contracts guard the engine refactor:

* **Seed determinism** — the same scenario seed produces a byte-for-byte
  identical :class:`ReportLog` on every run (the simulator consumes one
  deterministic RNG stream; no hidden ordering or wall-clock state).
* **Engine transparency** — running the reader with the vectorized
  engine (``use_engine=True``) or the scalar reference path
  (``use_engine=False``) yields *bit-identical* logs: the per-slot
  observation path is scalar in both cases and all random draws happen
  in the same order.
"""

from __future__ import annotations

import math

from repro.physics.geometry import Vec3
from repro.physics.hand import HandPose
from repro.rfid.reports import ReportLog
from repro.sim.scenario import ScenarioConfig, build_scenario


def _writing_pose(t: float) -> HandPose:
    return HandPose(
        position=Vec3(0.06 * math.cos(3.0 * t), 0.05 * math.sin(2.0 * t), 0.04)
    )


def _collect_log(seed: int, mount: str, use_engine: bool) -> ReportLog:
    scenario = build_scenario(ScenarioConfig(seed=seed, mount=mount, location=2))
    reader = scenario.make_reader(use_engine=use_engine)
    return reader.collect(1.2, _writing_pose)


def _as_tuples(log: ReportLog):
    return [
        (r.epc, r.tag_index, r.timestamp, r.phase_rad, r.rss_dbm, r.doppler_hz)
        for r in log
    ]


class TestSeedDeterminism:
    def test_same_seed_same_log(self):
        a = _as_tuples(_collect_log(11, "nlos", use_engine=True))
        b = _as_tuples(_collect_log(11, "nlos", use_engine=True))
        assert len(a) > 0
        assert a == b

    def test_different_seed_different_log(self):
        a = _as_tuples(_collect_log(11, "nlos", use_engine=True))
        b = _as_tuples(_collect_log(12, "nlos", use_engine=True))
        assert a != b


class TestEngineTransparency:
    def test_engine_vs_scalar_bit_identical_nlos(self):
        engine = _as_tuples(_collect_log(11, "nlos", use_engine=True))
        scalar = _as_tuples(_collect_log(11, "nlos", use_engine=False))
        assert len(engine) > 0
        assert engine == scalar

    def test_engine_vs_scalar_bit_identical_los(self):
        # LOS mount adds the per-pose occlusion term to readability — the
        # one dynamic input of the batched power evaluation.
        engine = _as_tuples(_collect_log(11, "los", use_engine=True))
        scalar = _as_tuples(_collect_log(11, "los", use_engine=False))
        assert len(engine) > 0
        assert engine == scalar

    def test_static_collection_bit_identical(self):
        sc_e = build_scenario(ScenarioConfig(seed=5, mount="nlos", location=3))
        sc_s = build_scenario(ScenarioConfig(seed=5, mount="nlos", location=3))
        log_e = sc_e.make_reader(use_engine=True).collect_static(1.0)
        log_s = sc_s.make_reader(use_engine=False).collect_static(1.0)
        assert _as_tuples(log_e) == _as_tuples(log_s)
