"""Round-batched inventory engine: RNG-stream and golden-stream identity.

Three contracts pin :class:`RoundBatchInventory` to the scalar reference:

* **MAC stream identity** — fed the same RNG, the round-batched engine
  produces the exact success ``(time, winner)`` sequence, statistics,
  clock, Q state, *and leaves the RNG generator in the same state* as
  :class:`Gen2Inventory`.  Everything downstream (channel draws, noise
  draws) then consumes an identical stream by construction.
* **Golden report streams** — full reader sessions on the default
  (batched) path and under ``REPRO_SCALAR_INVENTORY=1`` emit
  byte-for-byte equal :class:`ReportLog` rows, across seeds, link
  profiles, and hand scripts.
* **Single pose evaluation** — the batched collect path evaluates the
  hand pose exactly once per distinct timestamp (once per round for
  readability, once per success slot for the channel), verified by
  call counting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion.script import script_for_letter, script_for_motion
from repro.motion.strokes import Direction, Motion, StrokeKind
from repro.rfid.inventory_vec import RoundBatchInventory
from repro.rfid.protocol import (
    Gen2Inventory,
    PROFILE_DENSE,
    PROFILE_FAST,
    PROFILE_FAST_SHORT,
)
from repro.sim.scenario import ScenarioConfig, build_scenario


def _scalar_events(inv: Gen2Inventory, end: float, readable):
    out = []
    for slot in inv.run_until(end, readable, successes_only=True):
        if slot.winner is not None:
            out.append((slot.time, slot.winner))
    return out


def _batched_events(inv: RoundBatchInventory, end: float, readable):
    out = []
    for rr in inv.run_until_batch(end, readable):
        out.extend(zip(rr.times.tolist(), rr.winners.tolist()))
    return out


class TestMacStreamIdentity:
    @pytest.mark.parametrize("seed", [0, 3, 91])
    def test_success_stream_and_rng_state_match(self, seed):
        readable = list(range(25))
        rng_s = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        scalar = Gen2Inventory(rng_s)
        batched = RoundBatchInventory(rng_b)

        ev_s = _scalar_events(scalar, 0.6, lambda t: readable)
        ev_b = _batched_events(batched, 0.6, lambda t: readable)

        assert len(ev_s) > 0
        assert ev_s == ev_b  # exact floats: same timing fold
        assert scalar.stats == batched.stats
        assert scalar.clock == batched.clock
        assert scalar.current_q == batched.current_q
        assert scalar._qalg.qfp == batched._qalg.qfp
        # The decisive check: not one extra/missing/misordered draw.
        assert rng_s.bit_generator.state == rng_b.bit_generator.state

    def test_varying_population_matches(self):
        # Readability that changes between rounds (tags dropping in/out)
        # exercises the per-round draw-size dependence of the stream.
        def readable(t):
            n = 5 + int(t * 40.0) % 20
            return list(range(n))

        rng_s = np.random.default_rng(17)
        rng_b = np.random.default_rng(17)
        scalar = Gen2Inventory(rng_s)
        batched = RoundBatchInventory(rng_b)
        assert _scalar_events(scalar, 0.5, readable) == _batched_events(
            batched, 0.5, readable
        )
        assert rng_s.bit_generator.state == rng_b.bit_generator.state

    def test_empty_population_rounds_match(self):
        rng_s = np.random.default_rng(2)
        rng_b = np.random.default_rng(2)
        scalar = Gen2Inventory(rng_s)
        batched = RoundBatchInventory(rng_b)
        # No readable tags: rounds still advance the clock and drift Q down.
        assert _scalar_events(scalar, 0.05, lambda t: []) == []
        assert _batched_events(batched, 0.05, lambda t: []) == []
        assert scalar.clock == batched.clock
        assert scalar._qalg.qfp == batched._qalg.qfp

    def test_qfp_clamp_binding_replays_scalar(self):
        # Pin q_max low over a large population: the unclamped qfp path
        # escapes the band, forcing the batched engine onto its scalar
        # clamp replay — which must still match the reference exactly.
        readable = list(range(60))
        rng_s = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        scalar = Gen2Inventory(rng_s, q_initial=4.0)
        batched = RoundBatchInventory(rng_b, q_initial=4.0)
        scalar._qalg.q_max = 4.0
        batched._qalg.q_max = 4.0

        ev_s = _scalar_events(scalar, 0.4, lambda t: readable)
        ev_b = _batched_events(batched, 0.4, lambda t: readable)
        assert ev_s == ev_b
        # The clamp genuinely bound (otherwise this test checks nothing).
        assert scalar._qalg.qfp == scalar._qalg.q_max
        assert batched._qalg.qfp == batched._qalg.q_max
        assert rng_s.bit_generator.state == rng_b.bit_generator.state

    def test_mutated_q_weights_rebuild_lut(self):
        readable = list(range(20))
        rng_s = np.random.default_rng(8)
        rng_b = np.random.default_rng(8)
        scalar = Gen2Inventory(rng_s)
        batched = RoundBatchInventory(rng_b)
        assert _scalar_events(scalar, 0.1, lambda t: readable) == _batched_events(
            batched, 0.1, lambda t: readable
        )
        scalar._qalg.idle_weight = 0.25
        batched._qalg.idle_weight = 0.25
        scalar._qalg.collision_weight = 0.4
        batched._qalg.collision_weight = 0.4
        assert _scalar_events(scalar, 0.2, lambda t: readable) == _batched_events(
            batched, 0.2, lambda t: readable
        )
        assert scalar._qalg.qfp == batched._qalg.qfp


# ---------------------------------------------------------------------------


_PROFILES = {
    "dense": PROFILE_DENSE,
    "fast": PROFILE_FAST,
    "fast_short": PROFILE_FAST_SHORT,
}


def _session_tuples(seed: int, profile_name: str, script_kind: str):
    """One full reader session's report rows, as exact-value tuples."""
    scenario = build_scenario(
        ScenarioConfig(seed=seed, mount="nlos", location=2,
                       link_profile=_PROFILES[profile_name])
    )
    reader = scenario.make_reader()
    if script_kind == "motion":
        script = script_for_motion(
            Motion(StrokeKind.ARC_C, Direction.FORWARD), scenario.rng
        )
    else:
        script = script_for_letter("T", scenario.rng)
    log = reader.collect(script.duration, script.hand_pose_at)
    return [
        (r.epc, r.tag_index, r.timestamp, r.phase_rad, r.rss_dbm,
         r.doppler_hz, r.antenna_port)
        for r in log
    ]


class TestGoldenStreams:
    @pytest.mark.parametrize("script_kind", ["motion", "letter"])
    @pytest.mark.parametrize("profile_name", ["dense", "fast", "fast_short"])
    @pytest.mark.parametrize("seed", [7, 23])
    def test_batched_matches_scalar_inventory(
        self, monkeypatch, seed, profile_name, script_kind
    ):
        monkeypatch.delenv("REPRO_SCALAR_INVENTORY", raising=False)
        batched = _session_tuples(seed, profile_name, script_kind)
        monkeypatch.setenv("REPRO_SCALAR_INVENTORY", "1")
        scalar = _session_tuples(seed, profile_name, script_kind)
        assert len(batched) > 0
        assert batched == scalar  # byte-for-byte (exact floats + strings)


# ---------------------------------------------------------------------------


class _CountingPoseSource:
    """Wraps a script; records every scalar pose query and batch call."""

    def __init__(self, script):
        self._script = script
        self.scalar_times = []
        self.many_calls = 0

    def hand_pose_at(self, t):
        self.scalar_times.append(t)
        return self._script.hand_pose_at(t)

    def pose_at_many(self, times):
        self.many_calls += 1
        return self._script.pose_at_many(times)


class TestSinglePoseEvaluation:
    def _collect(self, with_many: bool):
        scenario = build_scenario(ScenarioConfig(seed=13, mount="nlos", location=2))
        reader = scenario.make_reader()
        script = script_for_motion(
            Motion(StrokeKind.VBAR, Direction.FORWARD), scenario.rng
        )
        if with_many:
            src = _CountingPoseSource(script)
            log = reader.collect(script.duration, src.hand_pose_at)
            return src, log
        calls = []

        def pose_at(t):
            calls.append(t)
            return script.hand_pose_at(t)

        log = reader.collect(script.duration, pose_at)
        return calls, log

    def test_vectorized_clock_called_once_per_window(self):
        src, log = self._collect(with_many=True)
        assert len(log) > 0
        # The whole window's success poses resolve through one batch call;
        # the per-round readability queries each hit a distinct clock value.
        assert src.many_calls == 1
        assert len(src.scalar_times) == len(set(src.scalar_times))

    def test_fallback_evaluates_each_timestamp_exactly_once(self):
        calls, log = self._collect(with_many=False)
        assert len(log) > 0
        # No duplicate evaluation anywhere: rounds and success slots all
        # carry distinct timestamps, and each is queried exactly once.
        assert len(calls) == len(set(calls))
        from collections import Counter

        counts = Counter(calls)
        for r in log:
            assert counts[r.timestamp] == 1


# ---------------------------------------------------------------------------


def _solo_run(seed, q_initial, end, readable_at):
    inv = RoundBatchInventory(np.random.default_rng(seed), q_initial=q_initial)
    events = []
    for rr in inv.run_until_batch(end, readable_at):
        events.extend(zip(rr.times.tolist(), rr.winners.tolist()))
    return inv, events


def _lockstep_run(lane_params, end):
    """Drive every lane through TrialAxisInventory exactly as collect_batch
    does: readability queried at each lane's own pre-round clock."""
    from repro.rfid.inventory_vec import TrialAxisInventory

    lanes = [
        RoundBatchInventory(np.random.default_rng(seed), q_initial=q0)
        for seed, q0, _ in lane_params
    ]
    taxis = TrialAxisInventory(lanes)
    events = [[] for _ in lanes]
    while True:
        active = [i for i, inv in enumerate(lanes) if inv.clock < end]
        if not active:
            break
        readables = [lane_params[i][2](lanes[i].clock) for i in active]
        for k, rr in zip(active, taxis.step(active, readables)):
            events[k].extend(zip(rr.times.tolist(), rr.winners.tolist()))
    return lanes, events


class TestTrialAxisLockstep:
    """Lockstep lanes must be bitwise indistinguishable from solo lanes."""

    def _assert_lane_equal(self, solo_inv, solo_ev, lane, lane_ev):
        assert solo_ev == lane_ev  # exact floats
        assert solo_inv.clock == lane.clock
        assert solo_inv.stats == lane.stats
        assert solo_inv._qalg.qfp == lane._qalg.qfp
        assert (
            solo_inv._rng.bit_generator.state == lane._rng.bit_generator.state
        )

    def test_uniform_lanes_match_solo(self):
        def readable(t):
            return list(range(25))

        params = [(seed, 3.0, readable) for seed in (1, 2, 3, 4, 5)]
        lanes, events = _lockstep_run(params, end=0.5)
        assert any(ev for ev in events)
        for (seed, q0, fn), lane, ev in zip(params, lanes, events):
            solo_inv, solo_ev = _solo_run(seed, q0, 0.5, fn)
            self._assert_lane_equal(solo_inv, solo_ev, lane, ev)

    def test_heterogeneous_populations_and_empties(self):
        def busy(t):
            return list(range(5 + int(t * 40.0) % 20))

        def quiet(t):
            return []

        def sparse(t):
            return [0, 3, 7]

        params = [(11, 3.0, busy), (12, 3.0, quiet), (13, 3.0, sparse),
                  (14, 3.0, busy)]
        lanes, events = _lockstep_run(params, end=0.4)
        for (seed, q0, fn), lane, ev in zip(params, lanes, events):
            solo_inv, solo_ev = _solo_run(seed, q0, 0.4, fn)
            self._assert_lane_equal(solo_inv, solo_ev, lane, ev)
        assert events[1] == []  # quiet lane really was idle

    def test_clamp_escape_replay_matches_solo(self):
        # Large population + low q_max: the qfp band check fails, forcing
        # the grouped scalar replay — still exact per lane.
        from repro.rfid.inventory_vec import TrialAxisInventory

        def readable(t):
            return list(range(60))

        solo_lanes = []
        for seed in (21, 22, 23):
            inv = RoundBatchInventory(np.random.default_rng(seed), q_initial=4.0)
            inv._qalg.q_max = 4.0
            solo_lanes.append(inv)
        lock_lanes = []
        for seed in (21, 22, 23):
            inv = RoundBatchInventory(np.random.default_rng(seed), q_initial=4.0)
            inv._qalg.q_max = 4.0
            lock_lanes.append(inv)

        solo_events = []
        for inv in solo_lanes:
            ev = []
            for rr in inv.run_until_batch(0.4, readable):
                ev.extend(zip(rr.times.tolist(), rr.winners.tolist()))
            solo_events.append(ev)

        taxis = TrialAxisInventory(lock_lanes)
        lock_events = [[] for _ in lock_lanes]
        while True:
            active = [i for i, inv in enumerate(lock_lanes) if inv.clock < 0.4]
            if not active:
                break
            readables = [readable(lock_lanes[i].clock) for i in active]
            for k, rr in zip(active, taxis.step(active, readables)):
                lock_events[k].extend(zip(rr.times.tolist(), rr.winners.tolist()))

        for solo_inv, solo_ev, lane, ev in zip(
            solo_lanes, solo_events, lock_lanes, lock_events
        ):
            assert solo_ev == ev
            assert solo_inv._qalg.qfp == lane._qalg.qfp == lane._qalg.q_max
            assert (
                solo_inv._rng.bit_generator.state
                == lane._rng.bit_generator.state
            )

    def test_heterogeneous_profiles_fall_back_per_lane(self):
        def readable(t):
            return list(range(20))

        lanes = [
            RoundBatchInventory(np.random.default_rng(31), profile=PROFILE_DENSE),
            RoundBatchInventory(np.random.default_rng(32), profile=PROFILE_FAST),
        ]
        from repro.rfid.inventory_vec import TrialAxisInventory

        taxis = TrialAxisInventory(lanes)
        assert not taxis._uniform
        events = [[] for _ in lanes]
        while True:
            active = [i for i, inv in enumerate(lanes) if inv.clock < 0.3]
            if not active:
                break
            readables = [readable(lanes[i].clock) for i in active]
            for k, rr in zip(active, taxis.step(active, readables)):
                events[k].extend(zip(rr.times.tolist(), rr.winners.tolist()))

        for seed, profile, lane, ev in (
            (31, PROFILE_DENSE, lanes[0], events[0]),
            (32, PROFILE_FAST, lanes[1], events[1]),
        ):
            solo = RoundBatchInventory(np.random.default_rng(seed), profile=profile)
            solo_ev = []
            for rr in solo.run_until_batch(0.3, readable):
                solo_ev.extend(zip(rr.times.tolist(), rr.winners.tolist()))
            assert solo_ev == ev
            assert solo._rng.bit_generator.state == lane._rng.bit_generator.state
