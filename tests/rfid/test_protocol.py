import numpy as np
import pytest

from repro.rfid.protocol import (
    Gen2Inventory,
    QAlgorithm,
    SUCCESS_SLOT_S,
    expected_round_efficiency,
)


class TestQAlgorithm:
    def test_collision_raises_q(self):
        q = QAlgorithm(qfp=4.0)
        for _ in range(4):
            q.on_collision()
        assert q.qfp > 4.0

    def test_idle_lowers_q(self):
        q = QAlgorithm(qfp=4.0)
        for _ in range(10):
            q.on_idle()
        assert q.qfp < 4.0

    def test_clamping(self):
        q = QAlgorithm(qfp=0.1)
        for _ in range(20):
            q.on_idle()
        assert q.qfp == 0.0
        q = QAlgorithm(qfp=14.9)
        for _ in range(20):
            q.on_collision()
        assert q.qfp == 15.0


class TestInventoryRound:
    def test_every_tag_reads_at_most_once_per_round(self, rng):
        inv = Gen2Inventory(rng, q_initial=4.0)
        winners = [
            s.winner for s in inv.run_round(list(range(20))) if s.kind == "success"
        ]
        assert len(winners) == len(set(winners))

    def test_empty_population(self, rng):
        inv = Gen2Inventory(rng)
        outcomes = list(inv.run_round([]))
        assert outcomes == []
        assert inv.clock > 0.0  # round overhead still charged

    def test_clock_monotonic(self, rng):
        inv = Gen2Inventory(rng)
        times = [s.time for s in inv.run_round(list(range(10)))]
        assert times == sorted(times)

    def test_slot_accounting(self, rng):
        inv = Gen2Inventory(rng, q_initial=4.0)
        outcomes = list(inv.run_round(list(range(10))))
        assert len(outcomes) == 16  # 2^4 slots
        kinds = {o.kind for o in outcomes}
        assert kinds <= {"success", "collision", "idle"}
        assert inv.stats.slots == 16


class TestContinuousInventory:
    def test_run_until_respects_deadline(self, rng):
        inv = Gen2Inventory(rng)
        list(inv.run_until(1.0, lambda t: list(range(25))))
        assert 1.0 <= inv.clock < 1.3  # finishes the round in flight

    def test_realistic_read_rate(self, rng):
        inv = Gen2Inventory(rng)
        successes = sum(
            1 for s in inv.run_until(5.0, lambda t: list(range(25))) if s.kind == "success"
        )
        rate = successes / inv.stats.elapsed
        # An Impinj-class reader on a 25-tag population reads ~100-400/s.
        assert 80.0 <= rate <= 450.0

    def test_q_adapts_to_population(self, rng):
        inv = Gen2Inventory(rng, q_initial=8.0)
        list(inv.run_until(3.0, lambda t: list(range(4))))
        assert inv.current_q <= 4  # Q drifts down towards log2(population)

    def test_readability_callback_consulted(self, rng):
        inv = Gen2Inventory(rng)
        seen = set()

        def readable(t):
            # tag 5 drops out after t = 0.5 (hand shadowing).
            pop = list(range(10))
            if t > 0.5:
                pop.remove(5)
            return pop

        for s in inv.run_until(2.0, readable):
            if s.kind == "success" and s.time > 0.6:
                seen.add(s.winner)
        assert 5 not in seen

    def test_zero_duration_noop(self, rng):
        inv = Gen2Inventory(rng, start_time=1.0)
        assert list(inv.run_until(0.5, lambda t: [1])) == []


def test_expected_round_efficiency_peaks_near_matching_q():
    # Framed ALOHA: efficiency per slot is maximal when slots ~= tags.
    effs = {q: expected_round_efficiency(16, q) for q in range(1, 9)}
    assert max(effs, key=effs.get) == 4  # 2^4 = 16 slots
    assert effs[4] == pytest.approx(1.0 / np.e, rel=0.15)


def test_expected_round_efficiency_validates():
    with pytest.raises(ValueError):
        expected_round_efficiency(-1, 4)
    assert expected_round_efficiency(0, 4) == 0.0
