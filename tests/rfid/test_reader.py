import numpy as np
import pytest

from repro.physics.antenna import ReaderAntenna
from repro.physics.geometry import Vec3
from repro.physics.hand import HandPose
from repro.physics.multipath import location_preset
from repro.rfid.deployment import deploy_array
from repro.rfid.reader import Reader, ReaderConfig
from repro.units import TWO_PI


@pytest.fixture()
def reader(rng) -> Reader:
    array = deploy_array(rng)
    antenna = ReaderAntenna(Vec3(0, 0, -0.32), Vec3(0, 0, 1), gain_dbi=8.0)
    return Reader(antenna, array, ReaderConfig(), location_preset(2), rng=rng)


def test_all_tags_readable_at_default_power(reader):
    assert len(reader.readable_indices(None)) == 25


def test_low_power_drops_tags(rng):
    array = deploy_array(rng)
    antenna = ReaderAntenna(Vec3(0, 0, -0.32), Vec3(0, 0, 1), gain_dbi=8.0)
    weak = Reader(antenna, array, ReaderConfig(tx_power_dbm=-5.0), rng=rng)
    assert len(weak.readable_indices(None)) < 25


def test_hand_shadow_can_unpower_tag(reader):
    tag = reader.array.tag_at(2, 2)
    pose = HandPose(Vec3(tag.position.x, tag.position.y, 0.015))
    with_hand = reader.incident_power_w(tag.index, pose)
    without = reader.incident_power_w(tag.index, None)
    assert with_hand < without


def test_observe_tag_report_fields(reader):
    report = reader.observe_tag(12, 1.5, None)
    assert report.tag_index == 12
    assert report.timestamp == 1.5
    assert 0.0 <= report.phase_rad < TWO_PI
    assert -90.0 < report.rss_dbm < 0.0


def test_observe_tag_phase_includes_tag_diversity(rng):
    array = deploy_array(rng)
    antenna = ReaderAntenna(Vec3(0, 0, -0.32), Vec3(0, 0, 1), gain_dbi=8.0)
    reader = Reader(antenna, array, rng=np.random.default_rng(0))
    # Two tags symmetric about the boresight share geometry but their
    # reported phases differ because theta_tag differs.
    a = np.mean([reader.observe_tag(11, t * 0.1, None).phase_rad for t in range(20)])
    b = np.mean([reader.observe_tag(13, t * 0.1, None).phase_rad for t in range(20)])
    assert abs(a - b) > 0.05


def test_doppler_populated_after_second_read(reader):
    first = reader.observe_tag(0, 0.0, None)
    second = reader.observe_tag(0, 0.1, None)
    assert first.doppler_hz == 0.0
    assert isinstance(second.doppler_hz, float)


def test_collect_produces_time_ordered_log(reader):
    log = reader.collect_static(1.0)
    times = [r.timestamp for r in log]
    assert times == sorted(times)
    assert len(log) > 50
    assert set(log.tag_indices()) <= set(range(25))


def test_collect_duration_validated(reader):
    with pytest.raises(ValueError):
        reader.collect(0.0)


def test_collect_with_hand_changes_reports(rng):
    array = deploy_array(np.random.default_rng(3))
    antenna = ReaderAntenna(Vec3(0, 0, -0.32), Vec3(0, 0, 1), gain_dbi=8.0)
    reader = Reader(antenna, array, rng=np.random.default_rng(3))
    static = reader.collect_static(1.5)

    tag = array.tag_at(2, 2)
    pose = HandPose(Vec3(tag.position.x, tag.position.y, 0.03))
    hand_log = reader.collect(1.5, lambda t: pose)

    idx = tag.index
    static_rss = static.per_tag()[idx].rss.mean()
    hand_series = hand_log.per_tag().get(idx)
    # Either the tag dropped out entirely (deep shadow) or its RSS dropped.
    assert hand_series is None or hand_series.rss.mean() < static_rss


def test_inventory_stats_exposed(reader):
    reader.collect_static(0.5)
    assert reader.last_inventory_stats.successes > 0
