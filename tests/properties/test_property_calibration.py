"""Property tests for circular statistics (calibration foundations)."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.calibration import circular_mean, circular_std
from repro.units import TWO_PI, wrap_phase


@given(
    st.floats(min_value=0.0, max_value=TWO_PI - 1e-6),
    st.floats(min_value=0.001, max_value=0.3),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40)
def test_mean_rotation_equivariance(offset, sigma, seed):
    rng = np.random.default_rng(seed)
    base = np.mod(rng.normal(3.0, sigma, 200), TWO_PI)
    rotated = np.mod(base + offset, TWO_PI)
    expected = wrap_phase(circular_mean(base) + offset)
    actual = circular_mean(rotated)
    diff = abs(actual - expected)
    assert min(diff, TWO_PI - diff) < 1e-6


@given(
    st.floats(min_value=0.0, max_value=TWO_PI - 1e-6),
    st.floats(min_value=0.001, max_value=0.3),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40)
def test_std_rotation_invariance(offset, sigma, seed):
    rng = np.random.default_rng(seed)
    base = np.mod(rng.normal(3.0, sigma, 200), TWO_PI)
    rotated = np.mod(base + offset, TWO_PI)
    assert circular_std(rotated) == pytest.approx(circular_std(base), rel=1e-6)


@given(st.floats(min_value=0.0, max_value=TWO_PI - 1e-6))
def test_constant_series(value):
    series = np.full(50, value)
    mean = circular_mean(series)
    diff = abs(mean - value)
    assert min(diff, TWO_PI - diff) < 1e-9
    assert circular_std(series) == pytest.approx(0.0, abs=1e-6)


@given(
    st.floats(min_value=0.001, max_value=0.5),
    st.floats(min_value=0.001, max_value=0.5),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30)
def test_std_monotone_in_dispersion(sigma_small, sigma_big, seed):
    assume(sigma_big > sigma_small * 1.5)
    rng = np.random.default_rng(seed)
    small = np.mod(rng.normal(1.0, sigma_small, 400), TWO_PI)
    big = np.mod(rng.normal(1.0, sigma_big, 400), TWO_PI)
    assert circular_std(big) > circular_std(small)
