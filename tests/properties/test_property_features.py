"""Property tests for shape features: rotation/reflection equivariance.

Rotating a cell pattern by 90 degrees must rotate its classification:
"−" ↔ "|", "/" ↔ "\\", and arc openings advance one quadrant.  These
invariances catch sign errors in the y-up coordinate handling that unit
tests on single shapes can miss.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.classifier import classify_shape
from repro.core.features import extract_features
from repro.core.imaging import BinaryMap, GreyMap
from repro.motion.strokes import ArcOpening, StrokeKind
from repro.physics.geometry import GridLayout

LAYOUT = GridLayout()

#: Base patterns with known classifications (no trough path: image only).
LINE_PATTERNS = {
    StrokeKind.HBAR: [(2, c) for c in range(5)],
    StrokeKind.VBAR: [(r, 2) for r in range(5)],
    StrokeKind.SLASH: [(4, 0), (3, 1), (2, 2), (1, 3), (0, 4)],
    StrokeKind.BACKSLASH: [(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)],
}

#: 90-degree clockwise rotation of grid cells: (r, c) -> (c, rows-1-r).
def _rot_cells(cells, times=1):
    out = list(cells)
    for _ in range(times % 4):
        out = [(c, LAYOUT.rows - 1 - r) for r, c in out]
    return out


#: How line kinds map under one clockwise rotation.
_ROTATED_KIND = {
    StrokeKind.HBAR: StrokeKind.VBAR,
    StrokeKind.VBAR: StrokeKind.HBAR,
    StrokeKind.SLASH: StrokeKind.BACKSLASH,
    StrokeKind.BACKSLASH: StrokeKind.SLASH,
}


def _maps(cells):
    values = np.zeros((5, 5))
    mask = np.zeros((5, 5), dtype=bool)
    for r, c in cells:
        mask[r, c] = True
        values[r, c] = 1.0
    return GreyMap(values, LAYOUT), BinaryMap(mask, 0.5, LAYOUT)


@given(st.sampled_from(sorted(LINE_PATTERNS, key=lambda k: k.name)),
       st.integers(min_value=0, max_value=3))
def test_line_classification_rotates_with_pattern(kind, quarter_turns):
    cells = _rot_cells(LINE_PATTERNS[kind], quarter_turns)
    grey, binary = _maps(cells)
    decision = classify_shape(grey, binary)
    expected = kind
    for _ in range(quarter_turns):
        expected = _ROTATED_KIND[expected]
    assert decision is not None
    assert decision.kind is expected


ARC_CELLS = [(0, 2), (0, 1), (1, 0), (2, 0), (3, 0), (4, 1), (4, 2)]  # "⊂"

#: Opening after k clockwise quarter turns of a RIGHT-opening arc.
_ROTATED_OPENING = [ArcOpening.RIGHT, ArcOpening.DOWN, ArcOpening.LEFT, ArcOpening.UP]


@given(st.integers(min_value=0, max_value=3))
def test_arc_opening_rotates_with_pattern(quarter_turns):
    cells = _rot_cells(ARC_CELLS, quarter_turns)
    grey, binary = _maps(cells)
    feats = extract_features(grey, binary)
    from repro.core.features import opening_quadrant

    quadrant = opening_quadrant(feats.opening)
    assert quadrant == _ROTATED_OPENING[quarter_turns].value


@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        min_size=1, max_size=15, unique=True,
    )
)
@settings(max_examples=60)
def test_features_total_count_and_bbox(cells):
    grey, binary = _maps(cells)
    feats = extract_features(grey, binary)
    assert feats.count == len(set(cells))
    rmin, rmax, cmin, cmax = feats.bbox
    rows = [r for r, _ in cells]
    cols = [c for _, c in cells]
    assert (rmin, rmax, cmin, cmax) == (min(rows), max(rows), min(cols), max(cols))


@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        min_size=1, max_size=15, unique=True,
    )
)
@settings(max_examples=60)
def test_classifier_total_on_arbitrary_masks(cells):
    """The classifier never crashes and always answers on any mask."""
    grey, binary = _maps(cells)
    decision = classify_shape(grey, binary)
    assert decision is not None
    assert 0.0 <= decision.confidence <= 1.0
