"""Property tests for the Gen2 inventory MAC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rfid.protocol import Gen2Inventory, QAlgorithm


@given(
    st.integers(min_value=0, max_value=60),
    st.floats(min_value=0.0, max_value=15.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40)
def test_round_invariants(population, q_initial, seed):
    rng = np.random.default_rng(seed)
    inv = Gen2Inventory(rng, q_initial=q_initial)
    outcomes = list(inv.run_round(list(range(population))))

    # Slot count is exactly 2^Q for a non-empty population.
    if population:
        assert len(outcomes) == 2 ** int(round(min(15.0, max(0.0, q_initial))))

    # Each tag wins at most one slot; winners come from the population.
    winners = [o.winner for o in outcomes if o.kind == "success"]
    assert len(winners) == len(set(winners))
    assert all(0 <= w < population for w in winners)

    # Success+collision+idle partition the slots; time is monotone.
    times = [o.time for o in outcomes]
    assert times == sorted(times)
    assert inv.stats.slots == len(outcomes)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20)
def test_inventory_conserves_time(seed):
    rng = np.random.default_rng(seed)
    inv = Gen2Inventory(rng)
    outcomes = list(inv.run_until(1.0, lambda t: list(range(12))))
    total = sum(o.duration for o in outcomes)
    # Elapsed = slot durations + per-round overheads; must cover the span.
    assert inv.stats.elapsed >= total
    assert inv.clock >= 1.0


@given(
    st.floats(min_value=0.0, max_value=15.0),
    st.lists(st.sampled_from(["idle", "collision"]), max_size=60),
)
def test_q_always_clamped(q0, events):
    q = QAlgorithm(qfp=q0)
    for e in events:
        if e == "idle":
            q.on_idle()
        else:
            q.on_collision()
        assert 0.0 <= q.qfp <= 15.0
        assert 0 <= q.q <= 15
