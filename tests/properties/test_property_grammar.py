"""Property tests for the tree grammar and token scoring."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.grammar import TreeGrammar, token_distance
from repro.motion.letters import ALPHABET, shape_sequence

TOKENS = [
    "hbar", "vbar", "slash", "backslash", "click",
    "arc:left", "arc:right", "arc:up", "arc:down",
]

token_st = st.sampled_from(TOKENS)


@given(token_st)
def test_token_distance_identity(token):
    assert token_distance(token, token) == 0.0


@given(token_st, token_st)
def test_token_distance_symmetric(a, b):
    assert token_distance(a, b) == pytest.approx(token_distance(b, a))


@given(token_st, token_st)
def test_token_distance_bounded(a, b):
    d = token_distance(a, b)
    assert 0.0 <= d <= 1.0
    if a != b:
        assert d > 0.0


@given(st.sampled_from(ALPHABET))
def test_every_letter_reachable_in_tree(letter):
    g = TreeGrammar()
    assert letter in g.exact_match(shape_sequence(letter))


@given(st.sampled_from(ALPHABET), st.integers(min_value=0, max_value=3))
def test_prefix_always_contains_the_letter(letter, k):
    g = TreeGrammar()
    seq = shape_sequence(letter)
    prefix = seq[: min(k, len(seq))]
    assert letter in g.candidates_for_prefix(prefix)


@given(st.lists(token_st, min_size=1, max_size=4))
def test_candidates_monotone_in_prefix_length(tokens):
    g = TreeGrammar()
    prev = set(g.candidates_for_prefix(()))
    for k in range(1, len(tokens) + 1):
        current = set(g.candidates_for_prefix(tokens[:k]))
        assert current <= prev
        prev = current
