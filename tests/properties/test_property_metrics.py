"""Property tests for the evaluation metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import SegmentedWindow
from repro.sim.metrics import (
    empirical_cdf,
    merge_segmentation_scores,
    score_segmentation,
)

interval = st.tuples(
    st.floats(min_value=0.0, max_value=50.0),
    st.floats(min_value=0.05, max_value=5.0),
).map(lambda pair: (pair[0], pair[0] + pair[1]))

intervals = st.lists(interval, max_size=8)


@given(intervals, intervals)
@settings(max_examples=60)
def test_segmentation_rates_bounded(window_ivs, truth_ivs):
    windows = [SegmentedWindow(a, b, 1.0) for a, b in window_ivs]
    score = score_segmentation(windows, truth_ivs)
    assert 0.0 <= score.insertion_rate <= 1.0
    assert 0.0 <= score.underfill_rate <= 1.0
    assert 0.0 <= score.miss_rate <= score.underfill_rate + 1e-12
    assert score.insertions <= score.detected_windows
    assert score.underfills <= score.true_strokes


@given(intervals)
@settings(max_examples=40)
def test_perfect_windows_never_insert_or_miss(truth_ivs):
    windows = [SegmentedWindow(a, b, 1.0) for a, b in truth_ivs]
    score = score_segmentation(windows, truth_ivs)
    assert score.insertions == 0
    assert score.misses == 0
    assert score.underfills == 0


@given(intervals)
@settings(max_examples=40)
def test_no_windows_means_all_missed(truth_ivs):
    score = score_segmentation([], truth_ivs)
    assert score.misses == len(truth_ivs)
    assert score.underfills == len(truth_ivs)


@given(st.lists(st.tuples(intervals, intervals), max_size=4))
@settings(max_examples=30)
def test_merge_is_count_additive(sessions):
    scores = [
        score_segmentation([SegmentedWindow(a, b, 1.0) for a, b in w], t)
        for w, t in sessions
    ]
    merged = merge_segmentation_scores(scores)
    assert merged.true_strokes == sum(s.true_strokes for s in scores)
    assert merged.insertions == sum(s.insertions for s in scores)
    assert merged.misses == sum(s.misses for s in scores)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
def test_cdf_is_monotone_and_complete(values):
    xs, fracs = empirical_cdf(values)
    assert list(xs) == sorted(values)
    assert fracs[-1] == pytest.approx(1.0)
    assert all(f1 <= f2 for f1, f2 in zip(fracs, fracs[1:]))
