"""Property tests for phase de-periodicity (the pipeline's first stage)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.unwrap import fold_to_pi, largest_jump, total_variation, unwrap
from repro.units import TWO_PI, wrap_phase

phases = arrays(
    dtype=float,
    shape=st.integers(min_value=0, max_value=60),
    elements=st.floats(min_value=0.0, max_value=TWO_PI - 1e-9),
)

angles = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


@given(angles)
def test_fold_in_branch(delta):
    folded = fold_to_pi(delta)
    assert -math.pi < folded <= math.pi + 1e-12


@given(angles)
def test_fold_preserves_angle_mod_2pi(delta):
    folded = fold_to_pi(delta)
    assert wrap_phase(folded) == (
        __import__("pytest").approx(wrap_phase(delta), abs=1e-6)
    )


@given(phases)
def test_unwrap_never_jumps_more_than_pi(series):
    assert largest_jump(unwrap(series)) <= math.pi + 1e-9


@given(phases)
def test_unwrap_preserves_wrapped_values(series):
    out = unwrap(series)
    for raw, un in zip(series, out):
        diff = abs(wrap_phase(un) - wrap_phase(raw))
        assert min(diff, TWO_PI - diff) < 1e-6  # circular comparison


@given(phases)
def test_unwrap_idempotent_on_smooth_series(series):
    smooth = unwrap(series)
    again = unwrap(np.mod(smooth, TWO_PI))
    # Re-unwrapping the wrapped smooth series reproduces its differences.
    if smooth.size >= 2:
        assert np.allclose(np.diff(again), np.diff(smooth), atol=1e-6)


@given(
    st.floats(min_value=0.0, max_value=TWO_PI - 1e-6),
    st.floats(min_value=-0.4, max_value=0.4),
    st.integers(min_value=2, max_value=80),
)
def test_unwrap_recovers_linear_drift(start, step, n):
    truth = start + step * np.arange(n)
    recovered = unwrap(np.mod(truth, TWO_PI))
    assert np.allclose(np.diff(recovered), step, atol=1e-6)


@given(phases)
def test_total_variation_nonnegative_and_additive(series):
    tv = total_variation(series)
    assert tv >= 0.0
    if series.size >= 3:
        k = series.size // 2
        left = total_variation(series[: k + 1])
        right = total_variation(series[k:])
        assert tv == __import__("pytest").approx(left + right, rel=1e-9, abs=1e-9)
