"""Property tests for the OTSU threshold."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.otsu import between_class_variance, otsu_threshold

value_sets = arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=80),
    elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)


@given(value_sets)
def test_threshold_within_range(values):
    thr = otsu_threshold(values)
    assert values.min() <= thr <= values.max()


@given(value_sets)
def test_shift_equivariance(values):
    thr = otsu_threshold(values)
    shifted = otsu_threshold(values + 13.0)
    assert shifted == pytest.approx(thr + 13.0, abs=1e-6 + 0.05 * np.ptp(values))


@given(value_sets, st.floats(min_value=0.1, max_value=10.0))
def test_scale_equivariance(values, scale):
    thr = otsu_threshold(values)
    scaled = otsu_threshold(values * scale)
    assert scaled == pytest.approx(thr * scale, abs=1e-6 + 0.05 * scale * max(np.ptp(values), 1e-9))


@given(
    st.integers(min_value=2, max_value=30),
    st.integers(min_value=2, max_value=30),
    st.floats(min_value=5.0, max_value=50.0),
)
def test_separated_clusters_split(n_low, n_high, gap):
    rng = np.random.default_rng(0)
    low = rng.uniform(0.0, 1.0, n_low)
    high = rng.uniform(gap, gap + 1.0, n_high)
    values = np.concatenate([low, high])
    thr = otsu_threshold(values)
    assert low.max() <= thr <= high.min() + 1e-9


@given(value_sets)
def test_between_class_variance_nonnegative(values):
    thr = otsu_threshold(values)
    assert between_class_variance(values, thr) >= 0.0
