"""Property tests for geometry primitives."""

import math

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.physics.geometry import (
    GridLayout,
    Vec3,
    mirror_across_plane,
    path_length,
    resample_polyline,
)

coords = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
vectors = st.builds(Vec3, coords, coords, coords)


@given(vectors, vectors)
def test_distance_symmetry(a, b):
    assert a.distance_to(b) == pytest.approx(b.distance_to(a))


@given(vectors, vectors, vectors)
def test_triangle_inequality(a, b, c):
    assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9


@given(vectors)
def test_double_mirror_is_identity(p):
    plane_point = Vec3(0.0, 0.0, 1.0)
    normal = Vec3(0.0, 0.0, 1.0)
    twice = mirror_across_plane(
        mirror_across_plane(p, plane_point, normal), plane_point, normal
    )
    assert twice.distance_to(p) < 1e-9


@given(vectors)
def test_mirror_preserves_distance_to_plane(p):
    plane_point = Vec3(0.0, 1.0, 0.0)
    normal = Vec3(0.0, 1.0, 0.0)
    image = mirror_across_plane(p, plane_point, normal)
    assert abs((p.y - 1.0) + (image.y - 1.0)) < 1e-9


@given(st.lists(vectors, min_size=2, max_size=12), st.integers(min_value=2, max_value=40))
def test_resample_preserves_endpoints_and_length(points, n):
    out = resample_polyline(points, n)
    assert len(out) == n
    assert out[0].distance_to(points[0]) < 1e-9
    assert out[-1].distance_to(points[-1]) < 1e-6
    # Resampling a polyline can only shorten it (chords of the original).
    assert path_length(out) <= path_length(points) + 1e-6


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=0.01, max_value=0.5),
)
def test_grid_index_bijection(rows, cols, pitch):
    g = GridLayout(rows=rows, cols=cols, pitch=pitch)
    seen = set()
    for r in range(rows):
        for c in range(cols):
            idx = g.index_of(r, c)
            assert g.row_col(idx) == (r, c)
            seen.add(idx)
    assert seen == set(range(g.count))


@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=2, max_value=8),
)
def test_grid_nearest_cell_of_cell_centres(rows, cols):
    g = GridLayout(rows=rows, cols=cols, pitch=0.06)
    for r in range(rows):
        for c in range(cols):
            assert g.nearest_cell(g.position(r, c)) == (r, c)
